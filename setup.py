"""Shim for legacy editable installs (`pip install -e .`).

The offline environment lacks the `wheel` package, so PEP 517 editable
installs fail; this setup.py lets pip fall back to `setup.py develop`.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
