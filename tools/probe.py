"""Diagnostic probe: run one scenario and print free-space/flood dynamics."""
import sys
from repro.experiments.runner import ScenarioSpec, POLICY_FACTORIES
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.workloads import BENCHMARKS, Region

def probe(workload="YCSB", policy="L-BGC", blocks=1024, ppb=64, warm=20, meas=60,
          cache_frac=4, wl_kwargs=None):
    spec = ScenarioSpec(workload=workload, policy=policy, blocks=blocks, pages_per_block=ppb)
    config = spec.make_config()
    pol = spec.make_policy()
    host = HostSystem(config, pol, seed=42,
                      flusher_period_ns=1*SECOND, tau_expire_ns=6*SECOND,
                      cache_bytes=config.user_bytes // cache_frac,
                      tau_flush_fraction=0.6, dirty_throttle_fraction=0.8)
    W = host.user_pages // 2
    host.prefill(W)
    metrics = MetricsCollector(host, workload)
    wl = BENCHMARKS[workload](host, metrics, Region(0, W), **(wl_kwargs or {}))
    wl.start()
    # sample free pages every 200ms
    samples = []
    def sampler():
        samples.append(host.ftl.free_pages())
        host.sim.schedule(SECOND//5, sampler)
    host.sim.schedule(0, sampler)
    host.run_for(warm*SECOND)
    metrics.begin()
    samples.clear()
    host.run_for(meas*SECOND)
    metrics.end()
    m = metrics.results()
    op = host.ftl.space.op_pages
    acc = f" acc={m.prediction_accuracy_pct:.1f}" if m.prediction_accuracy_pct else ""
    print(f"{policy:8s} {workload:10s} iops={m.iops:8.1f} waf={m.waf:.3f} fgc={m.fgc_invocations:4d} "
          f"fgc_s={m.fgc_time_ns/1e9:6.2f} bgc={m.bgc_blocks:5d} hostw={m.host_pages_written:7d} "
          f"free[min/med/max]={min(samples)}/{sorted(samples)[len(samples)//2]}/{max(samples)} OP={op}"
          f" dirty_max={max_dirty[0]} buf={m.buffered_fraction:.3f}{acc}")
    return m

max_dirty = [0]
if __name__ == "__main__":
    import json
    kwargs = json.loads(sys.argv[3]) if len(sys.argv) > 3 else {}
    for pol in (sys.argv[2].split(",") if len(sys.argv) > 2 else ["L-BGC","A-BGC"]):
        probe(workload=sys.argv[1] if len(sys.argv) > 1 else "YCSB", policy=pol, wl_kwargs=kwargs)
