#!/usr/bin/env python3
"""Validate trace files produced by ``python -m repro run --trace``.

Accepts any mix of JSONL and Chrome ``trace_event`` traces (the format
is sniffed from the first byte) and checks the structural invariants
the CI smoke job relies on:

* JSONL: first line is a ``repro-trace/1`` header carrying ``seed`` and
  ``fault_profile``; every following line is an ``event`` record with a
  name and a sim-time ``ts``.
* Chrome: a single JSON document with ``traceEvents`` / ``otherData`` /
  ``displayTimeUnit``; every non-metadata event carries the keys a
  Perfetto / ``chrome://tracing`` load requires, and timestamps are
  monotone per track (tid).
* Per-op completion records (``host/op.complete``, emitted when tail
  attribution is on): duration events whose args carry the op ``kind``
  and the ``queue_depth`` at issue.
* Latency counter tracks (``host.op_latency_ns.p99`` / ``.p999``):
  sampled per-interval tail percentiles, counter-phase records.

With ``--require-latency`` a trace missing the op-completion records or
the percentile counter tracks fails validation (the latency-report CI
job passes it; plain smoke traces from runs without ``--trace``-time
sampling or tail attribution may legitimately lack both).

With ``--require-scrub`` a trace must carry at least one
``device/scrub.block`` span (a refresh-scrub relocation, emitted with
``--reliability`` armed and at-risk data present); the reliability CI
smoke job passes it.  Scrub spans are additionally checked to be
duration events wherever they appear.

Exit status 0 when every file passes; 1 with a diagnostic otherwise.
"""

import json
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}

#: Counter tracks the registry samples for every registered HDR
#: histogram (see repro.obs.registry.HDR_SAMPLE_PERCENTILES).
LATENCY_COUNTER_TRACKS = (
    "host.op_latency_ns.p99",
    "host.op_latency_ns.p999",
)

OP_COMPLETE_NAME = "op.complete"

#: Refresh-scrub relocation span (device track; reliability runs only).
SCRUB_EVENT_NAME = "scrub.block"


def _check_op_complete(event: dict, args: dict, has_dur: bool) -> None:
    """Shared per-op completion record invariants (both formats)."""
    if event.get("ph") != "X":
        raise ValueError(f"op.complete must be a duration event: {event}")
    if not has_dur:
        raise ValueError(f"op.complete missing dur: {event}")
    for key in ("kind", "queue_depth"):
        if key not in args:
            raise ValueError(f"op.complete args missing {key!r}: {event}")


class _LatencyAudit:
    """Tracks which latency records a trace carried."""

    def __init__(self) -> None:
        self.op_completes = 0
        self.counter_tracks = set()
        self.scrub_spans = 0

    def see(self, name: str, ph: str) -> None:
        if name == OP_COMPLETE_NAME and ph == "X":
            self.op_completes += 1
        if ph == "C" and name in LATENCY_COUNTER_TRACKS:
            self.counter_tracks.add(name)
        if name == SCRUB_EVENT_NAME:
            if ph != "X":
                raise ValueError(
                    f"{SCRUB_EVENT_NAME} must be a duration event, got ph={ph!r}"
                )
            self.scrub_spans += 1

    def enforce(self) -> None:
        if self.op_completes == 0:
            raise ValueError(
                "no host/op.complete records (run with tail attribution on)"
            )
        missing = set(LATENCY_COUNTER_TRACKS) - self.counter_tracks
        if missing:
            raise ValueError(
                f"missing latency counter tracks {sorted(missing)} "
                "(run with metrics sampling on)"
            )

    def enforce_scrub(self) -> None:
        if self.scrub_spans == 0:
            raise ValueError(
                "no device/scrub.block spans (run with --reliability armed "
                "and at-risk data present)"
            )


def validate_jsonl(
    path: str, require_latency: bool = False, require_scrub: bool = False
) -> None:
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = lines[0]
    if header.get("type") != "header":
        raise ValueError("first line is not a header record")
    if header.get("format") != "repro-trace/1":
        raise ValueError(f"unexpected format {header.get('format')!r}")
    for key in ("seed", "fault_profile", "time_unit"):
        if key not in header:
            raise ValueError(f"header missing {key!r}")
    events = lines[1:]
    if not events:
        raise ValueError("no events after header")
    audit = _LatencyAudit()
    for event in events:
        if event.get("type") != "event":
            raise ValueError(f"non-event record: {event}")
        for key in ("name", "cat", "ts", "ph"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event}")
        if event["name"] == OP_COMPLETE_NAME:
            _check_op_complete(event, event.get("args", {}), "dur" in event)
        audit.see(event["name"], event["ph"])
    if require_latency:
        audit.enforce()
    if require_scrub:
        audit.enforce_scrub()
    print(f"{path}: ok (jsonl, {len(events)} events)")


def validate_chrome(
    path: str, require_latency: bool = False, require_scrub: bool = False
) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    for key in ("traceEvents", "otherData", "displayTimeUnit"):
        if key not in document:
            raise ValueError(f"document missing {key!r}")
    for key in ("seed", "fault_profile"):
        if key not in document["otherData"]:
            raise ValueError(f"otherData missing {key!r}")
    events = [e for e in document["traceEvents"] if e.get("ph") != "M"]
    if not events:
        raise ValueError("no non-metadata events")
    audit = _LatencyAudit()
    last_ts = {}
    for event in events:
        missing = REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ValueError(f"event missing {sorted(missing)}: {event}")
        tid = event["tid"]
        if event["ts"] < last_ts.get(tid, 0):
            raise ValueError(f"timestamps not monotone on tid {tid}")
        last_ts[tid] = event["ts"]
        if event["name"] == OP_COMPLETE_NAME:
            _check_op_complete(event, event.get("args", {}), "dur" in event)
        audit.see(event["name"], event["ph"])
    if require_latency:
        audit.enforce()
    if require_scrub:
        audit.enforce_scrub()
    print(f"{path}: ok (chrome, {len(events)} events, {len(last_ts)} tracks)")


def validate(
    path: str, require_latency: bool = False, require_scrub: bool = False
) -> None:
    with open(path, encoding="utf-8") as handle:
        first = handle.read(1)
    # A chrome trace is one JSON object; JSONL starts with a header line.
    if first == "{" and _is_single_document(path):
        validate_chrome(path, require_latency, require_scrub)
    else:
        validate_jsonl(path, require_latency, require_scrub)


def _is_single_document(path: str) -> bool:
    try:
        with open(path, encoding="utf-8") as handle:
            json.load(handle)
        return True
    except json.JSONDecodeError:
        return False


def main(argv) -> int:
    require_latency = False
    require_scrub = False
    paths = []
    for arg in argv:
        if arg == "--require-latency":
            require_latency = True
        elif arg == "--require-scrub":
            require_scrub = True
        else:
            paths.append(arg)
    if not paths:
        print(
            "usage: validate_trace.py [--require-latency] [--require-scrub] "
            "TRACE [TRACE ...]",
            file=sys.stderr,
        )
        return 2
    for path in paths:
        try:
            validate(path, require_latency, require_scrub)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
