#!/usr/bin/env python3
"""Validate trace files produced by ``python -m repro run --trace``.

Accepts any mix of JSONL and Chrome ``trace_event`` traces (the format
is sniffed from the first byte) and checks the structural invariants
the CI smoke job relies on:

* JSONL: first line is a ``repro-trace/1`` header carrying ``seed`` and
  ``fault_profile``; every following line is an ``event`` record with a
  name and a sim-time ``ts``.
* Chrome: a single JSON document with ``traceEvents`` / ``otherData`` /
  ``displayTimeUnit``; every non-metadata event carries the keys a
  Perfetto / ``chrome://tracing`` load requires, and timestamps are
  monotone per track (tid).

Exit status 0 when every file passes; 1 with a diagnostic otherwise.
"""

import json
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


def validate_jsonl(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = lines[0]
    if header.get("type") != "header":
        raise ValueError("first line is not a header record")
    if header.get("format") != "repro-trace/1":
        raise ValueError(f"unexpected format {header.get('format')!r}")
    for key in ("seed", "fault_profile", "time_unit"):
        if key not in header:
            raise ValueError(f"header missing {key!r}")
    events = lines[1:]
    if not events:
        raise ValueError("no events after header")
    for event in events:
        if event.get("type") != "event":
            raise ValueError(f"non-event record: {event}")
        for key in ("name", "cat", "ts", "ph"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event}")
    print(f"{path}: ok (jsonl, {len(events)} events)")


def validate_chrome(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    for key in ("traceEvents", "otherData", "displayTimeUnit"):
        if key not in document:
            raise ValueError(f"document missing {key!r}")
    for key in ("seed", "fault_profile"):
        if key not in document["otherData"]:
            raise ValueError(f"otherData missing {key!r}")
    events = [e for e in document["traceEvents"] if e.get("ph") != "M"]
    if not events:
        raise ValueError("no non-metadata events")
    last_ts = {}
    for event in events:
        missing = REQUIRED_EVENT_KEYS - set(event)
        if missing:
            raise ValueError(f"event missing {sorted(missing)}: {event}")
        tid = event["tid"]
        if event["ts"] < last_ts.get(tid, 0):
            raise ValueError(f"timestamps not monotone on tid {tid}")
        last_ts[tid] = event["ts"]
    print(f"{path}: ok (chrome, {len(events)} events, {len(last_ts)} tracks)")


def validate(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        first = handle.read(1)
    # A chrome trace is one JSON object; JSONL starts with a header line.
    if first == "{" and _is_single_document(path):
        validate_chrome(path)
    else:
        validate_jsonl(path)


def _is_single_document(path: str) -> bool:
    try:
        with open(path, encoding="utf-8") as handle:
            json.load(handle)
        return True
    except json.JSONDecodeError:
        return False


def main(argv) -> int:
    if not argv:
        print("usage: validate_trace.py TRACE [TRACE ...]", file=sys.stderr)
        return 2
    for path in argv:
        try:
            validate(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
