"""Regression gate for the repo's benchmark results.

Benchmark numbers are machine-dependent, so the gate judges *ratios*
(measured on the same run), which transfer across hosts.  It accepts two
payload shapes and picks the matching rule set automatically:

Hot-path payloads (``benchmarks/bench_hotpaths.py``):

1. The end-to-end ``events_per_sec`` speedup must clear ``--min-speedup``
   (default 1.5x -- the CI floor; the committed full-mode trajectory
   documents >= 2x).
2. Against ``--baseline`` (the committed ``BENCH_hotpaths.json``
   trajectory -- the gate picks the *latest entry with the same mode* as
   the run under test, falling back to the latest entry overall), no
   metric's speedup may shrink below a floor.  Same-mode comparisons use
   the strict >20%-regression rule (floor = 0.8x the baseline speedup);
   cross-mode comparisons use ``--tolerance`` (default 2x: a quick-mode
   CI run against a full-mode entry differs in scale, so the tolerance
   absorbs that; the absolute 1.5x floor in (1) is the hard bar).
3. The ``--jobs 2`` sweep must beat ``--jobs 1`` when the current host
   actually has >= 2 CPUs; on single-core runners the check is skipped
   (and says so).

Recovery payloads (``benchmarks/bench_recovery.py``, ``benchmark``
starting with ``"recovery"``): the gate reports both power-on-ready
times -- the full OOB scan and the checkpoint-bounded tail scan of the
same crash image -- and requires their simulated-time ratio
(``speedup_sim``) to clear ``--min-recovery-speedup`` (default 10x, the
checkpoint protocol's design target).

Warm-start payloads (``benchmarks/bench_warmstart.py``, ``benchmark``
starting with ``"warmstart"``): the gate requires the analytic
warm-start's preconditioning ``speedup`` over the simulated
prefill+warmup -- a wall-time ratio on the same host, so it transfers
-- to clear ``--min-warmstart-speedup`` (default 5x, the feature's
design target).

CMT payloads (``benchmarks/bench_cmt.py``, ``benchmark`` starting with
``"cmt"``): the gate bounds the DFTL translation tier's cost -- the
dram/dftl events-per-sec ``slowdown`` must stay under
``--max-cmt-slowdown`` (default 5x), the translation share of all
programs under ``--max-trans-share`` (default 0.5), and the dftl WAF
must not undercut the dram WAF (translation writes are real writes).

Reliability payloads (``benchmarks/bench_reliability.py``,
``benchmark`` starting with ``"reliability"``): the gate bounds what the
armed-but-quiescent data-integrity subsystem costs -- the off/armed
events-per-sec ``slowdown`` must stay under
``--max-reliability-overhead`` (default 1.03: <3 % when no data is at
risk) -- and requires the armed run to actually be quiescent (zero
scrub relocations, zero UECCs, a fast-path count covering the reads).

Hot-path baselines are matched like-for-like on the ``mapping`` stamp
(entries predating the stamp count as dram), so a dftl measurement is
never judged against a dram trajectory entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick --output /tmp/bench.json
    python tools/bench_gate.py --current /tmp/bench.json --baseline BENCH_hotpaths.json

    PYTHONPATH=src python benchmarks/bench_recovery.py --quick --output /tmp/rec.json
    python tools/bench_gate.py --current /tmp/rec.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metrics whose indexed-vs-scan speedup is compared against the baseline.
RATIO_METRICS = ("events_per_sec", "victim_selection_us", "flusher_tick_us")

#: Minimum jobs1/jobs2 wall-clock ratio demanded on multi-core hosts.
MIN_JOBS_SPEEDUP = 1.2

#: Same-mode baseline comparisons fail when a speedup loses more than
#: this fraction (the trajectory's ">20% regression" rule).
MAX_SAME_MODE_REGRESSION = 0.20


def _load_current(path: Path) -> dict:
    """The run under test: always a flat single-run v1 payload."""
    payload = json.loads(path.read_text())
    if payload.get("schema") != "bench-hotpaths/v1":
        raise SystemExit(f"{path}: unsupported schema {payload.get('schema')!r}")
    return payload


def _gateable(entry: dict) -> bool:
    """Whether an entry carries every speedup ratio the gate compares.

    The v2 trajectory also records non-hotpath entries (e.g. the
    recovery-scan benchmark), which have their own result shapes.
    """
    results = entry.get("results")
    if not isinstance(results, dict):
        return False
    return all(
        isinstance(results.get(m), dict) and "speedup" in results[m]
        for m in RATIO_METRICS
    )


def _load_baseline(path: Path, mode: str, mapping: str = "dram") -> dict | None:
    """Pick the baseline entry to gate against.

    Accepts either a flat ``bench-hotpaths/v1`` payload (pre-trajectory
    baseline, or another single run) or a ``bench-hotpaths/v2``
    trajectory, from which the latest gateable entry matching ``mode``
    *and* ``mapping`` is chosen -- entries are append-only and
    chronological -- falling back to the latest same-mapping entry, then
    to the latest gateable entry of any kind.  Mapping is matched first:
    dram and dftl hot paths genuinely differ, so a dftl run must never
    be judged against a dram trajectory entry (entries that predate the
    mapping stamp count as dram).  A missing, empty or unreadable
    baseline is not an error: the gate runs its absolute ratio-floor
    checks and passes or fails on those alone.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"[bench_gate] baseline {path} unreadable ({exc}); ignoring it")
        return None
    if not text.strip():
        print(f"[bench_gate] baseline {path} is empty; ignoring it")
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"[bench_gate] baseline {path} is not valid JSON ({exc}); ignoring it")
        return None
    if not isinstance(payload, dict):
        print(f"[bench_gate] baseline {path} is not a JSON object; ignoring it")
        return None
    schema = payload.get("schema")
    if schema == "bench-hotpaths/v1":
        return payload if _gateable(payload) else None
    if schema == "bench-hotpaths/v2":
        entries = [e for e in payload.get("entries") or [] if _gateable(e)]
        if not entries:
            return None
        # Like-for-like first: entries without a mapping stamp predate
        # the dftl work and were all measured in dram mode.
        same_mapping = [
            e for e in entries if e.get("mapping", "dram") == mapping
        ]
        pool = same_mapping or entries
        same_mode = [e for e in pool if e.get("mode") == mode]
        entry = same_mode[-1] if same_mode else pool[-1]
        print(
            f"[bench_gate] baseline: trajectory entry "
            f"{entries.index(entry) + 1}/{len(entries)} "
            f"(date={entry.get('date')} commit={entry.get('commit')} "
            f"mode={entry.get('mode')} "
            f"mapping={entry.get('mapping', 'dram')})"
        )
        return entry
    print(f"[bench_gate] baseline {path}: unsupported schema {schema!r}; ignoring it")
    return None


def check_recovery(current: dict, min_recovery_speedup: float) -> list:
    """Gate a recovery payload on its checkpointed-vs-full-scan ratio."""
    failures = []
    tail = current["results"].get("recovery_tail_scan")
    if tail is None:
        return [
            "recovery payload carries no recovery_tail_scan results "
            "(re-run benchmarks/bench_recovery.py)"
        ]
    print(
        f"[bench_gate] power-on-ready: full scan {tail['full_scan_ms']}ms "
        f"({tail['full_scan_pages']} OOB reads) vs checkpointed "
        f"{tail['checkpointed_ms']}ms ({tail['meta_pages']} meta + "
        f"{tail['tail_pages']} tail reads)"
    )
    speedup = tail["speedup_sim"]
    if speedup < min_recovery_speedup:
        failures.append(
            f"recovery_tail_scan speedup_sim {speedup}x is below the "
            f"{min_recovery_speedup}x floor"
        )
    return failures


def check_warmstart(current: dict, min_warmstart_speedup: float) -> list:
    """Gate a warm-start payload on its preconditioning speedup."""
    pre = current["results"].get("warmstart_precondition")
    if pre is None:
        return [
            "warmstart payload carries no warmstart_precondition results "
            "(re-run benchmarks/bench_warmstart.py)"
        ]
    print(
        f"[bench_gate] preconditioning: sim {pre['sim_total_s']}s vs "
        f"analytic {pre['analytic_total_s']}s across "
        f"{len(pre.get('policies', {}))} policies"
    )
    speedup = pre["speedup"]
    if speedup < min_warmstart_speedup:
        return [
            f"warmstart preconditioning speedup {speedup}x is below the "
            f"{min_warmstart_speedup}x floor"
        ]
    return []


def check_cmt(current: dict, max_cmt_slowdown: float,
              max_trans_share: float) -> list:
    """Gate a CMT-overhead payload on its dram/dftl cost ratios."""
    cmt = current["results"].get("cmt_overhead")
    if cmt is None:
        return [
            "cmt payload carries no cmt_overhead results "
            "(re-run benchmarks/bench_cmt.py)"
        ]
    dftl = cmt["dftl"]
    print(
        f"[bench_gate] cmt overhead: dram "
        f"{cmt['dram']['events_per_sec']} ev/s vs dftl "
        f"{dftl['events_per_sec']} ev/s (slowdown {cmt['slowdown']}x); "
        f"hit rate {dftl['cmt_hit_rate']:.2%}, translation share "
        f"{dftl['trans_share']:.2%}, WAF delta {cmt['waf_delta']:+}"
    )
    failures = []
    if cmt["slowdown"] > max_cmt_slowdown:
        failures.append(
            f"cmt_overhead slowdown {cmt['slowdown']}x exceeds the "
            f"{max_cmt_slowdown}x ceiling"
        )
    if dftl["trans_share"] > max_trans_share:
        failures.append(
            f"translation share {dftl['trans_share']} of all programs "
            f"exceeds the {max_trans_share} ceiling"
        )
    # The scenario is time-bounded, so the dftl run completes fewer host
    # ops in the same sim window and the two WAFs are not the same
    # replay; what must hold is that translation programs contribute a
    # visible share of the dftl WAF at all.
    if dftl["trans_pages_written"] > 0 and dftl["trans_share"] <= 0.0:
        failures.append(
            "translation pages were written but their WAF share is zero "
            "-- translation writes are not being priced into WAF"
        )
    return failures


def check_reliability(current: dict, max_reliability_overhead: float) -> list:
    """Gate a reliability payload on its quiescent-overhead ratio."""
    rel = current["results"].get("reliability_overhead")
    if rel is None:
        return [
            "reliability payload carries no reliability_overhead results "
            "(re-run benchmarks/bench_reliability.py)"
        ]
    armed = rel["armed"]
    print(
        f"[bench_gate] reliability overhead: off "
        f"{rel['off']['events_per_sec']} ev/s vs armed "
        f"{armed['events_per_sec']} ev/s (slowdown {rel['slowdown']}x); "
        f"{armed['ecc_fast_reads']} fast reads, "
        f"{armed['scrub_blocks_refreshed']} scrubs, "
        f"{armed['uecc_count']} UECCs, WAF delta {rel['waf_delta']:+}"
    )
    failures = []
    if rel["slowdown"] > max_reliability_overhead:
        failures.append(
            f"reliability_overhead slowdown {rel['slowdown']}x exceeds the "
            f"{max_reliability_overhead}x ceiling (quiescent subsystem must "
            "cost <3% events/sec)"
        )
    # The bound only means anything if the armed run really was
    # quiescent: a run where the scrubber fired or data decayed is
    # measuring refresh work, not bookkeeping overhead.
    if armed["scrub_blocks_refreshed"] != 0:
        failures.append(
            f"armed run refreshed {armed['scrub_blocks_refreshed']} blocks "
            "-- not a no-data-at-risk measurement (wrong profile or scale?)"
        )
    if armed["uecc_count"] != 0:
        failures.append(
            f"armed run saw {armed['uecc_count']} UECCs -- the mlc-20nm "
            "profile must stay below the ECC cliff over a benchmark run"
        )
    if armed["ecc_fast_reads"] <= 0:
        failures.append(
            "armed run counted no fast-path reads -- the ladder is not "
            "actually installed on the read path"
        )
    return failures


def check(current: dict, baseline: dict | None, min_speedup: float,
          tolerance: float) -> list:
    failures = []
    results = current["results"]

    speedup = results["events_per_sec"]["speedup"]
    if speedup < min_speedup:
        failures.append(
            f"events_per_sec speedup {speedup}x is below the {min_speedup}x floor"
        )

    if baseline is not None:
        same_mode = baseline.get("mode") == current.get("mode")
        for metric in RATIO_METRICS:
            now = results[metric]["speedup"]
            then = baseline["results"][metric]["speedup"]
            if same_mode:
                floor = then * (1.0 - MAX_SAME_MODE_REGRESSION)
                rule = f">{MAX_SAME_MODE_REGRESSION:.0%} same-mode regression"
            else:
                floor = then / tolerance
                rule = f"cross-mode tolerance {tolerance}x"
            if now < floor:
                failures.append(
                    f"{metric} speedup regressed: {now}x vs baseline {then}x "
                    f"(floor {floor:.2f}x, {rule})"
                )

    jobs = results["sweep_jobs"]
    cpus = jobs.get("cpu_count") or current.get("cpu_count") or 1
    if cpus >= 2:
        if jobs["speedup"] < MIN_JOBS_SPEEDUP:
            failures.append(
                f"sweep --jobs 2 speedup {jobs['speedup']}x is below "
                f"{MIN_JOBS_SPEEDUP}x on a {cpus}-CPU host"
            )
    else:
        print("[bench_gate] single-CPU host: skipping --jobs scaling check")

    return failures


def main(argv=None) -> int:
    repo_root = Path(__file__).resolve().parents[1]
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, required=True, metavar="JSON",
        help="results of the run under test",
    )
    parser.add_argument(
        "--baseline", type=Path, default=repo_root / "BENCH_hotpaths.json",
        metavar="JSON",
        help="committed baseline or trajectory (default: repo BENCH_hotpaths.json)",
    )
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--tolerance", type=float, default=2.0)
    parser.add_argument(
        "--min-recovery-speedup", type=float, default=10.0,
        help="floor for a recovery payload's checkpointed-vs-full-scan "
        "simulated-time ratio (default: 10x)",
    )
    parser.add_argument(
        "--min-warmstart-speedup", type=float, default=5.0,
        help="floor for a warmstart payload's analytic-vs-simulated "
        "preconditioning wall-time ratio (default: 5x)",
    )
    parser.add_argument(
        "--max-cmt-slowdown", type=float, default=5.0,
        help="ceiling for a cmt payload's dram/dftl events-per-sec "
        "ratio (default: 5x)",
    )
    parser.add_argument(
        "--max-trans-share", type=float, default=0.5,
        help="ceiling for the translation-page share of all programs in "
        "a cmt payload's dftl run (default: 0.5)",
    )
    parser.add_argument(
        "--max-reliability-overhead", type=float, default=1.03,
        help="ceiling for a reliability payload's off/armed events-per-sec "
        "ratio when no data is at risk (default: 1.03, i.e. <3%%)",
    )
    args = parser.parse_args(argv)

    current = _load_current(args.current)
    benchmark = str(current.get("benchmark", ""))
    if (
        benchmark.startswith("recovery")
        or benchmark.startswith("warmstart")
        or benchmark.startswith("cmt")
        or benchmark.startswith("reliability")
    ):
        if benchmark.startswith("recovery"):
            failures = check_recovery(current, args.min_recovery_speedup)
        elif benchmark.startswith("warmstart"):
            failures = check_warmstart(current, args.min_warmstart_speedup)
        elif benchmark.startswith("reliability"):
            failures = check_reliability(current, args.max_reliability_overhead)
        else:
            failures = check_cmt(
                current, args.max_cmt_slowdown, args.max_trans_share
            )
        if failures:
            for failure in failures:
                print(f"[bench_gate] FAIL: {failure}")
            return 1
        print("[bench_gate] OK")
        return 0
    baseline = (
        _load_baseline(
            args.baseline, current.get("mode"), current.get("mapping", "dram")
        )
        if args.baseline.exists() else None
    )
    if baseline is None:
        print(f"[bench_gate] no baseline at {args.baseline}; ratio-floor checks only")

    failures = check(current, baseline, args.min_speedup, args.tolerance)
    if failures:
        for failure in failures:
            print(f"[bench_gate] FAIL: {failure}")
        return 1
    print("[bench_gate] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
