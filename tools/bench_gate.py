"""Regression gate for ``benchmarks/bench_hotpaths.py`` results.

Benchmark numbers are machine-dependent, so the gate judges *ratios*
(indexed vs scan on the same run), which transfer across hosts:

1. The end-to-end ``events_per_sec`` speedup must clear ``--min-speedup``
   (default 1.5x -- the CI floor; the committed full-mode baseline
   documents >= 2x).
2. Against ``--baseline`` (the committed ``BENCH_hotpaths.json``), no
   metric's speedup may shrink by more than ``--tolerance`` (default 2x:
   CI compares a quick-mode run against the full-mode baseline, so the
   tolerance absorbs the scale difference; the absolute 1.5x floor in
   (1) is the hard bar).
3. The ``--jobs 2`` sweep must beat ``--jobs 1`` when the current host
   actually has >= 2 CPUs; on single-core runners the check is skipped
   (and says so).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick --output /tmp/bench.json
    python tools/bench_gate.py --current /tmp/bench.json --baseline BENCH_hotpaths.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metrics whose indexed-vs-scan speedup is compared against the baseline.
RATIO_METRICS = ("events_per_sec", "victim_selection_us", "flusher_tick_us")

#: Minimum jobs1/jobs2 wall-clock ratio demanded on multi-core hosts.
MIN_JOBS_SPEEDUP = 1.2


def _load(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if payload.get("schema") != "bench-hotpaths/v1":
        raise SystemExit(f"{path}: unsupported schema {payload.get('schema')!r}")
    return payload


def check(current: dict, baseline: dict | None, min_speedup: float,
          tolerance: float) -> list:
    failures = []
    results = current["results"]

    speedup = results["events_per_sec"]["speedup"]
    if speedup < min_speedup:
        failures.append(
            f"events_per_sec speedup {speedup}x is below the {min_speedup}x floor"
        )

    if baseline is not None:
        for metric in RATIO_METRICS:
            now = results[metric]["speedup"]
            then = baseline["results"][metric]["speedup"]
            floor = then / tolerance
            if now < floor:
                failures.append(
                    f"{metric} speedup regressed: {now}x vs baseline {then}x "
                    f"(floor {floor:.2f}x at tolerance {tolerance}x)"
                )

    jobs = results["sweep_jobs"]
    cpus = jobs.get("cpu_count") or current.get("cpu_count") or 1
    if cpus >= 2:
        if jobs["speedup"] < MIN_JOBS_SPEEDUP:
            failures.append(
                f"sweep --jobs 2 speedup {jobs['speedup']}x is below "
                f"{MIN_JOBS_SPEEDUP}x on a {cpus}-CPU host"
            )
    else:
        print("[bench_gate] single-CPU host: skipping --jobs scaling check")

    return failures


def main(argv=None) -> int:
    repo_root = Path(__file__).resolve().parents[1]
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, required=True, metavar="JSON",
        help="results of the run under test",
    )
    parser.add_argument(
        "--baseline", type=Path, default=repo_root / "BENCH_hotpaths.json",
        metavar="JSON", help="committed baseline (default: repo BENCH_hotpaths.json)",
    )
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--tolerance", type=float, default=2.0)
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline) if args.baseline.exists() else None
    if baseline is None:
        print(f"[bench_gate] no baseline at {args.baseline}; ratio-floor checks only")

    failures = check(current, baseline, args.min_speedup, args.tolerance)
    if failures:
        for failure in failures:
            print(f"[bench_gate] FAIL: {failure}")
        return 1
    print("[bench_gate] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
