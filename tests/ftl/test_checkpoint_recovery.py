"""Tests for checkpoint-bounded recovery and the durable unmap journal.

The other recovery suites cover the full OOB scan; here the device runs
with periodic mapping checkpoints and journaled TRIMs, and recovery must
(a) reconstruct the same state from the checkpoint + log tail that the
full scan reaches, for a fraction of the read cost, (b) never resurrect
a TRIMmed page whose tombstone was durable, and (c) survive power cuts
aimed at the metadata itself -- torn checkpoints, torn journal records,
and cuts during a previous recovery's own checkpoint write.
"""

import dataclasses

import numpy as np
import pytest

from repro.faults.powerloss import cut_during_recovery
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.recovery import recover_ftl
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming
from repro.ssd.config import SsdConfig

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=8, blocks_per_plane=24)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_ftl(checkpoint_interval=32, journal_unmaps=True):
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    ftl = PageMappedFtl(
        NandArray(GEOMETRY, TIMING),
        space,
        checkpoint_interval_pages=checkpoint_interval,
        journal_unmaps=journal_unmaps,
    )
    return ftl, space


def churn(ftl, space, writes=260, seed=4, trim_every=0):
    """Skewed overwrites (forces GC and checkpoints); optional TRIMs."""
    rng = np.random.default_rng(seed)
    hot = max(1, space.user_pages // 3)
    for op in range(writes):
        lpn = int(rng.integers(0, hot if rng.random() < 0.7 else space.user_pages))
        ftl.host_write_page(lpn)
        if trim_every and op % trim_every == trim_every - 1:
            ftl.trim([int(rng.integers(0, space.user_pages))])
    return rng


def crash(ftl):
    """Power-cut image: durable state only, frontier pages torn."""
    durable = ftl.nand.capture_durable_state()
    crashed = NandArray.from_durable(GEOMETRY, durable, timing=TIMING)
    for block in (ftl.active_user_block, ftl.active_gc_block):
        if block is not None:
            crashed.tear_frontier_page(block)
    return crashed


def recover(image, space, **kwargs):
    nand = NandArray.from_durable(
        GEOMETRY, image.capture_durable_state(), timing=TIMING
    )
    return recover_ftl(nand, space, **kwargs)


# ----------------------------------------------------------------------
# Checkpointed recovery vs the full scan
# ----------------------------------------------------------------------
def test_tail_scan_equals_full_scan_for_less_reading():
    # No TRIMs here: stripping the metadata region also strips the unmap
    # journal, so a trimmed run's full scan would (correctly) resurrect
    # -- the TRIM suites below cover that.  This test isolates the
    # checkpoint's job: same mapping, far cheaper power-on.
    ftl, space = make_ftl()
    churn(ftl, space)
    image = crash(ftl)

    tail_ftl, tail = recover(image, space)
    assert not tail.full_scan
    assert tail.checkpoint_generation == ftl._ckpt_generation
    assert tail.meta_pages_read > 0

    stripped = dataclasses.replace(image.capture_durable_state(), meta=())
    bare = NandArray.from_durable(GEOMETRY, stripped, timing=TIMING)
    full_ftl, full = recover_ftl(bare, space)
    assert full.full_scan

    assert np.array_equal(
        tail_ftl.page_map.l2p_snapshot(), full_ftl.page_map.l2p_snapshot()
    )
    assert tail_ftl._write_seq == full_ftl._write_seq == ftl._write_seq
    # ...and the checkpoint bounds the sweep: far fewer OOB reads, and a
    # strictly cheaper simulated power-on.
    assert tail.pages_scanned < full.pages_scanned
    assert tail.duration_ns < full.duration_ns
    tail_ftl.invariant_check()


def test_recovered_ftl_matches_live_reference():
    ftl, space = make_ftl()
    churn(ftl, space, trim_every=7)
    recovered, report = recover(crash(ftl), space)
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    assert np.array_equal(recovered.page_map.valid_counts(), ftl.page_map.valid_counts())
    assert np.array_equal(recovered.nand.erase_counts, ftl.nand.erase_counts)
    assert recovered._ckpt_generation == ftl._ckpt_generation


def test_recovery_without_checkpoints_still_replays_tombstones():
    ftl, space = make_ftl(checkpoint_interval=None)
    churn(ftl, space, writes=150)
    victim = 2
    ftl.host_write_page(victim)
    ftl.trim([victim])
    recovered, report = recover(crash(ftl), space)
    assert report.full_scan
    assert report.tombstones_replayed >= 1
    assert recovered.page_map.lookup(victim) is None


# ----------------------------------------------------------------------
# TRIM durability
# ----------------------------------------------------------------------
def test_trim_survives_power_loss():
    ftl, space = make_ftl()
    churn(ftl, space)
    victims = [0, 5, 11]
    for lpn in victims:
        ftl.host_write_page(lpn)
    assert ftl.trim(victims) > 0  # journaling is a real program, with latency
    recovered, report = recover(crash(ftl), space)
    for lpn in victims:
        assert recovered.page_map.lookup(lpn) is None
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )


def test_trim_then_rewrite_keeps_the_newer_copy():
    ftl, space = make_ftl()
    churn(ftl, space)
    ftl.trim([3])
    ftl.host_write_page(3)  # re-written after the discard: stamp > tombstone
    recovered, _ = recover(crash(ftl), space)
    assert recovered.page_map.lookup(3) == ftl.page_map.lookup(3) is not None


def test_unjournaled_trim_resurrects_after_crash():
    # The documented pre-PR-6 behaviour, kept reachable for A/B runs:
    # with the journal off, a crash undoes the discard.
    ftl, space = make_ftl(journal_unmaps=False)
    churn(ftl, space)
    ftl.host_write_page(7)
    assert ftl.trim([7]) == 0  # no journal record, no latency
    assert ftl.page_map.lookup(7) is None
    recovered, _ = recover(crash(ftl), space)
    assert recovered.page_map.lookup(7) is not None  # resurrected


# ----------------------------------------------------------------------
# Torn metadata: fallback chain and re-entrant recovery
# ----------------------------------------------------------------------
def test_torn_checkpoint_falls_back_to_previous_generation():
    ftl, space = make_ftl()
    churn(ftl, space)
    ftl.write_checkpoint()
    image = crash(ftl)
    image.meta.tear_last()
    recovered, report = recover(image, space)
    assert report.torn_meta_records == 1
    assert report.checkpoint_fallbacks == 1
    assert not report.full_scan
    assert report.checkpoint_generation < ftl._ckpt_generation
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    # The next generation supersedes every torn one.
    assert recovered._ckpt_generation == ftl._ckpt_generation
    recovered.write_checkpoint()
    assert recovered._ckpt_generation == ftl._ckpt_generation + 1


def test_all_checkpoints_torn_falls_back_to_full_scan():
    ftl, space = make_ftl(checkpoint_interval=None)
    churn(ftl, space, writes=120)
    ftl.write_checkpoint()
    image = crash(ftl)
    image.meta.tear_last()
    recovered, report = recover(image, space)
    assert report.full_scan and report.checkpoint_fallbacks == 1
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )


def test_torn_newest_tombstone_is_an_undurable_trim():
    # A TRIM whose journal record tore was never acknowledged as durable
    # -- recovery keeping the page mapped is correct, and the rest of
    # the image must still recover exactly.
    ftl, space = make_ftl()
    churn(ftl, space)
    ftl.host_write_page(9)
    expected = ftl.page_map.l2p_snapshot().copy()  # before the doomed TRIM
    ftl.trim([9])
    image = crash(ftl)
    assert image.meta.records[-1].kind == "unmap"
    image.meta.tear_last(keep_pages=0)
    recovered, report = recover(image, space)
    assert report.torn_meta_records == 1
    assert recovered.page_map.lookup(9) is not None
    assert np.array_equal(recovered.page_map.l2p_snapshot(), expected)


def test_post_checkpoint_recovery_is_reentrant():
    # Crash -> recover (writing the post-recovery checkpoint) -> crash
    # again mid-checkpoint-program -> recover again.  The second power-on
    # must tear past the half-written checkpoint and still reach the
    # same state.
    config = SsdConfig(
        geometry=GEOMETRY,
        timing=TIMING,
        op_ratio=0.25,
        checkpoint_interval_pages=32,
    )
    ftl = config.build_ftl(seed=1)
    space = ftl.space
    churn(ftl, space, trim_every=8)
    first_durable = crash(ftl).capture_durable_state()

    second_durable, first_report = cut_during_recovery(first_durable, config)
    assert first_report.post_checkpoint_ns > 0
    assert second_durable.meta[-1].torn

    final, report = config.recover_from(second_durable)
    assert report.torn_meta_records >= 1
    assert report.checkpoint_fallbacks >= 1
    assert np.array_equal(
        final.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    final.invariant_check()


def test_post_checkpoint_cost_is_separate_from_power_on_ready():
    ftl, space = make_ftl()
    churn(ftl, space)
    image = crash(ftl)
    plain_ftl, plain = recover(image, space)
    ckpt_ftl, ckpt = recover(image, space, post_checkpoint=True)
    assert plain.post_checkpoint_ns == 0
    assert ckpt.post_checkpoint_ns > 0
    # Same host-ready latency either way: the checkpoint is written
    # after the drive comes up, not on the critical path.
    assert ckpt.duration_ns == plain.duration_ns
    assert ckpt_ftl._ckpt_generation == plain_ftl._ckpt_generation + 1


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_checkpoint_and_journal_stats():
    ftl, space = make_ftl(checkpoint_interval=16)
    churn(ftl, space, writes=100, trim_every=10)
    assert ftl.stats.checkpoints_written >= 3
    assert ftl.stats.tombstones_journaled == ftl.stats.pages_trimmed > 0
    assert ftl.stats.meta_pages_written >= ftl.stats.checkpoints_written
    # Compaction keeps the on-NAND region bounded: far fewer pages held
    # than were ever written.
    assert ftl.nand.meta.pages_held() < ftl.nand.meta.pages_written


def test_interval_must_be_positive():
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    with pytest.raises(ValueError):
        PageMappedFtl(
            NandArray(GEOMETRY, TIMING), space, checkpoint_interval_pages=0
        )
