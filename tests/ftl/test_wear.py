"""Tests for wear-aware allocation and static wear levelling."""

import numpy as np
import pytest

from repro.ftl.wear import StaticWearLeveler, WearAwareAllocator
from repro.nand.endurance import EnduranceModel


def test_allocate_least_worn_first():
    endurance = EnduranceModel(4, pe_cycle_limit=None)
    endurance.record_erase(0)
    endurance.record_erase(0)
    endurance.record_erase(1)
    allocator = WearAwareAllocator(endurance, initial_free=[0, 1, 2])
    assert allocator.allocate() == 2  # 0 erases
    assert allocator.allocate() == 1  # 1 erase
    assert allocator.allocate() == 0  # 2 erases
    assert allocator.allocate() is None


def test_tie_breaks_by_block_number():
    endurance = EnduranceModel(4, pe_cycle_limit=None)
    allocator = WearAwareAllocator(endurance, initial_free=[3, 1, 2])
    assert allocator.allocate() == 1


def test_release_and_membership():
    endurance = EnduranceModel(4, pe_cycle_limit=None)
    allocator = WearAwareAllocator(endurance)
    assert len(allocator) == 0
    allocator.release(2)
    assert 2 in allocator
    assert len(allocator) == 1
    with pytest.raises(ValueError):
        allocator.release(2)  # double release


def test_reuse_after_allocate():
    endurance = EnduranceModel(2, pe_cycle_limit=None)
    allocator = WearAwareAllocator(endurance, initial_free=[0, 1])
    block = allocator.allocate()
    endurance.record_erase(block)
    allocator.release(block)
    assert len(allocator) == 2
    # Block 1 (0 erases) now beats the re-released block (1 erase).
    assert allocator.allocate() == 1


def test_leveler_threshold():
    endurance = EnduranceModel(4, pe_cycle_limit=None)
    leveler = StaticWearLeveler(endurance, threshold=2)
    blocks = np.array([0, 1])
    assert not leveler.needs_levelling(blocks)
    for _ in range(3):
        endurance.record_erase(0)
    assert leveler.needs_levelling(blocks)


def test_leveler_picks_coldest():
    endurance = EnduranceModel(4, pe_cycle_limit=None)
    for _ in range(5):
        endurance.record_erase(0)
    endurance.record_erase(1)
    leveler = StaticWearLeveler(endurance, threshold=1)
    assert leveler.pick_cold_block(np.array([0, 1, 2])) == 2
    assert leveler.invocations == 1


def test_leveler_empty_input():
    endurance = EnduranceModel(2, pe_cycle_limit=None)
    leveler = StaticWearLeveler(endurance)
    assert not leveler.needs_levelling(np.array([], dtype=int))
    assert leveler.pick_cold_block(np.array([], dtype=int)) is None


def test_leveler_invalid_threshold():
    endurance = EnduranceModel(2, pe_cycle_limit=None)
    with pytest.raises(ValueError):
        StaticWearLeveler(endurance, threshold=0)
