"""Deeper FTL tests: FGC penalty, wear levelling, forced victims,
out-of-space behaviour and free-accounting arithmetic."""

import pytest

from repro.ftl.ftl import OutOfSpaceError, PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.ftl.wear import StaticWearLeveler
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_ftl(fgc_penalty=1.0, wear_leveler=False, threshold=4):
    nand = NandArray(GEOMETRY, TIMING)
    leveler = StaticWearLeveler(nand.endurance, threshold) if wear_leveler else None
    return PageMappedFtl(
        nand,
        SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25),
        fgc_penalty=fgc_penalty,
        wear_leveler=leveler,
    )


def fill_with_garbage(ftl, overwrites=3):
    import random

    rng = random.Random(5)
    user = ftl.space.user_pages
    for _ in range(GEOMETRY.total_pages * overwrites):
        ftl.host_write_page(rng.randrange(user // 2))


def test_fgc_penalty_multiplies_stall():
    results = {}
    for penalty in (1.0, 4.0):
        ftl = make_ftl(fgc_penalty=penalty)
        fill_with_garbage(ftl)
        results[penalty] = ftl.stats.fgc_time_ns
    assert results[4.0] > 2.5 * results[1.0]


def test_fgc_penalty_validation():
    with pytest.raises(ValueError):
        make_ftl(fgc_penalty=0.5)


def test_forced_victim_collection():
    ftl = make_ftl()
    fill_with_garbage(ftl, overwrites=2)
    candidates = ftl.gc_candidates()
    assert len(candidates) > 0
    victim = int(candidates[0])
    latency = ftl.collect_one_block(background=True, forced_victim=victim)
    assert latency > 0
    assert victim in ftl.allocator  # back in the free pool
    ftl.invariant_check()


def test_wear_level_hook_runs_after_enough_erases():
    ftl = make_ftl(wear_leveler=True, threshold=1)
    fill_with_garbage(ftl, overwrites=4)
    spent = ftl.maybe_wear_level(check_interval_erases=1)
    # Either the spread warranted a migration, or nothing to do -- but
    # the call must never corrupt state.
    assert spent >= 0
    ftl.invariant_check()


def test_wear_level_noop_without_leveler():
    ftl = make_ftl(wear_leveler=False)
    fill_with_garbage(ftl)
    assert ftl.maybe_wear_level(check_interval_erases=0) == 0


def test_out_of_space_error_informative():
    ftl = make_ftl()
    # Fill every logical page: all valid, no garbage anywhere.
    try:
        for lpn in range(ftl.space.user_pages):
            ftl.host_write_page(lpn)
    except OutOfSpaceError:
        return  # acceptable: died during fill
    with pytest.raises(OutOfSpaceError):
        while True:
            ftl.collect_one_block(background=True)


def test_all_valid_corner_is_not_out_of_space():
    # Regression (found by the durable-horizon hypothesis test): at
    # ~100% utilization a tiny device can momentarily pack every closed
    # block full of live pages.  Foreground GC then has no victim, but
    # the device is NOT out of space while frontier blocks remain -- the
    # very write being stalled invalidates its own stale copy.  Filling
    # the whole logical space and overwriting it repeatedly must never
    # raise.
    ftl = make_ftl()
    for lpn in range(ftl.space.user_pages):
        ftl.host_write_page(lpn)
    for _ in range(3):
        for lpn in range(ftl.space.user_pages):
            ftl.host_write_page(lpn)
    ftl.invariant_check()


def test_free_pages_arithmetic():
    ftl = make_ftl()
    ppb = GEOMETRY.pages_per_block
    expected = ftl.free_pool_blocks() * ppb + 2 * ppb  # two fresh frontiers
    assert ftl.free_pages() == expected
    ftl.host_write_page(0)
    assert ftl.free_pages() == expected - 1
    assert ftl.free_bytes() == ftl.free_pages() * GEOMETRY.page_size


def test_reclaimable_garbage_counts_invalid_in_closed_blocks():
    ftl = make_ftl()
    assert ftl.reclaimable_garbage_pages() == 0
    # Fill two blocks with the same LPN repeatedly: first block becomes
    # fully invalid once closed.
    for _ in range(GEOMETRY.pages_per_block + 1):
        ftl.host_write_page(0)
    assert ftl.reclaimable_garbage_pages() == GEOMETRY.pages_per_block


def test_gc_preserves_data_addressability():
    ftl = make_ftl()
    fill_with_garbage(ftl, overwrites=3)
    # Collect several blocks; every mapped LPN must still resolve.
    for _ in range(4):
        if ftl.has_victim():
            ftl.collect_one_block(background=True)
    for lpn in range(ftl.space.user_pages):
        ppn = ftl.page_map.lookup(lpn)
        if ppn is not None:
            assert ftl.page_map.lpn_of_ppn(ppn) == lpn
