"""Tests for the refresh scrubber and the FTL's ECC ladder read path.

Exercises :class:`~repro.ftl.scrub.RefreshScrubber` victim nomination
(scan cursor, at-risk queue, re-validation), the FTL's
:meth:`maybe_scrub` relocation accounting, and the ladder counters the
read path maintains (fast/retry/soft/UECC plus the retry-level
histogram).  All retention math runs at ``retention_accel=1e9`` so one
simulated nanosecond is one modelled second -- thresholds are crossed by
moving a test clock, not by running long simulations.
"""

import dataclasses

import pytest

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.scrub import RefreshScrubber
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.reliability import (
    RELIABILITY_PROFILES,
    BitErrorModel,
    ReadDisturbTracker,
    ReliabilityProfile,
)
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)

# One simulated ns == one modelled second; pe=0 rber = 1e-4 * (1 + R/5000).
PROFILE = ReliabilityProfile(
    name="test-accel",
    bit_error_model=BitErrorModel(base_rber=1e-4, retention_scale_s=5_000.0),
    retention_threshold_s=100_000.0,
    disturb_threshold=1_000,
    scrub_scan_blocks=GEOMETRY.total_blocks,
    retention_accel=1e9,
)


class _Clock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now


def make_rel_ftl(profile=PROFILE, op_ratio=0.25, watermark=2):
    clock = _Clock()
    tracker = ReadDisturbTracker(
        GEOMETRY.total_blocks, scrub_threshold=profile.disturb_threshold
    )
    nand = NandArray(GEOMETRY, TIMING, read_disturb=tracker)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=op_ratio)
    ftl = PageMappedFtl(
        nand,
        space,
        fgc_watermark=watermark,
        clock=clock,
        reliability=profile,
    )
    return ftl, clock


def close_first_blocks(ftl, lpns):
    """Write distinct LPNs so at least one block fills and closes."""
    for lpn in lpns:
        ftl.host_write_page(lpn)


# ----------------------------------------------------------------------
# RefreshScrubber nomination
# ----------------------------------------------------------------------
def test_open_blocks_are_never_at_risk():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    ftl.host_write_page(0)  # active frontier block: open, not closed
    clock.now = 10**9
    for block in range(GEOMETRY.total_blocks):
        if not ftl._closed[block]:
            assert not scrubber.block_at_risk(ftl, block, clock.now)


def test_aged_closed_block_is_at_risk():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    close_first_blocks(ftl, range(GEOMETRY.pages_per_block + 1))
    closed = [b for b in range(GEOMETRY.total_blocks) if ftl._closed[b]]
    assert closed
    block = closed[0]
    # Young: below the 100k-second threshold.
    clock.now = 50_000
    assert not scrubber.block_at_risk(ftl, block, clock.now)
    clock.now = 150_000
    assert scrubber.block_at_risk(ftl, block, clock.now)


def test_disturb_threshold_marks_block_at_risk():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    close_first_blocks(ftl, range(GEOMETRY.pages_per_block + 1))
    block = next(b for b in range(GEOMETRY.total_blocks) if ftl._closed[b])
    assert not scrubber.block_at_risk(ftl, block, clock.now)
    ftl.nand.read_disturb.read_counts[block] = PROFILE.disturb_threshold
    assert scrubber.block_at_risk(ftl, block, clock.now)


def test_next_victim_scans_and_queues_extras():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    # Close two blocks, then age both past the threshold.
    close_first_blocks(ftl, range(2 * GEOMETRY.pages_per_block + 1))
    closed = [b for b in range(GEOMETRY.total_blocks) if ftl._closed[b]]
    assert len(closed) >= 2
    clock.now = 150_000
    first = scrubber.next_victim(ftl, clock.now)
    assert first in closed
    # The sweep found the rest in the same pass and queued them.
    assert scrubber.pending() >= 1
    second = scrubber.next_victim(ftl, clock.now)
    assert second in closed and second != first


def test_queue_revalidates_stale_entries():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    close_first_blocks(ftl, range(2 * GEOMETRY.pages_per_block + 1))
    clock.now = 150_000
    scrubber.next_victim(ftl, clock.now)
    assert scrubber.pending() >= 1
    # Re-base every closed block's clock: the queued entries go stale.
    ftl.nand.last_program_ns[:] = clock.now
    assert scrubber.next_victim(ftl, clock.now) is None
    assert scrubber.pending() == 0


def test_no_victim_when_nothing_at_risk():
    ftl, clock = make_rel_ftl()
    scrubber = RefreshScrubber(PROFILE)
    close_first_blocks(ftl, range(GEOMETRY.pages_per_block + 1))
    clock.now = 10_000  # young data
    assert scrubber.next_victim(ftl, clock.now) is None


# ----------------------------------------------------------------------
# FTL maybe_scrub relocation
# ----------------------------------------------------------------------
def test_maybe_scrub_refreshes_aged_block_and_charges_stats():
    ftl, clock = make_rel_ftl()
    lpns = list(range(2 * GEOMETRY.pages_per_block))
    close_first_blocks(ftl, lpns)
    clock.now = 150_000

    latency = ftl.maybe_scrub()
    assert latency > 0
    assert ftl.stats.scrub_blocks_refreshed == 1
    assert ftl.stats.scrub_pages_migrated > 0
    # Refresh migrations are GC work: charged into the same counters.
    assert ftl.stats.gc_pages_migrated >= ftl.stats.scrub_pages_migrated
    # The data survived the relocation.
    for lpn in lpns:
        assert ftl.host_read_page(lpn) > 0
    ftl.invariant_check()


def test_maybe_scrub_noop_when_nothing_at_risk():
    ftl, clock = make_rel_ftl()
    close_first_blocks(ftl, range(GEOMETRY.pages_per_block + 1))
    clock.now = 10_000
    assert ftl.maybe_scrub() == 0
    assert ftl.stats.scrub_blocks_refreshed == 0


def test_maybe_scrub_noop_without_scrubber():
    no_scrub = dataclasses.replace(PROFILE, scrub=False)
    ftl, clock = make_rel_ftl(profile=no_scrub)
    close_first_blocks(ftl, range(GEOMETRY.pages_per_block + 1))
    clock.now = 150_000
    assert ftl.maybe_scrub() == 0


def test_refresh_rebases_clock_and_disturb_counter():
    ftl, clock = make_rel_ftl()
    close_first_blocks(ftl, range(2 * GEOMETRY.pages_per_block))
    victim = next(b for b in range(GEOMETRY.total_blocks) if ftl._closed[b])
    ftl.nand.read_disturb.read_counts[victim] = PROFILE.disturb_threshold + 5
    clock.now = 150_000

    assert ftl.maybe_scrub() > 0
    # The victim was erased: clock re-based to now, counter reset.
    assert int(ftl.nand.last_program_ns[victim]) == clock.now
    assert int(ftl.nand.read_disturb.read_counts[victim]) == 0


def test_scrub_write_overhead_tracks_migrated_share():
    ftl, clock = make_rel_ftl()
    assert ftl.scrub_write_overhead() == 0.0  # no host writes yet
    close_first_blocks(ftl, range(2 * GEOMETRY.pages_per_block))
    assert ftl.scrub_write_overhead() == 0.0  # no scrub work yet
    clock.now = 150_000
    ftl.maybe_scrub()
    expected = ftl.stats.scrub_pages_migrated / ftl.stats.host_pages_written
    assert ftl.scrub_write_overhead() == pytest.approx(expected)
    assert ftl.scrub_write_overhead() > 0.0


# ----------------------------------------------------------------------
# Ladder counters on the host read path
# ----------------------------------------------------------------------
def test_fast_reads_counted_and_free():
    ftl, clock = make_rel_ftl()
    ftl.host_write_page(0)
    base = ftl.host_read_page(0)
    assert base == TIMING.read_ns + TIMING.transfer_ns_per_page
    assert ftl.stats.ecc_fast_reads == 1
    assert ftl.stats.ecc_retry_reads == 0
    assert ftl.ecc_retry_histogram == {}


def test_retry_read_pays_ladder_latency_and_fills_histogram():
    ftl, clock = make_rel_ftl()
    ftl.host_write_page(0)
    # rber(R=150_000) = 3.1e-3: past the fast and L1/L2 ceilings, inside
    # L3 (3.487e-3) -- a level-3 hard re-read.
    clock.now = 150_000
    latency = ftl.host_read_page(0)
    assert ftl.stats.ecc_retry_reads == 1
    assert ftl.stats.uecc_count == 0
    assert ftl.ecc_retry_histogram == {3: 1}
    expected_extra = sum(PROFILE.retry_latency_ns)
    assert latency == TIMING.read_ns + TIMING.transfer_ns_per_page + expected_extra


def test_soft_decode_counted():
    ftl, clock = make_rel_ftl()
    ftl.host_write_page(0)
    # rber(R=500_000) = 1.01e-2: only soft decode covers it.
    clock.now = 500_000
    ftl.host_read_page(0)
    assert ftl.stats.ecc_soft_decodes == 1
    assert ftl.stats.uecc_count == 0


def test_uecc_counts_and_read_still_returns():
    ftl, clock = make_rel_ftl()
    ftl.host_write_page(0)
    # rber(R=2_000_000) = 4.01e-2: beyond the whole ladder -- data lost.
    clock.now = 2_000_000
    latency = ftl.host_read_page(0)
    assert latency > 0  # the failed ladder walk is still paid for
    assert ftl.stats.uecc_count == 1
    assert ftl.stats.uncorrectable_reads >= 1


def test_accel_preset_is_quiescent_when_fresh():
    """mlc-20nm-accel only degrades with age: fresh reads stay fast."""
    ftl, clock = make_rel_ftl(profile=RELIABILITY_PROFILES["mlc-20nm-accel"])
    ftl.host_write_page(0)
    ftl.host_read_page(0)
    assert ftl.stats.ecc_fast_reads == 1
    assert ftl.stats.ecc_retry_reads == 0
    assert ftl.stats.uecc_count == 0
