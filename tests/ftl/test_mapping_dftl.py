"""Tests for the DFTL-class mapping store (repro.ftl.mapping.CachedPageMap):
GTD/translation-page bookkeeping, the LRU cached mapping table, the shared
validity plane over both page classes, and the SsdConfig seam that selects
the store per mapping mode."""

import random

import numpy as np
import pytest

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import TRANS_LPN_BASE, UNMAPPED, CachedPageMap, PageMap
from repro.nand.geometry import NandGeometry
from repro.ssd.config import SsdConfig

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=8, blocks_per_plane=16)


def make_map(user_pages=2048, cmt=2):
    return CachedPageMap(GEOMETRY, user_pages, cmt_capacity_pages=cmt)


# ----------------------------------------------------------------------
# Translation addressing and the GTD
# ----------------------------------------------------------------------
def test_translation_geometry_derives_from_page_size():
    m = make_map(user_pages=2048)
    assert m.entries_per_tpage == 4096 // 8 == 512
    assert m.trans_pages == 4  # ceil(2048 / 512)
    assert m.tvpn_of(0) == 0
    assert m.tvpn_of(511) == 0
    assert m.tvpn_of(512) == 1
    assert m.trans_ppn(0) is None


def test_cmt_capacity_must_be_positive():
    with pytest.raises(ValueError):
        make_map(cmt=0)


def test_remap_trans_invalidates_old_copy_and_fires_observer():
    m = make_map()
    seen = []
    m.set_valid_observer(lambda block, lpn, delta: seen.append((block, lpn, delta)))
    assert m.remap_trans(1, 10) is None
    assert m.gtd_mapped_count == 1
    assert m.trans_ppn(1) == 10
    # The encoded namespace LPN reaches the observer, so the valid-count
    # index sees translation blocks exactly like data blocks.
    assert seen == [(10 // 8, TRANS_LPN_BASE + 1, 1)]
    assert m.remap_trans(1, 20) == 10
    assert m.gtd_mapped_count == 1
    assert not m.is_valid(10) and m.is_valid(20)
    assert m.block_holds_trans(20 // 8)
    assert not m.block_holds_trans(10 // 8)
    m.invariant_check()


def test_remap_trans_rejects_out_of_range_tvpn():
    m = make_map()
    with pytest.raises(IndexError):
        m.remap_trans(m.trans_pages, 0)


# ----------------------------------------------------------------------
# CMT: LRU order, dirty propagation, flush
# ----------------------------------------------------------------------
def test_cmt_lru_eviction_order_and_dirty_flags():
    m = make_map(cmt=2)
    hit, evicted = m.cmt_touch(0, dirty=False)
    assert (hit, evicted) == (False, [])
    hit, evicted = m.cmt_touch(1, dirty=True)
    assert (hit, evicted) == (False, [])
    # Re-touching 0 promotes it, so 1 is now the LRU victim.
    hit, evicted = m.cmt_touch(0, dirty=False)
    assert (hit, evicted) == (True, [])
    hit, evicted = m.cmt_touch(2, dirty=False)
    assert hit is False
    assert evicted == [(1, True)]  # dirty flag travels with the eviction
    assert m.cmt_len == 2


def test_cmt_dirty_bit_is_sticky_until_flush():
    m = make_map(cmt=4)
    m.cmt_touch(3, dirty=True)
    m.cmt_touch(3, dirty=False)  # a clean re-reference must not wash it
    assert m.cmt_flush_all() == [3]
    assert m.cmt_flush_all() == []  # flushed entries are clean


# ----------------------------------------------------------------------
# Recovery install: load_mapping then load_gtd
# ----------------------------------------------------------------------
def test_load_gtd_round_trip_restores_shared_validity_plane():
    m = make_map(user_pages=1024)
    l2p = np.full(1024, UNMAPPED, dtype=np.int64)
    l2p[5] = 40
    l2p[600] = 41
    gtd = np.full(m.trans_pages, UNMAPPED, dtype=np.int64)
    gtd[0] = 80
    gtd[1] = 81
    m.load_mapping(l2p)
    m.load_gtd(gtd)
    assert m.mapped_count == 2
    assert m.gtd_mapped_count == 2
    assert np.array_equal(m.gtd_snapshot(), gtd)
    assert m.lpn_of_ppn(80) == TRANS_LPN_BASE + 0
    assert m.cmt_len == 0  # DRAM cache dies with the power cut
    m.invariant_check()


def test_load_gtd_rejects_collision_with_data_page():
    m = make_map(user_pages=1024)
    l2p = np.full(1024, UNMAPPED, dtype=np.int64)
    l2p[5] = 40
    gtd = np.full(m.trans_pages, UNMAPPED, dtype=np.int64)
    gtd[0] = 40  # same physical page as the mapped data LPN
    m.load_mapping(l2p)
    with pytest.raises(ValueError):
        m.load_gtd(gtd)


def test_invariant_check_catches_gtd_desync():
    m = make_map()
    m.remap_trans(0, 16)
    m.gtd_mapped_count = 2  # tamper
    with pytest.raises(AssertionError):
        m.invariant_check()


# ----------------------------------------------------------------------
# The SsdConfig seam
# ----------------------------------------------------------------------
def test_default_mapping_mode_builds_plain_page_map():
    ftl = SsdConfig.small(blocks=32).build_ftl()
    assert type(ftl.page_map) is PageMap
    assert ftl.mapping_mode == "dram"
    assert ftl.translation_write_overhead() == 0.0


def test_dftl_mode_builds_cached_map_with_budgeted_capacity():
    cfg = SsdConfig.small(
        blocks=32, mapping_mode="dftl", cmt_budget_bytes=2 * 4096
    )
    ftl = cfg.build_ftl()
    assert isinstance(ftl.page_map, CachedPageMap)
    assert ftl.page_map.cmt_capacity_pages == 2  # budget // page_size
    assert ftl._streams == 3  # user, GC and translation frontiers


def test_dftl_default_budget_is_one_64th_of_full_map():
    cfg = SsdConfig.small(blocks=32, mapping_mode="dftl")
    ftl = cfg.build_ftl()
    budget = ftl.space.user_pages * 8 // 64
    assert ftl.cmt_budget_bytes == budget
    assert ftl.page_map.cmt_capacity_pages == max(1, budget // 4096)


def test_config_rejects_unknown_mapping_mode():
    with pytest.raises(ValueError):
        SsdConfig.small(blocks=32, mapping_mode="hybrid")


# ----------------------------------------------------------------------
# FTL-level equivalence across the MappingStore seam
# ----------------------------------------------------------------------
def test_dram_and_dftl_agree_on_logical_state():
    """Same host writes -> same logical mapping, whatever the store.

    Physical placement differs (dftl interleaves translation programs),
    but the host-visible state -- which LPNs are mapped -- must match,
    and both images must hold their invariants."""
    # Span several translation pages (512 entries each) with a
    # one-entry CMT so misses and dirty evictions actually happen.
    writes = [(i * 7) % 1500 for i in range(4000)]
    ftls = {}
    for mode in ("dram", "dftl"):
        cfg = SsdConfig.small(
            blocks=64, pages_per_block=32, mapping_mode=mode,
            cmt_budget_bytes=4096,
        )
        ftl = cfg.build_ftl(seed=3)
        for lpn in writes:
            ftl.host_write_page(lpn)
        ftl.invariant_check()
        ftls[mode] = ftl
    dram, dftl = ftls["dram"], ftls["dftl"]
    assert dram.page_map.mapped_count == dftl.page_map.mapped_count
    assert np.array_equal(
        dram.page_map.l2p_snapshot() != UNMAPPED,
        dftl.page_map.l2p_snapshot() != UNMAPPED,
    )
    # The dftl run priced real translation traffic.
    assert dftl.stats.trans_pages_written > 0
    assert dftl.stats.cmt_hits + dftl.stats.cmt_misses > 0
    assert dftl.stats.waf() > dram.stats.waf()
    assert dram.stats.trans_pages_written == 0


def test_dftl_gc_migrates_translation_blocks():
    cfg = SsdConfig.small(
        blocks=64, pages_per_block=32, mapping_mode="dftl",
        cmt_budget_bytes=4096,
    )
    ftl = cfg.build_ftl(seed=5)
    user = ftl.space.user_pages
    # Random overwrites leave data blocks partially valid, so the greedy
    # victim index reaches mostly-stale translation blocks too.
    rng = random.Random(0)
    for _ in range(user * 3):
        ftl.host_write_page(rng.randrange(user * 9 // 10))
    ftl.invariant_check()
    assert ftl.stats.trans_pages_migrated > 0
    assert isinstance(ftl, PageMappedFtl)
