"""Tests for crash-consistent FTL recovery: the OOB scan, torn-page
discard, newest-copy-wins mapping and layout re-discovery."""

import numpy as np
import pytest

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.recovery import (
    RecoveryError,
    recover_ftl,
    rediscover_layout,
    scan_oob,
)
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_ftl(op_ratio=0.25, **kwargs):
    nand = NandArray(GEOMETRY, TIMING)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=op_ratio)
    return PageMappedFtl(nand, space, **kwargs)


def crashed_copy(ftl, tear=True):
    """The media image a power cut at this instant would leave behind."""
    nand = NandArray.from_durable(
        GEOMETRY, ftl.nand.capture_durable_state(), timing=TIMING
    )
    if tear:
        for block in (ftl.active_user_block, ftl.active_gc_block):
            if block is not None:
                nand.tear_frontier_page(block)
    return nand


# ----------------------------------------------------------------------
# scan_oob
# ----------------------------------------------------------------------
def test_scan_rebuilds_map_and_charges_one_read_per_programmed_page():
    ftl = make_ftl()
    for lpn in range(10):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl, tear=False)
    l2p, write_seq, report = scan_oob(nand, ftl.space.user_pages)
    assert np.array_equal(l2p, ftl.page_map.l2p_snapshot())
    assert write_seq == ftl._write_seq
    assert report.pages_scanned == 10
    assert report.duration_ns == 10 * TIMING.read_ns
    assert report.mapped_lpns == 10
    assert report.stale_pages == 0


def test_newest_copy_wins_over_stale_copies():
    ftl = make_ftl()
    for lpn in range(6):
        ftl.host_write_page(lpn)
    for _ in range(3):  # re-write LPN 0: two stale copies on the media
        ftl.host_write_page(0)
    nand = crashed_copy(ftl, tear=False)
    l2p, _, report = scan_oob(nand, ftl.space.user_pages)
    assert report.stale_pages >= 2
    assert np.array_equal(l2p, ftl.page_map.l2p_snapshot())


def test_torn_pages_are_discarded_not_mapped():
    ftl = make_ftl()
    for lpn in range(5):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl, tear=True)
    l2p, _, report = scan_oob(nand, ftl.space.user_pages)
    assert report.torn_pages >= 1
    assert report.torn_addresses
    assert np.array_equal(l2p, ftl.page_map.l2p_snapshot())


def test_corrupt_oob_stamp_is_rejected():
    ftl = make_ftl()
    ftl.host_write_page(0)
    nand = crashed_copy(ftl, tear=False)
    programmed = np.flatnonzero(nand.oob_seq != -1)
    nand.oob_lpn[programmed[0]] = ftl.space.user_pages + 7
    with pytest.raises(RecoveryError):
        scan_oob(nand, ftl.space.user_pages)


def test_scan_skips_bad_blocks():
    ftl = make_ftl()
    for lpn in range(4):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl, tear=False)
    victim_block = int(ftl.page_map.lookup(0)) // GEOMETRY.pages_per_block
    nand.mark_bad(victim_block)
    l2p, _, _ = scan_oob(nand, ftl.space.user_pages)
    in_bad = ftl.page_map.l2p_snapshot() // GEOMETRY.pages_per_block == victim_block
    assert (l2p[in_bad[: len(l2p)]] == UNMAPPED).all()


# ----------------------------------------------------------------------
# Layout re-discovery and full recovery
# ----------------------------------------------------------------------
def test_rediscover_layout_classifies_blocks():
    ftl = make_ftl()
    for lpn in range(GEOMETRY.pages_per_block + 1):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl, tear=False)
    nand.mark_bad(GEOMETRY.total_blocks - 1)
    free, open_blocks, closed, retired = rediscover_layout(nand)
    assert len(open_blocks) >= 1
    assert closed  # the filled frontier block
    assert retired == {GEOMETRY.total_blocks - 1}
    total = len(free) + len(open_blocks) + len(closed) + len(retired)
    assert total == GEOMETRY.total_blocks


def test_recover_ftl_restores_full_state_and_passes_invariants():
    ftl = make_ftl()
    for lpn in range(30):
        ftl.host_write_page(lpn)
    for lpn in range(0, 30, 2):
        ftl.host_write_page(lpn)
    while ftl.has_victim():
        ftl.collect_one_block(background=True)
    nand = crashed_copy(ftl)
    recovered, report = recover_ftl(nand, ftl.space)

    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    assert np.array_equal(
        recovered.page_map.valid_counts(), ftl.page_map.valid_counts()
    )
    assert recovered._write_seq == ftl._write_seq
    assert np.array_equal(recovered.nand.erase_counts, ftl.nand.erase_counts)
    assert not report.read_only
    assert report.mapped_lpns == ftl.page_map.mapped_count
    # Reads serve from the recovered mapping.
    assert recovered.host_read_page(0) > 0


def test_recovery_resumes_open_frontiers():
    ftl = make_ftl()
    for lpn in range(GEOMETRY.pages_per_block // 2):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl, tear=False)
    recovered, report = recover_ftl(nand, ftl.space)
    assert report.open_blocks >= 1
    assert recovered.active_user_block is not None
    # Writing continues mid-block, right after the last surviving page.
    recovered.host_write_page(recovered.space.user_pages - 1)
    recovered.invariant_check()


def test_recovery_rejects_more_than_two_open_blocks():
    nand = NandArray(GEOMETRY, TIMING)
    for block in range(3):
        nand.program_page(block, 0, lpn=block, seq=block)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    with pytest.raises(RecoveryError):
        recover_ftl(nand, space)


def test_recovery_carries_grown_bad_blocks_as_retired():
    ftl = make_ftl()
    for lpn in range(8):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl)
    spare = [
        b
        for b in range(GEOMETRY.total_blocks)
        if nand.block_state(b).name == "ERASED"
    ]
    nand.mark_bad(spare[0])
    recovered, report = recover_ftl(nand, ftl.space)
    assert spare[0] in recovered.retired_blocks
    assert report.retired_blocks == 1
    assert recovered.stats.blocks_retired == 1
    assert recovered.effective_op_pages() < ftl.effective_op_pages()


def test_write_seq_monotonic_across_recovery():
    ftl = make_ftl()
    for lpn in range(12):
        ftl.host_write_page(lpn)
    nand = crashed_copy(ftl)
    recovered, _ = recover_ftl(nand, ftl.space)
    seq_before = recovered._write_seq
    recovered.host_write_page(3)
    new_ppn = recovered.page_map.lookup(3)
    assert recovered.nand.oob_seq[new_ppn] == seq_before
    # A second crash-recover sees the new write as the newest copy.
    nand2 = NandArray.from_durable(
        GEOMETRY, recovered.nand.capture_durable_state(), timing=TIMING
    )
    l2p, write_seq, _ = scan_oob(nand2, ftl.space.user_pages)
    assert l2p[3] == new_ppn
    assert write_seq == seq_before + 1
