"""Tests for FTL statistics: WAF, snapshots, deltas."""

import pytest

from repro.ftl.stats import FtlStats


def test_waf_is_one_before_gc():
    stats = FtlStats()
    assert stats.waf() == 1.0
    stats.host_pages_written = 100
    assert stats.waf() == 1.0


def test_waf_with_migrations():
    stats = FtlStats(host_pages_written=100, gc_pages_migrated=50)
    assert stats.waf() == pytest.approx(1.5)
    assert stats.total_pages_programmed() == 150


def test_gc_blocks_total():
    stats = FtlStats(fgc_blocks_collected=3, bgc_blocks_collected=7)
    assert stats.gc_blocks_collected() == 10


def test_sip_filtered_fraction():
    stats = FtlStats()
    assert stats.sip_filtered_fraction() == 0.0
    stats.victim_selections = 20
    stats.victims_filtered_by_sip = 5
    assert stats.sip_filtered_fraction() == pytest.approx(0.25)


def test_snapshot_is_independent_copy():
    stats = FtlStats(host_pages_written=10)
    snap = stats.snapshot()
    stats.host_pages_written = 99
    assert snap.host_pages_written == 10


def test_delta_since():
    stats = FtlStats(host_pages_written=10, gc_pages_migrated=2)
    snap = stats.snapshot()
    stats.host_pages_written += 30
    stats.gc_pages_migrated += 6
    delta = stats.delta_since(snap)
    assert delta.host_pages_written == 30
    assert delta.gc_pages_migrated == 6
    assert delta.waf() == pytest.approx(1.2)


def test_str_smoke():
    assert "WAF" in str(FtlStats(host_pages_written=1))
