"""Property-based recovery tests (hypothesis).

The vectorized recovery scan (:func:`repro.ftl.recovery.scan_oob`) is
checked against an independent pure-Python oracle that reconstructs the
mapping straight from the durable OOB columns, page by page.  For random
workload seeds and random crash points the recovered FTL must agree with
the oracle on every page-level fact: mapped LPNs, per-block valid
counts and erase counters.

The durable-horizon property extends this to the checkpointed/journaled
metadata path: whatever prefix of the durable state survives the cut --
metadata log intact, its newest record (checkpoint *or* tombstone) torn
mid-program, or the whole region lost -- recovery must never install a
mapping entry stamped at or past the durable write-sequence horizon,
and must never resurrect an LPN whose newest durable event is an intact
tombstone.
"""

import dataclasses

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.recovery import recover_ftl
from repro.ftl.space import SpaceModel
from repro.nand.array import OOB_UNSTAMPED, NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)
PPB = GEOMETRY.pages_per_block


def oob_oracle(durable, user_pages):
    """Reference reconstruction: newest stamped copy wins, page by page.

    Deliberately written as the obvious O(pages) Python loop -- it shares
    no code (and no numpy idioms) with the production scan.
    """
    bad = np.frombuffer(durable.bad, dtype=np.uint8)
    l2p = [UNMAPPED] * user_pages
    best_seq = [OOB_UNSTAMPED] * user_pages
    for block in range(GEOMETRY.total_blocks):
        if bad[block]:
            continue
        for page in range(int(durable.program_ptr[block])):
            ppn = block * PPB + page
            seq = int(durable.oob_seq[ppn])
            if seq == OOB_UNSTAMPED:
                continue  # torn or status-failed: no trustworthy data
            lpn = int(durable.oob_lpn[ppn])
            if seq > best_seq[lpn]:
                best_seq[lpn] = seq
                l2p[lpn] = ppn
    return np.asarray(l2p, dtype=np.int64)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    total_writes=st.integers(min_value=1, max_value=400),
    crash_fraction=st.floats(min_value=0.05, max_value=1.0),
)
def test_recovered_state_equals_oob_oracle(seed, total_writes, crash_fraction):
    nand = NandArray(GEOMETRY, TIMING)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    ftl = PageMappedFtl(nand, space)
    rng = np.random.default_rng(seed)
    hot = max(1, space.user_pages // 3)  # skewed overwrites force GC

    # Run the workload up to a random crash point...
    crash_at = max(1, int(total_writes * crash_fraction))
    for op in range(crash_at):
        if rng.random() < 0.7:
            lpn = int(rng.integers(0, hot))
        else:
            lpn = int(rng.integers(0, space.user_pages))
        ftl.host_write_page(lpn)

    # ...cut power there: frontiers tear, DRAM is lost.
    durable = ftl.nand.capture_durable_state()
    crashed = NandArray.from_durable(GEOMETRY, durable, timing=TIMING)
    for block in (ftl.active_user_block, ftl.active_gc_block):
        if block is not None:
            crashed.tear_frontier_page(block)

    recovered, report = recover_ftl(crashed, space)
    oracle_l2p = oob_oracle(crashed.capture_durable_state(), space.user_pages)

    # Page-level state equals the oracle's reconstruction...
    assert np.array_equal(recovered.page_map.l2p_snapshot(), oracle_l2p)
    mapped = oracle_l2p[oracle_l2p != UNMAPPED]
    oracle_valid = np.bincount(mapped // PPB, minlength=GEOMETRY.total_blocks)
    assert np.array_equal(
        recovered.page_map.valid_counts(), oracle_valid.astype(np.int32)
    )
    assert report.mapped_lpns == int(len(mapped))
    assert np.array_equal(recovered.nand.erase_counts, ftl.nand.erase_counts)

    # ...and equals the never-crashed reference (torn pages were only
    # ever in-flight, never acknowledged, so no mapping is lost).
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    assert recovered._write_seq == ftl._write_seq
    recovered.invariant_check()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    total_ops=st.integers(min_value=5, max_value=300),
    interval=st.integers(min_value=4, max_value=64),
    trim_rate=st.floats(min_value=0.0, max_value=0.35),
    final_trim=st.booleans(),
    tear=st.sampled_from(["none", "half", "empty", "strip"]),
)
# Regression: a TRIM whose tombstone sat in the torn journal record,
# with the trimmed page's block GC-erased before the cut.  The
# checkpoint fallback used to resurrect the mapping into the erased
# (now free) block, failing invariant_check.
@example(
    seed=524287, total_ops=58, interval=26, trim_rate=0.125,
    final_trim=False, tear="half",
)
def test_recovery_never_exceeds_durable_horizon(
    seed, total_ops, interval, trim_rate, final_trim, tear
):
    """No surviving prefix of durable state can leak past the horizon.

    ``tear`` picks the prefix: the full metadata log, its newest record
    torn to half its pages / to nothing (covering torn checkpoints and
    torn tombstones, whichever was written last), or the metadata region
    stripped entirely (the full-scan fallback).
    """
    nand = NandArray(GEOMETRY, TIMING)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    ftl = PageMappedFtl(nand, space, checkpoint_interval_pages=interval)
    rng = np.random.default_rng(seed)
    hot = max(1, space.user_pages // 3)

    last_event = {}
    for _ in range(total_ops):
        lpn = int(rng.integers(0, hot if rng.random() < 0.7 else space.user_pages))
        if rng.random() < trim_rate:
            ftl.trim([lpn])
            last_event[lpn] = "trim"
        else:
            ftl.host_write_page(lpn)
            last_event[lpn] = "write"
    if final_trim:
        # Force the newest metadata record to be a tombstone, so the
        # "half"/"empty" tears exercise the torn-tombstone path too.
        lpn = int(rng.integers(0, space.user_pages))
        ftl.host_write_page(lpn)
        ftl.trim([lpn])
        last_event[lpn] = "trim"

    #: Every durable stamp and tombstone was burned strictly before this.
    horizon = ftl._write_seq

    durable = ftl.nand.capture_durable_state()
    if tear == "strip":
        durable = dataclasses.replace(durable, meta=())
    crashed = NandArray.from_durable(GEOMETRY, durable, timing=TIMING)
    for block in (ftl.active_user_block, ftl.active_gc_block):
        if block is not None:
            crashed.tear_frontier_page(block)
    torn_record = None
    if tear in ("half", "empty") and crashed.meta.records:
        torn_record = crashed.meta.tear_last(
            keep_pages=None if tear == "half" else 0
        )

    recovered, report = recover_ftl(crashed, space)

    # The horizon bound: the recovered counter and every surviving
    # mapping entry's stamp predate the durable horizon.
    assert recovered._write_seq <= horizon
    image = crashed.capture_durable_state()
    l2p = recovered.page_map.l2p_snapshot()
    mapped_ppns = l2p[l2p != UNMAPPED]
    assert np.all(np.asarray(image.oob_seq)[mapped_ppns] < horizon)

    # Durable TRIMs stay dead.  A tombstone inside the torn record was
    # never durable, so only intact-journal runs make the strong claim.
    if tear == "none":
        for lpn, event in last_event.items():
            if event == "trim":
                assert recovered.page_map.lookup(lpn) is None
    if torn_record is not None:
        assert report.torn_meta_records >= 1
    recovered.invariant_check()
