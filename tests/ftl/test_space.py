"""Tests for the Fig. 1 space model: user/OP split and reserved capacity."""

import pytest

from repro.ftl.space import SpaceModel
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=64, blocks_per_plane=100)


def test_from_op_ratio_split():
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.07)
    assert space.user_pages + space.op_pages == GEOMETRY.total_pages
    # 7% of user capacity, within integer rounding of one page.
    assert space.op_pages == pytest.approx(0.07 * space.user_pages, rel=0.01)


def test_op_ratio_property_roundtrip():
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25)
    assert space.op_ratio == pytest.approx(0.25, rel=0.01)


def test_bytes_accessors():
    space = SpaceModel.from_op_ratio(GEOMETRY)
    assert space.user_bytes == space.user_pages * 4096
    assert space.op_bytes == space.op_pages * 4096


def test_reserved_pages_fig2_sweep():
    """The Fig. 2 x-axis: Cresv = k * C_OP for k in 0.5 .. 1.5."""
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.10)
    half = space.reserved_pages(0.5)
    one = space.reserved_pages(1.0)
    fifteen = space.reserved_pages(1.5)
    assert one == space.op_pages
    assert half == pytest.approx(space.op_pages / 2, abs=1)
    assert fifteen == pytest.approx(1.5 * space.op_pages, abs=1)


def test_reserved_pages_negative_rejected():
    space = SpaceModel.from_op_ratio(GEOMETRY)
    with pytest.raises(ValueError):
        space.reserved_pages(-0.1)


def test_clamp_reserved_cap():
    """Paper Sec 2: Cresv <= Cunused + C_OP."""
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.10)
    request = space.reserved_pages(1.5)
    # Nearly full device: unused space is tiny.
    used = space.user_pages - 10
    clamped = space.clamp_reserved_pages(request, used)
    assert clamped == 10 + space.op_pages
    # Empty device: no clamping needed.
    assert space.clamp_reserved_pages(request, 0) == request


def test_clamp_never_negative():
    space = SpaceModel.from_op_ratio(GEOMETRY)
    assert space.clamp_reserved_pages(0, space.user_pages) == 0


def test_user_pages_must_leave_op():
    with pytest.raises(ValueError):
        SpaceModel(geometry=GEOMETRY, user_pages=GEOMETRY.total_pages)
    with pytest.raises(ValueError):
        SpaceModel(geometry=GEOMETRY, user_pages=0)


def test_invalid_op_ratio():
    for ratio in (0.0, 1.0, -0.5):
        with pytest.raises(ValueError):
            SpaceModel.from_op_ratio(GEOMETRY, op_ratio=ratio)
