"""Tests for checkpoint scheduling policies (repro.ftl.checkpoint_policy).

The headline claim (the adaptive satellite of the DFTL PR): against an
interval policy tuned to guarantee the same worst-case recovery-time
bound, the adaptive policy writes fewer checkpoints -- lower metadata
WAF at an equal bound."""

import pytest

from repro.ftl.checkpoint_policy import (
    AdaptiveCheckpointPolicy,
    IntervalCheckpointPolicy,
    make_checkpoint_policy,
)
from repro.ssd.config import SsdConfig

#: Recovery-time bound for the WAF comparison: the tail scan may never
#: have to walk more than this many programmed pages (all streams).
BOUND = 4000

#: Worst-case WAF the interval policy must assume to honour BOUND with
#: a host-page trigger (total programs per host page under heavy GC).
WORST_CASE_WAF = 4.0


def drive(ftl, writes):
    """Run ``writes`` and track the worst observed tail-scan accrual."""
    max_gap = 0
    ckpts = 0
    total_at_ckpt = 0
    for lpn in writes:
        ftl.host_write_page(lpn)
        total = ftl.stats.total_pages_programmed()
        if ftl.stats.checkpoints_written > ckpts:
            ckpts = ftl.stats.checkpoints_written
            total_at_ckpt = total
        max_gap = max(max_gap, total - total_at_ckpt)
    return max_gap


def workload(user_pages, n):
    # Moderate-locality overwrites: enough churn for steady GC, enough
    # idle free pool for the adaptive policy's quiescence early-fire.
    return [(i * 13) % (user_pages * 3 // 5) for i in range(n)]


# ----------------------------------------------------------------------
# Construction / factory
# ----------------------------------------------------------------------
def test_factory_builds_both_policies():
    assert isinstance(make_checkpoint_policy("interval", 100),
                      IntervalCheckpointPolicy)
    assert isinstance(make_checkpoint_policy("adaptive", 100),
                      AdaptiveCheckpointPolicy)
    with pytest.raises(ValueError):
        make_checkpoint_policy("never", 100)


def test_policy_argument_validation():
    with pytest.raises(ValueError):
        IntervalCheckpointPolicy(0)
    with pytest.raises(ValueError):
        AdaptiveCheckpointPolicy(0)
    with pytest.raises(ValueError):
        AdaptiveCheckpointPolicy(100, slack=0.0)


# ----------------------------------------------------------------------
# Interval policy stays the historical behaviour
# ----------------------------------------------------------------------
def test_explicit_interval_policy_matches_builtin_interval_path():
    results = []
    for policy in (None, "interval"):
        cfg = SsdConfig.small(
            blocks=64, pages_per_block=32,
            checkpoint_interval_pages=500, checkpoint_policy=policy or "interval",
        )
        ftl = cfg.build_ftl(seed=1)
        for lpn in workload(ftl.space.user_pages, 6000):
            ftl.host_write_page(lpn)
        results.append(
            (ftl.stats.checkpoints_written, ftl.stats.meta_pages_written,
             ftl.stats.waf())
        )
    assert results[0] == results[1]
    assert results[0][0] > 0


# ----------------------------------------------------------------------
# The WAF-at-equal-bound claim
# ----------------------------------------------------------------------
def test_adaptive_cuts_metadata_waf_at_equal_recovery_bound():
    stats = {}
    gaps = {}
    for name in ("interval", "adaptive"):
        # The interval trigger counts host pages only, so to guarantee
        # BOUND total programmed pages it must divide out a worst-case
        # WAF; the adaptive policy meters actual accrual and needs no
        # such conservatism.
        interval = (
            int(BOUND / WORST_CASE_WAF) if name == "interval" else BOUND
        )
        cfg = SsdConfig.small(
            blocks=64, pages_per_block=32,
            checkpoint_interval_pages=interval, checkpoint_policy=name,
        )
        ftl = cfg.build_ftl(seed=2)
        gaps[name] = drive(ftl, workload(ftl.space.user_pages, 12000))
        stats[name] = ftl.stats
    # Equal recovery bound: neither policy ever left more than BOUND
    # pages (plus the in-flight GC burst that finishes the crossing
    # write) for a power-on tail scan to walk.
    slop = 2 * 32  # one GC burst: up to ppb migrations + the erase
    assert gaps["interval"] <= BOUND + slop
    assert gaps["adaptive"] <= BOUND + slop
    # Lower metadata WAF: same host traffic, strictly fewer checkpoint
    # programs into the metadata ring.
    assert (stats["adaptive"].checkpoints_written
            < stats["interval"].checkpoints_written)
    assert (stats["adaptive"].meta_pages_written
            < stats["interval"].meta_pages_written)
    assert stats["adaptive"].checkpoints_written > 0


def test_adaptive_fires_early_only_when_quiescent():
    policy = AdaptiveCheckpointPolicy(1000, slack=0.75, quiescence_margin=2)

    class _Stats:
        def __init__(self, total):
            self._total = total

        def total_pages_programmed(self):
            return self._total

    class _Ftl:
        fgc_watermark = 2

        def __init__(self, total, free):
            self.stats = _Stats(total)
            self._free = free

        def free_pool_blocks(self):
            return self._free

    assert not policy.should_checkpoint(_Ftl(500, free=50))   # under slack
    assert policy.should_checkpoint(_Ftl(800, free=50))       # quiet: early
    assert not policy.should_checkpoint(_Ftl(800, free=3))    # busy: wait
    assert policy.should_checkpoint(_Ftl(1000, free=3))       # hard bound
