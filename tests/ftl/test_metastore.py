"""Tests for the NAND-resident metadata log: record formats, CRC
rejection of torn/corrupt payloads, tearing, compaction and the
durable-state capture/restore round trip."""

import numpy as np
import pytest

from repro.ftl.metastore import (
    KIND_CHECKPOINT,
    KIND_UNMAP,
    MetaLog,
    build_checkpoint,
    build_tombstones,
    parse_checkpoint,
    parse_tombstones,
)

PAGE = 4096


def _checkpoint_payload(generation=1, write_seq=500, user_pages=64, blocks=16):
    rng = np.random.default_rng(generation)
    l2p = rng.integers(-1, blocks * 4, user_pages, dtype=np.int64)
    ptr = rng.integers(0, 4, blocks, dtype=np.int32)
    erases = rng.integers(0, 9, blocks, dtype=np.int64)
    payload = build_checkpoint(generation, write_seq, l2p, ptr, erases, 4)
    return payload, (l2p, ptr, erases)


# ----------------------------------------------------------------------
# Record serialization
# ----------------------------------------------------------------------
def test_checkpoint_round_trips():
    payload, (l2p, ptr, erases) = _checkpoint_payload(generation=7, write_seq=1234)
    image = parse_checkpoint(payload)
    assert image is not None
    assert image.generation == 7
    assert image.write_seq == 1234
    assert image.pages_per_block == 4
    assert image.user_pages == 64 and image.blocks == 16
    assert np.array_equal(image.l2p, l2p)
    assert np.array_equal(image.program_ptr, ptr)
    assert np.array_equal(image.erase_counts, erases)


def test_tombstones_round_trip():
    payload = build_tombstones([3, 17, 3], [100, 101, 102])
    lpns, seqs = parse_tombstones(payload)
    assert lpns.tolist() == [3, 17, 3]
    assert seqs.tolist() == [100, 101, 102]


def test_mismatched_vectors_are_rejected():
    with pytest.raises(ValueError):
        build_tombstones([1, 2], [100])
    with pytest.raises(ValueError):
        build_checkpoint(
            1, 0, np.zeros(4, np.int64), np.zeros(2, np.int32), np.zeros(3, np.int64), 4
        )


@pytest.mark.parametrize("cut", [0, 1, 12, -5, -1])
def test_truncated_payloads_parse_as_torn(cut):
    payload, _ = _checkpoint_payload()
    assert parse_checkpoint(payload[:cut]) is None
    tombs = build_tombstones([1, 2], [10, 11])
    assert parse_tombstones(tombs[:cut]) is None


def test_bitflips_fail_the_crc():
    payload, _ = _checkpoint_payload()
    flipped = bytearray(payload)
    flipped[len(flipped) // 2] ^= 0x40
    assert parse_checkpoint(bytes(flipped)) is None
    tombs = bytearray(build_tombstones([5], [9]))
    tombs[-6] ^= 0x01
    assert parse_tombstones(bytes(tombs)) is None


def test_wrong_magic_is_not_parsed_as_the_other_kind():
    payload, _ = _checkpoint_payload()
    assert parse_tombstones(payload) is None
    tombs = build_tombstones([1], [2])
    assert parse_checkpoint(tombs) is None


# ----------------------------------------------------------------------
# The log: append / tear / compact
# ----------------------------------------------------------------------
def test_append_charges_ceil_pages():
    log = MetaLog(PAGE)
    small = log.append(KIND_UNMAP, build_tombstones([1], [1]))
    assert small.pages == 1
    payload, _ = _checkpoint_payload(user_pages=2048, blocks=64)
    big = log.append(KIND_CHECKPOINT, payload, generation=1)
    assert big.pages == -(-len(payload) // PAGE) > 1
    assert log.pages_written == small.pages + big.pages
    assert log.pages_held() == log.pages_written


def test_append_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MetaLog(PAGE).append("bogus", b"x")


def test_tear_last_truncates_and_marks():
    log = MetaLog(PAGE)
    payload, _ = _checkpoint_payload(user_pages=4096, blocks=128)
    record = log.append(KIND_CHECKPOINT, payload, generation=1)
    assert record.pages >= 2
    torn = log.tear_last()
    assert torn is not None and torn.torn
    assert torn.pages < record.pages
    assert len(torn.payload) < len(payload)
    assert parse_checkpoint(torn.payload) is None
    # The log now holds the torn version, not the original.
    assert log.records[-1].torn
    assert MetaLog(PAGE).tear_last() is None


def test_tear_last_keep_pages_zero_still_occupies_a_page():
    log = MetaLog(PAGE)
    log.append(KIND_UNMAP, build_tombstones([1], [1]))
    torn = log.tear_last(keep_pages=0)
    assert torn.payload == b"" and torn.pages == 1
    assert parse_tombstones(torn.payload) is None


def test_compact_keeps_two_generations_and_live_tombstones():
    log = MetaLog(PAGE)
    # gen1 @ H=100, tombstones straddling the horizons, gen2 @ H=200,
    # gen3 @ H=300.  keep_generations=2 keeps gen2+gen3; the oldest kept
    # horizon is 200, so only tombstones with max seq >= 200 survive.
    log.append(KIND_CHECKPOINT, _checkpoint_payload(1, 100)[0], generation=1)
    log.append(KIND_UNMAP, build_tombstones([4], [150]))  # folded into gen2
    log.append(KIND_CHECKPOINT, _checkpoint_payload(2, 200)[0], generation=2)
    log.append(KIND_UNMAP, build_tombstones([5], [250]))  # still live
    log.append(KIND_CHECKPOINT, _checkpoint_payload(3, 300)[0], generation=3)
    dropped = log.compact(keep_generations=2)
    assert dropped == 2
    kinds = [(r.kind, r.generation) for r in log.records]
    assert (KIND_CHECKPOINT, 1) not in kinds
    assert (KIND_CHECKPOINT, 2) in kinds and (KIND_CHECKPOINT, 3) in kinds
    assert sum(1 for r in log.records if r.kind == KIND_UNMAP) == 1


def test_compact_never_counts_a_torn_checkpoint_as_kept():
    log = MetaLog(PAGE)
    log.append(KIND_CHECKPOINT, _checkpoint_payload(1, 100)[0], generation=1)
    log.append(KIND_CHECKPOINT, _checkpoint_payload(2, 200)[0], generation=2)
    log.append(KIND_CHECKPOINT, _checkpoint_payload(3, 300)[0], generation=3)
    log.tear_last()
    log.compact(keep_generations=2)
    # The torn gen3 is dropped, gens 1+2 are the two complete survivors.
    gens = [r.generation for r in log.records if r.kind == KIND_CHECKPOINT]
    assert gens == [1, 2]


def test_compact_without_a_complete_checkpoint_keeps_everything():
    log = MetaLog(PAGE)
    log.append(KIND_UNMAP, build_tombstones([1], [10]))
    log.append(KIND_CHECKPOINT, _checkpoint_payload(1, 50)[0], generation=1)
    log.tear_last()
    assert log.compact() == 0
    assert len(log.records) == 2
    with pytest.raises(ValueError):
        log.compact(keep_generations=0)


def test_capture_restore_round_trip():
    log = MetaLog(PAGE)
    log.append(KIND_CHECKPOINT, _checkpoint_payload(1, 100)[0], generation=1)
    log.append(KIND_UNMAP, build_tombstones([2], [150]))
    log.tear_last(keep_pages=0)
    snapshot = log.capture()
    clone = MetaLog.restore(snapshot, PAGE)
    assert clone.records == log.records
    assert clone.pages_held() == log.pages_held()
    # Appends after restore continue the sequence, not restart it.
    record = clone.append(KIND_UNMAP, build_tombstones([3], [160]))
    assert record.seq == log.records[-1].seq + 1
    # The snapshot is immutable: the original log is unaffected.
    assert len(log.records) == 2
