"""Tests for victim selection: greedy, cost-benefit and SIP filtering."""

import numpy as np
import pytest

from repro.ftl.mapping import PageMap
from repro.ftl.victim import (
    CostBenefitSelector,
    GreedySelector,
    SipFilteredSelector,
)
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)


def build_map(block_contents):
    """block_contents: {block: [lpn, ...]} programs pages sequentially."""
    pm = PageMap(GEOMETRY, user_pages=GEOMETRY.total_pages)
    for block, lpns in block_contents.items():
        for offset, lpn in enumerate(lpns):
            pm.remap(lpn, pm.ppn(block, offset))
    return pm


def test_greedy_picks_min_valid():
    pm = build_map({0: [1, 2, 3], 1: [4], 2: [5, 6]})
    decision = GreedySelector().select(np.array([0, 1, 2]), pm)
    assert decision.block == 1
    assert decision.candidates_considered == 3
    assert decision.filtered_by_sip == 0


def test_greedy_tie_breaks_low_block():
    pm = build_map({3: [1], 5: [2]})
    decision = GreedySelector().select(np.array([3, 5]), pm)
    assert decision.block == 3


def test_greedy_empty_candidates():
    pm = build_map({})
    decision = GreedySelector().select(np.array([], dtype=int), pm)
    assert decision.block is None


def test_cost_benefit_prefers_older_blocks():
    # Same utilisation, different age: the older block wins.
    pm = build_map({0: [1, 2], 1: [3, 4]})
    ages = np.zeros(GEOMETRY.total_blocks)
    ages[0] = 100
    ages[1] = 10
    decision = CostBenefitSelector().select(np.array([0, 1]), pm, block_ages=ages)
    assert decision.block == 0


def test_cost_benefit_weighs_utilisation():
    # Very full old block loses to empty young block.
    pm = build_map({0: [1, 2, 3, 4], 1: []})
    ages = np.zeros(GEOMETRY.total_blocks)
    ages[0] = 1000
    ages[1] = 1
    decision = CostBenefitSelector().select(np.array([0, 1]), pm, block_ages=ages)
    assert decision.block == 1


def test_sip_filter_skips_sip_heavy_block():
    """The greedy-best block is SIP-dominated: it must be skipped and the
    skip counted (Table 3 metric)."""
    pm = build_map({0: [1], 1: [2, 3]})
    selector = SipFilteredSelector(sip_fraction_threshold=0.5)
    decision = selector.select(np.array([0, 1]), pm, sip_lpns={1})
    assert decision.block == 1  # block 0 (valid={1}) is 100% SIP
    assert decision.filtered_by_sip == 1
    assert selector.total_filtered == 1
    assert selector.total_selections == 1


def test_sip_filter_no_sip_list_behaves_greedy():
    pm = build_map({0: [1], 1: [2, 3]})
    selector = SipFilteredSelector()
    decision = selector.select(np.array([0, 1]), pm, sip_lpns=set())
    assert decision.block == 0
    assert decision.filtered_by_sip == 0


def test_sip_filter_below_threshold_not_skipped():
    pm = build_map({0: [1, 2, 3], 1: [4, 5, 6, 7]})
    selector = SipFilteredSelector(sip_fraction_threshold=0.5)
    # Only 1/3 of block 0's valid pages are SIP -> keep it.
    decision = selector.select(np.array([0, 1]), pm, sip_lpns={1})
    assert decision.block == 0
    assert decision.filtered_by_sip == 0


def test_sip_filter_all_filtered_falls_back_to_greedy():
    pm = build_map({0: [1], 1: [2, 3]})
    selector = SipFilteredSelector(sip_fraction_threshold=0.5)
    decision = selector.select(np.array([0, 1]), pm, sip_lpns={1, 2, 3})
    assert decision.block == 0  # fallback: plain greedy best
    assert decision.filtered_by_sip == 2


def test_sip_filter_empty_block_chosen_immediately():
    """A block with zero valid pages is a perfect victim regardless of SIP."""
    pm = build_map({0: [1], 1: []})
    pm.remap(1, pm.ppn(2, 0))  # invalidate block 0's only page
    selector = SipFilteredSelector()
    decision = selector.select(np.array([0, 1]), pm, sip_lpns={99})
    assert decision.block in (0, 1)
    assert pm.valid_count(decision.block) == 0


def test_sip_filtered_fraction():
    pm = build_map({0: [1], 1: [2, 3]})
    selector = SipFilteredSelector()
    selector.select(np.array([0, 1]), pm, sip_lpns={1})      # one filter event
    selector.select(np.array([0, 1]), pm, sip_lpns=set())    # none
    assert selector.filtered_fraction() == pytest.approx(0.5)


def test_sip_filter_parameter_validation():
    with pytest.raises(ValueError):
        SipFilteredSelector(sip_fraction_threshold=0.0)
    with pytest.raises(ValueError):
        SipFilteredSelector(sip_fraction_threshold=1.5)
    with pytest.raises(ValueError):
        SipFilteredSelector(max_rank_scan=0)


def test_sip_valid_pages_counts_only_valid():
    pm = build_map({0: [1, 2]})
    pm.remap(1, pm.ppn(1, 0))  # LPN 1 leaves block 0
    selector = SipFilteredSelector()
    assert selector.sip_valid_pages(0, pm, {1, 2}) == 1
