"""Tests for the random and FIFO victim selectors."""

import numpy as np

from repro.ftl.mapping import PageMap
from repro.ftl.victim import FifoSelector, RandomSelector
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)


def build_map():
    pm = PageMap(GEOMETRY, user_pages=GEOMETRY.total_pages)
    pm.remap(1, pm.ppn(0, 0))
    pm.remap(2, pm.ppn(1, 0))
    pm.remap(3, pm.ppn(2, 0))
    return pm


def test_random_selector_deterministic_with_seed():
    pm = build_map()
    candidates = np.array([0, 1, 2])
    a = RandomSelector(np.random.default_rng(5)).select(candidates, pm)
    b = RandomSelector(np.random.default_rng(5)).select(candidates, pm)
    assert a.block == b.block
    assert a.block in (0, 1, 2)


def test_random_selector_empty():
    pm = build_map()
    assert RandomSelector().select(np.array([], dtype=int), pm).block is None


def test_fifo_picks_oldest_closed():
    pm = build_map()
    ages = np.zeros(GEOMETRY.total_blocks)
    ages[0] = 5
    ages[1] = 50
    ages[2] = 20
    decision = FifoSelector().select(np.array([0, 1, 2]), pm, block_ages=ages)
    assert decision.block == 1


def test_fifo_without_ages_falls_back_to_first():
    pm = build_map()
    decision = FifoSelector().select(np.array([2, 0]), pm)
    assert decision.block == 2
