"""Tests for LPN<->PPN mapping, validity tracking and invariants."""

import pytest

from repro.ftl.mapping import PageMap
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)


def make_map(user_pages=16):
    return PageMap(GEOMETRY, user_pages)


def test_initially_unmapped():
    pm = make_map()
    assert pm.lookup(0) is None
    assert pm.mapped_count == 0
    assert pm.valid_count(0) == 0


def test_first_write_maps():
    pm = make_map()
    assert pm.remap(5, pm.ppn(1, 0)) is None
    assert pm.lookup(5) == pm.ppn(1, 0)
    assert pm.is_valid(pm.ppn(1, 0))
    assert pm.lpn_of_ppn(pm.ppn(1, 0)) == 5
    assert pm.mapped_count == 1
    assert pm.valid_count(1) == 1


def test_update_invalidates_old_page():
    pm = make_map()
    first = pm.ppn(1, 0)
    second = pm.ppn(2, 0)
    pm.remap(5, first)
    old = pm.remap(5, second)
    assert old == first
    assert not pm.is_valid(first)
    assert pm.is_valid(second)
    assert pm.valid_count(1) == 0
    assert pm.valid_count(2) == 1
    assert pm.mapped_count == 1  # still one live LPN


def test_unmap_trim():
    pm = make_map()
    ppn = pm.ppn(0, 2)
    pm.remap(7, ppn)
    assert pm.unmap(7) == ppn
    assert pm.lookup(7) is None
    assert not pm.is_valid(ppn)
    assert pm.mapped_count == 0
    assert pm.unmap(7) is None  # idempotent


def test_valid_lpns_in_block_order():
    pm = make_map()
    pm.remap(10, pm.ppn(3, 0))
    pm.remap(11, pm.ppn(3, 1))
    pm.remap(12, pm.ppn(3, 2))
    pm.remap(11, pm.ppn(4, 0))  # moves LPN 11 out of block 3
    pairs = list(pm.valid_lpns_in_block(3))
    assert pairs == [(0, 10), (2, 12)]


def test_clear_block_requires_no_valid_pages():
    pm = make_map()
    pm.remap(1, pm.ppn(2, 0))
    with pytest.raises(RuntimeError):
        pm.clear_block(2)
    pm.remap(1, pm.ppn(3, 0))  # invalidates block 2's copy
    pm.clear_block(2)  # now fine


def test_lpn_bounds():
    pm = make_map(user_pages=4)
    with pytest.raises(IndexError):
        pm.lookup(4)
    with pytest.raises(IndexError):
        pm.remap(-1, 0)


def test_address_helpers_roundtrip():
    pm = make_map()
    ppn = pm.ppn(5, 3)
    assert pm.block_of(ppn) == 5
    assert pm.page_of(ppn) == 3


def test_invariant_check_passes_after_workload():
    pm = make_map(user_pages=16)
    # Interleaved writes/updates/trims across blocks.
    ppn_iter = iter(range(GEOMETRY.total_pages))
    for lpn in [0, 1, 2, 0, 3, 1, 4, 2, 0]:
        pm.remap(lpn, next(ppn_iter))
    pm.unmap(3)
    pm.invariant_check()


def test_invariant_check_detects_corruption():
    pm = make_map()
    pm.remap(0, pm.ppn(0, 0))
    pm._valid_per_block[0] = 9  # simulate corruption
    with pytest.raises(AssertionError):
        pm.invariant_check()
