"""Tests for the page-mapped FTL: write path, FGC, BGC, SIP plumbing."""

import pytest

from repro.ftl.ftl import OutOfSpaceError, PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.ftl.victim import SipFilteredSelector
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_ftl(op_ratio=0.25, selector=None, watermark=2):
    nand = NandArray(GEOMETRY, TIMING)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=op_ratio)
    return PageMappedFtl(nand, space, victim_selector=selector, fgc_watermark=watermark)


def test_initial_capacity():
    ftl = make_ftl()
    # Two active blocks are held out of the pool.
    assert ftl.free_pool_blocks() == GEOMETRY.total_blocks - 2
    assert ftl.free_pages() == GEOMETRY.total_pages
    assert ftl.used_pages() == 0


def test_write_and_read_roundtrip_latencies():
    ftl = make_ftl()
    write_latency = ftl.host_write_page(0)
    assert write_latency == TIMING.program_ns + TIMING.transfer_ns_per_page
    read_latency = ftl.host_read_page(0)
    assert read_latency == TIMING.read_ns + TIMING.transfer_ns_per_page


def test_unmapped_read_costs_transfer_only():
    ftl = make_ftl()
    assert ftl.host_read_page(3) == TIMING.transfer_ns_per_page


def test_write_decrements_free_pages():
    ftl = make_ftl()
    before = ftl.free_pages()
    ftl.host_write_page(0)
    assert ftl.free_pages() == before - 1


def test_overwrite_keeps_used_constant():
    ftl = make_ftl()
    ftl.host_write_page(5)
    ftl.host_write_page(5)
    assert ftl.used_pages() == 1
    assert ftl.stats.host_pages_written == 2


def test_frontier_rolls_to_new_block():
    ftl = make_ftl()
    pool_before = ftl.free_pool_blocks()
    for lpn in range(GEOMETRY.pages_per_block + 1):
        ftl.host_write_page(lpn)
    assert ftl.free_pool_blocks() == pool_before - 1


def test_foreground_gc_triggers_and_reclaims():
    ftl = make_ftl()
    user = ftl.space.user_pages
    # Overwrite a small working set far beyond capacity: plenty of garbage.
    writes = GEOMETRY.total_pages * 3
    for i in range(writes):
        ftl.host_write_page(i % (user // 2))
    assert ftl.stats.fgc_invocations > 0
    assert ftl.free_pool_blocks() > ftl.fgc_watermark
    ftl.invariant_check()


def test_fgc_latency_charged_to_write():
    ftl = make_ftl()
    user = ftl.space.user_pages
    saw_stall = False
    for i in range(GEOMETRY.total_pages * 2):
        latency = ftl.host_write_page(i % (user // 2))
        if latency > TIMING.program_ns + TIMING.transfer_ns_per_page:
            saw_stall = True
    assert saw_stall
    assert ftl.stats.fgc_time_ns > 0


def test_waf_grows_under_gc():
    import random

    rng = random.Random(3)
    ftl = make_ftl()
    user = ftl.space.user_pages
    # Random updates over most of the space: victims keep valid pages.
    for _ in range(GEOMETRY.total_pages * 3):
        ftl.host_write_page(rng.randrange(user * 3 // 4))
    assert ftl.stats.waf() > 1.0
    assert ftl.stats.gc_pages_migrated > 0


def test_background_collection_frees_space():
    ftl = make_ftl()
    user = ftl.space.user_pages
    for i in range(GEOMETRY.total_pages * 2):
        ftl.host_write_page(i % (user // 2))
    free_before = ftl.free_pages()
    latency = ftl.collect_one_block(background=True)
    assert latency > 0
    assert ftl.free_pages() >= free_before
    assert ftl.stats.bgc_blocks_collected == 1


def test_trim_creates_garbage():
    ftl = make_ftl()
    for lpn in range(8):
        ftl.host_write_page(lpn)
    ftl.trim(range(8))
    assert ftl.used_pages() == 0
    assert ftl.stats.pages_trimmed == 8
    ftl.invariant_check()


def test_sequential_overwrite_gives_waf_near_one():
    """Pure sequential overwrite: victims are fully invalid, WAF ~ 1."""
    ftl = make_ftl(op_ratio=0.25)
    user = ftl.space.user_pages
    for sweep in range(4):
        for lpn in range(user // 2):
            ftl.host_write_page(lpn)
    assert ftl.stats.waf() < 1.05


def test_out_of_space_when_full_of_live_data():
    ftl = make_ftl(op_ratio=0.25, watermark=2)
    # Fill every logical page so nothing is garbage; then force GC.
    with pytest.raises((OutOfSpaceError, Exception)):
        for lpn in range(ftl.space.user_pages):
            ftl.host_write_page(lpn)
        # Device may survive the fill thanks to OP; explicit collection
        # of garbage-free space must then fail.
        while True:
            ftl.collect_one_block(background=True)


def test_sip_list_reaches_selector_and_stats():
    selector = SipFilteredSelector(sip_fraction_threshold=0.5)
    ftl = make_ftl(selector=selector)
    user = ftl.space.user_pages
    hot = list(range(4))
    for i in range(GEOMETRY.total_pages * 2):
        ftl.host_write_page(i % (user // 2))
    ftl.set_sip_list(hot)
    assert ftl.sip_lpns == set(hot)
    for _ in range(6):
        if ftl.has_victim():
            ftl.collect_one_block(background=True)
    assert ftl.stats.victim_selections > 0


def test_invariant_check_after_mixed_workload():
    ftl = make_ftl()
    user = ftl.space.user_pages
    for i in range(GEOMETRY.total_pages):
        ftl.host_write_page((i * 7) % (user // 2))
        if i % 13 == 0:
            ftl.trim([(i * 3) % (user // 2)])
    ftl.invariant_check()


def test_has_victim_false_on_fresh_device():
    ftl = make_ftl()
    assert not ftl.has_victim()


def test_watermark_validation():
    nand = NandArray(GEOMETRY, TIMING)
    space = SpaceModel.from_op_ratio(GEOMETRY)
    with pytest.raises(ValueError):
        PageMappedFtl(nand, space, fgc_watermark=1)
