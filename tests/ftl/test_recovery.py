"""Tests for FTL fault recovery: read retry, block retirement, degraded
OP accounting and the read-only terminal state."""

import pytest

from repro.faults.injector import FaultInjector, FaultProfile
from repro.ftl.ftl import DeviceReadOnlyError, PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=16)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


class ScriptedInjector(FaultInjector):
    """Injector that fires faults from explicit scripts (True = fault).

    Exhausted scripts never fault (retries always succeed), so each test
    stages exactly the failure sequence it wants to exercise.
    """

    def __init__(self, program=(), erase=(), read=(), retry_fails=()):
        super().__init__(FaultProfile(program_fail_prob=0.5), seed=0)
        self._script = {
            "program": list(program),
            "erase": list(erase),
            "read": list(read),
            "retry": list(retry_fails),
        }

    def _pop(self, kind):
        queue = self._script[kind]
        return queue.pop(0) if queue else False

    def program_fails(self, block, page, pe_cycles):
        if self._pop("program"):
            self.program_faults += 1
            self._log("program", block, page)
            return True
        return False

    def erase_fails(self, block, pe_cycles):
        if self._pop("erase"):
            self.erase_faults += 1
            self._log("erase", block, -1)
            return True
        return False

    def read_uncorrectable(self, block, page, pe_cycles):
        if self._pop("read"):
            self.read_faults += 1
            self._log("read", block, page)
            return True
        return False

    def read_retry_succeeds(self):
        return not self._pop("retry")


def make_ftl(injector=None, op_ratio=0.25, **kwargs):
    nand = NandArray(GEOMETRY, TIMING, fault_injector=injector)
    space = SpaceModel.from_op_ratio(GEOMETRY, op_ratio=op_ratio)
    return PageMappedFtl(nand, space, **kwargs)


# ----------------------------------------------------------------------
# Read retry
# ----------------------------------------------------------------------
def test_read_retry_recovers_and_counts():
    injector = ScriptedInjector(read=[False, True])
    ftl = make_ftl(injector)
    ftl.host_write_page(0)
    ftl.host_read_page(0)  # scripted: clean
    ftl.host_read_page(0)  # scripted: uncorrectable, first retry recovers
    assert ftl.stats.read_retries == 1
    assert ftl.stats.uncorrectable_reads == 0


def test_read_retry_budget_exhaustion_counts_uncorrectable():
    injector = ScriptedInjector(read=[True], retry_fails=[True] * 10)
    ftl = make_ftl(injector, max_read_retries=3)
    ftl.host_write_page(0)
    ftl.host_read_page(0)
    assert ftl.stats.read_retries == 3
    assert ftl.stats.uncorrectable_reads == 1


# ----------------------------------------------------------------------
# Program failure -> block retirement
# ----------------------------------------------------------------------
def test_program_fail_retires_block_and_write_succeeds():
    injector = ScriptedInjector(program=[True])
    ftl = make_ftl(injector)
    failed_block = ftl.active_user_block
    op_before = ftl.effective_op_pages()

    ftl.host_write_page(0)  # first program attempt fails, retry succeeds

    assert ftl.stats.program_faults == 1
    assert ftl.stats.blocks_retired == 1
    assert failed_block in ftl.retired_blocks
    assert ftl.nand.is_bad(failed_block)
    assert ftl.nand.grown_bad_blocks == 1
    assert ftl.active_user_block != failed_block
    # Retired capacity comes out of the effective OP, one block's worth.
    assert ftl.effective_op_pages() == op_before - GEOMETRY.pages_per_block
    assert ftl.op_timeline and ftl.op_timeline[-1][1] == ftl.effective_op_pages()
    # The write still landed: data is readable.
    assert ftl.page_map.lookup(0) is not None
    ftl.invariant_check()


def test_retirement_relocates_live_pages():
    injector = ScriptedInjector(program=[False, False, True])
    ftl = make_ftl(injector)
    ftl.host_write_page(0)
    ftl.host_write_page(1)
    failed_block = ftl.active_user_block
    ftl.host_write_page(2)  # third program fails; block had 2 live pages

    assert failed_block in ftl.retired_blocks
    assert ftl.stats.gc_pages_migrated >= 2  # LPNs 0 and 1 relocated
    for lpn in (0, 1, 2):
        ppn = ftl.page_map.lookup(lpn)
        assert ppn is not None
        assert ftl.page_map.block_of(ppn) != failed_block
    ftl.invariant_check()


def test_unrecoverable_page_during_retirement_is_unmapped():
    # Program fail on the third write; relocating LPN 0 hits an
    # uncorrectable read whose retries all fail -> data lost, unmapped.
    injector = ScriptedInjector(
        program=[False, False, True], read=[True], retry_fails=[True] * 10
    )
    ftl = make_ftl(injector)
    ftl.host_write_page(0)
    ftl.host_write_page(1)
    ftl.host_write_page(2)

    assert ftl.stats.uncorrectable_reads == 1
    assert ftl.page_map.lookup(0) is None  # lost, not silently stale
    assert ftl.page_map.lookup(1) is not None
    ftl.invariant_check()


# ----------------------------------------------------------------------
# Erase failure -> retirement via GC
# ----------------------------------------------------------------------
def test_erase_fail_retires_victim_block():
    injector = ScriptedInjector(erase=[True] * 10)
    ftl = make_ftl(injector, max_erase_retries=2)
    # Fill one block with garbage (overwrites), then collect it.
    for _ in range(3):
        for lpn in range(GEOMETRY.pages_per_block):
            ftl.host_write_page(lpn)
    assert ftl.has_victim()
    retired_before = ftl.stats.blocks_retired
    ftl.collect_one_block(background=False)

    assert ftl.stats.erase_faults == 3  # initial attempt + 2 retries
    assert ftl.stats.blocks_retired == retired_before + 1
    retired = next(iter(ftl.retired_blocks))
    assert ftl.nand.is_bad(retired)
    ftl.invariant_check()


# ----------------------------------------------------------------------
# Terminal read-only state
# ----------------------------------------------------------------------
def test_op_exhaustion_enters_read_only():
    # OP is 0.25 -> 4 spare blocks; four consecutive frontier failures on
    # one write retire four blocks and exhaust the effective OP.
    injector = ScriptedInjector(program=[True] * 4)
    ftl = make_ftl(injector, max_program_retries=8)
    ftl.host_write_page(0)  # survives, but burns the whole OP

    assert ftl.stats.blocks_retired == 4
    assert ftl.effective_op_pages() == 0
    assert ftl.read_only
    with pytest.raises(DeviceReadOnlyError):
        ftl.host_write_page(1)
    # Reads still work in the terminal state.
    ftl.host_read_page(0)
    ftl.invariant_check()


def test_victim_selection_excludes_retired_blocks():
    import numpy as np

    from repro.ftl.victim import GreedySelector, filter_excluded

    candidates = np.array([1, 2, 3])
    assert list(filter_excluded(candidates, {2})) == [1, 3]
    assert list(filter_excluded(candidates, None)) == [1, 2, 3]

    ftl = make_ftl(None)
    # Two garbage-heavy closed blocks; exclude the greedy favourite.
    for _ in range(3):
        for lpn in range(2 * GEOMETRY.pages_per_block):
            ftl.host_write_page(lpn)
    selector = GreedySelector()
    best = selector.select(ftl.gc_candidates(), ftl.page_map).block
    assert best is not None
    second = selector.select(
        ftl.gc_candidates(), ftl.page_map, excluded_blocks={best}
    ).block
    assert second is not None and second != best


def test_fault_free_device_unaffected():
    ftl = make_ftl(None)
    for lpn in range(8):
        ftl.host_write_page(lpn)
    assert ftl.stats.blocks_retired == 0
    assert not ftl.read_only
    assert ftl.retired_blocks == set()
    assert ftl.op_timeline == []
