"""Tests for reporting helpers."""

import pytest

from repro.experiments.reporting import format_table, normalize_to


def test_normalize_to_reference():
    values = {"a": 2.0, "b": 4.0, "ref": 8.0}
    normalized = normalize_to(values, "ref")
    assert normalized == {"a": 0.25, "b": 0.5, "ref": 1.0}


def test_normalize_missing_reference():
    with pytest.raises(KeyError):
        normalize_to({"a": 1.0}, "missing")


def test_normalize_zero_reference():
    with pytest.raises(ZeroDivisionError):
        normalize_to({"a": 0.0}, "a")


def test_format_table_alignment():
    text = format_table(
        ["Name", "Value"],
        [["alpha", 1.5], ["b", 20]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert "-" in lines[2]
    assert "1.500" in lines[3]
    assert "20" in lines[4]


def test_format_table_custom_float_format():
    text = format_table(["x"], [[1.23456]], float_format="{:.1f}")
    assert "1.2" in text
    assert "1.23" not in text
