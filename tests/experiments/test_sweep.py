"""Tests for the crash-tolerant sweep: isolation, checkpointing, resume,
timeouts, and persistence of the fault-metrics fields."""

import dataclasses
import json
import time

import pytest

from repro.experiments.persistence import (
    SweepCheckpoint,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.experiments.runner import (
    ScenarioSpec,
    ScenarioTimeoutError,
    _wall_clock_limit,
    run_sweep,
)
from repro.metrics.collector import RunMetrics


def tiny_spec(**kwargs):
    """A scenario small enough to finish in well under a second."""
    defaults = dict(
        workload="YCSB",
        policy="JIT-GC",
        blocks=48,
        pages_per_block=8,
        warmup_s=0,
        measure_s=1,
        seed=7,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def fake_metrics(**kwargs):
    defaults = dict(
        policy="JIT-GC",
        workload="YCSB",
        duration_ns=10,
        iops=1.0,
        waf=1.0,
        host_pages_written=1,
        gc_pages_migrated=0,
        fgc_invocations=0,
        fgc_time_ns=0,
        bgc_blocks=0,
        erases=0,
    )
    defaults.update(kwargs)
    return RunMetrics(**defaults)


# ----------------------------------------------------------------------
# Isolation
# ----------------------------------------------------------------------
def test_one_raising_scenario_does_not_kill_the_sweep():
    good = tiny_spec()
    bad = tiny_spec(workload="NO-SUCH-WORKLOAD")
    outcome = run_sweep([good, bad])

    assert not outcome.ok()
    assert good.key() in outcome.results
    assert bad.key() in outcome.failures
    assert outcome.failures[bad.key()].startswith("KeyError")


def test_duplicate_keys_rejected():
    spec = tiny_spec()
    with pytest.raises(ValueError, match="duplicate"):
        run_sweep([spec, spec])


# ----------------------------------------------------------------------
# Checkpoint + resume
# ----------------------------------------------------------------------
def test_checkpoint_resume_skips_completed(tmp_path):
    path = tmp_path / "sweep.json"
    specs = [tiny_spec(), tiny_spec(policy="L-BGC")]

    first = run_sweep(specs, checkpoint=path)
    assert first.ok() and len(first.results) == 2 and not first.skipped

    fresh_runs = []
    second = run_sweep(
        specs, checkpoint=path, on_result=lambda key, m: fresh_runs.append(key)
    )
    assert second.ok()
    assert sorted(second.skipped) == sorted(s.key() for s in specs)
    assert fresh_runs == []  # nothing re-ran
    assert second.results.keys() == first.results.keys()


def test_resume_retries_previous_failures(tmp_path):
    path = tmp_path / "sweep.json"
    bad = tiny_spec(workload="NO-SUCH-WORKLOAD")
    first = run_sweep([bad], checkpoint=path)
    assert bad.key() in first.failures

    # The failure is durable...
    assert bad.key() in SweepCheckpoint(path).load().failures
    # ...and a resumed sweep retries it rather than skipping.
    second = run_sweep([bad], checkpoint=path)
    assert bad.key() in second.failures and not second.skipped


def test_checkpoint_partial_results_survive_a_crash(tmp_path):
    path = tmp_path / "sweep.json"
    good = tiny_spec()
    run_sweep([good], checkpoint=path)

    # Simulate a later crash: the file alone must reconstruct the result.
    restored = SweepCheckpoint(path).load()
    assert restored.is_completed(good.key())
    assert restored.completed[good.key()].duration_ns > 0


def test_no_resume_reruns_everything(tmp_path):
    path = tmp_path / "sweep.json"
    spec = tiny_spec()
    run_sweep([spec], checkpoint=path)
    fresh_runs = []
    outcome = run_sweep(
        [spec],
        checkpoint=path,
        resume=False,
        on_result=lambda key, m: fresh_runs.append(key),
    )
    assert outcome.ok() and fresh_runs == [spec.key()]


def test_checkpoint_creates_missing_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "sweep.json"
    outcome = run_sweep([tiny_spec()], checkpoint=path)
    assert outcome.ok()
    assert path.exists()


def test_checkpoint_file_is_valid_json_with_schema(tmp_path):
    path = tmp_path / "sweep.json"
    run_sweep([tiny_spec()], checkpoint=path)
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro.sweep-checkpoint.v1"
    assert payload["completed"]


# ----------------------------------------------------------------------
# Wall-clock timeout
# ----------------------------------------------------------------------
def test_wall_clock_limit_fires():
    with pytest.raises(ScenarioTimeoutError):
        with _wall_clock_limit(0.05):
            time.sleep(2.0)


def test_wall_clock_limit_noop_when_disabled():
    with _wall_clock_limit(None):
        pass
    with _wall_clock_limit(0):
        pass


def test_sweep_records_timeouts_as_failures(tmp_path):
    # A generous scenario with a microscopic budget must fail cleanly.
    spec = tiny_spec(blocks=256, pages_per_block=32, measure_s=30)
    outcome = run_sweep([spec], timeout_s=0.05)
    assert spec.key() in outcome.failures
    assert "ScenarioTimeoutError" in outcome.failures[spec.key()]


# ----------------------------------------------------------------------
# Persistence of the fault-metric fields
# ----------------------------------------------------------------------
def test_metrics_roundtrip_preserves_fault_fields():
    metrics = fake_metrics(
        injected_faults=5,
        read_retries=2,
        program_faults=1,
        blocks_retired=3,
        effective_op_pages=128,
        op_timeline=[(10, 256), (20, 128)],
        device_read_only=True,
    )
    restored = metrics_from_dict(metrics_to_dict(metrics))
    assert restored == metrics
    assert restored.op_timeline == [(10, 256), (20, 128)]  # tuples, not lists
    assert dataclasses.asdict(restored) == dataclasses.asdict(metrics)


def test_scenario_key_includes_fault_profile():
    assert tiny_spec().key().endswith("faults-none")
    assert tiny_spec(fault_profile="heavy").key().endswith("faults-heavy")
