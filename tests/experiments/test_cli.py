"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


QUICK = ["--blocks", "256", "--pages-per-block", "16", "--warmup", "4", "--measure", "10"]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "YCSB" in out and "TPC-C" in out
    assert "JIT-GC" in out and "L-BGC" in out


def test_run_command(capsys):
    assert main(["run", "--workload", "YCSB", "--policy", "L-BGC", *QUICK]) == 0
    out = capsys.readouterr().out
    assert "YCSB / L-BGC" in out
    assert "IOPS" in out and "WAF" in out


def test_run_rejects_unknown_choices():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nope"])
    with pytest.raises(SystemExit):
        main(["run", "--policy", "nope"])


def test_compare_command(capsys):
    assert main(["compare", "--workload", "TPC-C", *QUICK]) == 0
    out = capsys.readouterr().out
    for policy in ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC"):
        assert policy in out


def test_parser_has_all_artifact_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("fig2", "fig7", "table1", "table2", "table3", "oracle"):
        assert command in text


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
