"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


QUICK = ["--blocks", "256", "--pages-per-block", "16", "--warmup", "4", "--measure", "10"]


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "YCSB" in out and "TPC-C" in out
    assert "JIT-GC" in out and "L-BGC" in out


def test_run_command(capsys):
    assert main(["run", "--workload", "YCSB", "--policy", "L-BGC", *QUICK]) == 0
    out = capsys.readouterr().out
    assert "YCSB / L-BGC" in out
    assert "IOPS" in out and "WAF" in out


def test_run_rejects_unknown_choices():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nope"])
    with pytest.raises(SystemExit):
        main(["run", "--policy", "nope"])


def test_compare_command(capsys):
    assert main(["compare", "--workload", "TPC-C", *QUICK]) == 0
    out = capsys.readouterr().out
    for policy in ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC"):
        assert policy in out


def test_parser_has_all_artifact_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("fig2", "fig7", "table1", "table2", "table3", "oracle"):
        assert command in text


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_run_echoes_seed_and_fault_profile(capsys):
    assert main(["run", "--seed", "99", "--faults", "light", *QUICK]) == 0
    out = capsys.readouterr().out
    assert "seed=99 faults=light" in out
    assert "injected faults" in out
    assert "device read-only" in out


def test_run_rejects_unknown_fault_profile():
    with pytest.raises(SystemExit):
        main(["run", "--faults", "nope"])


def test_sweep_command(tmp_path, capsys):
    checkpoint = str(tmp_path / "sweep.json")
    args = ["sweep", "--workload", "YCSB", "--blocks", "64",
            "--pages-per-block", "8", "--warmup", "0", "--measure", "1",
            "--checkpoint", checkpoint]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "Sweep on YCSB" in out
    for policy in ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC"):
        assert policy in out
    # Resumed: everything skips.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert out.count("skipped") == 4


def test_run_with_jsonl_trace(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(
        ["run", "--seed", "13", "--faults", "light",
         "--trace", str(trace), *QUICK]
    ) == 0
    lines = trace.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["type"] == "header"
    assert header["seed"] == 13
    assert header["fault_profile"] == "light"
    assert header["policy"] == "JIT-GC"
    events = [json.loads(line) for line in lines[1:]]
    assert events
    assert all(e["type"] == "event" for e in events)
    assert "manager.tick" in {e["name"] for e in events}


def test_run_with_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "run.json"
    assert main(
        ["run", "--trace", str(trace), "--trace-format", "chrome", *QUICK]
    ) == 0
    document = json.loads(trace.read_text())
    assert set(document) == {"traceEvents", "otherData", "displayTimeUnit"}
    assert document["otherData"]["seed"] == 42
    real = [e for e in document["traceEvents"] if e["ph"] != "M"]
    assert real
    for event in real:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


def test_run_rejects_unknown_trace_format(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "--trace", str(tmp_path / "t"), "--trace-format", "xml"])


def test_run_with_profile_prints_report(capsys):
    assert main(["run", "--profile", *QUICK]) == 0
    out = capsys.readouterr().out
    assert "event-loop profile:" in out
    assert "wall" in out


def test_run_with_spo_cuts(capsys):
    assert main(["run", "--spo-at", "6", "--spo-random", "1", *QUICK]) == 0
    out = capsys.readouterr().out
    assert "power cut at" in out
    assert "recovered" in out
    assert "survived 2 power cuts" in out
    assert "IOPS" in out and "WAF" in out


def test_run_rejects_negative_spo_args():
    with pytest.raises(SystemExit):
        main(["run", "--spo-at", "-1", *QUICK])
    with pytest.raises(SystemExit):
        main(["run", "--spo-random", "-2", *QUICK])


def test_crash_sweep_command(capsys):
    args = ["crash-sweep", "--blocks", "96", "--pages-per-block", "16",
            "--measure", "5", "--points", "6", "--stride", "192"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "6/6 points recovered consistently" in out


def test_sweep_suffixes_traces_per_scenario(tmp_path, capsys):
    trace = tmp_path / "sweep.jsonl"
    args = ["sweep", "--workload", "YCSB", "--blocks", "64",
            "--pages-per-block", "8", "--warmup", "0", "--measure", "1",
            "--trace", str(trace)]
    assert main(args) == 0
    written = sorted(p.name for p in tmp_path.glob("sweep-*.jsonl"))
    assert len(written) == 4
    for path in tmp_path.glob("sweep-*.jsonl"):
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert "fault_profile" in header
