"""Tests for the scenario runner (small scale, quick)."""

import pytest

from repro.core.policies import FixedReservePolicy
from repro.experiments.runner import (
    POLICY_FACTORIES,
    ScenarioSpec,
    run_policy_comparison,
    run_scenario,
)


def quick_spec(**kwargs):
    defaults = dict(
        workload="YCSB",
        policy="L-BGC",
        blocks=256,
        pages_per_block=16,
        warmup_s=5,
        measure_s=15,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def test_policy_factories_cover_fig7():
    assert set(POLICY_FACTORIES) == {"L-BGC", "A-BGC", "ADP-GC", "JIT-GC"}


def test_run_scenario_produces_metrics():
    metrics = run_scenario(quick_spec())
    assert metrics.policy == "L-BGC"
    assert metrics.workload == "YCSB"
    assert metrics.iops > 0
    assert metrics.waf >= 1.0
    assert 0.0 <= metrics.buffered_fraction <= 1.0


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        run_scenario(quick_spec(workload="nope"))


def test_unknown_policy_rejected():
    with pytest.raises(KeyError):
        run_scenario(quick_spec(policy="nope"))


def test_custom_policy_factory():
    spec = quick_spec().with_policy("custom", lambda: FixedReservePolicy(0.75))
    metrics = run_scenario(spec)
    assert metrics.policy == "FIXED-0.75OP"


def test_with_policy_preserves_everything_else():
    spec = quick_spec(seed=99)
    other = spec.with_policy("A-BGC")
    assert other.seed == 99
    assert other.workload == spec.workload
    assert other.policy == "A-BGC"
    assert spec.policy == "L-BGC"  # original untouched


def test_runs_are_deterministic():
    a = run_scenario(quick_spec())
    b = run_scenario(quick_spec())
    assert a.iops == b.iops
    assert a.waf == b.waf
    assert a.host_pages_written == b.host_pages_written


def test_comparison_runs_identical_workload():
    spec = quick_spec()
    results = run_policy_comparison(
        spec,
        {
            "L-BGC": POLICY_FACTORIES["L-BGC"],
            "A-BGC": POLICY_FACTORIES["A-BGC"],
        },
    )
    assert set(results) == {"L-BGC", "A-BGC"}
    for name, metrics in results.items():
        assert metrics.policy == name
