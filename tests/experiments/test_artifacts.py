"""Micro-scale smoke tests for the per-artifact experiment modules.

Full-fidelity runs live in benchmarks/; these verify the harness logic
(sweeps, normalization, formatting) at a tiny scale.
"""

import pytest

from repro.experiments import (
    ScenarioSpec,
    run_fig2,
    run_fig7,
    run_manager_laziness,
    run_sip_ablation,
    run_table1,
    run_table2,
    run_table3,
)

MICRO = ScenarioSpec(blocks=192, pages_per_block=16, warmup_s=4, measure_s=10)


def micro(workload="YCSB"):
    spec = ScenarioSpec(**{**MICRO.__dict__})
    spec.workload = workload
    spec.workload_kwargs = {}
    return spec


def test_fig2_micro():
    result = run_fig2(micro(), workloads=("YCSB",), reserve_points=(0.5, 1.5))
    iops = result.normalized_iops("YCSB")
    waf = result.normalized_waf("YCSB")
    assert iops[1.5] == pytest.approx(1.0)
    assert waf[1.5] == pytest.approx(1.0)
    assert result.iops_spread("YCSB") >= 1.0
    text = result.format()
    assert "Fig 2(a)" in text and "Fig 2(b)" in text


def test_fig7_micro():
    result = run_fig7(micro(), workloads=("TPC-C",))
    normalized = result.normalized_iops("TPC-C")
    assert set(normalized) == {"L-BGC", "A-BGC", "ADP-GC", "JIT-GC"}
    assert normalized["A-BGC"] == pytest.approx(1.0)
    assert result.mean_iops_gain_over("JIT-GC", "L-BGC") > 0
    assert "Fig 7(a)" in result.format()


def test_table1_micro():
    result = run_table1(micro(), workloads=("TPC-C",))
    assert result.buffered_pct["TPC-C"] < 5.0
    assert result.direct_pct("TPC-C") > 95.0
    assert "Table 1" in result.format()


def test_table2_micro():
    result = run_table2(micro(), workloads=("YCSB",))
    for policy in ("JIT-GC", "ADP-GC"):
        assert 0.0 <= result.accuracy_pct[policy]["YCSB"] <= 100.0
    assert "Table 2" in result.format()


def test_table3_micro():
    result = run_table3(micro(), workloads=("YCSB",))
    assert 0.0 <= result.filtered_pct["YCSB"] <= 100.0
    assert "Table 3" in result.format()


def test_ablation_micro():
    result = run_sip_ablation(micro("Postmark"))
    assert set(result.raw) == {"JIT-GC (SIP)", "JIT-GC (no SIP)"}
    laziness = run_manager_laziness(micro("TPC-C"))
    assert "pure deferral" in laziness.raw
