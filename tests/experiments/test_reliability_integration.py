"""End-to-end tests for the reliability subsystem under the scenario runner.

The PR's acceptance criteria live here:

* ``--reliability off`` leaves run metrics bit-identical to the
  reliability-free build (compared field-for-field on the wire dict);
* the realistic ``mlc-20nm`` profile is quiescent over a short run --
  same perf numbers, only the fast-read counter moves;
* under accelerated retention (``mlc-20nm-accel``) a GC-heavy run ends
  with **zero** UECCs when the scrubber runs and **at least one** when
  it is disabled -- the scrubber demonstrably prevents data loss;
* the lifetime report projects years-to-ECC-cliff per policy.
"""

import dataclasses

import pytest

from repro.experiments import (
    POLICY_FACTORIES,
    ScenarioSpec,
    gc_heavy_spec,
    run_lifetime_report,
    run_scenario,
)
from repro.metrics.collector import RunMetrics
from repro.nand.reliability import RELIABILITY_PROFILES

#: RunMetrics fields introduced by the reliability subsystem: the only
#: ones allowed to differ between an off run and a quiescent armed run.
RELIABILITY_FIELDS = {
    "ecc_fast_reads",
    "ecc_retry_reads",
    "ecc_soft_decodes",
    "uecc_count",
    "ecc_retry_histogram",
    "scrub_blocks_refreshed",
    "scrub_pages_migrated",
}


def small_spec(**kwargs) -> ScenarioSpec:
    return gc_heavy_spec(
        blocks=64, pages_per_block=32, warmup_s=1, measure_s=2, seed=7, **kwargs
    )


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
def test_spec_key_untouched_without_reliability():
    spec = small_spec()
    assert spec.reliability is None
    assert spec.reliability_tag() == "off"
    assert "/rel-" not in spec.key()


def test_spec_key_gains_reliability_suffix():
    spec = small_spec(reliability="mlc-20nm")
    assert spec.reliability_tag() == "mlc-20nm"
    assert spec.key().endswith("/rel-mlc-20nm")


def test_spec_tag_for_profile_instance():
    profile = RELIABILITY_PROFILES["mlc-20nm-accel"]
    spec = small_spec(reliability=profile)
    assert spec.reliability_tag() == "mlc-20nm-accel"


def test_trace_header_carries_reliability_tag():
    assert small_spec(reliability="mlc-20nm").trace_header()["reliability"] == "mlc-20nm"
    assert small_spec().trace_header()["reliability"] == "off"


# ----------------------------------------------------------------------
# Off-equivalence
# ----------------------------------------------------------------------
def test_quiescent_profile_leaves_perf_metrics_identical():
    """mlc-20nm over a short run: same numbers, only bookkeeping moves.

    The realistic profile's thresholds sit months of retention away from
    a seconds-long simulation, so the ladder never escalates, no latency
    is added and no RNG stream is consumed: every wire field outside the
    new reliability counters must match the reliability-off run exactly.
    """
    off = run_scenario(small_spec()).to_wire()
    armed = run_scenario(small_spec(reliability="mlc-20nm")).to_wire()
    assert set(off) == set(armed)
    for key in set(off) - RELIABILITY_FIELDS:
        assert off[key] == armed[key], f"field {key} diverged"
    # Off runs carry zeroed reliability counters ...
    assert off["ecc_fast_reads"] == 0
    assert off["uecc_count"] == 0
    assert off["ecc_retry_histogram"] == {}
    # ... the armed-but-quiescent run counts fast reads and nothing else.
    assert armed["ecc_fast_reads"] > 0
    assert armed["ecc_retry_reads"] == 0
    assert armed["uecc_count"] == 0
    assert armed["scrub_blocks_refreshed"] == 0


def test_off_runs_are_reproducible():
    assert (
        run_scenario(small_spec()).to_wire() == run_scenario(small_spec()).to_wire()
    )


# ----------------------------------------------------------------------
# Acceptance: the scrubber prevents the UECCs it exists to prevent
# ----------------------------------------------------------------------
def test_scrubber_prevents_uecc_under_accelerated_retention():
    accel = RELIABILITY_PROFILES["mlc-20nm-accel"]
    with_scrub = run_scenario(gc_heavy_spec(measure_s=30, reliability=accel))
    without = run_scenario(
        gc_heavy_spec(measure_s=30, reliability=dataclasses.replace(accel, scrub=False))
    )
    # Scrubber off: un-refreshed data decays past the ladder -- data lost.
    assert without.uecc_count > 0
    assert without.scrub_blocks_refreshed == 0
    # Scrubber on: endangered blocks relocate before the cliff.
    assert with_scrub.uecc_count == 0
    assert with_scrub.scrub_blocks_refreshed > 0
    assert with_scrub.scrub_pages_migrated > 0
    # The ladder was genuinely exercised, not bypassed.
    assert with_scrub.ecc_retry_reads > 0
    assert with_scrub.ecc_retry_histogram


# ----------------------------------------------------------------------
# Wire round-trip for the new metrics
# ----------------------------------------------------------------------
def _metrics(**kwargs) -> RunMetrics:
    base = dict(
        policy="JIT-GC",
        workload="synthetic",
        duration_ns=1,
        iops=0.0,
        waf=1.0,
        host_pages_written=0,
        gc_pages_migrated=0,
        fgc_invocations=0,
        fgc_time_ns=0,
        bgc_blocks=0,
        erases=0,
    )
    base.update(kwargs)
    return RunMetrics(**base)


def test_run_metrics_histogram_survives_wire_round_trip():
    metrics = _metrics(
        uecc_count=2,
        ecc_retry_reads=7,
        ecc_retry_histogram={"1": 4, "3": 3},
        scrub_blocks_refreshed=5,
    )
    restored = RunMetrics.from_wire(metrics.to_wire())
    assert restored.ecc_retry_histogram == {"1": 4, "3": 3}
    assert restored.uecc_count == 2
    assert restored.scrub_blocks_refreshed == 5


def test_run_metrics_from_wire_tolerates_missing_histogram():
    wire = _metrics().to_wire()
    del wire["ecc_retry_histogram"]
    assert RunMetrics.from_wire(wire).ecc_retry_histogram == {}


# ----------------------------------------------------------------------
# Lifetime report
# ----------------------------------------------------------------------
def test_lifetime_report_rejects_off_profile():
    with pytest.raises(ValueError, match="no ECC cliff"):
        run_lifetime_report(spec=small_spec(), reliability_profile="off")


def test_lifetime_report_rejects_bad_write_rate():
    with pytest.raises(ValueError, match="drive_writes_per_day"):
        run_lifetime_report(spec=small_spec(), drive_writes_per_day=0.0)


def test_lifetime_report_projects_policies():
    policies = {
        "JIT-GC": POLICY_FACTORIES["JIT-GC"],
        "A-BGC": POLICY_FACTORIES["A-BGC"],
    }
    report = run_lifetime_report(spec=small_spec(), policies=policies)
    assert set(report.projections) == {"JIT-GC", "A-BGC"}
    for name, projection in report.projections.items():
        assert projection.max_pe_cycles > 0
        assert projection.years > 0
        # years inversely proportional to measured WAF, shared endurance.
        assert projection.waf == max(1.0, report.results[name].waf)
    best = report.best_policy()
    assert report.projections[best].years == max(
        p.years for p in report.projections.values()
    )
    table = report.format()
    assert "Lifetime projection" in table
    assert "JIT-GC" in table and "A-BGC" in table
