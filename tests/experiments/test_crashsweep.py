"""Tests for the crash-point sweep harness and live SPO runs."""

import pytest

from repro.experiments.crashsweep import (
    gc_heavy_spec,
    merge_phase_metrics,
    run_crash_sweep,
    run_scenario_with_spo,
    verify_crash_point,
)
from repro.experiments.runner import ScenarioSpec, _run_scenario_host
from repro.faults.powerloss import SpoPlan
from repro.metrics.collector import RunMetrics
from repro.obs import ObservabilityConfig
from repro.sim.simtime import SECOND


def small_spec(**kwargs):
    defaults = dict(blocks=96, pages_per_block=16, measure_s=6, seed=9)
    defaults.update(kwargs)
    return gc_heavy_spec(**defaults)


# ----------------------------------------------------------------------
# The exhaustive sweep
# ----------------------------------------------------------------------
def test_sweep_verifies_every_point():
    result = run_crash_sweep(small_spec(), points=12, stride_events=192)
    assert result.ok()
    assert len(result.points) == 12
    assert "12/12" in result.summary()
    # The sweep hit GC-active states: torn frontier pages were seen and
    # every recovery actually swept programmed pages.
    assert sum(p.torn_pages for p in result.points) > 0
    assert all(p.pages_scanned > 0 and p.scan_ns > 0 for p in result.points)
    # Points advance in simulated time.
    times = [p.t_ns for p in result.points]
    assert times == sorted(times)


def test_sweep_composes_with_fault_profiles():
    result = run_crash_sweep(
        small_spec(fault_profile="light"), points=8, stride_events=192
    )
    assert result.ok()


def test_sweep_reports_progress():
    seen = []
    run_crash_sweep(small_spec(), points=3, stride_events=128, progress=seen.append)
    assert len(seen) == 3 and all(p.ok for p in seen)


def test_trim_heavy_checkpointed_sweep_with_nested_points():
    # The durable-metadata path end to end: a TRIM-heavy synthetic
    # workload over a checkpointed device, every other point doubly
    # crashed (power cut again during the recovery's own checkpoint
    # write).  Every point must still recover bit-identically -- in
    # particular no TRIMmed page may resurrect.
    spec = small_spec(trim_heavy=True, checkpoint_interval=512)
    result = run_crash_sweep(spec, points=8, stride_events=192, nested_every=2)
    assert result.ok()
    assert len(result.points) == 8
    nested = [p for p in result.points if p.nested]
    assert len(nested) == 4
    assert all(p.ok for p in nested)


def test_nested_points_work_without_checkpoints():
    # nested_every on an un-checkpointed spec: the nested point tears
    # the recovery's own checkpoint, so the second power-on must fall
    # all the way back to the full scan -- and still verify.
    result = run_crash_sweep(small_spec(), points=4, stride_events=192,
                             nested_every=1)
    assert result.ok()
    assert all(p.nested for p in result.points)


def test_verify_crash_point_leaves_live_ftl_untouched():
    spec = small_spec()
    _, host = _run_scenario_host(spec)
    before = host.ftl.page_map.l2p_snapshot()
    torn_before = host.ftl.nand.torn_pages
    report = verify_crash_point(host.ftl, spec.make_config())
    assert report.pages_scanned > 0
    assert (host.ftl.page_map.l2p_snapshot() == before).all()
    assert host.ftl.nand.torn_pages == torn_before
    host.ftl.invariant_check()


# ----------------------------------------------------------------------
# Live SPO runs
# ----------------------------------------------------------------------
def test_spo_run_survives_cuts_and_merges_phases():
    spec = small_spec()
    cut_t = (spec.warmup_s + 2) * SECOND
    outcome = run_scenario_with_spo(spec, SpoPlan(at_ns=(cut_t,), random_cuts=1, seed=5))
    assert len(outcome.cuts) == 2
    assert len(outcome.reports) == 2
    assert len(outcome.phases) == 3
    m = outcome.metrics
    assert m.spo_count == 2
    assert m.recovery_time_ns == sum(r.duration_ns for r in outcome.reports)
    assert m.host_pages_written == sum(p.host_pages_written for p in outcome.phases)
    assert m.duration_ns == sum(p.duration_ns for p in outcome.phases)
    assert m.iops > 0
    # Every recovery rebuilt a non-trivial mapping.
    assert all(r.mapped_lpns > 0 for r in outcome.reports)


def test_spo_cut_during_recovery_tears_the_post_checkpoint():
    # Two cuts 50 us apart on a checkpointed TRIM-heavy run: the second
    # lands long before the first recovery is host-ready, so it must
    # tear the (not yet durable) post-recovery checkpoint and the second
    # power-on must fall back past it.
    spec = small_spec(measure_s=4, trim_heavy=True, checkpoint_interval=512)
    cut_t = (spec.warmup_s + 1) * SECOND
    outcome = run_scenario_with_spo(
        spec, SpoPlan(at_ns=(cut_t, cut_t + 50_000))
    )
    assert len(outcome.cuts) == 2
    assert len(outcome.reports) == 2
    first, second = outcome.reports
    # Both recoveries ride the checkpoint fast path...
    assert not first.full_scan and not second.full_scan
    assert first.post_checkpoint_ns > 0
    # ...but the second had to discard the torn post-recovery checkpoint.
    assert second.torn_meta_records >= 1
    assert second.checkpoint_fallbacks >= 1
    assert outcome.metrics.spo_count == 2
    # The TRIM-heavy workload's discards are counted across phases.
    assert outcome.metrics.trim_count > 0


def test_spo_run_is_seed_deterministic():
    spec = small_spec(measure_s=4)
    plan = SpoPlan(random_cuts=1, seed=11)
    a = run_scenario_with_spo(spec, plan)
    b = run_scenario_with_spo(spec, plan)
    assert a.metrics == b.metrics
    assert [c.t_ns for c in a.cuts] == [c.t_ns for c in b.cuts]


def test_spo_records_recovery_audit():
    spec = small_spec(measure_s=4)
    spec.obs = ObservabilityConfig(audit=True, metrics_interval_ns=0)
    outcome = run_scenario_with_spo(
        spec, SpoPlan(at_ns=((spec.warmup_s + 1) * SECOND,))
    )
    assert len(outcome.cuts) == 1


def test_spo_cuts_outside_window_are_skipped():
    spec = small_spec(measure_s=4)
    end = (spec.warmup_s + spec.measure_s) * SECOND
    outcome = run_scenario_with_spo(spec, SpoPlan(at_ns=(end + SECOND,)))
    assert outcome.cuts == []
    assert outcome.metrics.spo_count == 0
    assert len(outcome.phases) == 1


# ----------------------------------------------------------------------
# Phase merging
# ----------------------------------------------------------------------
def _metrics(**kwargs):
    defaults = dict(
        policy="JIT-GC",
        workload="YCSB",
        duration_ns=SECOND,
        iops=1000.0,
        waf=2.0,
        host_pages_written=100,
        gc_pages_migrated=100,
        fgc_invocations=1,
        fgc_time_ns=10,
        bgc_blocks=2,
        erases=5,
    )
    defaults.update(kwargs)
    return RunMetrics(**defaults)


def test_merge_phase_metrics_weights_and_sums():
    a = _metrics(duration_ns=1 * SECOND, iops=1000.0, p99_latency_ns=50)
    b = _metrics(
        duration_ns=3 * SECOND,
        iops=2000.0,
        host_pages_written=300,
        gc_pages_migrated=100,
        p99_latency_ns=80,
        device_read_only=True,
        trim_count=25,
    )
    merged = merge_phase_metrics([a, b], spo_count=1, recovery_time_ns=42)
    assert merged.duration_ns == 4 * SECOND
    assert merged.iops == pytest.approx(1750.0)
    assert merged.host_pages_written == 400
    assert merged.gc_pages_migrated == 200
    assert merged.waf == pytest.approx(600 / 400)
    assert merged.p99_latency_ns == 80
    assert merged.device_read_only
    assert merged.trim_count == 25
    assert merged.spo_count == 1 and merged.recovery_time_ns == 42
    # Wire format round-trips the new fields.
    assert RunMetrics.from_wire(merged.to_wire()) == merged


def test_merge_requires_at_least_one_phase():
    with pytest.raises(ValueError):
        merge_phase_metrics([])


# ----------------------------------------------------------------------
# Fault-aware batching regression (the PR 4 gate fix): a faulted run
# must still batch its clean host-write extents instead of degrading
# the whole run to per-page writes.
# ----------------------------------------------------------------------
def test_light_fault_runs_still_batch_clean_extents():
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        blocks=96,
        pages_per_block=16,
        warmup_s=2,
        measure_s=4,
        seed=3,
        fault_profile="light",
    )
    _, host = _run_scenario_host(spec)
    assert host.ftl.supports_batched_writes
    assert host.ftl.nand.batch_programs > 0
    assert host.ftl.nand.fault_injector.total_faults() >= 0
