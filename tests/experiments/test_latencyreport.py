"""Tests for the latency-report pipeline and HDR-exact phase merging."""

import pytest

from repro.experiments.crashsweep import gc_heavy_spec, merge_phase_metrics
from repro.experiments.latencyreport import (
    LatencyReportResult,
    latency_spec,
    run_latency_report,
)
from repro.experiments.runner import POLICY_FACTORIES, run_scenario
from repro.metrics.collector import RunMetrics
from repro.metrics.hdr import HdrHistogram
from repro.metrics.latency import reservoir_reference
from repro.obs.attribution import CAUSES
from repro.sim.simtime import SECOND


def _tiny_spec(**kwargs):
    defaults = dict(blocks=96, pages_per_block=16, measure_s=4, seed=11)
    defaults.update(kwargs)
    return latency_spec(gc_heavy_spec(**defaults))


# ----------------------------------------------------------------------
# The spec builder
# ----------------------------------------------------------------------
def test_latency_spec_enables_tail_attribution():
    spec = latency_spec(threshold_pct=98.0)
    assert spec.obs.audit
    assert spec.obs.tail_attribution
    assert spec.obs.tail_threshold_pct == 98.0


# ----------------------------------------------------------------------
# End-to-end: one short GC-heavy run with attribution on
# ----------------------------------------------------------------------
def test_tail_fields_populated_end_to_end():
    metrics = run_scenario(_tiny_spec())
    assert metrics.host_pages_written > 0
    assert metrics.latency_hist is not None
    assert metrics.p999_latency_ns >= metrics.p99_latency_ns >= metrics.p50_latency_ns
    assert metrics.max_latency_ns >= metrics.p9999_latency_ns
    assert metrics.tail_threshold_pct == 99.0
    assert metrics.tail_threshold_ns > 0
    assert metrics.tail_slow_ops > 0
    # Every cause appears in the table and the counts account for every
    # slow op -- the attribution engine's catch-all contract.
    assert set(metrics.tail_causes) == set(CAUSES)
    assert (
        sum(count for count, _ in metrics.tail_causes.values())
        == metrics.tail_slow_ops
    )
    # The whole report survives the --jobs wire format.
    assert RunMetrics.from_wire(metrics.to_wire()) == metrics


def test_report_formats_and_accounts():
    policies = {name: POLICY_FACTORIES[name] for name in ("JIT-GC", "L-BGC")}
    result = run_latency_report(spec=_tiny_spec(), policies=policies)
    assert isinstance(result, LatencyReportResult)
    assert result.attribution_ok()
    text = result.format()
    for needle in ("p999", "fgc-stall", "JIT-GC", "L-BGC", "slow"):
        assert needle in text


# ----------------------------------------------------------------------
# HDR-exact phase merging (the crashsweep satellite fix)
# ----------------------------------------------------------------------
def _phase(latencies, duration_ns=SECOND, **kwargs):
    hist = HdrHistogram()
    for value in latencies:
        hist.record(value)
    pcts = hist.percentiles([50.0, 95.0, 99.0, 99.9, 99.99])
    return RunMetrics(
        policy="JIT-GC",
        workload="YCSB",
        duration_ns=duration_ns,
        iops=1000.0,
        waf=1.0,
        host_pages_written=len(latencies),
        gc_pages_migrated=0,
        fgc_invocations=0,
        fgc_time_ns=0,
        bgc_blocks=0,
        erases=0,
        mean_latency_ns=hist.mean(),
        p50_latency_ns=pcts[50.0],
        p95_latency_ns=pcts[95.0],
        p99_latency_ns=pcts[99.0],
        p999_latency_ns=pcts[99.9],
        p9999_latency_ns=pcts[99.99],
        max_latency_ns=hist.max(),
        latency_hist=hist.to_wire(),
        **kwargs,
    )


def test_merge_phase_metrics_is_exact_with_histograms():
    # Phase A holds the fast ops, phase B the slow tail.  A max-of-
    # phase-percentiles merge cannot see that B's samples shift A's
    # quantile ranks; the histogram merge can.
    fast = list(range(100, 200))
    slow = [10_000, 20_000, 500_000]
    merged = merge_phase_metrics([_phase(fast), _phase(slow)])

    reference = HdrHistogram()
    for value in fast + slow:
        reference.record(value)
    expect = reference.percentiles([50.0, 95.0, 99.0, 99.9, 99.99])
    assert merged.latency_hist == reference.to_wire()
    assert merged.p50_latency_ns == expect[50.0]
    assert merged.p95_latency_ns == expect[95.0]
    assert merged.p99_latency_ns == expect[99.0]
    assert merged.p999_latency_ns == expect[99.9]
    assert merged.p9999_latency_ns == expect[99.99]
    assert merged.max_latency_ns == 500_000
    assert merged.mean_latency_ns == pytest.approx(reference.mean())
    # Rehydration round-trips.
    assert merged.latency_histogram() == reference


def test_merge_phase_metrics_sums_tail_attribution():
    a = _phase(
        [100] * 10,
        tail_threshold_pct=99.0,
        tail_threshold_ns=90,
        tail_slow_ops=2,
        tail_causes={"fgc-stall": [2, 400]},
    )
    b = _phase(
        [100] * 10,
        tail_threshold_pct=99.0,
        tail_threshold_ns=110,
        tail_slow_ops=3,
        tail_causes={"fgc-stall": [1, 150], "media-queueing": [2, 300]},
    )
    merged = merge_phase_metrics([a, b])
    assert merged.tail_slow_ops == 5
    assert merged.tail_threshold_ns == 110
    assert merged.tail_causes["fgc-stall"] == [3, 550]
    assert merged.tail_causes["media-queueing"] == [2, 300]


def test_merge_phase_metrics_falls_back_without_histograms():
    # Phases that predate the HDR pipeline (latency_hist=None) still
    # merge via the legacy max-of-percentiles estimate.
    a = _phase([100] * 10)
    b = _phase([200] * 10)
    b.latency_hist = None
    merged = merge_phase_metrics([a, b])
    assert merged.latency_hist is None
    assert merged.p99_latency_ns == max(a.p99_latency_ns, b.p99_latency_ns)


# ----------------------------------------------------------------------
# Reservoir oracle equivalence: recording must never perturb the run
# ----------------------------------------------------------------------
def test_reservoir_reference_run_is_bit_identical():
    # measure_s=2 keeps the op count under the 4096-slot reservoir, so
    # the oracle's nearest-rank percentiles are exact, not sampled.
    spec = _tiny_spec(measure_s=2)
    hdr_metrics = run_scenario(spec)
    with reservoir_reference():
        oracle = run_scenario(spec)
    assert hdr_metrics.latency_histogram().count <= 4096
    # Simulation outcomes are bit-identical: the recorder choice only
    # changes how latencies are summarised, never what the host did.
    for field in (
        "duration_ns",
        "host_pages_written",
        "gc_pages_migrated",
        "fgc_invocations",
        "bgc_blocks",
        "erases",
        "waf",
        "iops",
        "tail_slow_ops",
        "tail_causes",
        "max_latency_ns",
    ):
        assert getattr(hdr_metrics, field) == getattr(oracle, field), field
    # And the HDR percentiles sit within the histogram's relative-error
    # bound of the exact reservoir values.
    hist = hdr_metrics.latency_histogram()
    for hdr_value, exact in (
        (hdr_metrics.p50_latency_ns, oracle.p50_latency_ns),
        (hdr_metrics.p99_latency_ns, oracle.p99_latency_ns),
        (hdr_metrics.p999_latency_ns, oracle.p999_latency_ns),
    ):
        assert abs(hdr_value - exact) <= max(1, int(exact * hist.relative_error))
