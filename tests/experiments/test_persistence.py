"""Tests for result persistence."""

import pytest

from repro.experiments.persistence import (
    SCHEMA,
    load_results,
    metrics_from_dict,
    metrics_to_dict,
    save_results,
)
from repro.metrics.collector import RunMetrics


def sample(policy="JIT-GC", iops=123.5):
    return RunMetrics(
        policy=policy,
        workload="YCSB",
        duration_ns=10**9,
        iops=iops,
        waf=1.25,
        host_pages_written=1000,
        gc_pages_migrated=250,
        fgc_invocations=3,
        fgc_time_ns=5_000_000,
        bgc_blocks=42,
        erases=50,
        prediction_accuracy_pct=91.5,
        sip_selections=40,
        sip_filtered=6,
        buffered_fraction=0.88,
    )


def test_dict_roundtrip():
    original = sample()
    payload = metrics_to_dict(original)
    assert payload["schema"] == SCHEMA
    restored = metrics_from_dict(payload)
    assert restored == original


def test_schema_rejected():
    payload = metrics_to_dict(sample())
    payload["schema"] = "other.v9"
    with pytest.raises(ValueError):
        metrics_from_dict(payload)


def test_single_file_roundtrip(tmp_path):
    path = tmp_path / "one.json"
    assert save_results(sample(), path) == 1
    assert load_results(path) == sample()


def test_list_roundtrip(tmp_path):
    path = tmp_path / "many.json"
    items = [sample("L-BGC", 10.0), sample("A-BGC", 20.0)]
    assert save_results(items, path) == 2
    assert load_results(path) == items


def test_mapping_roundtrip(tmp_path):
    path = tmp_path / "map.json"
    mapping = {"L-BGC": sample("L-BGC"), "JIT-GC": sample("JIT-GC")}
    assert save_results(mapping, path) == 2
    restored = load_results(path)
    assert set(restored) == {"L-BGC", "JIT-GC"}
    assert restored["JIT-GC"].policy == "JIT-GC"
