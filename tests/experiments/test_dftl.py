"""End-to-end tests for the flash-resident (DFTL) mapping mode: crash
consistency of the translation tier, warm-start composition, and the
metrics/runner plumbing."""

import numpy as np

from repro.analytic.warmstart import synthesize_steady_state
from repro.experiments.crashsweep import gc_heavy_spec, run_crash_sweep
from repro.experiments.runner import run_scenario
from repro.ftl.mapping import UNMAPPED, CachedPageMap
from repro.ssd.config import SsdConfig


def dftl_spec(**kwargs):
    defaults = dict(
        blocks=96, pages_per_block=16, measure_s=4, seed=9, mapping="dftl"
    )
    defaults.update(kwargs)
    return gc_heavy_spec(**defaults)


# ----------------------------------------------------------------------
# Crash consistency: GTD + CMT + three torn frontiers
# ----------------------------------------------------------------------
def test_dftl_crash_sweep_recovers_every_point():
    result = run_crash_sweep(dftl_spec(), points=8, stride_events=192)
    assert result.ok()
    assert result.passed == len(result.points) == 8


def test_dftl_crash_sweep_with_checkpoints():
    result = run_crash_sweep(
        dftl_spec(checkpoint_interval=2048), points=6, stride_events=192
    )
    assert result.ok()


# ----------------------------------------------------------------------
# Scenario runner plumbing
# ----------------------------------------------------------------------
def test_runner_reports_translation_tier_metrics():
    metrics = run_scenario(dftl_spec(measure_s=3))
    assert metrics.mapping_mode == "dftl"
    assert metrics.cmt_hits + metrics.cmt_misses > 0
    assert metrics.trans_pages_written > 0
    assert 0.0 < metrics.translation_waf_share < 1.0
    assert 0.0 <= metrics.cmt_hit_rate() <= 1.0


def test_dram_runner_metrics_stay_clean():
    metrics = run_scenario(dftl_spec(mapping="dram", measure_s=3))
    assert metrics.mapping_mode == "dram"
    assert metrics.trans_pages_written == 0
    assert metrics.translation_waf_share == 0.0


def test_spec_key_distinguishes_mapping_modes():
    assert "map-dftl" in dftl_spec().key()
    assert "map-" not in dftl_spec(mapping="dram").key()


# ----------------------------------------------------------------------
# Analytic warm start composes with dftl
# ----------------------------------------------------------------------
def test_analytic_warmstart_lays_out_translation_tier():
    cfg = SsdConfig.small(blocks=96, pages_per_block=16, mapping_mode="dftl")
    working_set = cfg.space_model().user_pages * 3 // 4
    ftl, prediction = synthesize_steady_state(
        cfg, seed=11, working_set_pages=working_set
    )
    assert isinstance(ftl.page_map, CachedPageMap)
    gtd = ftl.page_map.gtd_snapshot()
    spanned = -(-working_set // ftl.page_map.entries_per_tpage)
    assert int((gtd != UNMAPPED).sum()) == spanned
    ftl.invariant_check()

    # The synthesized image must be recoverable by construction: a
    # power cut right after synthesis rebuilds the same L2P *and* GTD.
    recovered, report = cfg.recover_from(
        ftl.nand.capture_durable_state(), seed=11
    )
    assert np.array_equal(recovered.page_map.l2p_snapshot(),
                          ftl.page_map.l2p_snapshot())
    assert np.array_equal(recovered.page_map.gtd_snapshot(), gtd)
    assert report.trans_pages_mapped == spanned


def test_analytic_warmstart_dftl_scenario_runs():
    metrics = run_scenario(dftl_spec(warm_start="analytic", measure_s=3))
    assert metrics.mapping_mode == "dftl"
    assert metrics.waf >= 1.0
