"""End-to-end integration tests across the full stack."""

import pytest

from repro.core.policies import (
    AdaptiveGcPolicy,
    JitGcPolicy,
    aggressive_bgc_policy,
    lazy_bgc_policy,
)
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import BENCHMARKS, Region


def run_stack(policy, workload_name="YCSB", seconds=20, blocks=256, ppb=16):
    host = HostSystem(SsdConfig.small(blocks=blocks, pages_per_block=ppb), policy)
    working_set = host.user_pages // 2
    host.prefill(working_set)
    metrics = MetricsCollector(host, workload_name)
    workload = BENCHMARKS[workload_name](host, metrics, Region(0, working_set))
    workload.start()
    host.run_for(5 * SECOND)
    metrics.begin()
    host.run_for(seconds * SECOND)
    metrics.end()
    workload.stop()
    return host, metrics.results()


def test_full_stack_with_jit_gc_stays_consistent():
    host, result = run_stack(JitGcPolicy())
    host.ftl.invariant_check()
    assert result.iops > 0
    assert result.waf >= 1.0
    policy = host.policy
    assert policy.manager.decisions > 0
    assert policy.buffered_predictor.invocations > 0


def test_full_stack_with_all_policies():
    for policy in (lazy_bgc_policy(), aggressive_bgc_policy(), AdaptiveGcPolicy(), JitGcPolicy()):
        host, result = run_stack(policy, seconds=10)
        host.ftl.invariant_check()
        assert result.iops > 0


def test_prefill_ages_device_to_op_capacity():
    host = HostSystem(SsdConfig.small(blocks=256, pages_per_block=16), lazy_bgc_policy())
    working_set = host.user_pages // 2
    host.prefill(working_set)
    # Logically full: free capacity within ~2 blocks of the OP capacity.
    floor = host.ftl.space.op_pages
    assert floor <= host.ftl.free_pages() <= floor + 4 * 16
    assert host.ftl.used_pages() == working_set


def test_prefill_bounds_checked():
    host = HostSystem(SsdConfig.small(blocks=64, pages_per_block=8), lazy_bgc_policy())
    with pytest.raises(ValueError):
        host.prefill(host.user_pages + 1)


def test_device_never_loses_data_under_gc_pressure():
    """Write known values' addresses; after heavy churn and GC, every
    live mapping still resolves (read path exercises it)."""
    host, _ = run_stack(JitGcPolicy(), workload_name="Postmark", seconds=15)
    pm = host.ftl.page_map
    resolved = 0
    for lpn in range(0, host.user_pages, 97):
        ppn = pm.lookup(lpn)
        if ppn is not None:
            assert pm.is_valid(ppn)
            assert pm.lpn_of_ppn(ppn) == lpn
            resolved += 1
    assert resolved > 0


def test_wear_leveling_integration():
    config = SsdConfig.small(
        blocks=128, pages_per_block=16,
        enable_wear_leveling=True, wear_level_threshold=4,
    )
    host = HostSystem(config, lazy_bgc_policy())
    host.prefill(host.user_pages // 2)
    metrics = MetricsCollector(host, "YCSB")
    workload = BENCHMARKS["YCSB"](host, metrics, Region(0, host.user_pages // 2))
    workload.start()
    host.run_for(30 * SECOND)
    workload.stop()
    stats = host.ftl.nand.wear_stats()
    assert stats.total_erases > 0
    host.ftl.invariant_check()


def test_extended_interface_roundtrip_in_running_system():
    host, _ = run_stack(JitGcPolicy(), seconds=10)
    interface = host.policy.interface
    assert interface.commands_issued > 0
    assert interface.get_waf() >= 1.0
    assert interface.query_free_capacity() == host.ftl.free_bytes()
