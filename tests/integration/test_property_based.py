"""Property-based tests (hypothesis) on core data structures and the
FTL's fundamental invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdh import CumulativeDataHistogram
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import PageMap
from repro.ftl.space import SpaceModel
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=24)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# PageMap: arbitrary remap/unmap sequences preserve all invariants.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=15)),
        max_size=60,
    )
)
def test_pagemap_invariants_under_arbitrary_ops(ops):
    pm = PageMap(GEOMETRY, user_pages=16)
    next_ppn = iter(range(GEOMETRY.total_pages))
    for is_write, lpn in ops:
        if is_write:
            try:
                ppn = next(next_ppn)
            except StopIteration:
                break
            pm.remap(lpn, ppn)
        else:
            pm.unmap(lpn)
    pm.invariant_check()
    # Every mapped LPN resolves, and resolution round-trips.
    for lpn in range(16):
        ppn = pm.lookup(lpn)
        if ppn is not None:
            assert pm.lpn_of_ppn(ppn) == lpn


# ----------------------------------------------------------------------
# FTL: random write/trim traffic never corrupts state, data stays
# readable, and WAF is always >= 1.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    writes=st.integers(min_value=50, max_value=400),
)
def test_ftl_invariants_under_random_traffic(seed, writes):
    import random

    rng = random.Random(seed)
    ftl = PageMappedFtl(
        NandArray(GEOMETRY, TIMING),
        SpaceModel.from_op_ratio(GEOMETRY, op_ratio=0.25),
        fgc_watermark=2,
    )
    user = ftl.space.user_pages
    live = set()
    for _ in range(writes):
        action = rng.random()
        lpn = rng.randrange(user // 2)
        if action < 0.8:
            ftl.host_write_page(lpn)
            live.add(lpn)
        elif action < 0.9 and live:
            victim = rng.choice(sorted(live))
            ftl.trim([victim])
            live.discard(victim)
        else:
            ftl.host_read_page(lpn)
    ftl.invariant_check()
    assert ftl.used_pages() == len(live)
    assert ftl.stats.waf() >= 1.0
    # Every live page still resolves to a valid physical page.
    for lpn in sorted(live):
        ppn = ftl.page_map.lookup(lpn)
        assert ppn is not None
        assert ftl.page_map.is_valid(ppn)


# ----------------------------------------------------------------------
# CDH: percentile read-outs are monotone in the probability and bounded
# by the observation range.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    observations=st.lists(
        st.integers(min_value=0, max_value=10**7), min_size=1, max_size=40
    ),
    p_low=st.floats(min_value=0.05, max_value=0.5),
    p_high=st.floats(min_value=0.55, max_value=1.0),
)
def test_cdh_percentile_monotone_and_bounded(observations, p_low, p_high):
    cdh = CumulativeDataHistogram(bin_bytes=4096)
    for value in observations:
        cdh.observe(value)
    low = cdh.percentile_bytes(p_low)
    high = cdh.percentile_bytes(p_high)
    assert low <= high
    assert cdh.percentile_bytes(1.0) >= max(observations)


# ----------------------------------------------------------------------
# Simulator: arbitrary schedules dispatch in non-decreasing time order.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), max_size=50))
def test_simulator_dispatch_order(delays):
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# Bandwidth estimator: estimate always strictly positive and converges
# toward a constant observed rate.
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rate=st.integers(min_value=1000, max_value=10**9),
    prior=st.integers(min_value=1000, max_value=10**9),
)
def test_bandwidth_estimator_converges(rate, prior):
    from repro.sim.simtime import SECOND
    from repro.ssd.bandwidth import BandwidthEstimator

    est = BandwidthEstimator(prior_bytes_per_sec=float(prior), alpha=0.5)
    for _ in range(40):
        est.observe(rate, SECOND)
    assert est.bytes_per_second > 0
    assert abs(est.bytes_per_second - rate) / rate < 0.01
