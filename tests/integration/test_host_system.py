"""Tests for the HostSystem assembly."""

import pytest

from repro.core.policies import JitGcPolicy, NoBgcPolicy
from repro.host import HostSystem
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig


def test_default_assembly_ratios():
    config = SsdConfig.small(blocks=128, pages_per_block=16)
    host = HostSystem(config, NoBgcPolicy())
    # Default cache is 1/4 of the user capacity.
    assert host.cache.capacity_pages == pytest.approx(
        config.user_bytes // 4 // 4096, rel=0.01
    )
    assert host.flusher.nwb == 6
    assert host.user_pages == host.ftl.space.user_pages


def test_custom_flusher_constants():
    config = SsdConfig.small(blocks=128, pages_per_block=16)
    host = HostSystem(
        config, NoBgcPolicy(), flusher_period_ns=5 * SECOND, tau_expire_ns=30 * SECOND
    )
    assert host.flusher.period_ns == 5 * SECOND
    assert host.flusher.nwb == 6


def test_policy_attached_with_selector():
    config = SsdConfig.small(blocks=128, pages_per_block=16)
    policy = JitGcPolicy()
    host = HostSystem(config, policy)
    assert host.device.controller is policy
    assert policy.interface.device is host.device


def test_flusher_started_automatically():
    config = SsdConfig.small(blocks=128, pages_per_block=16)
    host = HostSystem(config, NoBgcPolicy())
    host.run_for(3 * SECOND)
    assert host.flusher.wakeups == 3


def test_run_for_advances_clock():
    host = HostSystem(SsdConfig.small(blocks=64, pages_per_block=8), NoBgcPolicy())
    host.run_for(7 * SECOND)
    assert host.sim.now == 7 * SECOND


def test_prefill_without_aging():
    host = HostSystem(SsdConfig.small(blocks=128, pages_per_block=16), NoBgcPolicy())
    host.prefill(100, age=False)
    assert host.ftl.used_pages() == 100
    # Without aging, free space is far above the OP floor.
    assert host.ftl.free_pages() > host.ftl.space.op_pages * 2


def test_seeded_streams_differ_between_seeds():
    config = SsdConfig.small(blocks=64, pages_per_block=8)
    a = HostSystem(config, NoBgcPolicy(), seed=1).streams.numpy("x").integers(0, 10**9)
    b = HostSystem(config, NoBgcPolicy(), seed=2).streams.numpy("x").integers(0, 10**9)
    assert a != b
