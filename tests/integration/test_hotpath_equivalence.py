"""Indexed hot paths must be bit-identical to the reference scans.

The incremental indexes (PERFORMANCE.md) are pure accelerations: the
page-cache expiry index, the predictor's interval histogram, the FTL's
valid-count and SIP-overlap indexes, and the parallel sweep executor
must all produce exactly the results of the original full-scan code.
These tests drive both implementations -- property-style on the data
structures, end-to-end on seed scenarios -- and assert equality of
everything observable: query results, RunMetrics, and the decision-audit
stream.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.core.buffered_predictor import BufferedWritePredictor
from repro.experiments.fig2 import fig2_specs
from repro.experiments.runner import ScenarioSpec, _run_scenario_host, run_sweep
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.ftl.victim import SipFilteredSelector
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming
from repro.obs import ObservabilityConfig
from repro.oskernel.cache import PageCache

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=24)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# Page cache: expiry index vs full scan on random op sequences.
# ----------------------------------------------------------------------
cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "invalidate", "writeback", "query"]),
        st.integers(min_value=0, max_value=31),  # lpn
        st.integers(min_value=0, max_value=40),  # time (may go backwards)
    ),
    max_size=80,
)


@settings(max_examples=80, deadline=None)
@given(ops=cache_ops, tau=st.integers(min_value=1, max_value=20))
def test_cache_expiry_index_matches_scan(ops, tau):
    indexed = PageCache(page_size=4096, capacity_bytes=64 * 4096, indexed=True)
    scan = PageCache(page_size=4096, capacity_bytes=64 * 4096, indexed=False)
    now = 0
    for op, lpn, t in ops:
        now = max(now, t)
        if op == "write":
            indexed.write_page(lpn, t)
            scan.write_page(lpn, t)
        elif op == "invalidate":
            indexed.invalidate([lpn])
            scan.invalidate([lpn])
        elif op == "writeback":
            if scan.contains_dirty(lpn):
                indexed.begin_writeback([lpn])
                scan.begin_writeback([lpn])
                indexed.complete_writeback([lpn])
                scan.complete_writeback([lpn])
        else:
            assert indexed.oldest_dirty() == scan.oldest_dirty()
            assert list(indexed.iter_oldest_dirty()) == scan.oldest_dirty_scan()
            got = {e.lpn for e in indexed.expired_dirty(now, tau)}
            want = {e.lpn for e in scan.expired_dirty_scan(now, tau)}
            assert got == want
    assert indexed.oldest_dirty() == scan.oldest_dirty_scan()
    assert {e.lpn for e in indexed.expired_dirty(now, tau)} == {
        e.lpn for e in scan.expired_dirty(now, tau)
    }


# ----------------------------------------------------------------------
# Predictor: incremental Dbuf histogram vs full rescans at flusher ticks.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),  # lpn
            st.integers(min_value=0, max_value=60),  # time
        ),
        max_size=60,
    ),
    ticks=st.lists(st.integers(min_value=0, max_value=14), min_size=1, max_size=6),
)
def test_predictor_incremental_dbuf_matches_scan(writes, ticks):
    period, tau = 5, 30
    indexed_cache = PageCache(4096, 128 * 4096, indexed=True)
    scan_cache = PageCache(4096, 128 * 4096, indexed=False)
    indexed = BufferedWritePredictor(indexed_cache, period, tau, incremental=True)
    scan = BufferedWritePredictor(scan_cache, period, tau, incremental=False)
    for lpn, t in writes:
        indexed_cache.write_page(lpn, t)
        scan_cache.write_page(lpn, t)
    for tick in sorted(ticks):
        now = tick * period
        a = indexed.predict(now)
        b = scan.predict(now)
        assert a.demands_bytes == b.demands_bytes
        assert a.sip.as_set() == b.sip.as_set()


# ----------------------------------------------------------------------
# FTL: valid-count index, SIP-overlap counters, and victim decisions
# agree with the scan implementation under random traffic.
# ----------------------------------------------------------------------
def _make_ftl(indexed: bool) -> PageMappedFtl:
    def build() -> PageMappedFtl:
        return PageMappedFtl(
            NandArray(GEOMETRY, TIMING),
            SpaceModel.from_op_ratio(GEOMETRY, 0.12),
            victim_selector=SipFilteredSelector(),
        )

    if indexed:
        return build()
    with perf.scan_reference():
        return build()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    writes=st.integers(min_value=50, max_value=300),
)
def test_ftl_indexes_match_scan_under_random_traffic(seed, writes):
    import random

    rng = random.Random(seed)
    indexed = _make_ftl(indexed=True)
    scan = _make_ftl(indexed=False)
    assert indexed.victim_index is not None and indexed.sip_index is not None
    assert scan.victim_index is None and scan.sip_index is None

    user_pages = indexed.space.user_pages
    for step in range(writes):
        lpn = rng.randrange(user_pages // 2)
        indexed.host_write_page(lpn)
        scan.host_write_page(lpn)
        if step % 17 == 0:
            sip = [rng.randrange(user_pages // 2) for _ in range(rng.randrange(8))]
            indexed.set_sip_list(sip)
            scan.set_sip_list(sip)
        if step % 13 == 0:
            assert indexed.has_victim() == scan.has_victim()
            if indexed.has_victim():
                a = indexed.collect_one_block(background=True)
                b = scan.collect_one_block(background=True)
                assert a == b
    # The index invariants hold, and both FTLs ended in the same state.
    indexed.invariant_check()
    scan.invariant_check()
    assert dict(indexed.victim_index.items()) == {
        int(block): scan.page_map.valid_count(int(block))
        for block in scan.gc_candidates()
    }
    assert indexed.stats.__dict__ == scan.stats.__dict__


# ----------------------------------------------------------------------
# End-to-end: fig2- and fig7-style seed scenarios are bit-identical
# (RunMetrics AND decision-audit streams) across the two paths.
# ----------------------------------------------------------------------
AUDIT_OBS = ObservabilityConfig(audit=True, metrics_interval_ns=0)


def _run_both(spec: ScenarioSpec):
    indexed_metrics, indexed_host = _run_scenario_host(spec)
    with perf.scan_reference():
        scan_metrics, scan_host = _run_scenario_host(spec)
    return (indexed_metrics, indexed_host.obs.audit), (scan_metrics, scan_host.obs.audit)


def _assert_identical(indexed, scan):
    indexed_metrics, indexed_audit = indexed
    scan_metrics, scan_audit = scan
    assert indexed_metrics == scan_metrics
    assert indexed_audit.manager_ticks == scan_audit.manager_ticks
    assert indexed_audit.victim_selections == scan_audit.victim_selections
    assert indexed_audit.faults == scan_audit.faults


def test_fig7_seed_scenario_bit_identical():
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        blocks=256,
        pages_per_block=32,
        warmup_s=10,
        measure_s=30,
        seed=7,
        obs=AUDIT_OBS,
    )
    indexed, scan = _run_both(spec)
    _assert_identical(indexed, scan)
    # The run actually exercised the hot paths under test.
    assert indexed[1].victim_selections


def test_fig2_seed_scenario_bit_identical():
    base = ScenarioSpec(
        blocks=256, pages_per_block=32, warmup_s=10, measure_s=20, seed=7, obs=AUDIT_OBS
    )
    specs = fig2_specs(base, workloads=("YCSB",), reserve_points=(1.5,))
    (spec,) = specs.values()
    indexed, scan = _run_both(spec)
    _assert_identical(indexed, scan)


# ----------------------------------------------------------------------
# Parallel executor: a --jobs run must agree with (and resume from) a
# serial run's checkpoint.
# ----------------------------------------------------------------------
def test_parallel_sweep_resumes_serial_checkpoint(tmp_path):
    base = ScenarioSpec(blocks=128, pages_per_block=32, warmup_s=5, measure_s=10, seed=3)
    first = [base.with_policy(name) for name in ("L-BGC", "JIT-GC")]
    checkpoint = os.fspath(tmp_path / "sweep.json")

    serial = run_sweep(first, checkpoint=checkpoint)
    assert serial.ok() and not serial.skipped

    superset = first + [base.with_policy("A-BGC")]
    parallel = run_sweep(superset, checkpoint=checkpoint, jobs=2)
    assert parallel.ok()
    # The serial results were resumed, not re-run...
    assert sorted(parallel.skipped) == sorted(spec.key() for spec in first)
    for spec in first:
        assert parallel.results[spec.key()] == serial.results[spec.key()]
    # ...results come back in input order, and the fresh scenario matches
    # what a serial run of it produces.
    assert list(parallel.results) == [spec.key() for spec in superset]
    alone = run_sweep([superset[-1]])
    assert parallel.results[superset[-1].key()] == alone.results[superset[-1].key()]
