"""Indexed hot paths must be bit-identical to the reference scans.

The incremental indexes (PERFORMANCE.md) are pure accelerations: the
page-cache expiry index, the predictor's interval histogram, the FTL's
valid-count and SIP-overlap indexes, and the parallel sweep executor
must all produce exactly the results of the original full-scan code.
These tests drive both implementations -- property-style on the data
structures, end-to-end on seed scenarios -- and assert equality of
everything observable: query results, RunMetrics, and the decision-audit
stream.
"""

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.core.buffered_predictor import BufferedWritePredictor
from repro.experiments.fig2 import fig2_specs
from repro.experiments.runner import ScenarioSpec, _run_scenario_host, run_sweep
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.space import SpaceModel
from repro.ftl.victim import SipFilteredSelector
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming
from repro.obs import ObservabilityConfig
from repro.oskernel.cache import PageCache

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=24)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# Page cache: expiry index vs full scan on random op sequences.
# ----------------------------------------------------------------------
cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "invalidate", "writeback", "query"]),
        st.integers(min_value=0, max_value=31),  # lpn
        st.integers(min_value=0, max_value=40),  # time (may go backwards)
    ),
    max_size=80,
)


@settings(max_examples=80, deadline=None)
@given(ops=cache_ops, tau=st.integers(min_value=1, max_value=20))
def test_cache_expiry_index_matches_scan(ops, tau):
    indexed = PageCache(page_size=4096, capacity_bytes=64 * 4096, indexed=True)
    scan = PageCache(page_size=4096, capacity_bytes=64 * 4096, indexed=False)
    now = 0
    for op, lpn, t in ops:
        now = max(now, t)
        if op == "write":
            indexed.write_page(lpn, t)
            scan.write_page(lpn, t)
        elif op == "invalidate":
            indexed.invalidate([lpn])
            scan.invalidate([lpn])
        elif op == "writeback":
            if scan.contains_dirty(lpn):
                indexed.begin_writeback([lpn])
                scan.begin_writeback([lpn])
                indexed.complete_writeback([lpn])
                scan.complete_writeback([lpn])
        else:
            assert indexed.oldest_dirty() == scan.oldest_dirty()
            assert list(indexed.iter_oldest_dirty()) == scan.oldest_dirty_scan()
            got = {e.lpn for e in indexed.expired_dirty(now, tau)}
            want = {e.lpn for e in scan.expired_dirty_scan(now, tau)}
            assert got == want
    assert indexed.oldest_dirty() == scan.oldest_dirty_scan()
    assert {e.lpn for e in indexed.expired_dirty(now, tau)} == {
        e.lpn for e in scan.expired_dirty(now, tau)
    }


# ----------------------------------------------------------------------
# Predictor: incremental Dbuf histogram vs full rescans at flusher ticks.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),  # lpn
            st.integers(min_value=0, max_value=60),  # time
        ),
        max_size=60,
    ),
    ticks=st.lists(st.integers(min_value=0, max_value=14), min_size=1, max_size=6),
)
def test_predictor_incremental_dbuf_matches_scan(writes, ticks):
    period, tau = 5, 30
    indexed_cache = PageCache(4096, 128 * 4096, indexed=True)
    scan_cache = PageCache(4096, 128 * 4096, indexed=False)
    indexed = BufferedWritePredictor(indexed_cache, period, tau, incremental=True)
    scan = BufferedWritePredictor(scan_cache, period, tau, incremental=False)
    for lpn, t in writes:
        indexed_cache.write_page(lpn, t)
        scan_cache.write_page(lpn, t)
    for tick in sorted(ticks):
        now = tick * period
        a = indexed.predict(now)
        b = scan.predict(now)
        assert a.demands_bytes == b.demands_bytes
        assert a.sip.as_set() == b.sip.as_set()


# ----------------------------------------------------------------------
# NAND: the fast address probe must raise exactly what the geometry-backed
# scan validation raises, and leave identical array state behind.
# ----------------------------------------------------------------------
nand_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "program", "erase", "mark_bad"]),
        st.integers(min_value=-3, max_value=30),  # block (array has 24)
        st.integers(min_value=-3, max_value=6),   # page (block has 4)
    ),
    max_size=120,
)


def _apply_nand_op(nand, op, block, page):
    try:
        if op == "read":
            return ("ok", nand.read_page(block, page))
        if op == "program":
            return ("ok", nand.program_page(block, page))
        if op == "erase":
            return ("ok", nand.erase_block(block))
        nand.mark_bad(block)
        return ("ok", None)
    except Exception as exc:
        return (type(exc).__name__, str(exc))


@settings(max_examples=80, deadline=None)
@given(ops=nand_ops)
def test_nand_fast_check_matches_scan(ops):
    fast = NandArray(GEOMETRY, TIMING)
    with perf.scan_reference():
        ref = NandArray(GEOMETRY, TIMING)
    assert fast._check_addr == fast._check_addr_fast
    assert ref._check_addr == ref._check_addr_scan
    for op, block, page in ops:
        assert _apply_nand_op(fast, op, block, page) == _apply_nand_op(
            ref, op, block, page
        )
    assert np.array_equal(fast.program_ptr, ref.program_ptr)
    assert np.array_equal(fast.block_states, ref.block_states)
    assert np.array_equal(fast.erase_counts, ref.erase_counts)
    assert bytes(fast._bad) == bytes(ref._bad)
    assert (fast.page_reads, fast.page_programs, fast.block_erases) == (
        ref.page_reads, ref.page_programs, ref.block_erases
    )
    assert fast.good_blocks() == ref.good_blocks()


def test_nand_batch_ops_match_per_page_loops():
    batched = NandArray(GEOMETRY, TIMING)
    looped = NandArray(GEOMETRY, TIMING)
    ppb = GEOMETRY.pages_per_block
    lat_batch = batched.program_pages_batch(0, 0, 3)
    lat_loop = sum(looped.program_page(0, page) for page in range(3))
    assert lat_batch == lat_loop
    lat_batch = batched.read_pages_batch(0, 3)
    lat_loop = sum(looped.read_page(0, page) for page in range(3))
    assert lat_batch == lat_loop
    assert np.array_equal(batched.program_ptr, looped.program_ptr)
    assert np.array_equal(batched.block_states, looped.block_states)
    assert (batched.page_reads, batched.page_programs) == (
        looped.page_reads, looped.page_programs
    )
    # Frontier violations and overflow raise the per-page loop's types.
    import repro.nand.errors as errors

    with pytest.raises(errors.EraseBeforeWriteError):
        batched.program_pages_batch(0, 0, 1)  # behind the frontier (3)
    with pytest.raises(errors.ProgramOrderError):
        batched.program_pages_batch(1, 2, 1)  # ahead of block 1's frontier (0)
    with pytest.raises(errors.AddressError):
        batched.program_pages_batch(0, 3, ppb)  # runs past the block end


# ----------------------------------------------------------------------
# FTL: valid-count index, SIP-overlap counters, and victim decisions
# agree with the scan implementation under random traffic.
# ----------------------------------------------------------------------
def _make_ftl(indexed: bool) -> PageMappedFtl:
    def build() -> PageMappedFtl:
        return PageMappedFtl(
            NandArray(GEOMETRY, TIMING),
            SpaceModel.from_op_ratio(GEOMETRY, 0.12),
            victim_selector=SipFilteredSelector(),
        )

    if indexed:
        return build()
    with perf.scan_reference():
        return build()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    writes=st.integers(min_value=50, max_value=300),
)
def test_ftl_indexes_match_scan_under_random_traffic(seed, writes):
    import random

    rng = random.Random(seed)
    indexed = _make_ftl(indexed=True)
    scan = _make_ftl(indexed=False)
    assert indexed.victim_index is not None and indexed.sip_index is not None
    assert scan.victim_index is None and scan.sip_index is None

    user_pages = indexed.space.user_pages
    for step in range(writes):
        lpn = rng.randrange(user_pages // 2)
        indexed.host_write_page(lpn)
        scan.host_write_page(lpn)
        if step % 17 == 0:
            sip = [rng.randrange(user_pages // 2) for _ in range(rng.randrange(8))]
            indexed.set_sip_list(sip)
            scan.set_sip_list(sip)
        if step % 13 == 0:
            assert indexed.has_victim() == scan.has_victim()
            if indexed.has_victim():
                a = indexed.collect_one_block(background=True)
                b = scan.collect_one_block(background=True)
                assert a == b
    # The index invariants hold, and both FTLs ended in the same state.
    indexed.invariant_check()
    scan.invariant_check()
    assert dict(indexed.victim_index.items()) == {
        int(block): scan.page_map.valid_count(int(block))
        for block in scan.gc_candidates()
    }
    assert indexed.stats.__dict__ == scan.stats.__dict__


def _raises_message(check) -> str:
    try:
        check()
    except AssertionError as exc:
        return str(exc)
    return ""


def test_batched_invariant_check_matches_scan_on_clean_and_corrupted_state():
    ftl = _make_ftl(indexed=True)
    user_pages = ftl.space.user_pages
    for lpn in range(user_pages // 2):
        ftl.host_write_page(lpn)
    for lpn in range(0, user_pages // 2, 3):
        ftl.host_write_page(lpn)
    pm = ftl.page_map
    # Clean state: both implementations accept it.
    pm.invariant_check()
    pm.invariant_check_scan()
    mapped = np.flatnonzero(pm._l2p != UNMAPPED)
    ppn = int(pm._l2p[mapped[0]])

    # Reverse-map corruption: only the l2p/p2l cross-check can see it.
    saved = int(pm._p2l[ppn])
    pm._p2l[ppn] = int(mapped[-1]) if int(mapped[-1]) != saved else saved + 1
    batched_msg = _raises_message(pm.invariant_check)
    scan_msg = _raises_message(pm.invariant_check_scan)
    assert batched_msg and batched_msg == scan_msg
    pm._p2l[ppn] = saved

    # Valid-bit corruption: population and per-block counters disagree.
    pm._valid[ppn] = False
    batched_msg = _raises_message(pm.invariant_check)
    scan_msg = _raises_message(pm.invariant_check_scan)
    assert batched_msg and batched_msg == scan_msg
    pm._valid[ppn] = True
    pm.invariant_check()
    pm.invariant_check_scan()


# ----------------------------------------------------------------------
# End-to-end: fig2- and fig7-style seed scenarios are bit-identical
# (RunMetrics AND decision-audit streams) across the two paths.
# ----------------------------------------------------------------------
AUDIT_OBS = ObservabilityConfig(audit=True, metrics_interval_ns=0)


def _run_both(spec: ScenarioSpec):
    indexed_metrics, indexed_host = _run_scenario_host(spec)
    with perf.scan_reference():
        scan_metrics, scan_host = _run_scenario_host(spec)
    return (indexed_metrics, indexed_host.obs.audit), (scan_metrics, scan_host.obs.audit)


def _assert_identical(indexed, scan):
    indexed_metrics, indexed_audit = indexed
    scan_metrics, scan_audit = scan
    assert indexed_metrics == scan_metrics
    assert indexed_audit.manager_ticks == scan_audit.manager_ticks
    assert indexed_audit.victim_selections == scan_audit.victim_selections
    assert indexed_audit.faults == scan_audit.faults


def test_fig7_seed_scenario_bit_identical():
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        blocks=256,
        pages_per_block=32,
        warmup_s=10,
        measure_s=30,
        seed=7,
        obs=AUDIT_OBS,
    )
    indexed, scan = _run_both(spec)
    _assert_identical(indexed, scan)
    # The run actually exercised the hot paths under test.
    assert indexed[1].victim_selections


def test_fig2_seed_scenario_bit_identical():
    base = ScenarioSpec(
        blocks=256, pages_per_block=32, warmup_s=10, measure_s=20, seed=7, obs=AUDIT_OBS
    )
    specs = fig2_specs(base, workloads=("YCSB",), reserve_points=(1.5,))
    (spec,) = specs.values()
    indexed, scan = _run_both(spec)
    _assert_identical(indexed, scan)


@pytest.mark.parametrize("profile", ["none", "light", "heavy", "wearout"])
def test_fault_profile_scenarios_bit_identical(profile):
    # Under fault injection the FTL falls back to the per-page migration
    # loop even in indexed mode (batch ops would reorder the per-op RNG
    # streams); the indexed/scan equivalence contract must hold across
    # every profile regardless.
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        blocks=128,
        pages_per_block=16,
        warmup_s=5,
        measure_s=10,
        seed=11,
        fault_profile=profile,
        obs=AUDIT_OBS,
    )
    indexed, scan = _run_both(spec)
    _assert_identical(indexed, scan)


# ----------------------------------------------------------------------
# Parallel executor: a --jobs run must agree with (and resume from) a
# serial run's checkpoint.
# ----------------------------------------------------------------------
def test_parallel_sweep_resumes_serial_checkpoint(tmp_path):
    base = ScenarioSpec(blocks=128, pages_per_block=32, warmup_s=5, measure_s=10, seed=3)
    first = [base.with_policy(name) for name in ("L-BGC", "JIT-GC")]
    checkpoint = os.fspath(tmp_path / "sweep.json")

    serial = run_sweep(first, checkpoint=checkpoint)
    assert serial.ok() and not serial.skipped

    superset = first + [base.with_policy("A-BGC")]
    parallel = run_sweep(superset, checkpoint=checkpoint, jobs=2)
    assert parallel.ok()
    # The serial results were resumed, not re-run...
    assert sorted(parallel.skipped) == sorted(spec.key() for spec in first)
    for spec in first:
        assert parallel.results[spec.key()] == serial.results[spec.key()]
    # ...results come back in input order, and the fresh scenario matches
    # what a serial run of it produces.
    assert list(parallel.results) == [spec.key() for spec in superset]
    alone = run_sweep([superset[-1]])
    assert parallel.results[superset[-1].key()] == alone.results[superset[-1].key()]


def test_streamed_aggregation_matches_serial_at_scale():
    # The streamed queue aggregation must reproduce the serial results
    # exactly at sweep scale.  Default 100 scenarios (the acceptance
    # scale); REPRO_SWEEP_SCALE trims it for constrained CI runners.
    count = int(os.environ.get("REPRO_SWEEP_SCALE", "100"))
    base = ScenarioSpec(
        workload="YCSB", blocks=48, pages_per_block=8, warmup_s=0, measure_s=1
    )
    policies = ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC")
    specs = [
        replace(base.with_policy(policies[i % len(policies)]), seed=i)
        for i in range(count)
    ]
    assert len({spec.key() for spec in specs}) == count
    serial = run_sweep(list(specs), jobs=1)
    streamed = run_sweep(list(specs), jobs=2)
    assert serial.ok() and streamed.ok()
    assert list(streamed.results) == list(serial.results) == [s.key() for s in specs]
    assert streamed.results == serial.results


# ----------------------------------------------------------------------
# Batched host-write extents vs the per-page write loop.
# ----------------------------------------------------------------------
write_extents = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60),  # first LPN
        st.integers(min_value=1, max_value=12),  # page count
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(extents=write_extents, sip_seed=st.integers(min_value=0, max_value=7))
def test_host_write_extent_matches_per_page_loop(extents, sip_seed):
    """host_write_extent must be bit-identical to the per-page loop:
    same latencies, clock, stats, mapping state, and index contents --
    across frontier rolls, overwrites, FGC stalls, and SIP overlap."""

    def build():
        geometry = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=24)
        nand = NandArray(geometry, TIMING)
        space = SpaceModel.from_op_ratio(geometry, op_ratio=0.3)
        return PageMappedFtl(
            nand, space, victim_selector=SipFilteredSelector(), fgc_watermark=2
        )

    batched, looped = build(), build()
    assert batched.supports_batched_writes
    sip = {lpn for lpn in range(64) if (lpn * 7 + sip_seed) % 3 == 0}
    batched.set_sip_list(sip)
    looped.set_sip_list(sip)

    user_pages = batched.space.user_pages
    for first, count in extents:
        count = min(count, user_pages - first)
        if count <= 0:
            continue
        lat_batched = batched.host_write_extent(first, count)
        lat_looped = sum(looped.host_write_page(first + i) for i in range(count))
        assert lat_batched == lat_looped

    assert batched._op_counter == looped._op_counter
    assert batched.stats == looped.stats
    assert np.array_equal(batched.page_map._l2p, looped.page_map._l2p)
    assert np.array_equal(batched.page_map._p2l, looped.page_map._p2l)
    assert np.array_equal(batched.page_map._valid, looped.page_map._valid)
    assert batched.page_map.mapped_count == looped.page_map.mapped_count
    assert np.array_equal(batched._closed, looped._closed)
    assert np.array_equal(batched._close_time, looped._close_time)
    assert dict(batched.victim_index.items()) == dict(looped.victim_index.items())
    assert np.array_equal(batched.sip_index.snapshot(), looped.sip_index.snapshot())
    # Both sides must also satisfy the cross-structure invariants.
    batched.invariant_check()
    looped.invariant_check()


def test_host_write_extent_large_chunks_match_per_page_loop():
    """Extents above PageMap._SCALAR_EXTENT_MAX take the vectorized
    remap path; it must agree with the per-page loop too."""

    def build():
        geometry = NandGeometry(page_size=4096, pages_per_block=64, blocks_per_plane=16)
        nand = NandArray(geometry, TIMING)
        space = SpaceModel.from_op_ratio(geometry, op_ratio=0.3)
        return PageMappedFtl(
            nand, space, victim_selector=SipFilteredSelector(), fgc_watermark=2
        )

    batched, looped = build(), build()
    batched.set_sip_list(range(0, 200, 3))
    looped.set_sip_list(range(0, 200, 3))
    extents = [(0, 60), (30, 50), (100, 48), (0, 60), (200, 40), (25, 55)]
    for first, count in extents:
        assert count > batched.page_map._SCALAR_EXTENT_MAX
        lat_b = batched.host_write_extent(first, count)
        lat_l = sum(looped.host_write_page(first + i) for i in range(count))
        assert lat_b == lat_l
    assert batched._op_counter == looped._op_counter
    assert batched.stats == looped.stats
    assert np.array_equal(batched.page_map._l2p, looped.page_map._l2p)
    assert np.array_equal(batched.page_map._p2l, looped.page_map._p2l)
    assert np.array_equal(batched.page_map._valid, looped.page_map._valid)
    assert dict(batched.victim_index.items()) == dict(looped.victim_index.items())
    assert np.array_equal(batched.sip_index.snapshot(), looped.sip_index.snapshot())
    batched.invariant_check()
    looped.invariant_check()
