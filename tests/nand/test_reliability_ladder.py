"""Tests for the live reliability subsystem's NAND-level half.

Covers :class:`ReliabilityProfile` validation (the config-time error
messages), profile resolution, the deterministic ECC escalation ladder
(:class:`ReliabilityModel`), and the retention-clock / disturb-counter
durability semantics on :class:`NandArray` (the clock rides the durable
image; disturb counters are volatile and reset at power-on).
"""

import numpy as np
import pytest

from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.reliability import (
    RELIABILITY_PROFILES,
    BitErrorModel,
    ReadDisturbTracker,
    ReadOutcome,
    ReliabilityModel,
    ReliabilityProfile,
    resolve_reliability_profile,
)
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# Profile validation
# ----------------------------------------------------------------------
def test_profile_rejects_non_monotonic_retry_latencies():
    with pytest.raises(ValueError, match="monotonically non-decreasing"):
        ReliabilityProfile(
            retry_latency_ns=(90_000, 60_000, 140_000),
            retry_rber_factors=(0.72, 0.55, 0.42),
        )


def test_profile_rejects_ladder_length_mismatch():
    with pytest.raises(ValueError, match="retry ladder mismatch"):
        ReliabilityProfile(
            retry_latency_ns=(60_000, 90_000),
            retry_rber_factors=(0.72, 0.55, 0.42),
        )


def test_profile_rejects_nonpositive_retry_latency():
    with pytest.raises(ValueError, match=r"retry_latency_ns\[0\] must be positive"):
        ReliabilityProfile(
            retry_latency_ns=(0, 90_000, 140_000),
            retry_rber_factors=(0.72, 0.55, 0.42),
        )


def test_profile_rejects_increasing_rber_factors():
    with pytest.raises(ValueError, match="non-increasing"):
        ReliabilityProfile(
            retry_latency_ns=(60_000, 90_000, 140_000),
            retry_rber_factors=(0.55, 0.72, 0.42),
        )


def test_profile_rejects_out_of_range_rber_factor():
    with pytest.raises(ValueError, match=r"retry_rber_factors\[0\] must be in"):
        ReliabilityProfile(
            retry_latency_ns=(60_000,),
            retry_rber_factors=(1.5,),
        )


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"fast_margin": 0.0}, "fast_margin"),
        ({"fast_margin": 1.5}, "fast_margin"),
        ({"page_bytes": 0}, "page_bytes"),
        ({"soft_decode_latency_ns": 0}, "soft_decode_latency_ns"),
        ({"soft_decode_rber_factor": 1.0}, "soft_decode_rber_factor"),
        ({"retention_threshold_s": -1.0}, "retention_threshold_s"),
        ({"disturb_threshold": 0}, "disturb_threshold"),
        ({"scrub_scan_blocks": 0}, "scrub_scan_blocks"),
        ({"retention_accel": 0.0}, "retention_accel"),
    ],
)
def test_profile_rejects_bad_knobs(kwargs, match):
    with pytest.raises(ValueError, match=match):
        ReliabilityProfile(**kwargs)


def test_resolve_none_and_off_disable():
    assert resolve_reliability_profile(None) is None
    assert resolve_reliability_profile("off") is None


def test_resolve_passes_instances_through():
    profile = ReliabilityProfile(name="custom")
    assert resolve_reliability_profile(profile) is profile


def test_resolve_known_names():
    for name, profile in RELIABILITY_PROFILES.items():
        assert resolve_reliability_profile(name) is profile


def test_resolve_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="unknown reliability profile 'slc'") as exc:
        resolve_reliability_profile("slc")
    message = str(exc.value)
    assert "off" in message
    assert "mlc-20nm" in message


# ----------------------------------------------------------------------
# ECC escalation ladder (deterministic, bucketed)
# ----------------------------------------------------------------------
# The accel profile's ladder thresholds with BitErrorModel(base_rber=1e-4,
# retention_scale_s=5000) at pe=0 reduce to rber = 1e-4 * (1 + R/5000):
#   fast ceiling  = 0.30 * 40/8192           = 1.465e-3  (R <= ~68k s)
#   L3 ceiling    = fast / 0.42              = 3.487e-3  (R <= ~169k s)
#   soft ceiling  = (40/8192) / 0.25         = 1.953e-2  (R <= ~972k s)
ACCEL = RELIABILITY_PROFILES["mlc-20nm-accel"]


def test_fresh_read_takes_fast_path():
    model = ReliabilityModel(ACCEL)
    outcome = model.read_outcome(0, 0.0, 0)
    assert outcome == ReadOutcome(ok=True, level=0, soft=False, extra_ns=0)


def test_moderate_retention_hits_hard_retry_level():
    model = ReliabilityModel(ACCEL)
    # R = 81_920 s -> rber = 1.738e-3, just past the fast ceiling.
    outcome = model.read_outcome(0, 81_920.0, 0)
    assert outcome.ok
    assert outcome.level == 1
    assert not outcome.soft
    assert outcome.extra_ns == ACCEL.retry_latency_ns[0]


def test_deep_retention_needs_soft_decode():
    model = ReliabilityModel(ACCEL)
    # R = 409_600 s -> rber = 8.29e-3: past every hard level, soft saves.
    outcome = model.read_outcome(0, 409_600.0, 0)
    assert outcome.ok
    assert outcome.soft
    assert outcome.level == len(ACCEL.retry_latency_ns)
    assert outcome.extra_ns == sum(ACCEL.retry_latency_ns) + ACCEL.soft_decode_latency_ns


def test_extreme_retention_is_uecc_with_full_ladder_paid():
    model = ReliabilityModel(ACCEL)
    # R = 2_000_000 s -> rber = 4.01e-2: beyond even soft decode.
    outcome = model.read_outcome(0, 2_000_000.0, 0)
    assert not outcome.ok
    # The whole ladder was attempted and paid for before declaring UECC.
    assert outcome.extra_ns == sum(ACCEL.retry_latency_ns) + ACCEL.soft_decode_latency_ns


def test_ladder_extra_ns_monotone_in_retention():
    model = ReliabilityModel(ACCEL)
    ages = [0.0, 4096.0, 81_920.0, 163_840.0, 409_600.0, 2_000_000.0]
    costs = [model.read_outcome(0, age, 0).extra_ns for age in ages]
    assert costs == sorted(costs)


def test_outcomes_cached_per_stress_bucket():
    model = ReliabilityModel(ACCEL)
    first = model.read_outcome(63, 1000.0, 100)
    # Same (pe>>6, retention>>12, disturb>>12) bucket -> same cached object.
    assert model.read_outcome(0, 4095.0, 4095) is first


def test_expected_rber_uses_bucket_floor():
    model = ReliabilityModel(ACCEL)
    floored = ACCEL.bit_error_model.rber(64, retention_s=4096.0, read_disturbs=0)
    assert model.expected_rber(100, 5000.0, 10) == floored


def test_disturbs_escalate_outcome():
    model = ReliabilityModel(ACCEL)
    calm = model.read_outcome(0, 0.0, 0)
    # disturb_factor=2e-5: 2**21 reads multiply rber well past the ceiling.
    disturbed = model.read_outcome(0, 0.0, 1 << 21)
    assert calm.level == 0
    assert disturbed.extra_ns > calm.extra_ns


# ----------------------------------------------------------------------
# Retention clock and disturb counters on the NAND array
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now


def test_program_stamps_retention_clock_only_when_installed():
    nand = NandArray(GEOMETRY, TIMING)
    nand.program_page(0, 0)
    # No clock installed: the vector stays at its zero default.
    assert int(nand.last_program_ns[0]) == 0

    clock = _Clock()
    clock.now = 123
    nand.set_reliability_clock(clock)
    nand.program_page(0, 1)
    assert int(nand.last_program_ns[0]) == 123


def test_erase_rebases_retention_clock():
    nand = NandArray(GEOMETRY, TIMING)
    clock = _Clock()
    nand.set_reliability_clock(clock)
    clock.now = 100
    nand.program_page(0, 0)
    clock.now = 500
    nand.erase_block(0)
    assert int(nand.last_program_ns[0]) == 500


def test_retention_clock_rides_durable_image():
    nand = NandArray(GEOMETRY, TIMING)
    clock = _Clock()
    nand.set_reliability_clock(clock)
    clock.now = 777
    nand.program_page(2, 0)
    state = nand.capture_durable_state()

    recovered = NandArray.from_durable(GEOMETRY, state, timing=TIMING)
    assert int(recovered.last_program_ns[2]) == 777
    np.testing.assert_array_equal(recovered.last_program_ns, nand.last_program_ns)


def test_disturb_counters_reset_at_power_on():
    """Regression: the disturb tracker is volatile controller DRAM.

    The retention clock must survive the power cut (it rides the durable
    image) while the read-disturb counters must NOT: every power-on
    starts them at zero, by design (DESIGN.md, power-on disturb-reset).
    """
    tracker = ReadDisturbTracker(GEOMETRY.total_blocks, scrub_threshold=1000)
    nand = NandArray(GEOMETRY, TIMING, read_disturb=tracker)
    clock = _Clock()
    nand.set_reliability_clock(clock)
    clock.now = 42
    nand.program_page(1, 0)
    for _ in range(17):
        nand.read_page(1, 0)
    assert int(tracker.read_counts[1]) == 17

    state = nand.capture_durable_state()
    fresh_tracker = ReadDisturbTracker(GEOMETRY.total_blocks, scrub_threshold=1000)
    recovered = NandArray.from_durable(
        GEOMETRY, state, timing=TIMING, read_disturb=fresh_tracker
    )
    # Clock survived; counters did not.
    assert int(recovered.last_program_ns[1]) == 42
    assert recovered.read_disturb is fresh_tracker
    assert int(fresh_tracker.read_counts.max(initial=0)) == 0
