"""Tests for erase counting and wear statistics."""

import pytest

from repro.nand.endurance import EnduranceModel


def test_record_and_query():
    model = EnduranceModel(4, pe_cycle_limit=10)
    assert model.erase_count(0) == 0
    assert model.record_erase(0) is False
    assert model.erase_count(0) == 1
    assert model.total_erases == 1


def test_wear_out_at_limit():
    model = EnduranceModel(2, pe_cycle_limit=3)
    assert model.record_erase(1) is False
    assert model.record_erase(1) is False
    assert model.record_erase(1) is True  # reaches the limit
    assert model.remaining_cycles(1) == 0


def test_remaining_cycles():
    model = EnduranceModel(2, pe_cycle_limit=5)
    model.record_erase(0)
    assert model.remaining_cycles(0) == 4
    assert model.remaining_cycles(1) == 5


def test_unlimited_endurance():
    model = EnduranceModel(2, pe_cycle_limit=None)
    for _ in range(1000):
        assert model.record_erase(0) is False
    assert model.remaining_cycles(0) is None


def test_stats():
    model = EnduranceModel(4, pe_cycle_limit=2)
    model.record_erase(0)
    model.record_erase(0)
    model.record_erase(1)
    stats = model.stats()
    assert stats.total_erases == 3
    assert stats.max_erase_count == 2
    assert stats.min_erase_count == 0
    assert stats.worn_out_blocks == 1
    assert stats.mean_erase_count == pytest.approx(0.75)


def test_imbalance_metric():
    model = EnduranceModel(2, pe_cycle_limit=None)
    assert model.stats().imbalance() == 1.0  # no erases yet
    model.record_erase(0)
    model.record_erase(0)
    assert model.stats().imbalance() == pytest.approx(2.0)


@pytest.mark.parametrize("bad", [0, -3])
def test_invalid_construction(bad):
    with pytest.raises(ValueError):
        EnduranceModel(bad)
    with pytest.raises(ValueError):
        EnduranceModel(4, pe_cycle_limit=bad)
