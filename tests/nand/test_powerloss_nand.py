"""Tests for the NAND power-loss substrate: torn pages, per-page OOB
stamping and the durable-state capture/restore cycle."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, FaultProfile
from repro.nand.array import OOB_UNSTAMPED, BlockState, NandArray
from repro.nand.errors import ProgramFailError
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_array(**kwargs):
    return NandArray(GEOMETRY, TIMING, **kwargs)


# ----------------------------------------------------------------------
# OOB stamping
# ----------------------------------------------------------------------
def test_program_stamps_oob_on_success():
    nand = make_array()
    nand.program_page(0, 0, lpn=17, seq=5)
    assert nand.oob_lpn[0] == 17
    assert nand.oob_seq[0] == 5


def test_program_without_seq_leaves_oob_unstamped():
    nand = make_array()
    nand.program_page(0, 0)
    assert nand.oob_lpn[0] == OOB_UNSTAMPED
    assert nand.oob_seq[0] == OOB_UNSTAMPED


def test_failed_program_consumes_page_but_never_stamps():
    injector = FaultInjector(FaultProfile(program_fail_prob=1.0), seed=0)
    nand = make_array(fault_injector=injector)
    with pytest.raises(ProgramFailError):
        nand.program_page(0, 0, lpn=9, seq=1)
    # The page is burnt (sequential-programming pointer advanced) yet
    # carries no stamp -- recovery must treat it exactly like torn.
    assert nand.next_programmable_page(0) == 1
    assert nand.oob_seq[0] == OOB_UNSTAMPED


def test_erase_clears_oob():
    nand = make_array()
    for page in range(4):
        nand.program_page(1, page, lpn=page, seq=page)
    nand.erase_block(1)
    start = 1 * GEOMETRY.pages_per_block
    assert (nand.oob_seq[start:start + 4] == OOB_UNSTAMPED).all()
    assert (nand.oob_lpn[start:start + 4] == OOB_UNSTAMPED).all()


def test_batch_program_stamps_contiguous_oob():
    nand = make_array()
    nand.program_pages_batch(2, 0, 3, first_lpn=40, first_seq=100)
    base = 2 * GEOMETRY.pages_per_block
    assert list(nand.oob_lpn[base:base + 3]) == [40, 41, 42]
    assert list(nand.oob_seq[base:base + 3]) == [100, 101, 102]
    assert nand.batch_programs == 1


# ----------------------------------------------------------------------
# Torn pages
# ----------------------------------------------------------------------
def test_tear_frontier_page_consumes_without_stamp():
    nand = make_array()
    nand.program_page(0, 0, lpn=1, seq=1)
    nand.program_page(0, 1, lpn=2, seq=2)
    page = nand.tear_frontier_page(0)
    assert page == 2
    assert nand.next_programmable_page(0) == 3
    assert nand.block_state(0) == BlockState.OPEN
    assert nand.oob_seq[2] == OOB_UNSTAMPED
    assert nand.torn_pages == 1


def test_tear_last_page_fills_block():
    nand = make_array()
    for page in range(3):
        nand.program_page(0, page, lpn=page, seq=page)
    assert nand.tear_frontier_page(0) == 3
    assert nand.block_state(0) == BlockState.FULL


def test_tear_refuses_full_and_bad_blocks():
    nand = make_array()
    for page in range(4):
        nand.program_page(0, page)
    assert nand.tear_frontier_page(0) is None
    nand.mark_bad(1)
    assert nand.tear_frontier_page(1) is None
    assert nand.tear_frontier_page(-1) is None
    assert nand.torn_pages == 0


# ----------------------------------------------------------------------
# Durable capture / restore
# ----------------------------------------------------------------------
def _exercise(nand):
    for page in range(4):
        nand.program_page(0, page, lpn=page, seq=page)
    nand.erase_block(0)
    nand.program_page(0, 0, lpn=7, seq=10)
    nand.program_page(3, 0, lpn=8, seq=11)
    nand.mark_bad(5)
    nand.tear_frontier_page(3)


def test_capture_restore_roundtrip():
    nand = make_array()
    _exercise(nand)
    state = nand.capture_durable_state()
    copy = NandArray.from_durable(GEOMETRY, state, timing=TIMING)
    assert np.array_equal(copy.block_states, nand.block_states)
    assert np.array_equal(copy.program_ptr, nand.program_ptr)
    assert np.array_equal(copy.oob_lpn, nand.oob_lpn)
    assert np.array_equal(copy.oob_seq, nand.oob_seq)
    assert np.array_equal(copy.erase_counts, nand.erase_counts)
    assert copy.is_bad(5) and copy.grown_bad_blocks == 1
    assert copy.torn_pages == nand.torn_pages
    assert copy.endurance.total_erases == nand.endurance.total_erases
    # Volatile op counters start at zero on the powered-on copy.
    assert copy.page_programs == 0


def test_captured_state_is_isolated_from_live_array():
    nand = make_array()
    _exercise(nand)
    state = nand.capture_durable_state()
    before = state.program_ptr.copy()
    nand.program_page(3, 2, lpn=9, seq=12)
    nand.erase_block(1)
    assert np.array_equal(state.program_ptr, before)
    copy = NandArray.from_durable(GEOMETRY, state, timing=TIMING)
    copy.erase_block(3)
    assert nand.next_programmable_page(3) == 3


def test_factory_bad_marks_survive_as_factory():
    nand = NandArray(GEOMETRY, TIMING, initial_bad_blocks=[2])
    nand.mark_bad(6)
    copy = NandArray.from_durable(GEOMETRY, nand.capture_durable_state(), timing=TIMING)
    assert copy.factory_bad[2] and not copy.factory_bad[6]
    assert copy.factory_bad_blocks == 1
    assert copy.grown_bad_blocks == 1
