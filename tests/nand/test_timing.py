"""Tests for the NAND timing model and generation presets."""

import pytest

from repro.nand.timing import (
    NAND_130NM_SLC,
    NAND_20NM_MLC,
    NAND_25NM_MLC,
    NandTiming,
)
from repro.sim.simtime import MICROSECOND


def test_composite_costs():
    t = NandTiming(
        read_ns=50, program_ns=1000, erase_ns=5000, transfer_ns_per_page=10
    )
    assert t.host_read_ns() == 60
    assert t.host_program_ns() == 1010
    assert t.migrate_page_ns() == 1050
    assert t.gc_block_ns(0) == 5000
    assert t.gc_block_ns(3) == 3 * 1050 + 5000


def test_gc_block_negative_valid_rejected():
    with pytest.raises(ValueError):
        NAND_20NM_MLC.gc_block_ns(-1)


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        NandTiming(read_ns=-1)


def test_generation_trend_matches_paper():
    """Paper Sec 1: program time grows sharply across generations."""
    assert NAND_130NM_SLC.program_ns < NAND_25NM_MLC.program_ns
    assert NAND_130NM_SLC.program_ns == 200 * MICROSECOND
    assert NAND_25NM_MLC.program_ns == 2300 * MICROSECOND


def test_default_preset_is_20nm_mlc_class():
    assert NAND_20NM_MLC.program_ns > 1000 * MICROSECOND
    assert NAND_20NM_MLC.erase_ns > NAND_20NM_MLC.program_ns


def test_timing_is_frozen():
    with pytest.raises(Exception):
        NAND_20NM_MLC.read_ns = 1  # type: ignore[misc]
