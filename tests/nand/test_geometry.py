"""Tests for NAND geometry arithmetic and address validation."""

import pytest

from repro.nand.errors import AddressError
from repro.nand.geometry import NandGeometry


def make(**kwargs):
    defaults = dict(
        page_size=4096,
        pages_per_block=64,
        blocks_per_plane=32,
        planes_per_chip=2,
        chips_per_channel=2,
        channels=2,
    )
    defaults.update(kwargs)
    return NandGeometry(**defaults)


def test_derived_counts():
    g = make()
    assert g.total_chips == 4
    assert g.blocks_per_chip == 64
    assert g.total_blocks == 256
    assert g.total_pages == 256 * 64
    assert g.block_bytes == 64 * 4096
    assert g.total_bytes == 256 * 64 * 4096


def test_chip_and_channel_of_block():
    g = make()
    assert g.chip_of_block(0) == 0
    assert g.chip_of_block(63) == 0
    assert g.chip_of_block(64) == 1
    assert g.channel_of_block(0) == 0
    assert g.channel_of_block(128) == 1


def test_plane_of_block():
    g = make()
    assert g.plane_of_block(0) == 0
    assert g.plane_of_block(31) == 0
    assert g.plane_of_block(32) == 1
    assert g.plane_of_block(64) == 0  # next chip starts at plane 0


def test_block_bounds_checked():
    g = make()
    with pytest.raises(AddressError):
        g.check_block(-1)
    with pytest.raises(AddressError):
        g.check_block(g.total_blocks)


def test_page_bounds_checked():
    g = make()
    g.check_page(0)
    g.check_page(63)
    with pytest.raises(AddressError):
        g.check_page(64)


def test_pages_for_bytes_ceiling():
    g = make()
    assert g.pages_for_bytes(0) == 0
    assert g.pages_for_bytes(1) == 1
    assert g.pages_for_bytes(4096) == 1
    assert g.pages_for_bytes(4097) == 2


def test_pages_for_bytes_negative_rejected():
    with pytest.raises(ValueError):
        make().pages_for_bytes(-1)


@pytest.mark.parametrize("field", ["page_size", "pages_per_block", "channels"])
def test_nonpositive_fields_rejected(field):
    with pytest.raises(ValueError):
        make(**{field: 0})


def test_scaled_sm843t_keeps_op_feasible():
    g = NandGeometry.scaled_sm843t(256)
    # ~1 GB physical array at 1/256 scale.
    assert 0.8 * (1 << 30) < g.total_bytes < 1.3 * (1 << 30)
    assert g.page_size == 4096
    assert g.pages_per_block == 128


def test_scaled_sm843t_monotone_in_scale():
    big = NandGeometry.scaled_sm843t(128).total_blocks
    small = NandGeometry.scaled_sm843t(512).total_blocks
    assert big > small


def test_scaled_sm843t_invalid_scale():
    with pytest.raises(ValueError):
        NandGeometry.scaled_sm843t(0)
