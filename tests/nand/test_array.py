"""Tests for the NAND array state machine: erase-before-write, program
order, bad blocks and operation counting."""

import pytest

from repro.nand.array import BlockState, NandArray
from repro.nand.endurance import EnduranceModel
from repro.nand.errors import (
    BadBlockError,
    EraseBeforeWriteError,
    ProgramOrderError,
)
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


def make_array(**kwargs):
    return NandArray(GEOMETRY, TIMING, **kwargs)


def test_initial_state_all_erased():
    nand = make_array()
    for block in range(GEOMETRY.total_blocks):
        assert nand.block_state(block) == BlockState.ERASED
        assert nand.next_programmable_page(block) == 0


def test_program_returns_latency_and_advances_frontier():
    nand = make_array()
    assert nand.program_page(0, 0) == 100
    assert nand.next_programmable_page(0) == 1
    assert nand.block_state(0) == BlockState.OPEN


def test_block_becomes_full():
    nand = make_array()
    for page in range(4):
        nand.program_page(2, page)
    assert nand.block_state(2) == BlockState.FULL


def test_out_of_order_program_rejected():
    nand = make_array()
    nand.program_page(0, 0)
    with pytest.raises(ProgramOrderError):
        nand.program_page(0, 2)


def test_reprogram_without_erase_rejected():
    nand = make_array()
    nand.program_page(0, 0)
    with pytest.raises(EraseBeforeWriteError):
        nand.program_page(0, 0)


def test_erase_resets_frontier():
    nand = make_array()
    for page in range(4):
        nand.program_page(1, page)
    assert nand.erase_block(1) == 1000
    assert nand.block_state(1) == BlockState.ERASED
    assert nand.next_programmable_page(1) == 0
    nand.program_page(1, 0)  # programmable again


def test_read_latency_and_counter():
    nand = make_array()
    nand.program_page(0, 0)
    assert nand.read_page(0, 0) == 10
    assert nand.page_reads == 1


def test_operation_counters():
    nand = make_array()
    nand.program_page(0, 0)
    nand.program_page(0, 1)
    nand.read_page(0, 0)
    nand.erase_block(0)
    assert nand.page_programs == 2
    assert nand.page_reads == 1
    assert nand.block_erases == 1


def test_factory_bad_blocks_rejected_everywhere():
    nand = make_array(initial_bad_blocks=[3])
    assert nand.is_bad(3)
    with pytest.raises(BadBlockError):
        nand.program_page(3, 0)
    with pytest.raises(BadBlockError):
        nand.read_page(3, 0)
    with pytest.raises(BadBlockError):
        nand.erase_block(3)


def test_wear_out_marks_block_bad():
    endurance = EnduranceModel(GEOMETRY.total_blocks, pe_cycle_limit=2)
    nand = NandArray(GEOMETRY, TIMING, endurance)
    nand.erase_block(0)
    assert not nand.is_bad(0)
    nand.erase_block(0)
    assert nand.is_bad(0)
    assert nand.good_blocks() == GEOMETRY.total_blocks - 1


def test_endurance_size_mismatch_rejected():
    wrong = EnduranceModel(GEOMETRY.total_blocks + 1)
    with pytest.raises(ValueError):
        NandArray(GEOMETRY, TIMING, wrong)


def test_wear_stats_reflect_erases():
    nand = make_array()
    nand.erase_block(0)
    nand.erase_block(0)
    nand.erase_block(1)
    stats = nand.wear_stats()
    assert stats.total_erases == 3
    assert stats.max_erase_count == 2
    assert stats.min_erase_count == 0


def test_factory_and_grown_bad_block_counters():
    nand = make_array(initial_bad_blocks=[3, 5, 3])  # duplicate counted once
    assert nand.factory_bad_blocks == 2
    assert nand.grown_bad_blocks == 0
    nand.mark_bad(0)
    nand.mark_bad(0)  # idempotent
    assert nand.grown_bad_blocks == 1
    assert nand.is_bad(0)
    assert nand.good_blocks() == GEOMETRY.total_blocks - 3


def test_mark_bad_rejects_all_operations():
    nand = make_array()
    nand.mark_bad(1)
    with pytest.raises(BadBlockError):
        nand.program_page(1, 0)
    with pytest.raises(BadBlockError):
        nand.erase_block(1)


def test_reread_page_without_injector_succeeds():
    nand = make_array()
    nand.program_page(0, 0)
    assert nand.reread_page(0, 0) == TIMING.read_ns
    assert nand.page_reads == 1


def test_injected_program_fail_consumes_frontier_page():
    from repro.faults.injector import FaultInjector, FaultProfile
    from repro.nand.errors import ProgramFailError

    injector = FaultInjector(FaultProfile(program_fail_prob=1.0), seed=0)
    nand = make_array(fault_injector=injector)
    with pytest.raises(ProgramFailError):
        nand.program_page(0, 0)
    # The spoiled page can never be reprogrammed without an erase.
    assert nand.next_programmable_page(0) == 1
    assert nand.page_programs == 0


def test_injected_erase_fail_keeps_contents_and_stresses_cells():
    from repro.faults.injector import FaultInjector, FaultProfile
    from repro.nand.errors import EraseFailError

    injector = FaultInjector(FaultProfile(erase_fail_prob=1.0), seed=0)
    nand = make_array(fault_injector=injector)
    nand.program_page(0, 0)
    with pytest.raises(EraseFailError):
        nand.erase_block(0)
    # Frontier untouched, but the failed erase still counted as a cycle.
    assert nand.next_programmable_page(0) == 1
    assert nand.endurance.erase_count(0) == 1
    assert nand.block_erases == 0


def test_injected_uncorrectable_read():
    from repro.faults.injector import FaultInjector, FaultProfile
    from repro.nand.errors import UncorrectableReadError

    injector = FaultInjector(FaultProfile(read_uncorrectable_prob=1.0), seed=0)
    nand = make_array(fault_injector=injector)
    nand.program_page(0, 0)
    with pytest.raises(UncorrectableReadError) as excinfo:
        nand.read_page(0, 0)
    assert excinfo.value.latency_ns == TIMING.read_ns
