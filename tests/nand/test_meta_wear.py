"""Tests for metadata wear accounting: the reserved-block ring that
absorbs checkpoint/tombstone programs (repro.nand.metaregion), its
NandArray/FTL wiring and the read-only terminal state on exhaustion."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, FaultProfile
from repro.ftl.ftl import DeviceReadOnlyError
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.metaregion import MetaRegion
from repro.nand.timing import NandTiming
from repro.ssd.config import SsdConfig

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# MetaRegion ring semantics
# ----------------------------------------------------------------------
def test_program_advances_frontier_without_erases_until_wrap():
    region = MetaRegion(blocks=2, pages_per_block=4)
    out = region.program(3)
    assert out.pages_programmed == 3
    assert out.erases == 0
    # 5 more pages: finishes block 0 (1 page) and fills block 1 (4
    # pages); both blocks were never written, so still no erase.
    out = region.program(5)
    assert out.pages_programmed == 5
    assert out.erases == 0
    assert region.pages_programmed == 8


def test_wrap_erases_oldest_block_before_reuse():
    region = MetaRegion(blocks=2, pages_per_block=4)
    region.program(8)  # both blocks full
    out = region.program(1)  # wraps onto block 0 -> erase first
    assert out.erases == 1
    assert out.pages_programmed == 1
    assert region.erase_counts.tolist() == [1, 0]


def test_wear_out_retires_block_and_exhausts_region():
    region = MetaRegion(blocks=1, pages_per_block=2, pe_cycle_limit=2)
    region.program(2)
    out = region.program(2)  # wrap #1 -> erase_count 1
    assert out.erases == 1 and not out.exhausted
    out = region.program(2)  # wrap #2 -> erase_count 2 == limit -> retire
    assert out.blocks_retired == 1
    assert out.exhausted
    assert region.exhausted
    # Further programs are refused.
    out = region.program(1)
    assert out.exhausted and out.pages_programmed == 0


def test_erase_fault_retires_block():
    injector = FaultInjector(FaultProfile(erase_fail_prob=1.0), seed=7)
    region = MetaRegion(blocks=2, pages_per_block=2, fault_injector=injector)
    region.program(4)  # fill both
    out = region.program(1)  # every wrap-erase fails -> both retired
    assert out.erase_faults == 2
    assert out.blocks_retired == 2
    assert out.exhausted
    # A failed erase still stresses the cells.
    assert region.erase_counts.tolist() == [1, 1]


def test_program_fault_wastes_page_and_retries_on_next():
    class EveryOther:
        def __init__(self):
            self.n = 0

        def meta_program_fails(self, block, page, pe_cycles):
            self.n += 1
            return self.n % 2 == 1

        def meta_erase_fails(self, block, pe_cycles):
            return False

    region = MetaRegion(blocks=2, pages_per_block=4, fault_injector=EveryOther())
    out = region.program(3)
    # Alternating fail/succeed: 3 payload pages cost 6 physical pages.
    assert out.pages_programmed == 3
    assert out.program_faults == 3


def test_capture_restore_round_trip():
    region = MetaRegion(blocks=3, pages_per_block=4, pe_cycle_limit=50)
    region.program(17)
    state = region.capture()
    clone = MetaRegion.restore(state, pages_per_block=4, pe_cycle_limit=50)
    assert np.array_equal(clone.erase_counts, region.erase_counts)
    assert np.array_equal(clone.retired, region.retired)
    assert clone._block == region._block and clone._page == region._page
    # The clone continues exactly where the original would.
    a = region.program(9)
    b = clone.program(9)
    assert (a.pages_programmed, a.erases) == (b.pages_programmed, b.erases)


def test_region_validates_arguments():
    with pytest.raises(ValueError):
        MetaRegion(blocks=0, pages_per_block=4)
    with pytest.raises(ValueError):
        MetaRegion(blocks=1, pages_per_block=0)


# ----------------------------------------------------------------------
# NandArray wiring
# ----------------------------------------------------------------------
def test_nand_meta_program_prices_nand_work():
    nand = NandArray(GEOMETRY, TIMING, meta_blocks=1)
    out = nand.meta_program(4)  # fills the single reserved block
    assert out.latency_ns == 4 * TIMING.program_ns
    out = nand.meta_program(2)  # wrap: one erase + two programs
    assert out.erases == 1
    assert out.latency_ns == 2 * TIMING.program_ns + TIMING.erase_ns


def test_meta_wear_survives_durable_capture():
    nand = NandArray(GEOMETRY, TIMING, meta_blocks=2)
    nand.meta_program(11)  # past one wrap (capacity 8)
    state = nand.capture_durable_state()
    clone = NandArray.from_durable(GEOMETRY, state, timing=TIMING, meta_blocks=2)
    assert np.array_equal(
        clone.meta_region.erase_counts, nand.meta_region.erase_counts
    )
    assert clone.meta_region._block == nand.meta_region._block
    assert clone.meta_region._page == nand.meta_region._page


def test_pre_feature_image_restores_fresh_region():
    nand = NandArray(GEOMETRY, TIMING)
    state = nand.capture_durable_state()
    state.meta_wear = None  # image captured before meta wear existed
    clone = NandArray.from_durable(GEOMETRY, state, timing=TIMING)
    assert clone.meta_region.total_erases() == 0
    assert not clone.meta_region.exhausted


# ----------------------------------------------------------------------
# FTL routing: checkpoints and tombstones age the reserved blocks
# ----------------------------------------------------------------------
def test_checkpoint_traffic_wears_metadata_ring():
    cfg = SsdConfig.small(blocks=64, checkpoint_interval_pages=200, meta_blocks=1)
    ftl = cfg.build_ftl()
    for i in range(20000):
        ftl.host_write_page(i % 2000)
    stats = ftl.stats
    assert stats.checkpoints_written > 0
    assert stats.meta_pages_written > 0
    assert stats.meta_block_erases > 0, "ring should have wrapped"
    assert ftl.nand.meta_region.total_erases() == stats.meta_block_erases
    ftl.invariant_check()


def test_tombstone_journal_charges_meta_region():
    cfg = SsdConfig.small(blocks=64, meta_blocks=2)
    ftl = cfg.build_ftl()
    for i in range(256):
        ftl.host_write_page(i)
    before = ftl.nand.meta_region.pages_programmed
    latency = ftl.trim(range(128))
    assert latency > 0
    assert ftl.nand.meta_region.pages_programmed > before
    assert ftl.stats.meta_pages_written == ftl.nand.meta_region.pages_programmed


def test_meta_exhaustion_drives_device_read_only():
    cfg = SsdConfig.small(
        blocks=64, checkpoint_interval_pages=200, meta_blocks=1, pe_cycle_limit=5
    )
    ftl = cfg.build_ftl()
    with pytest.raises(DeviceReadOnlyError):
        for i in range(300000):
            ftl.host_write_page(i % 2000)
    assert ftl.read_only
    assert ftl.stats.meta_blocks_retired == 1
    assert ftl.nand.meta_region.exhausted


def test_mid_checkpoint_exhaustion_keeps_newest_complete_generation():
    """Wear exhaustion landing mid-checkpoint must not corrupt recovery.

    The logical append precedes the physical program, so when the ring
    dies partway through a checkpoint record the FTL must mark that
    record torn (its tail never reached NAND) and go read-only; the
    previous complete generation stays authoritative and power-on
    recovery restores the exact pre-exhaustion mapping from it plus the
    OOB tail."""
    cfg = SsdConfig.small(
        blocks=64, pages_per_block=32, meta_blocks=1, pe_cycle_limit=3,
        checkpoint_interval_pages=10**9,  # only explicit checkpoints
    )
    ftl = cfg.build_ftl(seed=4)
    for i in range(1200):
        ftl.host_write_page(i % 600)
    ftl.write_checkpoint()
    complete_gen = ftl._ckpt_generation
    ckpt_pages = ftl.nand.meta.records[-1].pages
    assert ckpt_pages > 1, "need a multi-page record to tear mid-program"

    # Burn ring capacity one page at a time until the *next* checkpoint
    # record is guaranteed to exhaust mid-record (probe on a clone).
    ppb = cfg.geometry.pages_per_block
    while True:
        probe = MetaRegion.restore(
            ftl.nand.meta_region.capture(), ppb, pe_cycle_limit=3
        )
        out = probe.program(ckpt_pages)
        if out.exhausted and 0 < out.pages_programmed < ckpt_pages:
            break
        assert not ftl.nand.meta_region.exhausted
        ftl.nand.meta_program(1)

    ftl.write_checkpoint()
    assert ftl.read_only
    torn = ftl.nand.meta.records[-1]
    assert torn.torn and torn.generation == complete_gen + 1
    assert torn.pages < ckpt_pages

    recovered, report = cfg.recover_from(ftl.nand.capture_durable_state(), seed=4)
    assert report.checkpoint_generation == complete_gen
    assert report.torn_meta_records >= 1
    assert np.array_equal(
        recovered.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
