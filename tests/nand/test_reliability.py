"""Tests for the NAND reliability models."""

import pytest

from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.reliability import BitErrorModel, EccConfig, ReadDisturbTracker
from repro.nand.timing import NandTiming

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=8)
TIMING = NandTiming(read_ns=10, program_ns=100, erase_ns=1000, transfer_ns_per_page=1)


# ----------------------------------------------------------------------
# BitErrorModel
# ----------------------------------------------------------------------
def test_rber_monotone_in_wear():
    model = BitErrorModel()
    fresh = model.rber(0)
    worn = model.rber(3000)
    assert fresh < worn
    assert fresh == pytest.approx(model.base_rber * 1.0, rel=1e-6)


def test_rber_monotone_in_retention_and_disturbs():
    model = BitErrorModel()
    base = model.rber(1000)
    assert model.rber(1000, retention_s=10**7) > base
    assert model.rber(1000, read_disturbs=10**5) > base


def test_rber_capped_at_half():
    model = BitErrorModel()
    assert model.rber(10**9, retention_s=10**12, read_disturbs=10**9) == 0.5


def test_rber_validation():
    model = BitErrorModel()
    with pytest.raises(ValueError):
        model.rber(-1)
    with pytest.raises(ValueError):
        BitErrorModel(base_rber=0)


# ----------------------------------------------------------------------
# EccConfig
# ----------------------------------------------------------------------
def test_ecc_zero_rber_never_fails():
    ecc = EccConfig()
    assert ecc.codeword_failure_probability(0.0) == 0.0
    assert ecc.page_failure_probability(0.0) == 0.0


def test_ecc_failure_monotone_in_rber():
    ecc = EccConfig(codeword_bytes=512, correctable_bits=8)
    low = ecc.codeword_failure_probability(1e-5)
    high = ecc.codeword_failure_probability(1e-3)
    assert 0.0 <= low < high <= 1.0


def test_ecc_stronger_correction_fails_less():
    weak = EccConfig(codeword_bytes=512, correctable_bits=4)
    strong = EccConfig(codeword_bytes=512, correctable_bits=40)
    rber = 1e-3
    assert strong.codeword_failure_probability(rber) < weak.codeword_failure_probability(rber)


def test_page_failure_aggregates_codewords():
    ecc = EccConfig(codeword_bytes=1024, correctable_bits=4)
    rber = 2e-3
    per_codeword = ecc.codeword_failure_probability(rber)
    per_page = ecc.page_failure_probability(rber, page_bytes=4096)
    assert per_page >= per_codeword
    assert per_page == pytest.approx(1 - (1 - per_codeword) ** 4)


def test_ecc_validation():
    with pytest.raises(ValueError):
        EccConfig(codeword_bytes=0)
    ecc = EccConfig()
    with pytest.raises(ValueError):
        ecc.codeword_failure_probability(1.5)


def test_end_of_life_story():
    """A worn, long-retained block must look much riskier than a fresh
    one -- the quantitative link from WAF to lifetime.  Uses a weak ECC
    so the probabilities stay in floating-point range."""
    model = BitErrorModel()
    ecc = EccConfig(codeword_bytes=512, correctable_bits=4)
    fresh = ecc.page_failure_probability(model.rber(100, retention_s=86_400))
    eol = ecc.page_failure_probability(model.rber(3000, retention_s=3 * 10**7))
    assert eol > fresh
    assert eol > 1e-9


# ----------------------------------------------------------------------
# ReadDisturbTracker (+ NandArray integration)
# ----------------------------------------------------------------------
def test_tracker_threshold():
    tracker = ReadDisturbTracker(4, scrub_threshold=3)
    assert tracker.record_read(0) is False
    assert tracker.record_read(0) is False
    assert tracker.record_read(0) is True
    assert tracker.blocks_needing_scrub() == [0]
    tracker.reset(0)
    assert tracker.blocks_needing_scrub() == []


def test_tracker_validation():
    with pytest.raises(ValueError):
        ReadDisturbTracker(0)
    with pytest.raises(ValueError):
        ReadDisturbTracker(4, scrub_threshold=0)


def test_nand_integration_counts_and_resets():
    tracker = ReadDisturbTracker(GEOMETRY.total_blocks, scrub_threshold=2)
    nand = NandArray(GEOMETRY, TIMING, read_disturb=tracker)
    nand.program_page(0, 0)
    nand.read_page(0, 0)
    nand.read_page(0, 0)
    assert tracker.blocks_needing_scrub() == [0]
    assert tracker.max_reads() == 2
    nand.erase_block(0)
    assert tracker.blocks_needing_scrub() == []
