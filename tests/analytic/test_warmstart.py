"""Tests for the warm-start synthesizer (repro.analytic.warmstart):
installed-state invariants, bit-determinism, and -- the power-loss
contract -- that a synthesized image survives power-on recovery with
identical logical contents."""

import numpy as np
import pytest

from repro.analytic.warmstart import (
    synthesize_steady_state,
    workload_mix_hints,
)
from repro.ftl.mapping import UNMAPPED
from repro.nand.array import STATE_FULL
from repro.ssd.config import SsdConfig

CONFIG = SsdConfig.small(blocks=128, pages_per_block=64)


def synth(ws_fraction=0.8, seed=42, config=CONFIG, **kwargs):
    ws = int(config.space_model().user_pages * ws_fraction)
    return synthesize_steady_state(
        config, seed=seed, working_set_pages=ws, **kwargs
    )


# ----------------------------------------------------------------------
# Installed-state shape
# ----------------------------------------------------------------------
def test_synthesized_ftl_passes_invariants_and_matches_prediction():
    ftl, pred = synth()
    ftl.invariant_check()
    # Closed blocks carry exactly the predicted valid counts.
    counts = sorted(
        ftl.valid_pages(b) for b in range(CONFIG.geometry.total_blocks)
        if ftl.nand.block_states[b] == STATE_FULL and not ftl.is_frontier(b)
    ) if hasattr(ftl, "valid_pages") and hasattr(ftl, "is_frontier") else None
    l2p = ftl.page_map.l2p_snapshot()
    assert int((l2p != UNMAPPED).sum()) == pred.mapped_pages
    assert ftl.stats.host_pages_written == 0  # counters start clean


def test_synthesized_device_serves_reads_and_writes():
    ftl, pred = synth(ws_fraction=0.6)
    # A mapped page reads from NAND; overwriting it moves the mapping.
    l2p = ftl.page_map.l2p_snapshot()
    lpn = int(np.flatnonzero(l2p != UNMAPPED)[0])
    old_ppn = ftl.page_map.lookup(lpn)
    ftl.host_write_page(lpn)
    assert ftl.page_map.lookup(lpn) != old_ppn
    ftl.invariant_check()


def test_synthesis_is_bit_deterministic():
    a, _ = synth(seed=7)
    b, _ = synth(seed=7)
    assert np.array_equal(a.page_map.l2p_snapshot(), b.page_map.l2p_snapshot())
    assert np.array_equal(a.nand.oob_seq, b.nand.oob_seq)
    assert np.array_equal(a.nand.oob_lpn, b.nand.oob_lpn)
    assert np.array_equal(a.nand.block_states, b.nand.block_states)
    assert np.array_equal(a.nand.erase_counts, b.nand.erase_counts)


def test_different_seeds_shuffle_the_layout():
    a, _ = synth(seed=1)
    b, _ = synth(seed=2)
    assert not np.array_equal(a.page_map.l2p_snapshot(), b.page_map.l2p_snapshot())


def test_trim_mix_installs_partially_mapped_working_set():
    ftl, pred = synth(ws_fraction=0.9, trim_fraction=0.25, write_fraction=0.55)
    assert pred.mapped_fraction < 1.0
    l2p = ftl.page_map.l2p_snapshot()
    assert int((l2p != UNMAPPED).sum()) == pred.mapped_pages


def test_workload_mix_hints():
    hints = workload_mix_hints(
        "Synthetic", {"trim_fraction": 0.2, "write_fraction": 0.5}
    )
    assert hints["trim_fraction"] == 0.2
    assert hints["write_fraction"] == 0.5
    hints = workload_mix_hints("YCSB", {})
    assert hints["trim_fraction"] == 0.0
    assert hints["write_fraction"] == 1.0


# ----------------------------------------------------------------------
# Power-on survival: the synthesized image is recoverable (satellite 3)
# ----------------------------------------------------------------------
def _assert_recovery_identity(config, ftl):
    durable = ftl.nand.capture_durable_state()
    recovered_ftl, report = config.recover_from(durable)
    # Read-identity witness: every logical page maps to the same
    # physical page, so every read returns the same data.
    assert np.array_equal(
        recovered_ftl.page_map.l2p_snapshot(), ftl.page_map.l2p_snapshot()
    )
    assert recovered_ftl._write_seq >= ftl._write_seq
    recovered_ftl.invariant_check()
    return report


def test_warm_image_survives_power_on_full_scan():
    ftl, _ = synth(ws_fraction=0.8)
    report = _assert_recovery_identity(CONFIG, ftl)
    assert report.full_scan


def test_warm_image_survives_power_on_after_checkpoint():
    config = SsdConfig.small(
        blocks=128, pages_per_block=64, checkpoint_interval_pages=10_000
    )
    ftl, _ = synth(ws_fraction=0.8, config=config)
    ftl.write_checkpoint()
    report = _assert_recovery_identity(config, ftl)
    assert not report.full_scan  # checkpoint bounds the scan


def test_warm_image_survives_power_on_after_io_and_trim():
    config = SsdConfig.small(blocks=128, pages_per_block=64)
    ftl, pred = synth(ws_fraction=0.7, config=config)
    # Post-warm-start activity: overwrites and discards, then power cut.
    rng = np.random.default_rng(3)
    ws = pred.working_set_pages
    for lpn in rng.integers(0, ws, size=500):
        ftl.host_write_page(int(lpn))
    ftl.trim(int(l) for l in rng.integers(0, ws, size=64))
    _assert_recovery_identity(config, ftl)


def test_warm_image_survives_power_on_with_trim_mix():
    ftl, _ = synth(ws_fraction=0.9, trim_fraction=0.25, write_fraction=0.55)
    _assert_recovery_identity(CONFIG, ftl)


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_overfull_working_set_has_no_steady_state():
    class HugeReserve:
        cresv_over_op = 1000.0
        name = "L-BGC"

    # A full working set cannot coexist with a reserve that swallows the
    # whole unused capacity: mean occupancy would reach 1.
    with pytest.raises(ValueError):
        synth(ws_fraction=1.0, policy=HugeReserve())
