"""Tolerance-validation suite: analytic warm-start vs simulated warmup.

For every GC policy, runs the same scenario twice -- once preconditioned
by the reference prefill + simulated warmup, once warm-started from the
analytic steady-state prediction -- and bounds the measure-window
divergence.  This is the CI equivalence smoke; the full-size validation
on the paper's Fig. 2 configuration (1024 blocks, 40 s warmup) is
recorded in BENCH_hotpaths.json by benchmarks/bench_warmstart.py, where
the acceptance bounds are WAF within 5 % and p99 within 10 %.

Both runs are deterministic functions of the seed, so these bounds
check modelling error, not noise.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import POLICY_FACTORIES, ScenarioSpec, run_scenario

#: Measure-window divergence bounds for the smoke configuration (256
#: blocks, 20 s warmup).  Looser than the Fig. 2 acceptance gate: the
#: smaller device amplifies the model's block-quantisation error.
WAF_TOL = 0.08
IOPS_TOL = 0.10
P99_TOL = 0.10

BASE = ScenarioSpec(
    workload="YCSB",
    blocks=256,
    pages_per_block=64,
    warmup_s=20,
    measure_s=30,
    seed=42,
    working_set_fraction=0.5,
)


def _rel(a: float, b: float) -> float:
    return abs(a - b) / b if b else 0.0


@pytest.mark.parametrize("policy", sorted(POLICY_FACTORIES))
def test_analytic_warm_start_matches_sim_warmup(policy):
    sim = run_scenario(replace(BASE, policy=policy, warm_start="sim"))
    ana = run_scenario(replace(BASE, policy=policy, warm_start="analytic"))

    assert _rel(ana.waf, sim.waf) <= WAF_TOL, (
        f"{policy}: WAF {ana.waf:.4f} (analytic) vs {sim.waf:.4f} (sim)"
    )
    assert _rel(ana.iops, sim.iops) <= IOPS_TOL, (
        f"{policy}: IOPS {ana.iops:.1f} (analytic) vs {sim.iops:.1f} (sim)"
    )
    assert _rel(ana.p99_latency_ns, sim.p99_latency_ns) <= P99_TOL, (
        f"{policy}: p99 {ana.p99_latency_ns} (analytic) vs "
        f"{sim.p99_latency_ns} (sim)"
    )
    # The warm-started device is genuinely at work: GC ran in-window.
    assert ana.gc_pages_migrated > 0
    assert ana.host_pages_written > 0


def test_warm_start_mode_is_part_of_the_scenario_key():
    sim = replace(BASE, policy="L-BGC")
    ana = replace(BASE, policy="L-BGC", warm_start="analytic")
    assert sim.key() != ana.key()
    # The default mode keeps the historical key, so existing sweep
    # checkpoints still resolve.
    assert "warm" not in sim.key()


def test_unknown_warm_start_mode_is_rejected():
    with pytest.raises(ValueError):
        run_scenario(replace(BASE, policy="L-BGC", warm_start="psychic"))
