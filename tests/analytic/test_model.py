"""Tests for the mean-field steady-state predictor (repro.analytic.model)."""

import math

import numpy as np
import pytest

from repro.analytic.model import (
    SteadyStatePrediction,
    _stratified_valid_counts,
    occupancy_quantile,
    policy_reserve_pages,
    predict_steady_state,
    solve_u_min,
)
from repro.ftl.space import SpaceModel
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(page_size=4096, pages_per_block=64, blocks_per_plane=256)
SPACE = SpaceModel.from_op_ratio(GEOMETRY, 0.07)


# ----------------------------------------------------------------------
# The u_min bisection
# ----------------------------------------------------------------------
def test_solve_u_min_inverts_the_mean_occupancy_relation():
    for u_bar in (0.1, 0.5, 0.8, 0.93, 0.99):
        u_min = solve_u_min(u_bar)
        recovered = (1.0 - u_min) / math.log(1.0 / u_min)
        assert recovered == pytest.approx(u_bar, abs=1e-9)


def test_solve_u_min_is_monotonic_in_occupancy():
    floors = [solve_u_min(u) for u in (0.2, 0.4, 0.6, 0.8, 0.95)]
    assert floors == sorted(floors)


def test_solve_u_min_rejects_degenerate_occupancy():
    with pytest.raises(ValueError):
        solve_u_min(0.0)
    with pytest.raises(ValueError):
        solve_u_min(1.0)


# ----------------------------------------------------------------------
# Quantiles and the stratified per-block sample
# ----------------------------------------------------------------------
def test_occupancy_quantile_spans_floor_to_full():
    u_min = 0.7
    assert occupancy_quantile(u_min, 0.0) == pytest.approx(u_min)
    assert occupancy_quantile(u_min, 1.0) == pytest.approx(1.0)
    mid = occupancy_quantile(u_min, 0.5)
    assert u_min < mid < 1.0


def test_stratified_counts_sum_exactly_to_mapped_pages():
    u_min = solve_u_min(0.85)
    counts = _stratified_valid_counts(u_min, 100, 64, int(0.85 * 100 * 64))
    assert counts.sum() == int(0.85 * 100 * 64)
    assert counts.dtype == np.int32
    assert (counts >= 0).all() and (counts <= 64).all()
    # Quantiles are taken in order; the sum-correction may perturb
    # individual blocks by one page, never more.
    assert (np.diff(counts) >= -1).all()


def test_stratified_counts_match_the_density_shape():
    u_min = solve_u_min(0.8)
    counts = _stratified_valid_counts(u_min, 1000, 64, int(0.8 * 1000 * 64))
    # Empiric floor and ceiling of the sample track [u_min, 1].
    assert counts[0] / 64 == pytest.approx(u_min, abs=0.05)
    assert counts[-1] >= 63  # top quantile is (nearly) full


# ----------------------------------------------------------------------
# The full prediction
# ----------------------------------------------------------------------
def test_predict_matches_greedy_waf_closed_form():
    ws = int(SPACE.user_pages * 0.9)
    pred = predict_steady_state(SPACE, working_set_pages=ws)
    assert isinstance(pred, SteadyStatePrediction)
    assert pred.waf == pytest.approx(1.0 / (1.0 - pred.u_min))
    assert pred.mapped_pages == ws
    assert pred.valid_counts.sum() == ws
    assert pred.closed_blocks + pred.free_blocks + 2 == GEOMETRY.total_blocks


def test_larger_working_set_predicts_higher_waf():
    lo = predict_steady_state(
        SPACE, working_set_pages=int(SPACE.user_pages * 0.5)
    )
    hi = predict_steady_state(
        SPACE, working_set_pages=int(SPACE.user_pages * 0.95)
    )
    assert hi.waf > lo.waf
    assert hi.u_min > lo.u_min


def test_trim_mix_shrinks_the_stationary_mapped_share():
    ws = int(SPACE.user_pages * 0.9)
    pred = predict_steady_state(
        SPACE, working_set_pages=ws, trim_fraction=0.25, write_fraction=0.55
    )
    assert pred.mapped_fraction == pytest.approx(0.55 / 0.80)
    assert pred.mapped_pages == round(ws * pred.mapped_fraction)
    no_trim = predict_steady_state(SPACE, working_set_pages=ws)
    assert pred.waf < no_trim.waf  # discards create free garbage


def test_policy_reserve_respects_fixed_cresv():
    class Fixed:
        cresv_over_op = 2.0
        name = "L-BGC"

    mapped = int(SPACE.user_pages * 0.5)
    pages = policy_reserve_pages(SPACE, Fixed(), mapped)
    assert pages == SPACE.clamp_reserved_pages(SPACE.reserved_pages(2.0), mapped)


def test_policy_reserve_uses_calibrated_default_for_adaptive():
    class Adp:
        name = "ADP-GC"

    class Unknown:
        name = "X-GC"

    mapped = int(SPACE.user_pages * 0.5)
    assert policy_reserve_pages(SPACE, Adp(), mapped) == SPACE.reserved_pages(1.0)
    assert policy_reserve_pages(SPACE, Unknown(), mapped) == SPACE.reserved_pages(0.5)
    assert policy_reserve_pages(SPACE, None, mapped) == SPACE.reserved_pages(0.5)


def test_predict_rejects_impossible_states():
    with pytest.raises(ValueError):
        predict_steady_state(SPACE, working_set_pages=SPACE.user_pages + 1)
    with pytest.raises(ValueError):
        predict_steady_state(SPACE, working_set_pages=0)
    with pytest.raises(ValueError):
        predict_steady_state(
            SPACE, working_set_pages=100, trim_fraction=0.5, write_fraction=0.0
        )
    # A device with almost no good blocks has no closed population.
    with pytest.raises(ValueError):
        predict_steady_state(SPACE, working_set_pages=1000, good_blocks=3)


def test_prediction_is_deterministic():
    ws = int(SPACE.user_pages * 0.85)
    a = predict_steady_state(SPACE, working_set_pages=ws)
    b = predict_steady_state(SPACE, working_set_pages=ws)
    assert a.u_min == b.u_min
    assert np.array_equal(a.valid_counts, b.valid_counts)
