"""Tests for the years-to-ECC-cliff lifetime model (repro.analytic.lifetime)."""

import math

import pytest

from repro.analytic.lifetime import (
    DEFAULT_RETENTION_S,
    DEFAULT_UBER_TARGET,
    LifetimeModel,
    LifetimeProjection,
    max_tolerable_pe,
    project_lifetime,
)
from repro.nand.reliability import RELIABILITY_PROFILES, BitErrorModel, EccConfig


def test_max_tolerable_pe_is_exact_cliff_edge():
    model = LifetimeModel(
        bit_error_model=BitErrorModel(),
        ecc=EccConfig(),
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=DEFAULT_UBER_TARGET,
    )
    pe = model.max_tolerable_pe()
    assert pe > 0
    # Bisection exactness: pe meets the target, pe+1 misses it.
    assert model.uber_at(pe) <= model.uber_target < model.uber_at(pe + 1)


def test_uber_monotone_in_wear():
    model = LifetimeModel(
        bit_error_model=BitErrorModel(),
        ecc=EccConfig(),
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=DEFAULT_UBER_TARGET,
    )
    grid = [model.uber_at(pe) for pe in range(0, 20_001, 2_000)]
    assert grid == sorted(grid)


def test_fresh_cells_missing_target_yield_zero():
    # No correction at all and a hot RBER: even pe=0 misses the target.
    model = LifetimeModel(
        bit_error_model=BitErrorModel(base_rber=1e-3),
        ecc=EccConfig(correctable_bits=0),
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=1e-15,
    )
    assert model.max_tolerable_pe() == 0


def test_limit_returned_when_cliff_never_binds():
    model = LifetimeModel(
        bit_error_model=BitErrorModel(),
        ecc=EccConfig(),
        retention_target_s=0.0,
        uber_target=0.5,
    )
    assert model.max_tolerable_pe(limit=100) == 100


def test_from_profile_matches_direct_construction():
    profile = RELIABILITY_PROFILES["mlc-20nm"]
    via_profile = LifetimeModel.from_profile(
        profile, retention_target_s=DEFAULT_RETENTION_S, uber_target=1e-15
    )
    direct = LifetimeModel(
        bit_error_model=profile.bit_error_model,
        ecc=profile.ecc,
        page_bytes=profile.page_bytes,
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=1e-15,
    )
    assert via_profile.max_tolerable_pe() == direct.max_tolerable_pe()


def test_module_level_helper_uses_default_model():
    assert max_tolerable_pe() > 0


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"page_bytes": 0}, "page_bytes"),
        ({"retention_target_s": -1.0}, "retention_target_s"),
        ({"uber_target": 0.0}, "uber_target"),
        ({"uber_target": 1.0}, "uber_target"),
    ],
)
def test_model_validation(kwargs, match):
    defaults = dict(
        bit_error_model=BitErrorModel(),
        ecc=EccConfig(),
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=DEFAULT_UBER_TARGET,
    )
    defaults.update(kwargs)
    with pytest.raises(ValueError, match=match):
        LifetimeModel(**defaults)


# ----------------------------------------------------------------------
# Projection: endurance budget / (WAF * write rate)
# ----------------------------------------------------------------------
def test_project_lifetime_years_formula():
    model = LifetimeModel(
        bit_error_model=BitErrorModel(),
        ecc=EccConfig(),
        retention_target_s=DEFAULT_RETENTION_S,
        uber_target=DEFAULT_UBER_TARGET,
    )
    max_pe = model.max_tolerable_pe()
    physical = 16 * 2**30
    daily = 10 * 2**30
    projection = project_lifetime("JIT-GC", 1.5, physical, daily, model=model)
    assert isinstance(projection, LifetimeProjection)
    assert projection.policy == "JIT-GC"
    assert projection.max_pe_cycles == max_pe
    expected_years = max_pe * physical / (1.5 * daily * 365.25)
    assert projection.years == pytest.approx(expected_years)


def test_lower_waf_lives_proportionally_longer():
    physical, daily = 16 * 2**30, 10 * 2**30
    jit = project_lifetime("JIT-GC", 2.0, physical, daily)
    greedy = project_lifetime("A-BGC", 4.0, physical, daily)
    assert jit.years == pytest.approx(2.0 * greedy.years)


def test_zero_write_rate_is_infinite_lifetime():
    projection = project_lifetime("idle", 1.0, 16 * 2**30, 0.0)
    assert math.isinf(projection.years)


@pytest.mark.parametrize(
    "waf, physical, daily, match",
    [
        (0.9, 2**30, 2**30, "waf"),
        (1.5, 0, 2**30, "physical_bytes"),
        (1.5, 2**30, -1.0, "daily_write_bytes"),
    ],
)
def test_project_lifetime_validation(waf, physical, daily, match):
    with pytest.raises(ValueError, match=match):
        project_lifetime("JIT-GC", waf, physical, daily)
