"""Tests for the extended SG_IO-style host interface."""

from repro.sim.engine import Simulator
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.interface import ExtendedHostInterface
from repro.ssd.request import IoKind, IoRequest


def make_iface():
    sim = Simulator()
    dev = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    return sim, dev, ExtendedHostInterface(dev)


def test_query_free_capacity_matches_device():
    _, dev, iface = make_iface()
    assert iface.query_free_capacity() == dev.free_bytes()


def test_command_overhead_accounted():
    _, _, iface = make_iface()
    iface.query_free_capacity()
    iface.get_waf()
    assert iface.commands_issued == 2
    assert iface.overhead_ns == 2 * ExtendedHostInterface.COMMAND_OVERHEAD_NS


def test_sip_list_download():
    _, dev, iface = make_iface()
    iface.set_sip_list([1, 2, 3])
    assert dev.ftl.sip_lpns == {1, 2, 3}


def test_waf_profiling():
    sim, dev, iface = make_iface()
    dev.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 1))
    sim.run()
    assert iface.get_waf() == 1.0
    stats = iface.get_ftl_stats()
    assert stats.host_pages_written == 1


def test_wear_stats_profiling():
    _, _, iface = make_iface()
    stats = iface.get_wear_stats()
    assert stats.total_erases == 0


def test_invoke_bgc_kicks_idle_device():
    sim, dev, iface = make_iface()
    # No controller: the kick is a harmless no-op but still a command.
    iface.invoke_bgc()
    assert iface.commands_issued == 1
