"""Device BGC mechanics: idle-detection grace, chaining, wear-level path."""

from repro.sim.engine import Simulator
from repro.sim.simtime import MICROSECOND, MILLISECOND, SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.device import ReclaimController, SsdDevice
from repro.ssd.request import IoKind, IoRequest


class CountingController(ReclaimController):
    def __init__(self, demand):
        self.demand = demand
        self.blocks = 0

    def reclaim_demand_pages(self, device):
        return self.demand

    def on_block_collected(self, device, freed_pages):
        self.blocks += 1


def make_device(grace_ns, demand=10**9):
    sim = Simulator()
    config = SsdConfig.small(blocks=64, pages_per_block=8)
    config.bgc_idle_grace_ns = grace_ns
    controller = CountingController(demand)
    device = SsdDevice(sim, config, controller=controller)
    return sim, device, controller


def seed_garbage(sim, device):
    user = device.ftl.space.user_pages
    for i in range(user * 2):
        device.submit(IoRequest(IoKind.DIRECT_WRITE, i % (user // 2), 1))
    # Drain the queue without giving idle time (grace may defer BGC).
    sim.run_until(sim.now + 60 * SECOND)


def test_grace_defers_bgc_until_quiet():
    sim, device, controller = make_device(grace_ns=MILLISECOND, demand=0)
    seed_garbage(sim, device)
    controller.demand = 10**9
    # Keep the device busy with requests spaced closer than the grace:
    # BGC must not start between them.
    blocks_before = device.ftl.stats.bgc_blocks_collected
    for index in range(50):
        sim.schedule_at(
            sim.now + index * (MILLISECOND // 2),
            lambda: device.submit(IoRequest(IoKind.READ, 0, 1)),
        )
    sim.run_until(sim.now + 25 * MILLISECOND)
    assert device.ftl.stats.bgc_blocks_collected == blocks_before
    # After a real quiet period, BGC chains freely.
    sim.run_until(sim.now + SECOND)
    assert device.ftl.stats.bgc_blocks_collected > blocks_before


def test_zero_grace_starts_immediately():
    sim, device, controller = make_device(grace_ns=0, demand=0)
    seed_garbage(sim, device)
    controller.demand = 10**9
    device.kick_bgc()
    assert not device.idle  # collecting right now


def test_bgc_chain_does_not_rewait_grace():
    sim, device, controller = make_device(grace_ns=100 * MILLISECOND, demand=0)
    seed_garbage(sim, device)
    controller.demand = 10**9
    start = sim.now
    device.kick_bgc()  # explicit kick bypasses the grace
    sim.run_until(start + 80 * MILLISECOND)
    # Far less than one grace period elapsed, yet multiple blocks done:
    # consecutive blocks chain without re-waiting.
    assert controller.blocks >= 2


def test_bgc_stops_when_demand_satisfied():
    sim, device, controller = make_device(grace_ns=0, demand=0)
    seed_garbage(sim, device)
    controller.demand = 1  # one page wanted

    class OneShot(CountingController):
        def reclaim_demand_pages(self, dev):
            return self.demand

        def on_block_collected(self, dev, freed):
            super().on_block_collected(dev, freed)
            self.demand = 0

    one_shot = OneShot(1)
    device.controller = one_shot
    device.kick_bgc()
    sim.run_until(sim.now + SECOND)
    assert one_shot.blocks == 1
