"""Tests for I/O request objects."""

import pytest

from repro.ssd.request import IoKind, IoRequest


def test_lpns_extent():
    req = IoRequest(IoKind.READ, 10, 3)
    assert req.lpns == [10, 11, 12]


def test_is_write_classification():
    assert IoRequest(IoKind.DIRECT_WRITE, 0, 1).is_write
    assert IoRequest(IoKind.WRITEBACK, 0, 1).is_write
    assert not IoRequest(IoKind.READ, 0, 1).is_write
    assert not IoRequest(IoKind.TRIM, 0, 1).is_write


def test_latency_requires_completion():
    req = IoRequest(IoKind.READ, 0, 1)
    with pytest.raises(ValueError):
        req.latency()
    req.submit_time = 10
    req.complete_time = 35
    assert req.latency() == 25


def test_bytes_size():
    req = IoRequest(IoKind.WRITEBACK, 0, 4)
    assert req.bytes_size(4096) == 16384


def test_validation():
    with pytest.raises(ValueError):
        IoRequest(IoKind.READ, 0, 0)
    with pytest.raises(ValueError):
        IoRequest(IoKind.READ, -1, 1)


def test_request_ids_unique():
    a = IoRequest(IoKind.READ, 0, 1)
    b = IoRequest(IoKind.READ, 0, 1)
    assert a.request_id != b.request_id
