"""Tests for the device configuration bundle."""

from repro.ssd.config import SsdConfig


def test_default_config_builds():
    config = SsdConfig.small()
    ftl = config.build_ftl()
    assert ftl.space.op_ratio > 0
    assert ftl.free_pool_blocks() > 0


def test_small_factory_dimensions():
    config = SsdConfig.small(blocks=128, pages_per_block=32)
    assert config.geometry.total_blocks == 128
    assert config.geometry.pages_per_block == 32


def test_wear_leveling_toggle():
    config = SsdConfig.small(enable_wear_leveling=True, wear_level_threshold=5)
    ftl = config.build_ftl()
    assert ftl.wear_leveler is not None
    assert ftl.wear_leveler.threshold == 5
    assert SsdConfig.small().build_ftl().wear_leveler is None


def test_independent_builds():
    config = SsdConfig.small()
    a = config.build_ftl()
    b = config.build_ftl()
    a.host_write_page(0)
    assert b.used_pages() == 0


def test_capacity_properties():
    config = SsdConfig.small(blocks=128, pages_per_block=32)
    assert config.user_bytes + config.op_bytes == config.geometry.total_bytes


def test_pe_cycle_limit_plumbed():
    config = SsdConfig.small(pe_cycle_limit=7)
    ftl = config.build_ftl()
    assert ftl.nand.endurance.pe_cycle_limit == 7
