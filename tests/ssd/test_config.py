"""Tests for the device configuration bundle."""

from repro.ssd.config import SsdConfig


def test_default_config_builds():
    config = SsdConfig.small()
    ftl = config.build_ftl()
    assert ftl.space.op_ratio > 0
    assert ftl.free_pool_blocks() > 0


def test_small_factory_dimensions():
    config = SsdConfig.small(blocks=128, pages_per_block=32)
    assert config.geometry.total_blocks == 128
    assert config.geometry.pages_per_block == 32


def test_wear_leveling_toggle():
    config = SsdConfig.small(enable_wear_leveling=True, wear_level_threshold=5)
    ftl = config.build_ftl()
    assert ftl.wear_leveler is not None
    assert ftl.wear_leveler.threshold == 5
    assert SsdConfig.small().build_ftl().wear_leveler is None


def test_independent_builds():
    config = SsdConfig.small()
    a = config.build_ftl()
    b = config.build_ftl()
    a.host_write_page(0)
    assert b.used_pages() == 0


def test_capacity_properties():
    config = SsdConfig.small(blocks=128, pages_per_block=32)
    assert config.user_bytes + config.op_bytes == config.geometry.total_bytes


def test_pe_cycle_limit_plumbed():
    config = SsdConfig.small(pe_cycle_limit=7)
    ftl = config.build_ftl()
    assert ftl.nand.endurance.pe_cycle_limit == 7


def test_invalid_capacity_rejected():
    import pytest

    from repro.nand.geometry import NandGeometry

    with pytest.raises(ValueError):
        SsdConfig(geometry=NandGeometry(page_size=0, pages_per_block=4, blocks_per_plane=8))
    with pytest.raises(ValueError):
        SsdConfig(geometry=NandGeometry(page_size=4096, pages_per_block=4, blocks_per_plane=0))


def test_invalid_op_ratio_rejected():
    import pytest

    for bad in (0.0, -0.1, 1.0, 1.5):
        with pytest.raises(ValueError, match="op_ratio"):
            SsdConfig.small(op_ratio=bad)


def test_other_validation_errors():
    import pytest

    with pytest.raises(ValueError):
        SsdConfig.small(fgc_watermark=1)
    with pytest.raises(ValueError):
        SsdConfig.small(channel_parallelism=0)
    with pytest.raises(ValueError):
        SsdConfig.small(pe_cycle_limit=0)


def test_unknown_fault_profile_fails_at_config_time():
    import pytest

    with pytest.raises(KeyError, match="no-such"):
        SsdConfig.small(fault_profile="no-such")


def test_fault_profile_builds_injector():
    config = SsdConfig.small(fault_profile="light")
    nand_a = config.build_nand(seed=11)
    nand_b = config.build_nand(seed=11)
    assert nand_a.fault_injector is not None
    assert nand_a.fault_injector.seed == nand_b.fault_injector.seed == 11
    assert SsdConfig.small().build_nand().fault_injector is None
