"""Tests for the timed SSD device: queueing, completion, BGC control."""

import pytest

from repro.sim.engine import Simulator
from repro.ssd.config import SsdConfig
from repro.ssd.device import ReclaimController, SsdDevice
from repro.ssd.request import IoKind, IoRequest


def make_device(sim=None, controller=None, **cfg_kwargs):
    sim = sim or Simulator()
    cfg_kwargs.setdefault("blocks", 64)
    cfg_kwargs.setdefault("pages_per_block", 8)
    parallelism = cfg_kwargs.pop("channel_parallelism", 1)
    config = SsdConfig.small(**cfg_kwargs)
    config.channel_parallelism = parallelism
    return sim, SsdDevice(sim, config, controller=controller)


class FixedDemand(ReclaimController):
    """Test controller: constant reclaim demand in pages."""

    def __init__(self, demand):
        self.demand = demand
        self.collected = []

    def reclaim_demand_pages(self, device):
        return self.demand

    def on_block_collected(self, device, freed_pages):
        self.collected.append(freed_pages)


def test_write_request_completes_with_latency():
    sim, dev = make_device()
    done = []
    dev.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 1, on_complete=done.append))
    sim.run()
    assert len(done) == 1
    req = done[0]
    assert req.complete_time > req.submit_time
    assert req.latency() > 0
    assert dev.requests_completed == 1


def test_requests_serialize_fifo():
    sim, dev = make_device()
    order = []
    for i in range(3):
        dev.submit(
            IoRequest(IoKind.DIRECT_WRITE, i, 1, on_complete=lambda r: order.append(r.lpn))
        )
    sim.run()
    assert order == [0, 1, 2]


def test_read_faster_than_write():
    sim, dev = make_device()
    latencies = {}
    dev.submit(
        IoRequest(IoKind.DIRECT_WRITE, 0, 1, on_complete=lambda r: latencies.__setitem__("w", r.latency()))
    )
    sim.run()
    dev.submit(
        IoRequest(IoKind.READ, 0, 1, on_complete=lambda r: latencies.__setitem__("r", r.latency()))
    )
    sim.run()
    assert latencies["r"] < latencies["w"]


def test_trim_request():
    sim, dev = make_device()
    dev.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 4))
    dev.submit(IoRequest(IoKind.TRIM, 0, 4))
    sim.run()
    assert dev.ftl.used_pages() == 0


def test_multi_page_write_parallelism_speedup():
    sim1, serial = make_device(channel_parallelism=1)
    sim2, striped = make_device(channel_parallelism=4)
    lat = {}
    serial.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 8, on_complete=lambda r: lat.__setitem__("s", r.latency())))
    striped.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 8, on_complete=lambda r: lat.__setitem__("p", r.latency())))
    sim1.run()
    sim2.run()
    assert lat["p"] * 3 < lat["s"]


def test_idle_flag():
    sim, dev = make_device()
    assert dev.idle
    dev.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 1))
    assert not dev.idle
    sim.run()
    assert dev.idle


def test_bgc_runs_when_idle_with_demand():
    controller = FixedDemand(demand=10_000)
    sim, dev = make_device(controller=controller)
    user = dev.ftl.space.user_pages
    # Create garbage.
    for i in range(user * 2):
        dev.submit(IoRequest(IoKind.DIRECT_WRITE, i % (user // 2), 1))
    sim.run()
    assert dev.ftl.stats.bgc_blocks_collected > 0
    assert controller.collected, "controller must be notified per collected block"
    assert dev.bgc_busy_ns > 0


def test_no_bgc_without_demand():
    controller = FixedDemand(demand=0)
    sim, dev = make_device(controller=controller)
    user = dev.ftl.space.user_pages
    for i in range(user):
        dev.submit(IoRequest(IoKind.DIRECT_WRITE, i % (user // 2), 1))
    sim.run()
    assert dev.ftl.stats.bgc_blocks_collected == 0


def test_host_request_waits_at_most_one_bgc_block():
    """A request arriving mid-BGC is served right after the current block."""
    controller = FixedDemand(demand=0)
    sim, dev = make_device(controller=controller)
    user = dev.ftl.space.user_pages
    # Create garbage with BGC disabled so victims remain afterwards.
    for i in range(user * 2):
        dev.submit(IoRequest(IoKind.DIRECT_WRITE, i % (user // 2), 1))
    sim.run()
    assert dev.ftl.has_victim()

    # Enable demand, start one BGC block, inject a request mid-collection.
    controller.demand = 10**9
    done = []
    dev.kick_bgc()
    assert not dev.idle  # BGC block in flight
    dev.submit(IoRequest(IoKind.READ, 0, 1, on_complete=done.append))
    sim.run(max_events=4)
    assert done, "request must complete right after the in-flight BGC block"


def test_completion_listeners_called():
    sim, dev = make_device()
    seen = []
    dev.completion_listeners.append(lambda r: seen.append(r.request_id))
    dev.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 1))
    sim.run()
    assert len(seen) == 1


def test_bandwidth_estimators_update():
    sim, dev = make_device()
    before = dev.write_bandwidth.samples
    for i in range(50):
        dev.submit(IoRequest(IoKind.WRITEBACK, i % 8, 4))
    sim.run()
    assert dev.write_bandwidth.samples > before
    assert dev.write_bandwidth.bytes_per_second > 0


def test_free_bytes_matches_ftl():
    _, dev = make_device()
    assert dev.free_bytes() == dev.ftl.free_bytes()
    assert dev.free_pages() == dev.ftl.free_pages()
