"""Tests for the EWMA bandwidth estimator."""

import pytest

from repro.sim.simtime import SECOND
from repro.ssd.bandwidth import BandwidthEstimator


def test_prior_used_before_samples():
    est = BandwidthEstimator(prior_bytes_per_sec=1000.0)
    assert est.bytes_per_second == 1000.0
    assert est.time_for_bytes(1000) == SECOND


def test_converges_to_observed_rate():
    est = BandwidthEstimator(prior_bytes_per_sec=1000.0, alpha=0.5)
    for _ in range(20):
        est.observe(2000, SECOND)  # 2000 B/s
    assert est.bytes_per_second == pytest.approx(2000.0, rel=0.01)


def test_short_samples_accumulate():
    est = BandwidthEstimator(prior_bytes_per_sec=1000.0, min_sample_ns=SECOND)
    est.observe(10, SECOND // 10)
    assert est.samples == 0  # folded, not yet applied
    for _ in range(9):
        est.observe(10, SECOND // 10)
    assert est.samples == 1
    assert est.bytes_per_second != 1000.0


def test_time_and_bytes_helpers():
    est = BandwidthEstimator(prior_bytes_per_sec=100.0)
    assert est.time_for_bytes(0) == 0
    assert est.time_for_bytes(50) == SECOND // 2
    assert est.bytes_in_time(SECOND) == 100
    assert est.bytes_in_time(0) == 0


def test_validation():
    with pytest.raises(ValueError):
        BandwidthEstimator(prior_bytes_per_sec=0)
    with pytest.raises(ValueError):
        BandwidthEstimator(prior_bytes_per_sec=1, alpha=0)
    est = BandwidthEstimator(prior_bytes_per_sec=1)
    with pytest.raises(ValueError):
        est.observe(-1, 10)
