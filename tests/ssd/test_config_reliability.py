"""SsdConfig validation and plumbing for the reliability knobs."""

import pytest

from repro.nand.reliability import (
    RELIABILITY_PROFILES,
    ReadDisturbTracker,
    ReliabilityProfile,
)
from repro.ssd.config import SsdConfig


def test_unknown_profile_name_fails_at_config_time():
    with pytest.raises(ValueError, match="unknown reliability profile 'tlc'"):
        SsdConfig.small(blocks=16, pages_per_block=4, reliability="tlc")


def test_off_and_none_resolve_to_disabled():
    for spelling in (None, "off"):
        config = SsdConfig.small(blocks=16, pages_per_block=4, reliability=spelling)
        assert config.reliability is None
        assert config.resolved_reliability_profile() is None
        assert config.build_read_disturb() is None


def test_named_profile_resolves_eagerly():
    config = SsdConfig.small(blocks=16, pages_per_block=4, reliability="mlc-20nm")
    assert config.reliability is RELIABILITY_PROFILES["mlc-20nm"]


def test_profile_instance_passes_through():
    profile = ReliabilityProfile(name="custom", disturb_threshold=77)
    config = SsdConfig.small(blocks=16, pages_per_block=4, reliability=profile)
    assert config.reliability is profile


def test_bad_hand_built_profile_fails_before_config():
    # A hand-built profile validates its own knobs at construction, so
    # the bad ladder never even reaches SsdConfig.
    with pytest.raises(ValueError, match="monotonically non-decreasing"):
        SsdConfig.small(
            blocks=16,
            pages_per_block=4,
            reliability=ReliabilityProfile(
                retry_latency_ns=(90_000, 60_000, 140_000),
                retry_rber_factors=(0.72, 0.55, 0.42),
            ),
        )


def test_build_read_disturb_is_fresh_per_call():
    """Power-on disturb-reset: counters are volatile, built zeroed."""
    config = SsdConfig.small(blocks=16, pages_per_block=4, reliability="mlc-20nm")
    first = config.build_read_disturb()
    second = config.build_read_disturb()
    assert isinstance(first, ReadDisturbTracker)
    assert first is not second
    assert first.scrub_threshold == RELIABILITY_PROFILES["mlc-20nm"].disturb_threshold
    assert int(second.read_counts.max(initial=0)) == 0


def test_build_ftl_arms_the_subsystem():
    config = SsdConfig.small(blocks=16, pages_per_block=4, reliability="mlc-20nm")
    ftl = config.build_ftl()
    assert ftl.reliability is RELIABILITY_PROFILES["mlc-20nm"]
    assert ftl._rel_model is not None
    assert ftl._scrubber is not None
    assert ftl.nand.read_disturb is not None


def test_build_ftl_without_reliability_leaves_hooks_uninstalled():
    config = SsdConfig.small(blocks=16, pages_per_block=4)
    ftl = config.build_ftl()
    assert ftl.reliability is None
    assert ftl._rel_model is None
    assert ftl._scrubber is None
    assert ftl.nand.read_disturb is None
    assert ftl.maybe_scrub() == 0
