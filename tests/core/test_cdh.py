"""Tests for the cumulative data histogram, including the paper's
Fig. 5 worked example."""

import pytest

from repro.core.cdh import CumulativeDataHistogram

MB = 1_000_000


def test_paper_fig5_example():
    """Fig. 5: 10, 20, 20, 20, 80 MB over five intervals; 10 MB bins.

    The CDH reads 0.2 at the 10 MB bound and 0.8 at 20 MB; the 80 %
    reservation is therefore 20 MB.
    """
    cdh = CumulativeDataHistogram(bin_bytes=10 * MB)
    for amount in (10 * MB, 20 * MB, 20 * MB, 20 * MB, 80 * MB):
        # The bin of value v is v // bin; 10 MB lands in bin 1's range
        # [10, 20) only if slightly below; use the bin midpoints like a
        # real observation stream would.
        cdh.observe(amount - 1)
    cdf = cdh.cdf()
    assert cdf[0] == pytest.approx(0.2)   # <= 10 MB: 1 of 5
    assert cdf[1] == pytest.approx(0.8)   # <= 20 MB: 4 of 5
    assert cdh.percentile_bytes(0.8) == 20 * MB
    assert cdh.percentile_bytes(0.81) == 80 * MB
    assert cdh.percentile_bytes(0.2) == 10 * MB


def test_empty_cdh():
    cdh = CumulativeDataHistogram(bin_bytes=MB)
    assert cdh.histogram() == []
    assert cdh.cdf() == []
    assert cdh.percentile_bytes(0.8) == 0
    assert cdh.max_observation() == 0
    assert cdh.mean_observation() == 0.0


def test_histogram_bins():
    cdh = CumulativeDataHistogram(bin_bytes=10)
    for value in (0, 5, 9, 10, 25):
        cdh.observe(value)
    assert cdh.histogram() == [3, 1, 1]


def test_sliding_window_forgets():
    cdh = CumulativeDataHistogram(bin_bytes=10, window=3)
    cdh.observe(100)
    for _ in range(3):
        cdh.observe(5)
    assert cdh.max_observation() == 5
    assert cdh.count == 3


def test_percentile_one_covers_max():
    cdh = CumulativeDataHistogram(bin_bytes=10)
    cdh.observe(42)
    assert cdh.percentile_bytes(1.0) >= 42


def test_mean_observation():
    cdh = CumulativeDataHistogram(bin_bytes=10)
    cdh.observe(10)
    cdh.observe(30)
    assert cdh.mean_observation() == pytest.approx(20.0)


def test_validation():
    with pytest.raises(ValueError):
        CumulativeDataHistogram(bin_bytes=0)
    with pytest.raises(ValueError):
        CumulativeDataHistogram(bin_bytes=10, window=0)
    cdh = CumulativeDataHistogram(bin_bytes=10)
    with pytest.raises(ValueError):
        cdh.observe(-1)
    with pytest.raises(ValueError):
        cdh.percentile_bytes(0.0)
