"""Tests for the oracle (ideal) BGC policy and its two-pass harness."""

import pytest

from repro.core.oracle import FutureWriteLog, FutureWriteRecorder, OracleGcPolicy
from repro.experiments.oracle import run_oracle_comparison
from repro.experiments.runner import ScenarioSpec
from repro.host import HostSystem
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.request import IoKind, IoRequest


def test_future_log_windowing():
    log = FutureWriteLog(SECOND, [100, 200, 300, 400])
    assert log.demand_bytes(0, 2) == 300
    assert log.demand_bytes(SECOND, 2) == 500
    assert log.demand_bytes(3 * SECOND, 5) == 400  # clipped at the end
    assert log.demand_bytes(10 * SECOND, 2) == 0   # past the recording
    assert len(log) == 4


def test_future_log_validation():
    with pytest.raises(ValueError):
        FutureWriteLog(0, [])


def test_recorder_buckets_by_interval():
    from repro.core.policies import NoBgcPolicy

    host = HostSystem(SsdConfig.small(blocks=64, pages_per_block=8), NoBgcPolicy())
    recorder = FutureWriteRecorder(host.device, SECOND)
    host.device.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 2))
    host.run_for(SECOND + SECOND // 2)
    host.device.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 3))
    host.run_for(SECOND)
    log = recorder.log()
    assert log.volumes_bytes[0] == 2 * 4096
    assert log.volumes_bytes[1] == 3 * 4096


def test_recorder_ignores_reads():
    from repro.core.policies import NoBgcPolicy

    host = HostSystem(SsdConfig.small(blocks=64, pages_per_block=8), NoBgcPolicy())
    recorder = FutureWriteRecorder(host.device, SECOND)
    host.device.submit(IoRequest(IoKind.READ, 0, 4))
    host.run_for(SECOND)
    assert len(recorder.log()) == 0


def test_oracle_policy_reserves_known_demand():
    future = FutureWriteLog(SECOND, [4096 * 50] * 20)
    policy = OracleGcPolicy(future, horizon_intervals=2)
    host = HostSystem(SsdConfig.small(blocks=128, pages_per_block=16), policy)
    host.prefill(host.user_pages // 2)
    host.run_for(5 * SECOND)
    # 100 pages of future demand: the oracle reclaims toward it.
    assert host.ftl.free_pages() >= 100


def test_oracle_validation():
    with pytest.raises(ValueError):
        OracleGcPolicy(FutureWriteLog(SECOND, []), horizon_intervals=0)


def test_oracle_comparison_end_to_end():
    spec = ScenarioSpec(
        workload="TPC-C", blocks=256, pages_per_block=16, warmup_s=5, measure_s=15
    )
    result = run_oracle_comparison(spec)
    assert set(result.raw) == {"JIT-GC", "ORACLE"}
    assert result.raw["ORACLE"].iops > 0
    assert result.iops_gap() > 0
    assert "Oracle comparison" in result.format()
