"""Tests for the JIT-GC manager, centred on the paper's Fig. 6 example."""

import pytest

from repro.core.manager import JitGcManager
from repro.sim.simtime import SECOND

MB = 1_000_000
TAU = 30 * SECOND


def test_paper_fig6a_no_bgc():
    """Fig. 6(a): Creq=90MB, Cfree=50MB, Bw=40MB/s, Bgc=10MB/s ->
    Tidle (27.75s) > Tgc (4s): no BGC, Dreclaim = 0."""
    manager = JitGcManager(TAU)
    decision = manager.decide(
        dbuf_bytes=[0, 0, 0, 0, 20 * MB, 40 * MB],
        ddir_bytes=[5 * MB] * 6,
        cfree_bytes=50 * MB,
        write_bw_bytes_per_sec=40 * MB,
        gc_bw_bytes_per_sec=10 * MB,
    )
    assert decision.creq_bytes == 90 * MB
    assert decision.tw_ns == pytest.approx(2.25 * SECOND)
    assert decision.tidle_ns == pytest.approx(27.75 * SECOND)
    assert decision.tgc_ns == pytest.approx(4 * SECOND)
    assert not decision.invokes_bgc
    assert decision.reclaim_bytes == 0


def test_paper_fig6b_reclaims_12_5_mb():
    """Fig. 6(b): Creq=290MB, Cfree=50MB -> Tidle (22.75s) < Tgc (24s):
    Dreclaim = (24 - 22.75) x 10 MB/s = 12.5 MB."""
    manager = JitGcManager(TAU)
    decision = manager.decide(
        dbuf_bytes=[0, 0, 20 * MB, 40 * MB, 0, 200 * MB],
        ddir_bytes=[5 * MB] * 6,
        cfree_bytes=50 * MB,
        write_bw_bytes_per_sec=40 * MB,
        gc_bw_bytes_per_sec=10 * MB,
    )
    assert decision.creq_bytes == 290 * MB
    assert decision.tw_ns == pytest.approx(7.25 * SECOND)
    assert decision.tidle_ns == pytest.approx(22.75 * SECOND)
    assert decision.tgc_ns == pytest.approx(24 * SECOND)
    assert decision.invokes_bgc
    assert decision.reclaim_bytes == pytest.approx(12.5 * MB)


def test_fast_path_when_cfree_covers_creq():
    manager = JitGcManager(TAU)
    decision = manager.decide([MB], [MB], cfree_bytes=10 * MB,
                              write_bw_bytes_per_sec=MB, gc_bw_bytes_per_sec=MB)
    assert not decision.invokes_bgc
    assert decision.tw_ns == 0 and decision.tgc_ns == 0


def test_reclaim_capped_at_shortfall():
    """Never reclaim more than Creq - Cfree even when Tidle = 0."""
    manager = JitGcManager(TAU)
    decision = manager.decide(
        dbuf_bytes=[10_000 * MB],
        ddir_bytes=[0],
        cfree_bytes=9_999 * MB,
        write_bw_bytes_per_sec=MB,   # Tw enormous -> Tidle 0
        gc_bw_bytes_per_sec=1000 * MB,
    )
    assert decision.reclaim_bytes <= MB


def test_counters():
    manager = JitGcManager(TAU)
    manager.decide([0], [0], 10, MB, MB)
    manager.decide([100 * MB], [0], 0, MB, MB)
    assert manager.decisions == 2
    assert manager.bgc_invocations == 1


def test_validation():
    with pytest.raises(ValueError):
        JitGcManager(0)
    manager = JitGcManager(TAU)
    with pytest.raises(ValueError):
        manager.decide([0], [0], 0, 0, MB)
    with pytest.raises(ValueError):
        manager.decide([0], [0], 0, MB, 0)
