"""Tests for the CDH-based direct-write predictor."""

import pytest

from repro.core.direct_predictor import DirectWritePredictor
from repro.sim.simtime import SECOND

MB = 1_000_000
P = 5 * SECOND
TAU = 30 * SECOND


def make(percentile=0.8, bin_bytes=10 * MB):
    return DirectWritePredictor(P, TAU, percentile=percentile, bin_bytes=bin_bytes)


def test_no_history_predicts_zero():
    predictor = make()
    assert predictor.predict(0) == [0] * 6
    assert predictor.delta_dir(0) == 0


def test_windows_roll_on_time():
    predictor = make()
    predictor.record_direct_bytes(15 * MB, now=10 * SECOND)
    # Window [0, 30) not yet closed.
    assert predictor.cdh.count == 0
    predictor.record_direct_bytes(0, now=31 * SECOND)
    assert predictor.cdh.count == 1


def test_prediction_spreads_delta_evenly():
    predictor = make()
    # Five windows echoing the Fig. 5 traffic.
    for index, amount in enumerate((10, 20, 20, 20, 80)):
        predictor.record_direct_bytes(amount * MB - 1, now=index * TAU)
    now = 5 * TAU
    delta = predictor.delta_dir(now)
    assert delta == 20 * MB
    demands = predictor.predict(now)
    assert demands == [20 * MB // 6] * 6
    assert predictor.total_bytes(now) == (20 * MB // 6) * 6


def test_higher_percentile_reserves_more():
    low = make(percentile=0.5)
    high = make(percentile=0.99)
    for p in (low, high):
        for index, amount in enumerate((10, 20, 20, 20, 80)):
            p.record_direct_bytes(amount * MB - 1, now=index * TAU)
    assert high.delta_dir(5 * TAU) >= low.delta_dir(5 * TAU)


def test_multiple_windows_closed_by_long_gap():
    predictor = make()
    predictor.record_direct_bytes(5 * MB, now=0)
    # A 3-tau gap closes three windows (one busy, two empty).
    predictor.record_direct_bytes(1, now=3 * TAU + 1)
    assert predictor.cdh.count == 3


def test_validation():
    with pytest.raises(ValueError):
        DirectWritePredictor(0, TAU)
    with pytest.raises(ValueError):
        DirectWritePredictor(P, TAU, percentile=1.5)
    predictor = make()
    with pytest.raises(ValueError):
        predictor.record_direct_bytes(-1, now=0)
