"""Tests for the GC policy suite wired into a full host system."""

import pytest

from repro.core.policies import (
    AdaptiveGcPolicy,
    FixedReservePolicy,
    JitGcPolicy,
    NoBgcPolicy,
    aggressive_bgc_policy,
    lazy_bgc_policy,
)
from repro.ftl.victim import SipFilteredSelector
from repro.host import HostSystem
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.request import IoKind, IoRequest


def make_host(policy, blocks=128, ppb=16):
    config = SsdConfig.small(blocks=blocks, pages_per_block=ppb)
    return HostSystem(config, policy, seed=7)


def churn(host, writes, span_fraction=0.5, direct=True):
    """Issue random single-page direct writes over part of the space."""
    rng = host.streams.numpy("test-churn")
    span = int(host.user_pages * span_fraction)
    interval = 2_000_000  # 2 ms apart: leaves idle for BGC
    for index in range(writes):
        lpn = int(rng.integers(0, span))
        host.sim.schedule_at(
            host.sim.now + index * interval,
            lambda l=lpn: host.device.submit(IoRequest(IoKind.DIRECT_WRITE, l, 1)),
        )
    # The flusher reschedules itself forever: advance bounded time
    # (traffic duration plus slack for trailing BGC), never run dry.
    host.run_for(writes * interval + 4 * SECOND)


def test_no_bgc_policy_never_collects_in_background():
    host = make_host(NoBgcPolicy())
    host.prefill(host.user_pages // 2)
    churn(host, 600)
    assert host.ftl.stats.bgc_blocks_collected == 0


def test_fixed_reserve_policy_maintains_target():
    policy = FixedReservePolicy(1.0)
    host = make_host(policy)
    host.prefill(host.user_pages // 2)
    churn(host, 600)
    target = policy.target_pages(host.device)
    assert host.ftl.free_pages() >= target
    assert host.ftl.stats.bgc_blocks_collected > 0


def test_lazy_vs_aggressive_reserve_sizes():
    lazy, aggressive = lazy_bgc_policy(), aggressive_bgc_policy()
    assert lazy.name == "L-BGC" and aggressive.name == "A-BGC"
    assert lazy.cresv_over_op == 0.5
    assert aggressive.cresv_over_op == 1.5


def test_aggressive_reserves_more_free_space_than_lazy():
    frees = {}
    for policy in (lazy_bgc_policy(), aggressive_bgc_policy()):
        host = make_host(policy)
        host.prefill(host.user_pages // 2)
        churn(host, 600)
        frees[policy.name] = host.ftl.free_pages()
    assert frees["A-BGC"] > frees["L-BGC"]


def test_fixed_reserve_validation():
    with pytest.raises(ValueError):
        FixedReservePolicy(-0.5)


def test_adaptive_policy_builds_cdh_and_reclaims():
    policy = AdaptiveGcPolicy()
    host = make_host(policy)
    host.prefill(host.user_pages // 2)
    churn(host, 800)
    host.run_for(10 * SECOND)  # let at least one tau_expire window close
    assert policy.cdh.count > 0
    assert policy.accuracy.intervals_scored > 0
    # After traffic, the adaptive target is nonzero and space was reclaimed.
    assert policy._target_bytes > 0
    assert host.ftl.stats.bgc_blocks_collected > 0


def test_jit_policy_installs_sip_selector():
    policy = JitGcPolicy()
    host = make_host(policy)
    assert isinstance(host.ftl.victim_selector, SipFilteredSelector)


def test_jit_policy_without_sip_uses_default_selector():
    policy = JitGcPolicy(sip_fraction_threshold=None)
    host = make_host(policy)
    assert not isinstance(host.ftl.victim_selector, SipFilteredSelector)


def test_jit_policy_ticks_and_predicts():
    policy = JitGcPolicy()
    host = make_host(policy)
    host.prefill(host.user_pages // 2)
    # Buffered traffic so the page-cache predictor sees dirty data.
    for index in range(200):
        host.sim.schedule_at(
            index * 10_000_000,
            lambda i=index: host.dispatcher.write(i % 64, 1, direct=False),
        )
    host.run_for(15 * SECOND)
    assert policy.buffered_predictor.invocations > 0
    assert policy.last_decision is not None
    assert policy.manager.decisions > 0
    # The SIP list reached the device at some tick.
    assert policy.interface.commands_issued > 0


def test_jit_policy_reclaims_for_predicted_demand():
    policy = JitGcPolicy()
    host = make_host(policy)
    host.prefill(host.user_pages // 2)
    churn(host, 800)
    host.run_for(10 * SECOND)  # let a tau_expire CDH window close
    # Direct churn trains the CDH; the policy must have reclaimed space.
    assert policy.direct_predictor.cdh.count > 0
    assert host.ftl.stats.bgc_blocks_collected > 0


def test_jit_quota_decrements_on_collection():
    policy = JitGcPolicy()
    policy._quota_pages = 10
    policy.on_block_collected(None, 4)
    assert policy._quota_pages == 6
    policy.on_block_collected(None, 100)
    assert policy._quota_pages == 0


def test_jit_guard_interval_validation():
    with pytest.raises(ValueError):
        JitGcPolicy(guard_intervals=-1)


def test_policies_share_identical_workload_replay():
    """Two runs differing only in policy see identical host traffic."""
    counts = {}
    for policy in (lazy_bgc_policy(), aggressive_bgc_policy()):
        host = make_host(policy)
        host.prefill(host.user_pages // 2)
        rng = host.streams.numpy("replay-check")
        values = rng.integers(0, 1000, size=16)
        counts[policy.name] = list(values)
    assert counts["L-BGC"] == counts["A-BGC"]
