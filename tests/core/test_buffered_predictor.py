"""Tests for the buffered-write predictor, centred on the paper's Fig. 4
worked example."""

import pytest

from repro.core.buffered_predictor import BufferedWritePredictor
from repro.oskernel.cache import PageCache
from repro.sim.simtime import SECOND

#: Fig. 4 uses MB-sized quantities; model one page = 1 "MB".
PAGE = 1_000_000
P = 5 * SECOND
TAU = 30 * SECOND


def make(strict=False, tau_flush_pages=0):
    cache = PageCache(PAGE, 4096 * PAGE)
    predictor = BufferedWritePredictor(
        cache, P, TAU, strict=strict, tau_flush_pages=tau_flush_pages
    )
    return cache, predictor


def write_mb(cache, start, mb, now_s):
    for page in range(start, start + mb):
        cache.write_page(page, now=now_s * SECOND)


def test_paper_fig4_example():
    """Reproduces Dbuf(5), Dbuf(10) and Dbuf(20) from Fig. 4 exactly."""
    cache, predictor = make()
    write_mb(cache, 0, 20, now_s=2)      # A: 20 MB in (0, 5]
    write_mb(cache, 100, 20, now_s=3)    # B: 20 MB in (0, 5]

    at5 = predictor.predict(5 * SECOND)
    assert [d // PAGE for d in at5.demands_bytes] == [0, 0, 0, 0, 0, 40]

    write_mb(cache, 200, 20, now_s=7)    # C: 20 MB in (5, 10]
    write_mb(cache, 100, 20, now_s=8)    # B': update of B resets its age

    at10 = predictor.predict(10 * SECOND)
    assert [d // PAGE for d in at10.demands_bytes] == [0, 0, 0, 0, 20, 40]

    write_mb(cache, 300, 200, now_s=17)  # D: 200 MB in (15, 20]

    at20 = predictor.predict(20 * SECOND)
    assert [d // PAGE for d in at20.demands_bytes] == [0, 0, 20, 40, 0, 200]


def test_sip_list_contains_all_dirty_pages():
    cache, predictor = make()
    write_mb(cache, 0, 3, now_s=1)
    prediction = predictor.predict(5 * SECOND)
    assert prediction.sip.as_set() == {0, 1, 2}
    assert prediction.sip.created_at == 5 * SECOND
    assert len(prediction.sip) == 3


def test_total_bytes():
    cache, predictor = make()
    write_mb(cache, 0, 7, now_s=1)
    prediction = predictor.predict(5 * SECOND)
    assert prediction.total_bytes() == 7 * PAGE


def test_nwb():
    _, predictor = make()
    assert predictor.nwb == 6


def test_page_written_at_scan_time_lands_last():
    cache, predictor = make()
    cache.write_page(0, now=10 * SECOND)
    prediction = predictor.predict(10 * SECOND)
    assert prediction.demands_bytes[5] == PAGE
    assert sum(prediction.demands_bytes[:5]) == 0


def test_overdue_page_clamps_to_first_interval():
    """A page past expiry (possible between flush and scan) predicts I1."""
    cache, predictor = make()
    cache.write_page(0, now=0)
    prediction = predictor.predict(40 * SECOND)
    assert prediction.demands_bytes[0] == PAGE


def test_strict_mode_pulls_excess_earlier():
    cache, predictor = make(strict=True, tau_flush_pages=10)
    # 30 pages all landing in the last interval under the relaxed rule.
    write_mb(cache, 0, 30, now_s=5)
    prediction = predictor.predict(5 * SECOND)
    relaxed_last = prediction.demands_bytes[-1]
    # Strict mode caps the backlog at tau_flush: at most 10 pages remain
    # in the final interval, the rest shifted earlier.
    assert relaxed_last <= 10 * PAGE
    assert prediction.total_bytes() == 30 * PAGE


def test_validation():
    cache = PageCache(PAGE, 64 * PAGE)
    with pytest.raises(ValueError):
        BufferedWritePredictor(cache, 0, TAU)
    with pytest.raises(ValueError):
        BufferedWritePredictor(cache, P, TAU + 1)
