"""Tests for the horizon-level prediction-accuracy tracker."""

import pytest

from repro.core.accuracy import PredictionAccuracyTracker


def drive(tracker, prediction, actuals):
    """Register one prediction, then feed per-interval actuals."""
    tracker.predict(prediction)
    for actual in actuals:
        tracker.record_actual_bytes(actual)
        tracker.on_tick()


def test_perfect_prediction_scores_100():
    tracker = PredictionAccuracyTracker(horizon_intervals=3)
    drive(tracker, 300, [100, 100, 100])
    assert tracker.intervals_scored == 1
    assert tracker.accuracy_percent() == pytest.approx(100.0)


def test_overprediction_scores_ratio():
    tracker = PredictionAccuracyTracker(horizon_intervals=2)
    drive(tracker, 200, [50, 50])  # actual 100, predicted 200
    assert tracker.accuracy() == pytest.approx(0.5)


def test_underprediction_symmetric():
    tracker = PredictionAccuracyTracker(horizon_intervals=2)
    drive(tracker, 100, [100, 100])  # actual 200
    assert tracker.accuracy() == pytest.approx(0.5)


def test_zero_zero_pairs_skipped():
    tracker = PredictionAccuracyTracker(horizon_intervals=1)
    drive(tracker, 0, [0])
    assert tracker.intervals_scored == 0
    assert tracker.accuracy() == 1.0  # vacuous


def test_horizon_not_scored_early():
    tracker = PredictionAccuracyTracker(horizon_intervals=3)
    tracker.predict(300)
    tracker.record_actual_bytes(100)
    tracker.on_tick()
    tracker.on_tick()
    assert tracker.intervals_scored == 0
    tracker.on_tick()
    assert tracker.intervals_scored == 1


def test_overlapping_predictions():
    """One prediction per tick, horizons overlap (the policy pattern)."""
    tracker = PredictionAccuracyTracker(horizon_intervals=2)
    tracker.predict(20)          # covers intervals 0..1
    tracker.record_actual_bytes(10)
    tracker.on_tick()
    tracker.predict(20)          # covers intervals 1..2
    tracker.record_actual_bytes(10)
    tracker.on_tick()            # first prediction ripe: actual 20 -> 1.0
    tracker.record_actual_bytes(30)
    tracker.on_tick()            # second ripe: actual 40 vs 20 -> 0.5
    assert tracker.pairs() == [(20, 20), (20, 40)]
    assert tracker.accuracy() == pytest.approx(0.75)


def test_validation():
    with pytest.raises(ValueError):
        PredictionAccuracyTracker(horizon_intervals=0)
    tracker = PredictionAccuracyTracker()
    with pytest.raises(ValueError):
        tracker.predict(-1)
    with pytest.raises(ValueError):
        tracker.record_actual_bytes(-1)
