"""Tests for the SIP list."""

from repro.core.sip import SipList


def test_membership_and_len():
    sip = SipList([1, 2, 3], created_at=5)
    assert len(sip) == 3
    assert 2 in sip
    assert 9 not in sip
    assert sip.created_at == 5


def test_as_set_is_a_copy():
    sip = SipList([1])
    copy = sip.as_set()
    copy.add(99)
    assert 99 not in sip


def test_union_keeps_newer_timestamp():
    a = SipList([1, 2], created_at=10)
    b = SipList([2, 3], created_at=20)
    merged = a.union(b)
    assert merged.as_set() == {1, 2, 3}
    assert merged.created_at == 20


def test_iteration():
    assert sorted(SipList([3, 1, 2])) == [1, 2, 3]


def test_empty():
    sip = SipList()
    assert len(sip) == 0
    assert sip.as_set() == set()
