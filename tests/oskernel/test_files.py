"""Tests for the extent-based file layer."""

import pytest

from repro.oskernel.cache import PageCache
from repro.oskernel.files import FsError, SimpleFileSystem
from repro.oskernel.iopath import IoDispatcher
from repro.sim.engine import Simulator
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoKind


def make_fs(page_count=200, journal_pages=16, journal_record_pages=1):
    sim = Simulator()
    device = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    cache = PageCache(4096, 4096 * 512)
    dispatcher = IoDispatcher(sim, cache, device)
    fs = SimpleFileSystem(
        dispatcher, first_lpn=0, page_count=page_count,
        journal_pages=journal_pages, journal_record_pages=journal_record_pages,
    )
    return sim, device, dispatcher, fs


def test_create_allocates_and_journals():
    sim, device, dispatcher, fs = make_fs()
    done = []
    fid = fs.create(8, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert fs.file_count == 1
    assert fs.file_pages(fid) == 8
    assert fs.journal_writes == 1
    assert dispatcher.stats.direct_ops == 1  # the journal commit
    assert dispatcher.stats.buffered_ops == 1  # the data


def test_create_zero_size_rejected():
    _, _, _, fs = make_fs()
    with pytest.raises(FsError):
        fs.create(0)


def test_delete_trims_and_frees():
    sim, device, _, fs = make_fs()
    fid = fs.create(8)
    sim.run()
    free_before = fs.free_pages()
    fs.delete(fid)
    sim.run()
    assert fs.file_count == 0
    assert fs.free_pages() == free_before + 8
    with pytest.raises(FsError):
        fs.delete(fid)


def test_append_grows_and_relocates():
    sim, _, _, fs = make_fs()
    fid = fs.create(4)
    sim.run()
    fs.append(fid, 4)
    sim.run()
    assert fs.file_pages(fid) == 8


def test_overwrite_bounds_checked():
    sim, _, _, fs = make_fs()
    fid = fs.create(4)
    sim.run()
    fs.overwrite(fid, 0, 4)
    with pytest.raises(FsError):
        fs.overwrite(fid, 2, 4)


def test_read_bounds_checked():
    sim, _, _, fs = make_fs()
    fid = fs.create(4)
    sim.run()
    done = []
    fs.read(fid, 0, 4, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    with pytest.raises(FsError):
        fs.read(fid, 3, 4)


def test_free_list_coalescing():
    sim, _, _, fs = make_fs(page_count=100, journal_pages=4)
    a = fs.create(10)
    b = fs.create(10)
    c = fs.create(10)
    sim.run()
    fs.delete(a)
    fs.delete(c)
    fs.delete(b)  # middle deletion must merge all three extents
    assert fs.largest_free_extent() == fs.free_pages()


def test_allocation_exhaustion():
    sim, _, _, fs = make_fs(page_count=20, journal_pages=4)
    fs.create(16)
    with pytest.raises(FsError):
        fs.create(4)


def test_journal_is_circular():
    sim, _, dispatcher, fs = make_fs(page_count=100, journal_pages=4)
    for _ in range(10):
        fid = fs.create(1)
        fs.delete(fid)
    sim.run()
    assert fs.journal_writes == 20
    # All journal writes stayed within the journal region.
    assert dispatcher.stats.direct_ops == 20


def test_journal_record_pages_multiplies_direct_traffic():
    sim1, _, d1, fs1 = make_fs(journal_record_pages=1)
    sim2, _, d2, fs2 = make_fs(journal_record_pages=2)
    fs1.create(4)
    fs2.create(4)
    sim1.run()
    sim2.run()
    assert d2.stats.direct_bytes == 2 * d1.stats.direct_bytes


def test_invalid_construction():
    sim = Simulator()
    device = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    cache = PageCache(4096, 4096 * 64)
    dispatcher = IoDispatcher(sim, cache, device)
    with pytest.raises(FsError):
        SimpleFileSystem(dispatcher, 0, 10, journal_pages=16)
    with pytest.raises(FsError):
        SimpleFileSystem(dispatcher, 0, 100, journal_pages=16, journal_record_pages=20)
