"""Tests for the flusher thread: both flush conditions, coalescing,
pressure-triggered background write-back."""

import pytest

from repro.oskernel.cache import PageCache
from repro.oskernel.flusher import FlusherThread
from repro.sim.engine import Simulator
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoKind


def make_stack(tau_flush_pages=1000, period=SECOND, tau_expire=6 * SECOND):
    sim = Simulator()
    device = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    cache = PageCache(4096, 4096 * 256, dirty_throttle_fraction=0.5)
    flusher = FlusherThread(
        sim, cache, device, period_ns=period, tau_expire_ns=tau_expire,
        tau_flush_pages=tau_flush_pages,
    )
    return sim, device, cache, flusher


def test_tau_expire_must_divide():
    sim = Simulator()
    device = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    cache = PageCache(4096, 4096 * 64)
    with pytest.raises(ValueError):
        FlusherThread(sim, cache, device, period_ns=SECOND, tau_expire_ns=SECOND * 7 // 2)


def test_nwb():
    _, _, _, flusher = make_stack()
    assert flusher.nwb == 6


def test_age_based_flush_after_tau_expire():
    sim, device, cache, flusher = make_stack()
    flusher.start()
    cache.write_page(10, now=sim.now)
    # Before expiry: not flushed.
    sim.run_until(5 * SECOND)
    assert cache.contains_dirty(10)
    # After expiry (first wake at >= 6s): flushed and written back.
    sim.run_until(8 * SECOND)
    assert not cache.contains_dirty(10)
    assert cache.writeback_pages == 0  # device completed it
    assert flusher.pages_flushed == 1


def test_volume_condition_flushes_oldest():
    sim, device, cache, flusher = make_stack(tau_flush_pages=4)
    flusher.start()
    for lpn in range(10):
        cache.write_page(lpn, now=sim.now)
    sim.run_until(SECOND)
    # Down to the threshold: 4 dirty pages remain, oldest flushed first.
    assert cache.dirty_pages == 4
    assert flusher.pages_flushed == 6


def test_flush_issues_coalesced_writeback():
    sim, device, cache, flusher = make_stack(tau_flush_pages=0)
    requests = []
    device.completion_listeners.append(requests.append)
    flusher.start()
    for lpn in [1, 2, 3, 7, 8]:
        cache.write_page(lpn, now=sim.now)
    sim.run_until(SECOND + SECOND // 2)
    kinds = {r.kind for r in requests}
    assert kinds == {IoKind.WRITEBACK}
    extents = sorted((r.lpn, r.page_count) for r in requests)
    assert extents == [(1, 3), (7, 2)]


def test_tick_hooks_run_after_flush():
    sim, device, cache, flusher = make_stack()
    observed = []
    flusher.tick_hooks.append(lambda now: observed.append((now, cache.dirty_pages)))
    flusher.start()
    cache.write_page(1, now=0)
    sim.run_until(SECOND)
    assert observed and observed[0][0] == SECOND


def test_pressure_triggers_background_flush():
    sim, device, cache, flusher = make_stack(tau_flush_pages=8)
    flusher.start()
    # Exceed the throttle (50% of 256 pages = 128) far before any tick.
    for lpn in range(130):
        cache.write_page(lpn, now=sim.now)
    assert cache.throttled()
    sim.run(max_events=400)
    assert flusher.background_flushes > 0
    assert cache.dirty_pages <= 8  # drained to tau_flush


def test_periodic_wakeups_continue():
    sim, _, _, flusher = make_stack()
    flusher.start()
    sim.run_until(10 * SECOND)
    assert flusher.wakeups == 10


def test_double_start_rejected():
    _, _, _, flusher = make_stack()
    flusher.start()
    with pytest.raises(RuntimeError):
        flusher.start()
