"""Tests for the I/O dispatcher: buffered/direct routing, throttling,
reads, fsync and traffic accounting."""

import pytest

from repro.oskernel.cache import PageCache
from repro.oskernel.iopath import IoDispatcher, _coalesce
from repro.sim.engine import Simulator
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoKind


def make_stack(cache_pages=128, throttle=0.5):
    sim = Simulator()
    device = SsdDevice(sim, SsdConfig.small(blocks=64, pages_per_block=8))
    cache = PageCache(4096, 4096 * cache_pages, dirty_throttle_fraction=throttle)
    dispatcher = IoDispatcher(sim, cache, device)
    return sim, device, cache, dispatcher


def test_buffered_write_lands_in_cache_not_device():
    sim, device, cache, dispatcher = make_stack()
    done = []
    dispatcher.write(0, 4, direct=False, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert cache.dirty_pages == 4
    assert device.requests_completed == 0
    assert dispatcher.stats.buffered_bytes == 4 * 4096


def test_direct_write_goes_to_device():
    sim, device, cache, dispatcher = make_stack()
    done = []
    dispatcher.write(0, 2, direct=True, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert cache.dirty_pages == 0
    assert device.requests_completed == 1
    assert dispatcher.stats.direct_bytes == 2 * 4096


def test_direct_write_invalidates_cached_copies():
    sim, device, cache, dispatcher = make_stack()
    dispatcher.write(0, 2, direct=False)
    sim.run()
    dispatcher.write(0, 2, direct=True)
    sim.run()
    assert cache.dirty_pages == 0


def test_buffered_fraction_accounting():
    sim, _, _, dispatcher = make_stack()
    dispatcher.write(0, 9, direct=False)
    dispatcher.write(10, 1, direct=True)
    sim.run()
    assert dispatcher.stats.buffered_fraction() == pytest.approx(0.9)
    assert dispatcher.stats.direct_fraction() == pytest.approx(0.1)


def test_throttled_writer_parks_and_releases():
    sim, device, cache, dispatcher = make_stack(cache_pages=16, throttle=0.5)
    # Fill to the throttle (8 pages).
    dispatcher.write(0, 8, direct=False)
    sim.run()
    assert cache.throttled()
    done = []
    dispatcher.write(20, 2, direct=False, on_complete=lambda: done.append(1))
    assert dispatcher.blocked_writers == 1
    assert dispatcher.stats.throttle_events == 1
    # Drain via explicit write-back.
    cache.begin_writeback(list(range(8)))
    cache.complete_writeback(list(range(8)))
    sim.run()
    assert done == [1]
    assert dispatcher.blocked_writers == 0


def test_read_hit_avoids_device():
    sim, device, cache, dispatcher = make_stack()
    dispatcher.write(0, 2, direct=False)
    sim.run()
    done = []
    dispatcher.read(0, 2, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert device.requests_completed == 0


def test_read_miss_fetches_and_caches():
    sim, device, cache, dispatcher = make_stack()
    done = []
    dispatcher.read(4, 3, on_complete=lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert device.requests_completed == 1
    # Second read is a hit.
    dispatcher.read(4, 3)
    sim.run()
    assert device.requests_completed == 1


def test_trim_invalidates_and_reaches_device():
    sim, device, cache, dispatcher = make_stack()
    dispatcher.write(0, 4, direct=True)
    sim.run()
    dispatcher.trim(0, 4)
    sim.run()
    assert device.ftl.used_pages() == 0


def test_trim_completion_and_accounting():
    sim, device, cache, dispatcher = make_stack()
    dispatcher.write(0, 6, direct=False)
    sim.run()
    assert cache.cached_pages > 0
    done = []
    dispatcher.trim(0, 6, on_complete=lambda: done.append(sim.now))
    assert not done  # acknowledged only after the device journals it
    sim.run()
    assert done and done[0] > 0
    # Cached copies of the discarded range are gone, and the dispatcher
    # counted the discard traffic.
    assert cache.cached_pages == 0
    assert dispatcher.stats.trim_ops == 1
    assert dispatcher.stats.trim_bytes == 6 * 4096
    # The device's FTL counted the trimmed pages that were mapped.
    assert device.ftl.stats.pages_trimmed == 0  # buffered: never hit media
    dispatcher.write(10, 2, direct=True)
    sim.run()
    dispatcher.trim(10, 2)
    sim.run()
    assert device.ftl.stats.pages_trimmed == 2
    assert dispatcher.stats.trim_ops == 2


def test_fsync_waits_for_device():
    sim, device, cache, dispatcher = make_stack()
    dispatcher.write(0, 6, direct=False)
    sim.run()
    done = []
    submitted = dispatcher.fsync(0, 6, on_complete=lambda: done.append(sim.now))
    assert submitted == 6
    assert not done  # not yet complete
    sim.run()
    assert done and done[0] > 0
    assert cache.dirty_pages == 0
    assert device.requests_completed >= 1
    assert dispatcher.stats.fsync_ops == 1
    # Data stays classified as buffered traffic.
    assert dispatcher.stats.direct_bytes == 0


def test_fsync_of_clean_range_completes_immediately():
    sim, _, _, dispatcher = make_stack()
    done = []
    assert dispatcher.fsync(0, 8, on_complete=lambda: done.append(1)) == 0
    sim.run()
    assert done == [1]


def test_coalesce_helper():
    assert _coalesce([]) == []
    assert _coalesce([1]) == [(1, 1)]
    assert _coalesce([1, 2, 3, 7, 8, 11]) == [(1, 3), (7, 2), (11, 1)]
