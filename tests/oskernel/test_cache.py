"""Tests for the write-back page cache."""

import pytest

from repro.oskernel.cache import PageCache

PAGE = 4096


def make_cache(capacity_pages=64, throttle=0.5):
    return PageCache(PAGE, capacity_pages * PAGE, dirty_throttle_fraction=throttle)


def test_write_marks_dirty_with_timestamp():
    cache = make_cache()
    cache.write_page(5, now=100)
    assert cache.dirty_pages == 1
    assert cache.contains_dirty(5)
    [entry] = cache.dirty_items()
    assert entry.lpn == 5
    assert entry.last_update == 100


def test_overwrite_resets_age():
    """The paper's B -> B' example: an update postpones the flush."""
    cache = make_cache()
    cache.write_page(5, now=100)
    cache.write_page(5, now=900)
    [entry] = cache.dirty_items()
    assert entry.last_update == 900
    assert cache.dirty_pages == 1
    assert cache.write_hits == 1


def test_read_hits_dirty_clean_and_writeback():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.insert_clean(2)
    assert cache.read_page(1)
    assert cache.read_page(2)
    assert not cache.read_page(3)
    cache.begin_writeback([1])
    assert cache.read_page(1)  # in-flight pages still hit
    assert cache.read_hits == 3
    assert cache.read_misses == 1


def test_expired_dirty_by_age():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.write_page(2, now=500)
    expired = cache.expired_dirty(now=1000, tau_expire=600)
    assert [e.lpn for e in expired] == [1]


def test_oldest_dirty_order():
    cache = make_cache()
    cache.write_page(3, now=30)
    cache.write_page(1, now=10)
    cache.write_page(2, now=20)
    assert [e.lpn for e in cache.oldest_dirty()] == [1, 2, 3]


def test_writeback_lifecycle():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.begin_writeback([1])
    assert cache.dirty_pages == 0
    assert cache.writeback_pages == 1
    cache.complete_writeback([1])
    assert cache.writeback_pages == 0
    assert cache.read_page(1)  # now clean


def test_begin_writeback_requires_dirty():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.begin_writeback([9])


def test_write_during_writeback_redirties():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.begin_writeback([1])
    cache.write_page(1, now=50)
    assert cache.contains_dirty(1)
    # Completion of the stale write-back must not mark it clean again.
    cache.complete_writeback([1])
    assert cache.contains_dirty(1)


def test_throttle_threshold():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    for lpn in range(4):
        cache.write_page(lpn, now=0)
    assert not cache.throttled()
    cache.write_page(4, now=0)
    assert cache.throttled()


def test_pressure_listener_fires_on_throttle():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    events = []
    cache.pressure_listeners.append(lambda: events.append(1))
    for lpn in range(5):
        cache.write_page(lpn, now=0)
    assert events  # fired at least when crossing the threshold


def test_drain_listener_fires_when_below_throttle():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    for lpn in range(5):
        cache.write_page(lpn, now=0)
    drained = []
    cache.drain_listeners.append(lambda: drained.append(1))
    cache.begin_writeback(list(range(5)))
    cache.complete_writeback(list(range(5)))
    assert drained == [1]


def test_lru_eviction_of_clean_only():
    cache = make_cache(capacity_pages=4)
    cache.write_page(0, now=0)  # dirty: pinned
    for lpn in range(10, 14):
        cache.insert_clean(lpn)
    assert cache.cached_pages <= 4
    assert cache.contains_dirty(0)  # dirty page never evicted
    assert not cache.read_page(10)  # oldest clean page evicted


def test_invalidate_drops_everywhere():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.insert_clean(2)
    cache.write_page(3, now=0)
    cache.begin_writeback([3])
    cache.invalidate([1, 2, 3])
    assert cache.dirty_pages == 0
    assert cache.writeback_pages == 0
    assert not cache.read_page(2)


def test_validation():
    with pytest.raises(ValueError):
        PageCache(0, 4096)
    with pytest.raises(ValueError):
        PageCache(4096, 4096, dirty_throttle_fraction=0)
