"""Tests for the write-back page cache."""

import pytest

from repro.oskernel.cache import PageCache

PAGE = 4096


def make_cache(capacity_pages=64, throttle=0.5):
    return PageCache(PAGE, capacity_pages * PAGE, dirty_throttle_fraction=throttle)


def test_write_marks_dirty_with_timestamp():
    cache = make_cache()
    cache.write_page(5, now=100)
    assert cache.dirty_pages == 1
    assert cache.contains_dirty(5)
    [entry] = cache.dirty_items()
    assert entry.lpn == 5
    assert entry.last_update == 100


def test_overwrite_resets_age():
    """The paper's B -> B' example: an update postpones the flush."""
    cache = make_cache()
    cache.write_page(5, now=100)
    cache.write_page(5, now=900)
    [entry] = cache.dirty_items()
    assert entry.last_update == 900
    assert cache.dirty_pages == 1
    assert cache.write_hits == 1


def test_read_hits_dirty_clean_and_writeback():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.insert_clean(2)
    assert cache.read_page(1)
    assert cache.read_page(2)
    assert not cache.read_page(3)
    cache.begin_writeback([1])
    assert cache.read_page(1)  # in-flight pages still hit
    assert cache.read_hits == 3
    assert cache.read_misses == 1


def test_expired_dirty_by_age():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.write_page(2, now=500)
    expired = cache.expired_dirty(now=1000, tau_expire=600)
    assert [e.lpn for e in expired] == [1]


def test_oldest_dirty_order():
    cache = make_cache()
    cache.write_page(3, now=30)
    cache.write_page(1, now=10)
    cache.write_page(2, now=20)
    assert [e.lpn for e in cache.oldest_dirty()] == [1, 2, 3]


def test_writeback_lifecycle():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.begin_writeback([1])
    assert cache.dirty_pages == 0
    assert cache.writeback_pages == 1
    cache.complete_writeback([1])
    assert cache.writeback_pages == 0
    assert cache.read_page(1)  # now clean


def test_begin_writeback_requires_dirty():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.begin_writeback([9])


def test_write_during_writeback_redirties():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.begin_writeback([1])
    cache.write_page(1, now=50)
    assert cache.contains_dirty(1)
    # Completion of the stale write-back must not mark it clean again.
    cache.complete_writeback([1])
    assert cache.contains_dirty(1)


def test_throttle_threshold():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    for lpn in range(4):
        cache.write_page(lpn, now=0)
    assert not cache.throttled()
    cache.write_page(4, now=0)
    assert cache.throttled()


def test_pressure_listener_fires_on_throttle():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    events = []
    cache.pressure_listeners.append(lambda: events.append(1))
    for lpn in range(5):
        cache.write_page(lpn, now=0)
    assert events  # fired at least when crossing the threshold


def test_drain_listener_fires_when_below_throttle():
    cache = make_cache(capacity_pages=10, throttle=0.5)
    for lpn in range(5):
        cache.write_page(lpn, now=0)
    drained = []
    cache.drain_listeners.append(lambda: drained.append(1))
    cache.begin_writeback(list(range(5)))
    cache.complete_writeback(list(range(5)))
    assert drained == [1]


def test_lru_eviction_of_clean_only():
    cache = make_cache(capacity_pages=4)
    cache.write_page(0, now=0)  # dirty: pinned
    for lpn in range(10, 14):
        cache.insert_clean(lpn)
    assert cache.cached_pages <= 4
    assert cache.contains_dirty(0)  # dirty page never evicted
    assert not cache.read_page(10)  # oldest clean page evicted


def test_invalidate_drops_everywhere():
    cache = make_cache()
    cache.write_page(1, now=0)
    cache.insert_clean(2)
    cache.write_page(3, now=0)
    cache.begin_writeback([3])
    cache.invalidate([1, 2, 3])
    assert cache.dirty_pages == 0
    assert cache.writeback_pages == 0
    assert not cache.read_page(2)


def test_validation():
    with pytest.raises(ValueError):
        PageCache(0, 4096)
    with pytest.raises(ValueError):
        PageCache(4096, 4096, dirty_throttle_fraction=0)


# ----------------------------------------------------------------------
# Batched listener notification: one call per operation, regardless of
# how many pages the operation touches.
# ----------------------------------------------------------------------
def test_listener_calls_do_not_scale_with_batch_size():
    cache = make_cache(capacity_pages=256, throttle=1.0)
    writeback_calls = []
    dirty_calls = []
    cache.writeback_listeners.append(lambda moved: writeback_calls.append(len(moved)))
    cache.dirty_listeners.append(
        lambda added, removed: dirty_calls.append((len(added), len(removed)))
    )

    for lpn in range(64):
        cache.write_page(lpn, now=lpn)
    assert dirty_calls == [(1, 0)] * 64

    dirty_calls.clear()
    cache.begin_writeback(list(range(32)))
    assert writeback_calls == [32]  # one call for the whole batch
    assert dirty_calls == [(0, 32)]
    cache.complete_writeback(list(range(32)))

    dirty_calls.clear()
    cache.invalidate(range(32, 64))
    assert dirty_calls == [(0, 32)]
    assert cache.dirty_pages == 0


def test_dirty_listener_reports_overwrite_as_move():
    cache = make_cache()
    events = []
    cache.dirty_listeners.append(lambda added, removed: events.append((added, removed)))
    cache.write_page(7, now=100)
    cache.write_page(7, now=900)
    assert events == [([(7, 100)], []), ([(7, 900)], [(7, 100)])]


def test_iter_oldest_dirty_matches_oldest_dirty():
    cache = make_cache()
    for lpn, now in ((1, 30), (2, 10), (3, 20), (4, 10)):
        cache.write_page(lpn, now=now)
    assert [e.lpn for e in cache.iter_oldest_dirty()] == [2, 4, 3, 1]
    assert list(cache.iter_oldest_dirty()) == cache.oldest_dirty()
    assert cache.oldest_dirty() == cache.oldest_dirty_scan()


def test_indexed_and_scan_caches_agree_after_churn():
    indexed = PageCache(PAGE, 64 * PAGE, indexed=True)
    scan = PageCache(PAGE, 64 * PAGE, indexed=False)
    for c in (indexed, scan):
        for lpn in range(16):
            c.write_page(lpn, now=lpn % 5)
        c.begin_writeback([0, 1, 2])
        c.complete_writeback([0, 1, 2])
        c.invalidate([3, 4])
        c.write_page(1, now=9)
    assert indexed.oldest_dirty() == scan.oldest_dirty()
    for now, tau in ((10, 3), (10, 8), (4, 1)):
        got = [e.lpn for e in indexed.expired_dirty(now, tau)]
        want = [e.lpn for e in scan.expired_dirty(now, tau)]
        assert sorted(got) == sorted(want)
