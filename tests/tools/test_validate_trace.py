"""Tests for tools/validate_trace.py's latency-record checks.

The validator's happy paths run in CI against real traces; these tests
pin the *failure* paths -- malformed per-op completion records and the
``--require-latency`` contract -- with hand-built minimal traces.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "validate_trace", REPO_ROOT / "tools" / "validate_trace.py"
)
validate_trace = importlib.util.module_from_spec(_spec)
sys.modules["validate_trace"] = validate_trace
_spec.loader.exec_module(validate_trace)


HEADER = {
    "type": "header",
    "format": "repro-trace/1",
    "seed": 42,
    "fault_profile": "none",
    "time_unit": "ns",
}


def _event(name="gc.start", ph="B", ts=0, **extra):
    return {"type": "event", "name": name, "cat": "gc", "ts": ts, "ph": ph, **extra}


def _op_complete(ts=10, dur=5, **args_extra):
    args = {"kind": "write", "queue_depth": 0, **args_extra}
    return _event(name="op.complete", ph="X", ts=ts, dur=dur, args=args)


def _counter(name, ts=20):
    return _event(name=name, ph="C", ts=ts, args={"value": 1})


def _write_jsonl(path, records):
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return str(path)


def _write_chrome(path, events):
    for event in events:
        event.setdefault("pid", 1)
        event.setdefault("tid", "host")
        event.pop("type", None)
        event.pop("cat", None)
        event["cat"] = "gc"
    document = {
        "traceEvents": events,
        "otherData": {"seed": 42, "fault_profile": "none"},
        "displayTimeUnit": "ns",
    }
    path.write_text(json.dumps(document))
    return str(path)


def _full_latency_events():
    return [
        _op_complete(),
        _counter("host.op_latency_ns.p99"),
        _counter("host.op_latency_ns.p999"),
    ]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_jsonl_with_latency_records_passes(tmp_path):
    path = _write_jsonl(tmp_path / "t.jsonl", [HEADER, *_full_latency_events()])
    validate_trace.validate_jsonl(path, require_latency=True)


def test_jsonl_missing_op_completes_fails_only_when_required(tmp_path):
    path = _write_jsonl(tmp_path / "t.jsonl", [HEADER, _event()])
    validate_trace.validate_jsonl(path)  # fine without the flag
    with pytest.raises(ValueError, match="op.complete"):
        validate_trace.validate_jsonl(path, require_latency=True)


def test_jsonl_missing_counter_tracks_fails_when_required(tmp_path):
    path = _write_jsonl(tmp_path / "t.jsonl", [HEADER, _op_complete()])
    with pytest.raises(ValueError, match="counter tracks"):
        validate_trace.validate_jsonl(path, require_latency=True)


def test_op_complete_must_be_complete_duration_event(tmp_path):
    bad = _op_complete()
    del bad["dur"]
    path = _write_jsonl(tmp_path / "t.jsonl", [HEADER, bad])
    with pytest.raises(ValueError, match="dur"):
        validate_trace.validate_jsonl(path)

    bad = _op_complete()
    del bad["args"]["queue_depth"]
    path = _write_jsonl(tmp_path / "t.jsonl", [HEADER, bad])
    with pytest.raises(ValueError, match="queue_depth"):
        validate_trace.validate_jsonl(path)


# ----------------------------------------------------------------------
# Chrome
# ----------------------------------------------------------------------
def test_chrome_with_latency_records_passes(tmp_path):
    path = _write_chrome(tmp_path / "t.json", _full_latency_events())
    validate_trace.validate_chrome(path, require_latency=True)


def test_chrome_requires_monotone_timestamps_per_track(tmp_path):
    events = [_event(ts=100), _op_complete(ts=10)]
    path = _write_chrome(tmp_path / "t.json", events)
    with pytest.raises(ValueError, match="monotone"):
        validate_trace.validate_chrome(path)


def test_chrome_missing_latency_fails_when_required(tmp_path):
    path = _write_chrome(tmp_path / "t.json", [_event()])
    with pytest.raises(ValueError, match="op.complete"):
        validate_trace.validate_chrome(path, require_latency=True)


# ----------------------------------------------------------------------
# CLI entry: format sniffing and the --require-latency flag
# ----------------------------------------------------------------------
def test_main_sniffs_both_formats_and_parses_flag(tmp_path):
    jsonl = _write_jsonl(tmp_path / "t.jsonl", [HEADER, *_full_latency_events()])
    chrome = _write_chrome(tmp_path / "t.json", _full_latency_events())
    assert validate_trace.main(["--require-latency", jsonl, chrome]) == 0
    bare = _write_jsonl(tmp_path / "bare.jsonl", [HEADER, _event()])
    assert validate_trace.main([bare]) == 0
    assert validate_trace.main(["--require-latency", bare]) == 1
    assert validate_trace.main([]) == 2
