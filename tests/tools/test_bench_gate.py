"""Tests for the benchmark regression gate's baseline handling.

The gate must keep working -- exit 0, no traceback -- when the
committed ``BENCH_hotpaths.json`` is missing, empty, corrupt, or holds
only entries the gate cannot compare against (e.g. the recovery-scan
benchmark appended to the v2 trajectory).
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
sys.modules["bench_gate"] = bench_gate
_spec.loader.exec_module(bench_gate)


def _current_payload(speedup=2.0):
    return {
        "schema": "bench-hotpaths/v1",
        "mode": "quick",
        "cpu_count": 1,
        "results": {
            "events_per_sec": {"speedup": speedup},
            "victim_selection_us": {"speedup": speedup},
            "flusher_tick_us": {"speedup": speedup},
            "sweep_jobs": {"speedup": 1.0, "cpu_count": 1},
        },
    }


def _write_current(tmp_path, **kwargs):
    path = tmp_path / "current.json"
    path.write_text(json.dumps(_current_payload(**kwargs)))
    return path


def _run(tmp_path, baseline_path):
    current = _write_current(tmp_path)
    return bench_gate.main(
        ["--current", str(current), "--baseline", str(baseline_path)]
    )


def test_missing_baseline_passes(tmp_path, capsys):
    assert _run(tmp_path, tmp_path / "nope.json") == 0
    assert "no baseline" in capsys.readouterr().out


def test_empty_baseline_passes(tmp_path, capsys):
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text("")
    assert _run(tmp_path, baseline) == 0
    assert "is empty" in capsys.readouterr().out


def test_corrupt_baseline_passes(tmp_path, capsys):
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text("{not json")
    assert _run(tmp_path, baseline) == 0
    assert "not valid JSON" in capsys.readouterr().out


def test_unsupported_schema_is_ignored(tmp_path, capsys):
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text(json.dumps({"schema": "bench-hotpaths/v99"}))
    assert _run(tmp_path, baseline) == 0
    assert "unsupported schema" in capsys.readouterr().out


def test_trajectory_with_only_ungateable_entries_passes(tmp_path):
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text(
        json.dumps(
            {
                "schema": "bench-hotpaths/v2",
                "entries": [
                    {
                        "benchmark": "recovery_scan",
                        "mode": "quick",
                        "results": {"pages_per_sec": 1e6},
                    }
                ],
            }
        )
    )
    assert _run(tmp_path, baseline) == 0


def test_gateable_trajectory_entry_is_still_compared(tmp_path):
    entry = _current_payload(speedup=10.0)
    entry["date"] = "2026-01-01"
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text(
        json.dumps({"schema": "bench-hotpaths/v2", "entries": [entry]})
    )
    # Current run's speedups (2x) are >20% below the 10x baseline.
    assert _run(tmp_path, baseline) == 1


def test_ungateable_entries_are_skipped_not_chosen(tmp_path):
    good = _current_payload(speedup=2.0)
    good["date"] = "2026-01-01"
    ungateable = {
        "benchmark": "recovery_scan",
        "mode": "quick",
        "date": "2026-02-01",
        "results": {"pages_per_sec": 1e6},
    }
    baseline = tmp_path / "BENCH_hotpaths.json"
    baseline.write_text(
        json.dumps(
            {"schema": "bench-hotpaths/v2", "entries": [good, ungateable]}
        )
    )
    # The newer recovery entry is skipped; the gate compares against the
    # older hotpaths entry and passes (same speedups, no regression).
    assert _run(tmp_path, baseline) == 0


def test_committed_trajectory_still_loads():
    baseline = bench_gate._load_baseline(REPO_ROOT / "BENCH_hotpaths.json", "full")
    assert baseline is not None
    assert bench_gate._gateable(baseline)


# ----------------------------------------------------------------------
# Reliability-overhead payloads
# ----------------------------------------------------------------------
def _reliability_payload(slowdown=1.01, scrubs=0, ueccs=0, fast_reads=1000):
    return {
        "schema": "bench-hotpaths/v1",
        "benchmark": "reliability_overhead",
        "mode": "quick",
        "results": {
            "reliability_overhead": {
                "off": {"events_per_sec": 100_000.0, "waf": 3.0},
                "armed": {
                    "events_per_sec": round(100_000.0 / slowdown, 1),
                    "waf": 3.0,
                    "ecc_fast_reads": fast_reads,
                    "ecc_retry_reads": 0,
                    "uecc_count": ueccs,
                    "scrub_blocks_refreshed": scrubs,
                },
                "slowdown": slowdown,
                "waf_delta": 0.0,
            }
        },
    }


def _run_reliability(tmp_path, payload, extra_args=()):
    current = tmp_path / "rel.json"
    current.write_text(json.dumps(payload))
    return bench_gate.main(["--current", str(current), *extra_args])


def test_quiescent_reliability_run_passes(tmp_path):
    assert _run_reliability(tmp_path, _reliability_payload(slowdown=1.01)) == 0


def test_reliability_overhead_above_ceiling_fails(tmp_path, capsys):
    assert _run_reliability(tmp_path, _reliability_payload(slowdown=1.10)) == 1
    assert "exceeds the 1.03x ceiling" in capsys.readouterr().out


def test_reliability_ceiling_is_configurable(tmp_path):
    payload = _reliability_payload(slowdown=1.10)
    assert (
        _run_reliability(
            tmp_path, payload, ["--max-reliability-overhead", "1.2"]
        )
        == 0
    )


def test_non_quiescent_reliability_run_fails(tmp_path, capsys):
    assert _run_reliability(tmp_path, _reliability_payload(scrubs=3)) == 1
    assert "not a no-data-at-risk measurement" in capsys.readouterr().out


def test_reliability_uecc_fails(tmp_path, capsys):
    assert _run_reliability(tmp_path, _reliability_payload(ueccs=1)) == 1
    assert "ECC cliff" in capsys.readouterr().out


def test_reliability_ladder_must_be_installed(tmp_path, capsys):
    assert _run_reliability(tmp_path, _reliability_payload(fast_reads=0)) == 1
    assert "not" in capsys.readouterr().out
