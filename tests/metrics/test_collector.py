"""Tests for the run-metrics collector."""

import pytest

from repro.core.policies import NoBgcPolicy, lazy_bgc_policy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.request import IoKind, IoRequest


def make_host(policy=None):
    return HostSystem(
        SsdConfig.small(blocks=128, pages_per_block=16), policy or NoBgcPolicy()
    )


def test_window_scoped_results():
    host = make_host()
    metrics = MetricsCollector(host, "unit")
    # Pre-window traffic.
    host.device.submit(IoRequest(IoKind.DIRECT_WRITE, 0, 4))
    host.run_for(SECOND)
    metrics.begin()
    for index in range(10):
        host.sim.schedule(
            index * 1_000_000,
            lambda i=index: host.device.submit(
                IoRequest(IoKind.DIRECT_WRITE, i, 1,
                          on_complete=lambda r: metrics.record_op(r.latency()))
            ),
        )
    host.run_for(SECOND)
    metrics.end()
    result = metrics.results()
    assert isinstance(result, RunMetrics)
    assert result.workload == "unit"
    assert result.policy == "NO-BGC"
    assert result.duration_ns == SECOND
    assert result.iops == pytest.approx(10.0)
    assert result.host_pages_written == 10  # pre-window 4 pages excluded
    assert result.mean_latency_ns > 0
    assert result.p99_latency_ns >= result.mean_latency_ns / 2


def test_results_require_window():
    host = make_host()
    metrics = MetricsCollector(host, "unit")
    with pytest.raises(RuntimeError):
        metrics.results()


def test_accuracy_absent_for_non_predicting_policy():
    host = make_host(lazy_bgc_policy())
    metrics = MetricsCollector(host, "unit")
    metrics.begin()
    host.run_for(SECOND)
    metrics.end()
    assert metrics.results().prediction_accuracy_pct is None


def test_sip_filtered_pct_zero_without_selections():
    metrics = RunMetrics(
        policy="x", workload="y", duration_ns=1, iops=0, waf=1,
        host_pages_written=0, gc_pages_migrated=0, fgc_invocations=0,
        fgc_time_ns=0, bgc_blocks=0, erases=0,
    )
    assert metrics.sip_filtered_pct() == 0.0
    metrics.sip_selections = 10
    metrics.sip_filtered = 3
    assert metrics.sip_filtered_pct() == pytest.approx(30.0)
