"""Tests for the IOPS meter."""

import pytest

from repro.metrics.iops import IopsMeter
from repro.sim.simtime import SECOND


def test_window_iops():
    meter = IopsMeter()
    meter.record_op(5)
    meter.begin_window(0)
    meter.record_op(100)
    meter.end_window(2 * SECOND)
    assert meter.window_ops() == 100
    assert meter.iops() == pytest.approx(50.0)


def test_ops_before_window_excluded():
    meter = IopsMeter()
    meter.record_op(42)
    meter.begin_window(10 * SECOND)
    meter.record_op(10)
    meter.end_window(11 * SECOND)
    assert meter.window_ops() == 10


def test_iops_requires_closed_window():
    meter = IopsMeter()
    meter.begin_window(0)
    with pytest.raises(RuntimeError):
        meter.iops()


def test_end_without_begin():
    meter = IopsMeter()
    with pytest.raises(RuntimeError):
        meter.end_window(SECOND)


def test_zero_duration_rejected():
    meter = IopsMeter()
    meter.begin_window(SECOND)
    with pytest.raises(ValueError):
        meter.end_window(SECOND)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        IopsMeter().record_op(-1)
