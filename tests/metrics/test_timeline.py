"""Tests for the timeline sampler."""

import csv

import pytest

from repro.core.policies import NoBgcPolicy
from repro.host import HostSystem
from repro.metrics.timeline import TimelineSampler
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig


def make_host():
    return HostSystem(SsdConfig.small(blocks=64, pages_per_block=8), NoBgcPolicy())


def test_samples_at_period():
    host = make_host()
    sampler = TimelineSampler(host, period_ns=SECOND).start()
    host.run_for(5 * SECOND)
    # Samples at t=0,1,2,3,4,5 seconds.
    assert sampler.sample_count == 6
    assert sampler.times_ns[0] == 0
    assert sampler.times_ns[-1] == 5 * SECOND


def test_default_probes_track_state():
    host = make_host()
    sampler = TimelineSampler(host, period_ns=SECOND).start()
    free_initial = host.ftl.free_pages()
    host.prefill(host.user_pages // 4, age=False)
    host.run_for(3 * SECOND)
    series = sampler.series("free_pages")
    assert series[0] <= free_initial
    assert sampler.minimum("free_pages") < free_initial
    assert sampler.maximum("waf") >= 1.0


def test_stop_halts_sampling():
    host = make_host()
    sampler = TimelineSampler(host, period_ns=SECOND).start()
    host.run_for(2 * SECOND)
    sampler.stop()
    host.run_for(3 * SECOND)
    assert sampler.sample_count == 3


def test_custom_probe():
    host = make_host()
    counter = {"n": 0}

    def probe():
        counter["n"] += 1
        return counter["n"]

    sampler = TimelineSampler(host, period_ns=SECOND, probes={"tick": probe}).start()
    host.run_for(2 * SECOND)
    assert sampler.series("tick") == [1, 2, 3]


def test_csv_export(tmp_path):
    host = make_host()
    sampler = TimelineSampler(host, period_ns=SECOND).start()
    host.run_for(2 * SECOND)
    path = tmp_path / "timeline.csv"
    assert sampler.save_csv(path) == 3
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0][0] == "time_ns"
    assert len(rows) == 4


def test_validation():
    host = make_host()
    with pytest.raises(ValueError):
        TimelineSampler(host, period_ns=0)
    sampler = TimelineSampler(host, period_ns=SECOND).start()
    with pytest.raises(RuntimeError):
        sampler.start()
