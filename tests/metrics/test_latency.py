"""Tests for the reservoir-sampled latency recorder."""

import pytest

from repro.metrics.latency import LatencyRecorder


def test_exact_stats_small_population():
    rec = LatencyRecorder()
    for value in (10, 20, 30, 40):
        rec.record(value)
    assert rec.count == 4
    assert rec.mean() == pytest.approx(25.0)
    assert rec.max() == 40
    assert rec.percentile(0) == 10
    assert rec.percentile(100) == 40
    assert rec.percentile(50) in (20, 30)


def test_empty_recorder():
    rec = LatencyRecorder()
    assert rec.mean() == 0.0
    assert rec.percentile(99) == 0
    assert rec.max() == 0


def test_reservoir_bounds_memory():
    rec = LatencyRecorder(reservoir_size=100)
    for value in range(10_000):
        rec.record(value)
    assert rec.count == 10_000
    assert len(rec._samples) == 100
    # Percentiles remain sane estimates of the uniform distribution.
    assert 3000 < rec.percentile(50) < 7000


def test_mean_is_exact_despite_sampling():
    rec = LatencyRecorder(reservoir_size=10)
    for value in range(1000):
        rec.record(value)
    assert rec.mean() == pytest.approx(499.5)


def test_validation():
    with pytest.raises(ValueError):
        LatencyRecorder(reservoir_size=0)
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-1)
    with pytest.raises(ValueError):
        rec.percentile(101)


def test_reservoir_matches_nearest_rank_while_exact():
    from repro.metrics.hdr import nearest_rank

    rec = LatencyRecorder()
    values = [5, 1, 9, 3]
    for value in values:
        rec.record(value)
    ordered = sorted(values)
    for q in (0, 25, 50, 99, 100):
        assert rec.percentile(q) == ordered[nearest_rank(q, 4) - 1]


def test_reservoir_reference_flag_restores_on_exit():
    from repro.metrics import latency

    assert not latency.reservoir_reference_enabled()
    with latency.reservoir_reference():
        assert latency.reservoir_reference_enabled()
        with pytest.raises(RuntimeError):
            with latency.reservoir_reference():
                assert latency.reservoir_reference_enabled()
                raise RuntimeError("boom")
        # Still enabled: the inner exit restored the *outer* state.
        assert latency.reservoir_reference_enabled()
    assert not latency.reservoir_reference_enabled()
