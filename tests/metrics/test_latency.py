"""Tests for the reservoir-sampled latency recorder."""

import pytest

from repro.metrics.latency import LatencyRecorder


def test_exact_stats_small_population():
    rec = LatencyRecorder()
    for value in (10, 20, 30, 40):
        rec.record(value)
    assert rec.count == 4
    assert rec.mean() == pytest.approx(25.0)
    assert rec.max() == 40
    assert rec.percentile(0) == 10
    assert rec.percentile(100) == 40
    assert rec.percentile(50) in (20, 30)


def test_empty_recorder():
    rec = LatencyRecorder()
    assert rec.mean() == 0.0
    assert rec.percentile(99) == 0
    assert rec.max() == 0


def test_reservoir_bounds_memory():
    rec = LatencyRecorder(reservoir_size=100)
    for value in range(10_000):
        rec.record(value)
    assert rec.count == 10_000
    assert len(rec._samples) == 100
    # Percentiles remain sane estimates of the uniform distribution.
    assert 3000 < rec.percentile(50) < 7000


def test_mean_is_exact_despite_sampling():
    rec = LatencyRecorder(reservoir_size=10)
    for value in range(1000):
        rec.record(value)
    assert rec.mean() == pytest.approx(499.5)


def test_validation():
    with pytest.raises(ValueError):
        LatencyRecorder(reservoir_size=0)
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-1)
    with pytest.raises(ValueError):
        rec.percentile(101)
