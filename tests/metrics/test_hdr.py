"""Tests for the HDR log-linear histogram (repro.metrics.hdr).

The property tests pin the two contracts the tail-latency pipeline
rests on: merging histograms is *bit-identical* to one histogram fed
the concatenated stream, and every quantile is within the configured
relative error of the exact nearest-rank quantile of the raw samples.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.hdr import HdrHistogram, merge_wire_histograms, nearest_rank

latency_values = st.integers(min_value=0, max_value=60 * 10**9)
latency_streams = st.lists(latency_values, min_size=1, max_size=300)


# ----------------------------------------------------------------------
# nearest_rank (the shared quantile definition)
# ----------------------------------------------------------------------
def test_nearest_rank_basics():
    assert nearest_rank(0, 4) == 1
    assert nearest_rank(100, 4) == 4
    assert nearest_rank(50, 4) == 2
    assert nearest_rank(99, 4) == 4
    assert nearest_rank(50, 0) == 0


def test_nearest_rank_float_artifacts():
    # 0.99 * 100 == 99.00000000000001 in binary floats; the epsilon
    # must keep p99 of 100 samples at rank 99, not 100.
    assert nearest_rank(99.0, 100) == 99
    assert nearest_rank(99.9, 1000) == 999


def test_nearest_rank_validation():
    with pytest.raises(ValueError):
        nearest_rank(101, 10)
    with pytest.raises(ValueError):
        nearest_rank(-1, 10)


# ----------------------------------------------------------------------
# Bucket geometry
# ----------------------------------------------------------------------
@given(latency_values)
def test_bucket_contains_value(value):
    hist = HdrHistogram()
    index = hist.bucket_index(value)
    assert value <= hist.bucket_high(index)
    if index > 0:
        assert value > hist.bucket_high(index - 1)


@given(latency_values)
def test_bucket_width_bounds_relative_error(value):
    hist = HdrHistogram()
    high = hist.bucket_high(hist.bucket_index(value))
    assert high - value <= max(1, int(value * hist.relative_error))


def test_small_values_exact():
    hist = HdrHistogram(bucket_bits=8)
    for value in range(256):
        assert hist.bucket_high(hist.bucket_index(value)) == value


def test_bucket_bits_validation():
    with pytest.raises(ValueError):
        HdrHistogram(bucket_bits=1)
    with pytest.raises(ValueError):
        HdrHistogram(bucket_bits=21)


# ----------------------------------------------------------------------
# Recording and statistics
# ----------------------------------------------------------------------
def test_exact_mean_min_max():
    hist = HdrHistogram()
    for value in (10, 20, 30, 1_000_000):
        hist.record(value)
    assert hist.count == 4
    assert hist.mean() == pytest.approx((10 + 20 + 30 + 1_000_000) / 4)
    assert hist.min() == 10
    assert hist.max() == 1_000_000


def test_empty_histogram():
    hist = HdrHistogram()
    assert hist.count == 0
    assert hist.mean() == 0.0
    assert hist.percentile(99) == 0
    assert hist.percentiles([50, 99]) == {50: 0, 99: 0}


def test_record_validation():
    hist = HdrHistogram()
    with pytest.raises(ValueError):
        hist.record(-1)
    with pytest.raises(ValueError):
        hist.record(1, n=0)


def test_percentile_extremes_clamp_to_observed():
    hist = HdrHistogram()
    for value in (1000, 2000, 3_000_000):
        hist.record(value)
    assert hist.percentile(100) == hist.max() == 3_000_000
    assert hist.percentile(0) >= hist.min()


@given(latency_streams)
@settings(max_examples=200, deadline=None)
def test_quantiles_within_relative_error_of_exact(stream):
    """HDR quantile vs exact nearest-rank quantile of the sorted stream."""
    hist = HdrHistogram()
    for value in stream:
        hist.record(value)
    ordered = sorted(stream)
    for q in (0, 50, 90, 95, 99, 99.9, 99.99, 100):
        exact = ordered[nearest_rank(q, len(ordered)) - 1]
        estimate = hist.percentile(q)
        # The bucket's upper bound is >= the exact sample and within the
        # relative-error bound of it (never below, never too far above).
        assert estimate >= exact or estimate == hist.max()
        assert estimate - exact <= max(1, int(exact * hist.relative_error))


@given(latency_streams)
@settings(max_examples=100, deadline=None)
def test_percentiles_batch_matches_single(stream):
    hist = HdrHistogram()
    for value in stream:
        hist.record(value)
    qs = [0, 50, 95, 99, 99.9, 100]
    batch = hist.percentiles(qs)
    assert batch == {q: hist.percentile(q) for q in qs}


# ----------------------------------------------------------------------
# Merging (the --jobs / SPO-phase contract)
# ----------------------------------------------------------------------
@given(st.lists(latency_streams, min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_merge_bit_identical_to_concatenated_stream(streams):
    merged = HdrHistogram()
    for stream in streams:
        part = HdrHistogram()
        for value in stream:
            part.record(value)
        merged.merge(part)
    reference = HdrHistogram()
    for stream in streams:
        for value in stream:
            reference.record(value)
    assert merged == reference
    assert merged.to_wire() == reference.to_wire()


def test_merge_rejects_mismatched_resolution():
    with pytest.raises(ValueError):
        HdrHistogram(bucket_bits=8).merge(HdrHistogram(bucket_bits=9))


# ----------------------------------------------------------------------
# Wire form
# ----------------------------------------------------------------------
@given(latency_streams)
@settings(max_examples=100, deadline=None)
def test_wire_roundtrip(stream):
    hist = HdrHistogram()
    for value in stream:
        hist.record(value)
    wire = hist.to_wire()
    # JSON-safe: survives an actual serialization round trip.
    assert HdrHistogram.from_wire(json.loads(json.dumps(wire))) == hist


def test_merge_wire_histograms():
    a, b = HdrHistogram(), HdrHistogram()
    a.record(10)
    b.record(1_000_000)
    merged = merge_wire_histograms([a.to_wire(), b.to_wire()])
    assert merged.count == 2
    assert merged.min() == 10
    assert merged.max() == 1_000_000
    # Any phase without a histogram poisons the merge (exactness first).
    assert merge_wire_histograms([a.to_wire(), None]) is None
    assert merge_wire_histograms([]) is None


# ----------------------------------------------------------------------
# Interval deltas (per-interval p99/p999 sampling)
# ----------------------------------------------------------------------
def test_interval_percentiles_cover_only_new_samples():
    hist = HdrHistogram()
    for value in (100, 200, 300):
        hist.record(value)
    mark = hist.mark()
    assert hist.interval_percentiles(mark, [99]) == {99: 0}
    hist.record(5000)
    interval = hist.interval_percentiles(mark, [50, 99])
    exact = 5000
    for q in (50, 99):
        assert interval[q] >= exact
        assert interval[q] - exact <= max(1, int(exact * hist.relative_error))
