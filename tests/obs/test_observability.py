"""Tests for the Observability bundle: config, wiring, and end-to-end runs."""

import json
from dataclasses import replace

import pytest

from repro.core.policies import JitGcPolicy
from repro.host import HostSystem
from repro.obs import Observability, ObservabilityConfig
from repro.obs.tracer import NULL_TRACER, InMemorySink, Tracer
from repro.experiments import ScenarioSpec, run_scenario
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig

TINY = dict(blocks=256, pages_per_block=16, warmup_s=4, measure_s=10)


def test_config_rejects_unknown_format():
    with pytest.raises(ValueError):
        ObservabilityConfig(trace_format="xml")


def test_config_rejects_negative_interval():
    with pytest.raises(ValueError):
        ObservabilityConfig(metrics_interval_ns=-1)


def test_config_enabled():
    assert not ObservabilityConfig().enabled()
    assert ObservabilityConfig(trace_path="t.jsonl").enabled()
    assert ObservabilityConfig(profile=True).enabled()
    assert ObservabilityConfig(audit=True).enabled()


def test_config_with_suffix_renames_trace(tmp_path):
    config = ObservabilityConfig(trace_path=str(tmp_path / "trace.json"))
    suffixed = config.with_suffix("JIT-GC")
    assert suffixed.trace_path == str(tmp_path / "trace-JIT-GC.json")
    # No trace path: suffix is a no-op copy.
    assert ObservabilityConfig().with_suffix("x").trace_path is None


def test_resolve_accepts_none_instance_and_config():
    disabled = Observability.resolve(None)
    assert disabled.tracer is NULL_TRACER
    assert not disabled.audit.enabled
    obs = Observability.disabled()
    assert Observability.resolve(obs) is obs
    from_config = Observability.resolve(ObservabilityConfig(audit=True))
    assert from_config.audit.enabled
    with pytest.raises(TypeError):
        Observability.resolve(42)


def test_tracing_implies_audit(tmp_path):
    config = ObservabilityConfig(trace_path=str(tmp_path / "t.jsonl"))
    obs = Observability.from_config(config)
    assert obs.audit.enabled


def test_install_wires_components():
    sink = InMemorySink()
    obs = Observability(
        tracer=Tracer(sink),
        metrics_interval_ns=SECOND,
    )
    host = HostSystem(
        SsdConfig.small(blocks=128, pages_per_block=16, fault_profile="light"),
        JitGcPolicy(),
        obs=obs,
    )
    assert host.ftl.tracer is obs.tracer
    assert host.flusher.tracer is obs.tracer
    assert host.device.tracer is obs.tracer
    assert host.ftl.nand.tracer is obs.tracer
    assert host.ftl.nand.fault_injector.tracer is obs.tracer
    assert host.policy.tracer is obs.tracer
    assert obs.sampler is not None


def test_disabled_install_leaves_null_defaults():
    host = HostSystem(
        SsdConfig.small(blocks=128, pages_per_block=16), JitGcPolicy()
    )
    assert host.ftl.tracer is NULL_TRACER
    assert host.flusher.tracer is NULL_TRACER
    assert not host.ftl.audit.enabled
    assert host.obs.sampler is None
    # The registry is always real and shared with the FTL.
    assert host.ftl.registry is host.obs.registry


def test_op_timeline_derives_from_shared_registry():
    host = HostSystem(
        SsdConfig.small(blocks=128, pages_per_block=16, fault_profile="none"),
        JitGcPolicy(),
    )
    series = host.obs.registry.series("ftl.effective_op_pages.events")
    assert host.ftl.op_timeline == []
    series.append(5, 99)
    assert host.ftl.op_timeline == [(5, 99)]


def test_finish_is_idempotent_and_closes_sink():
    sink = InMemorySink()
    obs = Observability(tracer=Tracer(sink))
    obs.finish()
    obs.finish()
    assert sink.closed


def test_run_metrics_identical_with_and_without_tracing(tmp_path):
    """Acceptance: a tracing run must not perturb simulated behaviour."""
    spec = ScenarioSpec(workload="YCSB", policy="JIT-GC", seed=42, **TINY)
    traced = replace(
        spec,
        obs=ObservabilityConfig(
            trace_path=str(tmp_path / "trace.jsonl"), audit=True
        ),
    )
    assert run_scenario(spec) == run_scenario(traced)


def test_run_scenario_chrome_trace_is_perfetto_loadable(tmp_path):
    path = tmp_path / "trace.json"
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        seed=42,
        fault_profile="light",
        obs=ObservabilityConfig(trace_path=str(path), trace_format="chrome"),
        **TINY,
    )
    run_scenario(spec)

    document = json.loads(path.read_text())
    assert set(document) == {"traceEvents", "otherData", "displayTimeUnit"}
    header = document["otherData"]
    assert header["seed"] == 42
    assert header["fault_profile"] == "light"
    events = [e for e in document["traceEvents"] if e["ph"] != "M"]
    for event in events:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    names = {e["name"] for e in events}
    assert {"manager.tick", "flusher.wakeup", "victim.select"} <= names
    # Sim-time ordering holds on every track.
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    for ts_list in by_tid.values():
        assert ts_list == sorted(ts_list)


def test_run_scenario_jsonl_header_records_scenario(tmp_path):
    path = tmp_path / "trace.jsonl"
    spec = ScenarioSpec(
        workload="YCSB",
        policy="JIT-GC",
        seed=7,
        fault_profile="light",
        obs=ObservabilityConfig(trace_path=str(path)),
        **TINY,
    )
    run_scenario(spec)

    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["type"] == "header"
    assert header["seed"] == 7
    assert header["fault_profile"] == "light"
    assert header["policy"] == "JIT-GC"
    assert header["workload"] == "YCSB"
    events = [json.loads(line) for line in lines[1:]]
    assert all(e["type"] == "event" for e in events)
    assert {"manager.tick", "flusher.wakeup"} <= {e["name"] for e in events}
    # Metrics sampling produced counter records for the standard gauges.
    assert any(e["ph"] == "C" and e["name"] == "ftl.waf" for e in events)


def test_sampler_builds_standard_series_over_a_run():
    sink = InMemorySink()
    obs = Observability(tracer=Tracer(sink), metrics_interval_ns=SECOND)
    host = HostSystem(
        SsdConfig.small(blocks=128, pages_per_block=16),
        JitGcPolicy(),
        obs=obs,
    )
    host.prefill(host.user_pages // 4)
    host.run_for(3 * SECOND)
    registry = obs.registry
    for name in ("ftl.free_pages", "cache.dirty_pages", "ftl.waf", "host.ops"):
        series = registry.series(name)
        # Sampled at t=0, 1s, 2s, 3s.
        assert series.times_ns == [0, SECOND, 2 * SECOND, 3 * SECOND], name
    assert registry.series("ftl.free_pages").values[0] > 0
