"""Tests for the wall-clock event-loop profiler."""

from repro.obs.profiler import LoopProfiler
from repro.sim.engine import Simulator


def test_record_accumulates_per_label():
    profiler = LoopProfiler()
    profiler.record("flusher.wake", 1_000)
    profiler.record("flusher.wake", 3_000)
    profiler.record("device.complete", 500)
    assert profiler.counts == {"flusher.wake": 2, "device.complete": 1}
    assert profiler.wall_ns == {"flusher.wake": 4_000, "device.complete": 500}
    assert profiler.total_events() == 3
    assert profiler.total_wall_ns() == 4_500


def test_rows_sorted_by_wall_time_with_top():
    profiler = LoopProfiler()
    profiler.record("cheap", 100)
    profiler.record("hot", 9_000)
    profiler.record("warm", 2_000)
    rows = profiler.rows()
    assert [r[0] for r in rows] == ["hot", "warm", "cheap"]
    # (label, count, wall_ns, mean_us)
    assert rows[0] == ("hot", 1, 9_000, 9.0)
    assert [r[0] for r in profiler.rows(top=1)] == ["hot"]


def test_format_report_shape():
    profiler = LoopProfiler()
    profiler.record("manager.tick", 2_000_000)
    report = profiler.format()
    lines = report.splitlines()
    assert lines[0].startswith("event-loop profile: 1 events")
    assert "manager.tick" in report
    assert "count" in lines[1] and "wall ms" in lines[1]


def test_simulator_times_named_events():
    sim = Simulator()
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    for t in (10, 20):
        sim.schedule_at(t, lambda: None, name="tick")
    sim.schedule_at(30, lambda: None)  # unnamed: falls back to __qualname__
    sim.run()
    assert profiler.counts["tick"] == 2
    assert profiler.total_events() == 3
    assert all(ns >= 0 for ns in profiler.wall_ns.values())


def test_simulator_profiler_detach():
    sim = Simulator()
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    assert sim.profiler is profiler
    sim.schedule_at(1, lambda: None, name="a")
    sim.run()
    sim.set_profiler(None)
    assert sim.profiler is None
    sim.schedule_at(2, lambda: None, name="b")
    sim.run()
    assert profiler.counts == {"a": 1}
