"""Tests for the metrics registry and the sim-time sampler."""

import pytest

from repro.obs.registry import MetricsRegistry, MetricsSampler
from repro.obs.tracer import InMemorySink, Tracer
from repro.sim.engine import Simulator
from repro.sim.simtime import SECOND


def test_instruments_are_idempotent_by_name():
    registry = MetricsRegistry()
    assert registry.counter("ops") is registry.counter("ops")
    assert registry.histogram("lat") is registry.histogram("lat")
    assert registry.series("op") is registry.series("op")


def test_counter_and_gauge_sampling():
    registry = MetricsRegistry()
    ops = registry.counter("host.ops")
    state = {"free": 100}
    registry.gauge("ftl.free_pages", lambda: state["free"])

    ops.inc(5)
    row = registry.sample(SECOND)
    assert row == {"ftl.free_pages": 100.0, "host.ops": 5}

    ops.inc(7)
    state["free"] = 90
    registry.sample(2 * SECOND)
    assert registry.series("host.ops").points == [(SECOND, 5), (2 * SECOND, 12)]
    assert registry.series("ftl.free_pages").values == [100.0, 90.0]


def test_rate_points_derives_per_interval_iops():
    registry = MetricsRegistry()
    ops = registry.counter("host.ops")
    for t, total in ((SECOND, 100), (2 * SECOND, 300), (4 * SECOND, 300)):
        ops.value = total
        registry.sample(t)
    rates = registry.rate_points("host.ops")
    # 200 ops over the second interval => 200/s; flat afterwards.
    assert rates == [(2 * SECOND, 200.0), (4 * SECOND, 0.0)]


def test_histogram_buckets_and_summary():
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    for value in (0, 1, 3, 100):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["min"] == 0 and summary["max"] == 100
    assert summary["mean"] == pytest.approx(26.0)
    with pytest.raises(ValueError):
        hist.observe(-1)


def test_event_driven_series_append():
    registry = MetricsRegistry()
    series = registry.series("ftl.effective_op_pages.events")
    series.append(10, 64)
    series.append(20, 32)
    assert series.points == [(10, 64), (20, 32)]
    assert len(series) == 2


def test_snapshot_is_serializable():
    import json

    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g", lambda: 1.0)
    registry.histogram("h").observe(5)
    registry.series("s").append(1, 2.0)
    registry.sample(SECOND)
    encoded = json.dumps(registry.snapshot())
    decoded = json.loads(encoded)
    assert decoded["counters"]["c"] == 1
    assert decoded["series"]["s"]["values"] == [2.0]


def test_sampler_fires_at_fixed_sim_period():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("clock", lambda: sim.now)
    sampler = MetricsSampler(registry, SECOND)
    sampler.start(sim)
    sim.run_until(3 * SECOND)
    # Samples at t=0, 1s, 2s, 3s.
    assert registry.series("clock").times_ns == [0, SECOND, 2 * SECOND, 3 * SECOND]
    assert sampler.samples_taken == 4

    sampler.stop()
    sim.run_until(5 * SECOND)
    assert sampler.samples_taken == 4


def test_sampler_mirrors_into_tracer_counters():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("ftl.waf", lambda: 1.25)
    sink = InMemorySink()
    sampler = MetricsSampler(registry, SECOND, tracer=Tracer(sink, clock=lambda: sim.now))
    sampler.start(sim)
    sim.run_until(SECOND)
    counters = sink.by_name("ftl.waf")
    assert len(counters) == 2
    assert all(r["ph"] == "C" and r["args"]["value"] == 1.25 for r in counters)


def test_sampler_rejects_bad_period():
    with pytest.raises(ValueError):
        MetricsSampler(MetricsRegistry(), 0)


def test_sampler_rejects_double_start():
    sim = Simulator()
    sampler = MetricsSampler(MetricsRegistry(), SECOND)
    sampler.start(sim)
    with pytest.raises(RuntimeError):
        sampler.start(sim)
