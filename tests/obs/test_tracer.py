"""Tests for the sim-time tracer and its sinks."""

import json

from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    ChromeTraceSink,
    InMemorySink,
    JsonlTraceSink,
    NullTracer,
    Tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


def test_tracer_stamps_sim_time():
    sink = InMemorySink()
    clock = FakeClock()
    tracer = Tracer(sink, clock=clock)
    clock.now = 1_500
    tracer.emit("ftl", "victim.select", block=7)
    clock.now = 2_500
    tracer.emit("ftl", "victim.select", block=9)
    assert [r["ts"] for r in sink.records] == [1_500, 2_500]
    assert sink.records[0]["args"] == {"block": 7}
    assert all(r["ph"] == "i" for r in sink.records)


def test_tracer_complete_and_counter_phases():
    sink = InMemorySink()
    tracer = Tracer(sink)
    tracer.complete("device", "bgc.block", start_ns=100, dur_ns=50, freed_pages=3)
    tracer.counter("metrics", "ftl.waf", {"value": 1.5})
    complete, counter = sink.records
    assert complete["ph"] == "X"
    assert complete["ts"] == 100 and complete["dur"] == 50
    assert counter["ph"] == "C"
    assert counter["args"] == {"value": 1.5}


def test_null_tracer_is_disabled_and_silent():
    tracer = NullTracer()
    assert tracer.enabled is False
    tracer.emit("x", "y", a=1)
    tracer.complete("x", "y", start_ns=0, dur_ns=1)
    tracer.counter("x", "y", {"v": 1})
    tracer.close()  # must not raise
    assert NULL_TRACER.enabled is False


def test_in_memory_sink_by_name():
    sink = InMemorySink()
    tracer = Tracer(sink)
    tracer.emit("a", "one")
    tracer.emit("a", "two")
    tracer.emit("b", "one")
    assert len(sink.by_name("one")) == 2
    tracer.close()
    assert sink.closed


def test_jsonl_sink_header_first_then_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlTraceSink(path, header={"seed": 7, "fault_profile": "light"})
    tracer = Tracer(sink, clock=lambda: 42)
    tracer.emit("manager", "manager.tick", branch="defer")
    tracer.close()

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "header"
    assert lines[0]["format"] == TRACE_FORMAT_VERSION
    assert lines[0]["time_unit"] == "ns"
    assert lines[0]["seed"] == 7
    assert lines[0]["fault_profile"] == "light"
    event = lines[1]
    assert event["type"] == "event"
    assert event["name"] == "manager.tick"
    assert event["ts"] == 42
    assert event["args"]["branch"] == "defer"


def test_chrome_sink_produces_loadable_document(tmp_path):
    path = tmp_path / "trace.json"
    sink = ChromeTraceSink(path, header={"seed": 3})
    tracer = Tracer(sink, clock=lambda: 2_000)
    tracer.emit("manager", "manager.tick", branch="invoke")
    tracer.complete("device", "fgc.stall", start_ns=1_000, dur_ns=3_000)
    tracer.close()

    document = json.loads(path.read_text())
    assert set(document) == {"traceEvents", "otherData", "displayTimeUnit"}
    assert document["otherData"]["seed"] == 3
    events = document["traceEvents"]
    # Metadata names the process and one thread per category.
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} >= {"repro-sim", "manager", "device"}
    real = [e for e in events if e["ph"] != "M"]
    for event in real:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    instant = next(e for e in real if e["ph"] == "i")
    assert instant["s"] == "t"
    assert instant["ts"] == 2.0  # ns -> us
    complete = next(e for e in real if e["ph"] == "X")
    assert complete["ts"] == 1.0 and complete["dur"] == 3.0


def test_chrome_sink_assigns_one_tid_per_category(tmp_path):
    sink = ChromeTraceSink(tmp_path / "t.json")
    tracer = Tracer(sink)
    for _ in range(3):
        tracer.emit("manager", "tick")
        tracer.emit("flusher", "wakeup")
    tracer.close()
    document = json.loads((tmp_path / "t.json").read_text())
    tids = {
        e["cat"]: e["tid"] for e in document["traceEvents"] if e["ph"] != "M"
    }
    assert len(set(tids.values())) == 2


def test_chrome_sink_close_is_idempotent(tmp_path):
    sink = ChromeTraceSink(tmp_path / "t.json")
    sink.write({"ph": "i", "cat": "a", "name": "n", "ts": 0})
    sink.close()
    sink.close()
    document = json.loads((tmp_path / "t.json").read_text())
    assert any(e["name"] == "n" for e in document["traceEvents"])
