"""Tests for tail-latency attribution (repro.obs.attribution)."""

import pytest

from repro.obs.attribution import (
    CAUSE_BGC_OVERLAP,
    CAUSE_FAULT_RETRY,
    CAUSE_FGC_STALL,
    CAUSE_FLUSHER,
    CAUSE_NONE,
    CAUSE_QUEUEING,
    CAUSE_RECOVERY,
    CAUSES,
    DISABLED_OPLOG,
    OpLog,
    PointIndex,
    SpanIndex,
    attribute_tail,
    causes_from_wire,
)
from repro.obs.audit import (
    BackpressureRecord,
    DecisionAuditLog,
    FaultRecord,
    GcSpanRecord,
    RecoveryRecord,
)


# ----------------------------------------------------------------------
# OpLog
# ----------------------------------------------------------------------
def test_oplog_records_and_bounds():
    log = OpLog(limit=2)
    log.record("write", 0, 10, 1)
    log.record("read", 5, 25, 0)
    log.record("write", 6, 30, 2)
    assert len(log) == 2
    assert log.dropped == 1
    assert log.kinds == ["write", "read"]
    assert log.queue_depths == [1, 0]


def test_disabled_oplog_is_shared_noop():
    assert DISABLED_OPLOG.enabled is False
    assert len(DISABLED_OPLOG) == 0


# ----------------------------------------------------------------------
# Index structures
# ----------------------------------------------------------------------
def test_span_index_merges_and_queries():
    index = SpanIndex([(10, 20), (15, 30), (50, 60)])
    assert len(index) == 2  # first two merged
    assert index.overlaps(0, 10)       # touches start
    assert index.overlaps(25, 40)
    assert not index.overlaps(31, 49)
    assert index.overlaps(55, 55)
    assert not index.overlaps(61, 100)
    assert not SpanIndex([]).overlaps(0, 10**9)


def test_point_index():
    index = PointIndex([5, 100])
    assert index.any_in(0, 5)
    assert index.any_in(99, 101)
    assert not index.any_in(6, 99)
    assert not PointIndex([]).any_in(0, 10**9)


# ----------------------------------------------------------------------
# attribute_tail
# ----------------------------------------------------------------------
def _audit_with_timeline() -> DecisionAuditLog:
    audit = DecisionAuditLog()
    audit.record_gc_span(GcSpanRecord(t_ns=1000, dur_ns=500, background=False))
    audit.record_gc_span(GcSpanRecord(t_ns=5000, dur_ns=500, background=True))
    audit.record_backpressure(BackpressureRecord(t_ns=9000, dur_ns=400, writers=2))
    audit.record_fault(
        FaultRecord(t_ns=12_000, kind="read", block=1, page=2, resolution="read-retry")
    )
    audit.record_recovery(
        RecoveryRecord(
            t_ns=15_000,
            duration_ns=1000,
            pages_scanned=4,
            torn_pages=0,
            stale_pages=0,
            mapped_lpns=4,
            free_blocks=1,
            closed_blocks=1,
            retired_blocks=0,
        )
    )
    return audit


def test_attribution_priority_and_accounting():
    audit = _audit_with_timeline()
    log = OpLog()
    # One op per cause; latencies all equal so threshold catches all.
    log.record("write", 900, 1200, 0)      # overlaps the FGC stall
    log.record("write", 4900, 5200, 0)     # overlaps the BGC span
    log.record("write", 8900, 9200, 0)     # inside backpressure
    log.record("read", 11_900, 12_200, 0)  # fault instant inside window
    log.record("write", 14_900, 15_200, 0) # recovery window
    log.record("write", 20_000, 20_300, 3) # nothing overlaps, queued
    log.record("write", 30_000, 30_300, 0) # nothing at all

    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.total_ops == 7
    assert report.slow_ops == 7
    assert report.accounted() == report.slow_ops
    assert report.count(CAUSE_FGC_STALL) == 1
    assert report.count(CAUSE_BGC_OVERLAP) == 1
    assert report.count(CAUSE_FLUSHER) == 1
    assert report.count(CAUSE_FAULT_RETRY) == 1
    assert report.count(CAUSE_RECOVERY) == 1
    assert report.count(CAUSE_QUEUEING) == 1
    assert report.count(CAUSE_NONE) == 1
    assert report.total_ns(CAUSE_FGC_STALL) == 300


def test_fgc_takes_priority_over_everything():
    audit = _audit_with_timeline()
    log = OpLog()
    # Window spans the FGC stall AND the BGC span AND backpressure.
    log.record("write", 900, 9500, 4)
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_FGC_STALL) == 1
    assert report.accounted() == 1


def test_threshold_uses_nearest_rank_percentile():
    log = OpLog()
    for index in range(100):
        log.record("write", index * 1000, index * 1000 + index + 1, 0)
    report = attribute_tail(log, DecisionAuditLog(), threshold_pct=99.0)
    # Latencies are 1..100; nearest-rank p99 of 100 samples is 99.
    assert report.threshold_ns == 99
    assert report.slow_ops == 2  # latencies 99 and 100
    assert report.accounted() == 2


def test_explicit_threshold_override():
    log = OpLog()
    log.record("write", 0, 10, 0)
    log.record("write", 0, 1000, 0)
    report = attribute_tail(log, DecisionAuditLog(), threshold_ns=500)
    assert report.slow_ops == 1
    assert report.threshold_ns == 500


def test_empty_and_disabled_oplog():
    report = attribute_tail(OpLog(), DecisionAuditLog())
    assert report.total_ops == 0
    assert report.slow_ops == 0
    assert report.accounted() == 0
    assert set(report.causes) == set(CAUSES)
    report = attribute_tail(DISABLED_OPLOG, DecisionAuditLog())
    assert report.total_ops == 0


def test_disabled_audit_yields_queueing_or_none():
    from repro.obs.audit import DISABLED_AUDIT

    log = OpLog()
    log.record("write", 0, 100, 1)
    log.record("write", 0, 100, 0)
    report = attribute_tail(log, DISABLED_AUDIT, threshold_pct=0.0)
    assert report.count(CAUSE_QUEUEING) == 1
    assert report.count(CAUSE_NONE) == 1


def test_wire_roundtrip():
    log = OpLog()
    log.record("write", 0, 100, 1)
    report = attribute_tail(log, DecisionAuditLog(), threshold_pct=0.0)
    wire = report.to_wire()
    assert causes_from_wire(wire) == report.causes
    assert causes_from_wire(None) == {}


def test_audit_span_queries():
    audit = _audit_with_timeline()
    assert len(audit.fgc_spans()) == 1
    assert len(audit.bgc_spans()) == 1
    assert len(audit.backpressure_spans) == 1
    # Disabled audit drops span records like every other record type.
    from repro.obs.audit import DISABLED_AUDIT

    DISABLED_AUDIT.record_gc_span(GcSpanRecord(t_ns=0, dur_ns=1, background=False))
    assert DISABLED_AUDIT.gc_spans == []


def test_mapping_fault_cause_attributes_cmt_misses():
    from repro.obs.attribution import CAUSE_MAPPING_FAULT
    from repro.obs.audit import MappingFaultRecord

    audit = DecisionAuditLog()
    audit.record_mapping_fault(MappingFaultRecord(t_ns=2000, dur_ns=300, kind="miss"))
    audit.record_mapping_fault(
        MappingFaultRecord(t_ns=8000, dur_ns=500, kind="writeback", pages=1)
    )
    log = OpLog()
    log.record("write", 1900, 2100, 0)   # overlaps the miss read
    log.record("write", 8100, 8600, 0)   # inside the eviction writeback
    log.record("write", 5000, 5200, 0)   # overlaps nothing
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_MAPPING_FAULT) == 2
    assert report.count(CAUSE_NONE) == 1
    assert report.accounted() == 3
    assert CAUSE_MAPPING_FAULT in CAUSES


def test_fault_retry_outranks_mapping_fault():
    from repro.obs.attribution import CAUSE_MAPPING_FAULT
    from repro.obs.audit import MappingFaultRecord

    audit = DecisionAuditLog()
    audit.record_fault(
        FaultRecord(t_ns=2000, kind="read", block=0, page=0, resolution="read-retry")
    )
    audit.record_mapping_fault(MappingFaultRecord(t_ns=2000, dur_ns=300, kind="miss"))
    log = OpLog()
    log.record("read", 1900, 2400, 0)  # overlaps both
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_FAULT_RETRY) == 1
    assert report.count(CAUSE_MAPPING_FAULT) == 0
