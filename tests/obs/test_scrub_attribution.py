"""Tests for the scrub-interference tail-latency cause.

Refresh-scrub relocations are background GC spans flagged ``scrub=True``
on their :class:`GcSpanRecord`; the attribution engine must classify a
slow op overlapping one as ``scrub-interference`` -- not fold it into
``bgc-overlap`` -- while preserving the priority ladder around it.
"""

from repro.obs.attribution import (
    CAUSE_BGC_OVERLAP,
    CAUSE_FGC_STALL,
    CAUSE_SCRUB,
    CAUSES,
    OpLog,
    attribute_tail,
)
from repro.obs.audit import DecisionAuditLog, GcSpanRecord


def _audit_with_scrub() -> DecisionAuditLog:
    audit = DecisionAuditLog()
    audit.record_gc_span(GcSpanRecord(t_ns=1000, dur_ns=500, background=False))
    audit.record_gc_span(GcSpanRecord(t_ns=5000, dur_ns=500, background=True))
    audit.record_gc_span(
        GcSpanRecord(t_ns=9000, dur_ns=500, background=True, scrub=True)
    )
    return audit


def test_scrub_cause_is_registered_between_bgc_and_flusher():
    assert CAUSE_SCRUB == "scrub-interference"
    assert CAUSE_SCRUB in CAUSES
    assert CAUSES.index(CAUSE_SCRUB) == CAUSES.index(CAUSE_BGC_OVERLAP) + 1


def test_scrub_span_classifies_separately_from_bgc():
    audit = _audit_with_scrub()
    log = OpLog()
    log.record("write", 4900, 5200, 0)  # overlaps the plain BGC span
    log.record("write", 8900, 9200, 0)  # overlaps the scrub relocation
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_BGC_OVERLAP) == 1
    assert report.count(CAUSE_SCRUB) == 1
    assert report.accounted() == report.slow_ops == 2
    assert report.total_ns(CAUSE_SCRUB) == 300


def test_fgc_still_outranks_scrub():
    audit = _audit_with_scrub()
    log = OpLog()
    # One op spanning the FGC stall, the BGC span AND the scrub span.
    log.record("write", 900, 9500, 2)
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_FGC_STALL) == 1
    assert report.count(CAUSE_SCRUB) == 0


def test_bgc_outranks_scrub_when_both_overlap():
    audit = _audit_with_scrub()
    log = OpLog()
    log.record("write", 4900, 9500, 0)  # spans both background intervals
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_BGC_OVERLAP) == 1
    assert report.count(CAUSE_SCRUB) == 0


def test_pre_scrub_records_default_to_bgc_overlap():
    """Old GcSpanRecords (no scrub flag) still classify as bgc-overlap."""
    audit = DecisionAuditLog()
    audit.record_gc_span(GcSpanRecord(t_ns=5000, dur_ns=500, background=True))
    log = OpLog()
    log.record("write", 4900, 5200, 0)
    report = attribute_tail(log, audit, threshold_pct=0.0)
    assert report.count(CAUSE_BGC_OVERLAP) == 1
    assert report.count(CAUSE_SCRUB) == 0


def test_scrub_cause_round_trips_through_wire():
    audit = _audit_with_scrub()
    log = OpLog()
    log.record("write", 8900, 9200, 0)
    report = attribute_tail(log, audit, threshold_pct=0.0)
    wire = report.to_wire()
    assert wire[CAUSE_SCRUB] == [1, 300]
