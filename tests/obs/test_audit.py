"""Tests for the decision-audit log, including the Sec 3.3 branch audit."""

import pytest

from repro.core.policies import JitGcPolicy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.obs import Observability, ObservabilityConfig
from repro.obs.audit import (
    BRANCH_DEFER,
    BRANCH_INVOKE,
    BRANCH_NO_BGC,
    DISABLED_AUDIT,
    DecisionAuditLog,
    FaultRecord,
    ManagerTickRecord,
    VictimRecord,
)
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import BENCHMARKS, Region


def _tick(branch, **overrides):
    fields = dict(
        t_ns=0, dbuf_bytes=0, ddir_bytes=0, creq_bytes=0, cfree_bytes=0,
        tw_ns=0, tidle_ns=0, tgc_ns=0, reclaim_bytes=0, guard_bytes=0,
        quota_pages=0, branch=branch, write_bw=1.0, gc_bw=1.0,
    )
    fields.update(overrides)
    return ManagerTickRecord(**fields)


def test_disabled_audit_records_nothing():
    assert DISABLED_AUDIT.enabled is False
    DISABLED_AUDIT.record_manager_tick(_tick(BRANCH_DEFER))
    DISABLED_AUDIT.record_victim(
        VictimRecord(0, 1, 2, 2.0, 3, 0, background=True)
    )
    DISABLED_AUDIT.record_fault(FaultRecord(0, "read", 1, 2, "read-retry"))
    assert DISABLED_AUDIT.total_records() == 0


def test_audit_log_caps_and_counts_drops():
    audit = DecisionAuditLog(limit=2)
    for i in range(5):
        audit.record_fault(FaultRecord(i, "read", 0, 0, "read-retry"))
    assert len(audit.faults) == 2
    assert audit.dropped == 3


def test_ticks_filter_by_branch():
    audit = DecisionAuditLog()
    audit.record_manager_tick(_tick(BRANCH_NO_BGC))
    audit.record_manager_tick(_tick(BRANCH_DEFER))
    audit.record_manager_tick(_tick(BRANCH_DEFER))
    assert len(audit.ticks()) == 3
    assert len(audit.ticks(BRANCH_DEFER)) == 2
    assert audit.ticks(BRANCH_INVOKE) == []


def test_filtered_selections_query():
    audit = DecisionAuditLog()
    audit.record_victim(VictimRecord(0, 1, 4, 4.0, 8, 0, background=True))
    audit.record_victim(VictimRecord(1, 2, 4, 4.0, 8, 2, background=True))
    assert [v.block for v in audit.filtered_selections()] == [2]


@pytest.fixture(scope="module")
def jit_audit_run():
    """A short JIT-GC run tuned (tight tau_expire) to hit all branches."""
    config = SsdConfig.small(blocks=256, pages_per_block=64)
    policy = JitGcPolicy()
    obs = Observability.from_config(ObservabilityConfig(audit=True))
    host = HostSystem(
        config,
        policy,
        seed=42,
        flusher_period_ns=SECOND,
        tau_expire_ns=2 * SECOND,
        obs=obs,
    )
    working_set = int(host.user_pages * 0.5)
    host.prefill(working_set)
    metrics = MetricsCollector(host, workload_name="YCSB")
    workload = BENCHMARKS["YCSB"](host, metrics, Region(0, working_set))
    workload.start()
    host.run_for(10 * SECOND)
    return host, obs.audit


def test_jit_run_audits_every_manager_tick(jit_audit_run):
    host, audit = jit_audit_run
    # One audit record per flusher wake-up (the device never went
    # read-only in this scenario).
    assert len(audit.manager_ticks) == host.flusher.wakeups
    times = [t.t_ns for t in audit.manager_ticks]
    assert times == sorted(times)


def test_jit_run_hits_all_three_branches(jit_audit_run):
    _, audit = jit_audit_run
    branches = {t.branch for t in audit.manager_ticks}
    assert branches == {BRANCH_NO_BGC, BRANCH_DEFER, BRANCH_INVOKE}


def test_no_bgc_tick_has_funded_future(jit_audit_run):
    _, audit = jit_audit_run
    for tick in audit.ticks(BRANCH_NO_BGC):
        assert tick.cfree_bytes >= tick.creq_bytes
        assert tick.reclaim_bytes == 0
        assert tick.tw_ns == tick.tidle_ns == tick.tgc_ns == 0


def test_deferred_tick_has_idle_covering_gc(jit_audit_run):
    _, audit = jit_audit_run
    deferred = audit.ticks(BRANCH_DEFER)
    assert deferred
    for tick in deferred:
        assert tick.cfree_bytes < tick.creq_bytes
        assert tick.tidle_ns >= tick.tgc_ns
        assert tick.reclaim_bytes == 0


def test_invoked_tick_reclaim_matches_paper_rule(jit_audit_run):
    """Sec 3.3: Dreclaim = (Tgc - Tidle) * Bgc, capped at the shortfall."""
    _, audit = jit_audit_run
    invoked = audit.ticks(BRANCH_INVOKE)
    assert invoked
    for tick in invoked:
        assert tick.tidle_ns <= tick.tgc_ns
        expected = int((tick.tgc_ns - tick.tidle_ns) * tick.gc_bw / SECOND)
        expected = min(expected, tick.creq_bytes - tick.cfree_bytes)
        assert tick.reclaim_bytes == expected
        assert tick.reclaim_bytes > 0
        assert tick.quota_pages > 0


def test_jit_run_audits_victim_selections(jit_audit_run):
    host, audit = jit_audit_run
    assert len(audit.victim_selections) == host.ftl.stats.victim_selections
    for record in audit.victim_selections:
        assert record.valid_pages is not None
        assert 0 <= record.valid_pages <= host.config.geometry.pages_per_block
        assert record.candidates_considered > 0


def test_faulty_run_audits_recovery_paths():
    config = SsdConfig.small(blocks=256, pages_per_block=32, fault_profile="light")
    policy = JitGcPolicy()
    obs = Observability.from_config(ObservabilityConfig(audit=True))
    host = HostSystem(
        config,
        policy,
        seed=42,
        flusher_period_ns=SECOND,
        obs=obs,
    )
    working_set = int(host.user_pages * 0.5)
    host.prefill(working_set)
    metrics = MetricsCollector(host, workload_name="YCSB")
    workload = BENCHMARKS["YCSB"](host, metrics, Region(0, working_set))
    workload.start()
    host.run_for(10 * SECOND)

    faults = obs.audit.faults
    assert faults, "light profile should exercise at least one recovery"
    kinds = {f.kind for f in faults}
    assert kinds == {"read", "program"}
    resolutions = {f.resolution for f in faults}
    assert resolutions == {"read-retry", "block-retired"}
    for fault in faults:
        if fault.resolution == "read-retry":
            assert fault.retries >= 1
    assert not host.ftl.read_only
