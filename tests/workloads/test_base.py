"""Tests for workload infrastructure: regions, Zipf sampling, pacing."""

import numpy as np
import pytest

from repro.core.policies import NoBgcPolicy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads.base import Region, Workload, ZipfGenerator


def make_host():
    return HostSystem(SsdConfig.small(blocks=128, pages_per_block=16), NoBgcPolicy())


# ----------------------------------------------------------------------
# Region
# ----------------------------------------------------------------------
def test_region_bounds():
    region = Region(10, 90)
    assert region.end == 100
    with pytest.raises(ValueError):
        Region(-1, 5)
    with pytest.raises(ValueError):
        Region(0, 0)


def test_region_sub():
    region = Region(10, 90)
    sub = region.sub(5, 20)
    assert sub.start == 15 and sub.pages == 20
    with pytest.raises(ValueError):
        region.sub(80, 20)


def test_region_split_covers_exactly():
    region = Region(0, 10)
    parts = region.split(3)
    assert [p.pages for p in parts] == [4, 3, 3]
    assert parts[0].start == 0
    assert parts[-1].end == 10
    with pytest.raises(ValueError):
        region.split(0)


# ----------------------------------------------------------------------
# ZipfGenerator
# ----------------------------------------------------------------------
def test_zipf_range_and_skew():
    rng = np.random.default_rng(1)
    zipf = ZipfGenerator(1000, theta=1.2, rng=rng)
    samples = [zipf.sample() for _ in range(5000)]
    assert min(samples) >= 0 and max(samples) < 1000
    # Item 0 must be the clear favourite under strong skew.
    assert samples.count(0) > samples.count(500)


def test_zipf_theta_zero_is_uniformish():
    rng = np.random.default_rng(1)
    zipf = ZipfGenerator(10, theta=0.0, rng=rng)
    samples = [zipf.sample() for _ in range(10000)]
    counts = [samples.count(i) for i in range(10)]
    assert max(counts) < 2 * min(counts)


def test_zipf_with_rng_shares_distribution():
    rng_a = np.random.default_rng(1)
    base = ZipfGenerator(100, theta=1.0, rng=rng_a)
    clone = base.with_rng(np.random.default_rng(2))
    assert clone._cdf is base._cdf
    assert 0 <= clone.sample() < 100


def test_zipf_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ZipfGenerator(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfGenerator(10, -1.0, rng)


# ----------------------------------------------------------------------
# Workload base mechanics
# ----------------------------------------------------------------------
class OneShotWorkload(Workload):
    name = "one-shot"

    def build_actors(self):
        def actor():
            rng = self.actor_rng(0)
            yield from self.op_write(0, 1, direct=True)
            yield from self.think(rng)
            yield from self.op_read(0, 1)

        return [actor()]


def test_workload_ops_counted():
    host = make_host()
    metrics = MetricsCollector(host, "test")
    workload = OneShotWorkload(host, metrics, Region(0, 64))
    workload.start()
    host.run_for(SECOND)
    assert metrics.iops_meter.total_ops == 2


def test_double_start_rejected():
    host = make_host()
    metrics = MetricsCollector(host, "test")
    workload = OneShotWorkload(host, metrics, Region(0, 64))
    workload.start()
    with pytest.raises(RuntimeError):
        workload.start()


def test_exponential_truncated_at_4x_mean():
    host = make_host()
    metrics = MetricsCollector(host, "test")
    workload = OneShotWorkload(host, metrics, Region(0, 64), think_ns=1000)
    rng = workload.actor_rng(0)
    draws = [workload._exponential(1000, rng) for _ in range(2000)]
    assert max(draws) <= 4000


def test_actor_rng_is_stable_per_index():
    host_a = make_host()
    host_b = make_host()
    metrics_a = MetricsCollector(host_a, "t")
    metrics_b = MetricsCollector(host_b, "t")
    wl_a = OneShotWorkload(host_a, metrics_a, Region(0, 64))
    wl_b = OneShotWorkload(host_b, metrics_b, Region(0, 64))
    assert wl_a.actor_rng(3).integers(0, 10**9) == wl_b.actor_rng(3).integers(0, 10**9)


def test_phase_gate_parks_and_releases():
    host = make_host()
    metrics = MetricsCollector(host, "test")

    class GatedWorkload(Workload):
        name = "gated"

        def build_actors(self):
            def actor():
                while True:
                    yield from self.op_gate()
                    yield from self.op_write(0, 1, direct=True)

            return [actor()]

    workload = GatedWorkload(
        host, metrics, Region(0, 64),
        phase_on_ns=SECOND, phase_off_ns=SECOND,
    )
    workload.start()
    host.run_for(SECOND - 1)
    during_on = metrics.iops_meter.total_ops
    assert during_on > 0
    host.run_for(SECOND)  # OFF phase
    during_off = metrics.iops_meter.total_ops - during_on
    # At most one in-flight op completes after the gate closes.
    assert during_off <= 1
    host.run_for(SECOND)  # next ON phase
    assert metrics.iops_meter.total_ops > during_on + during_off
    workload.stop()


def test_phase_params_must_be_paired():
    host = make_host()
    metrics = MetricsCollector(host, "test")
    with pytest.raises(ValueError):
        OneShotWorkload(host, metrics, Region(0, 64), phase_on_ns=SECOND)


def test_uniform_lpn_in_region():
    host = make_host()
    metrics = MetricsCollector(host, "test")
    workload = OneShotWorkload(host, metrics, Region(100, 50))
    rng = workload.actor_rng(0)
    for _ in range(100):
        lpn = workload.uniform_lpn(pages=5, rng=rng)
        assert 100 <= lpn <= 145
    with pytest.raises(ValueError):
        workload.uniform_lpn(pages=51, rng=rng)
