"""Tests for the synthetic workload and trace record/replay."""

import pytest

from repro.core.policies import NoBgcPolicy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import Region, SyntheticWorkload
from repro.workloads.trace import (
    TraceRecord,
    TraceRecorder,
    TraceWorkload,
    load_trace,
    save_trace,
)


def make_host():
    return HostSystem(SsdConfig.small(blocks=128, pages_per_block=16), NoBgcPolicy())


def test_synthetic_respects_direct_fraction():
    host = make_host()
    metrics = MetricsCollector(host, "synthetic")
    workload = SyntheticWorkload(
        host, metrics, Region(0, 512),
        direct_fraction=1.0, write_fraction=1.0, think_ns=1000,
        burst_ops=64, idle_ns=0,
    )
    workload.start()
    host.run_for(2 * SECOND)
    workload.stop()
    assert host.dispatcher.stats.buffered_bytes == 0
    assert host.dispatcher.stats.direct_bytes > 0


def test_synthetic_validation():
    host = make_host()
    metrics = MetricsCollector(host, "synthetic")
    with pytest.raises(ValueError):
        SyntheticWorkload(host, metrics, Region(0, 512), direct_fraction=1.5)
    with pytest.raises(ValueError):
        SyntheticWorkload(host, metrics, Region(0, 512), min_pages=3, max_pages=2)


def test_trace_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(0, "chmod", 0, 1)
    with pytest.raises(ValueError):
        TraceRecord(-1, "read", 0, 1)
    with pytest.raises(ValueError):
        TraceRecord(0, "write", 0, 0)


def test_trace_save_load_roundtrip(tmp_path):
    records = [
        TraceRecord(0, "write", 10, 4, direct=True),
        TraceRecord(1000, "read", 10, 4),
        TraceRecord(2000, "trim", 10, 4),
    ]
    path = tmp_path / "trace.csv"
    assert save_trace(records, path) == 3
    loaded = load_trace(path)
    assert loaded == records


def test_recorder_captures_dispatcher_traffic(tmp_path):
    host = make_host()
    recorder = TraceRecorder(host.dispatcher, host.sim)
    host.dispatcher.write(5, 2, direct=True)
    host.dispatcher.read(5, 2)
    host.dispatcher.trim(5, 2)
    host.run_for(SECOND)
    recorder.detach()
    host.dispatcher.write(9, 1, direct=True)  # after detach: not recorded
    ops = [(r.op, r.lpn, r.pages, r.direct) for r in recorder.records]
    assert ops == [("write", 5, 2, True), ("read", 5, 2, False), ("trim", 5, 2, False)]


def test_trace_replay_reproduces_traffic():
    # Record a synthetic run ...
    host1 = make_host()
    recorder = TraceRecorder(host1.dispatcher, host1.sim)
    metrics1 = MetricsCollector(host1, "synthetic")
    workload = SyntheticWorkload(
        host1, metrics1, Region(0, 512), think_ns=10_000, burst_ops=32, idle_ns=0
    )
    workload.start()
    host1.run_for(SECOND)
    workload.stop()
    recorder.detach()
    assert recorder.records

    # ... and replay it on a fresh host: byte-identical write traffic.
    host2 = make_host()
    metrics2 = MetricsCollector(host2, "trace")
    replay = TraceWorkload(host2, metrics2, Region(0, 512), recorder.records)
    replay.start()
    host2.run_for(5 * SECOND)
    s1, s2 = host1.dispatcher.stats, host2.dispatcher.stats
    assert s2.buffered_bytes == s1.buffered_bytes
    assert s2.direct_bytes == s1.direct_bytes
