"""Tests for the six benchmark models: they run, touch only their
region, and produce roughly the paper's Table 1 write mix."""

import pytest

from repro.core.policies import NoBgcPolicy, lazy_bgc_policy
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import BENCHMARKS, Region


def run_workload(name, seconds=25, blocks=256, ppb=32, **kwargs):
    host = HostSystem(SsdConfig.small(blocks=blocks, pages_per_block=ppb), lazy_bgc_policy())
    working_set = host.user_pages // 2
    host.prefill(working_set)
    metrics = MetricsCollector(host, name)
    workload = BENCHMARKS[name](host, metrics, Region(0, working_set), **kwargs)
    workload.start()
    host.run_for(seconds * SECOND)
    workload.stop()
    return host, metrics, workload


def test_registry_matches_paper_order():
    assert list(BENCHMARKS) == [
        "YCSB",
        "Postmark",
        "Filebench",
        "Bonnie++",
        "Tiobench",
        "TPC-C",
    ]


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_benchmark_completes_operations(name):
    host, metrics, _ = run_workload(name)
    assert metrics.iops_meter.total_ops > 50, f"{name} barely ran"


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_benchmark_write_mix_tracks_table1(name):
    host, metrics, workload = run_workload(name)
    measured = host.dispatcher.stats.buffered_fraction()
    expected = workload.paper_buffered_fraction
    assert measured == pytest.approx(expected, abs=0.15), (
        f"{name}: buffered fraction {measured:.3f} vs paper {expected:.3f}"
    )


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_benchmark_stays_in_region(name):
    """No write may escape the working-set region (Cused stays put)."""
    host, _, _ = run_workload(name, seconds=15)
    working_set = host.user_pages // 2
    assert host.ftl.used_pages() <= working_set + 1


def test_ycsb_zipf_concentrates_updates():
    host, _, workload = run_workload("YCSB", seconds=15)
    # The hottest record saw far more traffic than a cold one; probe the
    # mapping: hot LPNs were remapped many times -> their region blocks
    # accumulated garbage.  Weak but structural check:
    assert workload.num_records > 0
    assert host.ftl.stats.host_pages_written > 0


def test_tpcc_is_essentially_all_direct():
    host, _, _ = run_workload("TPC-C", seconds=15)
    assert host.dispatcher.stats.buffered_fraction() < 0.02


def test_postmark_deletes_produce_trims():
    host, _, _ = run_workload("Postmark", seconds=25)
    assert host.ftl.stats.pages_trimmed > 0


def test_tiobench_requires_two_threads():
    host = HostSystem(SsdConfig.small(blocks=128, pages_per_block=16), NoBgcPolicy())
    metrics = MetricsCollector(host, "Tiobench")
    with pytest.raises(ValueError):
        BENCHMARKS["Tiobench"](host, metrics, Region(0, 512), threads=1)


def test_workload_stop_kills_actors():
    host, metrics, workload = run_workload("YCSB", seconds=5)
    ops = metrics.iops_meter.total_ops
    host.run_for(5 * SECOND)
    assert metrics.iops_meter.total_ops == ops  # nothing after stop
