"""Tests for the integer-nanosecond time base."""

import pytest

from repro.sim.simtime import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_time,
    ns_from_seconds,
    seconds_from_ns,
)


def test_unit_ratios():
    assert MICROSECOND == 1000 * NANOSECOND
    assert MILLISECOND == 1000 * MICROSECOND
    assert SECOND == 1000 * MILLISECOND


def test_ns_from_seconds_exact():
    assert ns_from_seconds(1) == SECOND
    assert ns_from_seconds(0.5) == SECOND // 2
    assert ns_from_seconds(0) == 0


def test_ns_from_seconds_rounds():
    assert ns_from_seconds(1e-9) == 1
    assert ns_from_seconds(1.4e-9) == 1
    assert ns_from_seconds(1.6e-9) == 2


def test_seconds_from_ns_roundtrip():
    assert seconds_from_ns(SECOND) == 1.0
    assert seconds_from_ns(ns_from_seconds(2.25)) == pytest.approx(2.25)


@pytest.mark.parametrize(
    "ticks,expected",
    [
        (0, "0 ns"),
        (999, "999 ns"),
        (1000, "1.000 us"),
        (1_500_000, "1.500 ms"),
        (2 * SECOND, "2.000 s"),
    ],
)
def test_format_time_units(ticks, expected):
    assert format_time(ticks) == expected


def test_format_time_negative():
    assert format_time(-1500) == "-1.500 us"
