"""Tests for the simulator event loop: ordering, cancellation, run_until."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventPriority


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending() == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append("c"))
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_fifo_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(5, lambda l=label: fired.append(l))
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append("control"), priority=EventPriority.CONTROL)
    sim.schedule(5, lambda: fired.append("device"), priority=EventPriority.DEVICE)
    sim.run()
    assert fired == ["device", "control"]


def test_callback_sees_its_own_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def first():
        fired.append(("first", sim.now))
        sim.schedule(8, lambda: fired.append(("second", sim.now)))

    sim.schedule(2, first)
    sim.run()
    assert fired == [("first", 2), ("second", 10)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(5, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(20, lambda: fired.append(20))
    sim.run_until(15)
    assert fired == [10]
    assert sim.now == 15
    sim.run_until(25)
    assert fired == [10, 20]
    assert sim.now == 25


def test_run_until_inclusive_of_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(15, lambda: fired.append(15))
    sim.run_until(15)
    assert fired == [15]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(50)


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: fired.append(1))
    sim.schedule(2, sim.stop)
    sim.schedule(3, lambda: fired.append(3))
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(i + 1, lambda i=i: fired.append(i))
    dispatched = sim.run(max_events=3)
    assert dispatched == 3
    assert fired == [0, 1, 2]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    first.cancel()
    assert sim.peek_time() == 9


def test_dispatched_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.dispatched == 4


def test_pending_is_live_count_through_cancel_and_dispatch():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(4)]
    assert sim.pending() == 4
    events[0].cancel()
    events[0].cancel()  # idempotent: must not double-decrement
    assert sim.pending() == 3
    sim.run()
    assert sim.pending() == 0


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    event = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run(max_events=1)
    event.cancel()  # already fired: must not corrupt the live count
    assert sim.pending() == 1
    assert sim.peek_time() == 2


def test_peek_time_pops_cancelled_heads_lazily():
    sim = Simulator()
    head = [sim.schedule(i + 1, lambda: None) for i in range(3)]
    survivor = sim.schedule(10, lambda: None)
    for event in head:
        event.cancel()
    assert sim.peek_time() == 10
    assert sim.pending() == 1
    sim.run()
    assert sim.now == survivor.time


def test_peek_time_none_when_every_event_cancelled():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(3)]
    for event in events:
        event.cancel()
    assert sim.peek_time() is None
    assert sim.pending() == 0
    assert sim.run() == 0


def test_cancel_then_reschedule_fires_only_replacement():
    sim = Simulator()
    fired = []
    stale = sim.schedule(5, lambda: fired.append("stale"))
    stale.cancel()
    replacement = sim.schedule(5, lambda: fired.append("fresh"))
    assert sim.pending() == 1
    assert sim.peek_time() == 5
    sim.run()
    assert fired == ["fresh"]
    assert sim.now == replacement.time
    assert sim.pending() == 0


def test_on_cancel_hook_detached_after_fire_and_after_cancel():
    # The engine's live-count hook must not stay reachable from events a
    # component keeps around after they fired or were cancelled.
    sim = Simulator()
    fired_event = sim.schedule(1, lambda: None)
    cancelled_event = sim.schedule(2, lambda: None)
    assert fired_event._on_cancel is not None
    sim.run(max_events=1)
    assert fired_event._on_cancel is None
    cancelled_event.cancel()
    assert cancelled_event._on_cancel is None
    cancelled_event.cancel()  # idempotent with the hook already gone
    assert sim.pending() == 0
