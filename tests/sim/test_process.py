"""Tests for generator-based processes (Timeout / WaitFor semantics)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, ProcessExit, Timeout, WaitFor


def test_timeout_sequencing():
    sim = Simulator()
    trace = []

    def actor():
        trace.append(("start", sim.now))
        yield Timeout(10)
        trace.append(("mid", sim.now))
        yield Timeout(5)
        trace.append(("end", sim.now))

    Process(sim, actor()).start()
    sim.run()
    assert trace == [("start", 0), ("mid", 10), ("end", 15)]


def test_start_delay():
    sim = Simulator()
    trace = []

    def actor():
        trace.append(sim.now)
        yield Timeout(1)

    Process(sim, actor()).start(delay=7)
    sim.run()
    assert trace == [7]


def test_waitfor_blocks_until_woken():
    sim = Simulator()
    trace = []
    waiter = WaitFor()

    def actor():
        result = yield waiter
        trace.append((sim.now, result))

    Process(sim, actor()).start()
    sim.schedule(25, lambda: waiter.wake("payload"))
    sim.run()
    assert trace == [(25, "payload")]


def test_waitfor_woken_before_yield():
    """Completion may land before the process parks; value must not be lost."""
    sim = Simulator()
    trace = []
    waiter = WaitFor()
    waiter.wake(99)

    def actor():
        result = yield waiter
        trace.append(result)

    Process(sim, actor()).start()
    sim.run()
    assert trace == [99]


def test_waitfor_double_wake_raises():
    waiter = WaitFor()
    waiter.wake()
    with pytest.raises(RuntimeError):
        waiter.wake()


def test_process_finishes_and_callback():
    sim = Simulator()
    exited = []

    def actor():
        yield Timeout(1)

    proc = Process(sim, actor(), on_exit=exited.append)
    proc.start()
    sim.run()
    assert proc.finished
    assert exited == [proc]


def test_kill_stops_process():
    sim = Simulator()
    trace = []

    def actor():
        try:
            while True:
                yield Timeout(10)
                trace.append(sim.now)
        except ProcessExit:
            trace.append("killed")
            raise

    proc = Process(sim, actor()).start()
    sim.run_until(35)
    proc.kill()
    sim.run()
    assert trace == [10, 20, 30, "killed"]
    assert proc.finished


def test_double_start_rejected():
    sim = Simulator()

    def actor():
        yield Timeout(1)

    proc = Process(sim, actor())
    proc.start()
    with pytest.raises(RuntimeError):
        proc.start()


def test_bad_yield_type_raises():
    sim = Simulator()

    def actor():
        yield "nonsense"

    Process(sim, actor()).start()
    with pytest.raises(TypeError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def actor(name, period):
        for _ in range(3):
            yield Timeout(period)
            trace.append((name, sim.now))

    Process(sim, actor("a", 10)).start()
    Process(sim, actor("b", 15)).start()
    sim.run()
    # At t=30 both fire; b's timeout was scheduled earlier (t=15 vs t=20)
    # so FIFO tie-breaking runs b first.
    assert trace == [
        ("a", 10),
        ("b", 15),
        ("a", 20),
        ("b", 30),
        ("a", 30),
        ("b", 45),
    ]
