"""Tests for Event ordering semantics."""

from repro.sim.events import Event, EventPriority


def make(time, priority=EventPriority.NORMAL, seq=0):
    return Event(time=time, priority=int(priority), seq=seq, callback=lambda: None)


def test_time_dominates():
    assert make(1, EventPriority.LOW, 99) < make(2, EventPriority.DEVICE, 0)


def test_priority_breaks_time_ties():
    assert make(5, EventPriority.DEVICE, 9) < make(5, EventPriority.CONTROL, 0)


def test_seq_breaks_full_ties():
    assert make(5, EventPriority.NORMAL, 1) < make(5, EventPriority.NORMAL, 2)


def test_priority_ordering_constants():
    assert (
        EventPriority.DEVICE
        < EventPriority.NORMAL
        < EventPriority.CONTROL
        < EventPriority.LOW
    )


def test_cancel_flag():
    event = make(1)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled


def test_sort_key_shape():
    event = make(7, EventPriority.CONTROL, 3)
    assert event.sort_key() == (7, EventPriority.CONTROL, 3)
