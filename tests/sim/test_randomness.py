"""Tests for named, independently seeded random streams."""

from repro.sim.randomness import RandomStreams


def test_same_name_same_stream_object():
    streams = RandomStreams(7)
    assert streams.python("a") is streams.python("a")
    assert streams.numpy("a") is streams.numpy("a")


def test_reproducible_across_instances():
    first = RandomStreams(7).python("workload").random()
    second = RandomStreams(7).python("workload").random()
    assert first == second


def test_different_names_independent():
    streams = RandomStreams(7)
    a = [streams.python("a").random() for _ in range(5)]
    b = [streams.python("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).python("x").random()
    b = RandomStreams(2).python("x").random()
    assert a != b


def test_construction_order_does_not_matter():
    """Adding streams must not perturb existing ones (A/B comparability)."""
    one = RandomStreams(42)
    one.python("early")
    value_before = one.python("late").random()

    two = RandomStreams(42)
    value_direct = two.python("late").random()
    assert value_before == value_direct


def test_numpy_streams_reproducible():
    a = RandomStreams(5).numpy("n").integers(0, 1000, size=10)
    b = RandomStreams(5).numpy("n").integers(0, 1000, size=10)
    assert (a == b).all()


def test_fork_is_independent_and_stable():
    parent = RandomStreams(9)
    child_a = parent.fork("child")
    child_b = RandomStreams(9).fork("child")
    assert child_a.python("s").random() == child_b.python("s").random()
    assert child_a.python("s") is not parent.python("s")
