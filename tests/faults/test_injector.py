"""Tests for the fault injector: profiles, determinism, wear coupling."""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    resolve_fault_profile,
)


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_profile_rejects_out_of_range_probabilities():
    with pytest.raises(ValueError):
        FaultProfile(program_fail_prob=1.5)
    with pytest.raises(ValueError):
        FaultProfile(erase_fail_prob=-0.1)
    with pytest.raises(ValueError):
        FaultProfile(wear_onset_pe=0)
    with pytest.raises(ValueError):
        FaultProfile(retention_s=-1.0)


def test_preset_catalogue():
    assert set(FAULT_PROFILES) == {"none", "light", "heavy", "wearout"}
    assert not FAULT_PROFILES["none"].enabled
    assert FAULT_PROFILES["light"].enabled
    assert FAULT_PROFILES["heavy"].enabled
    assert FAULT_PROFILES["wearout"].wear_driven


def test_resolve_fault_profile():
    assert resolve_fault_profile(None) is FAULT_PROFILES["none"]
    assert resolve_fault_profile("heavy") is FAULT_PROFILES["heavy"]
    custom = FaultProfile(program_fail_prob=0.1)
    assert resolve_fault_profile(custom) is custom
    with pytest.raises(KeyError):
        resolve_fault_profile("no-such-profile")
    with pytest.raises(TypeError):
        resolve_fault_profile(3.14)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def _drive(injector, ops=2000):
    """A fixed operation sequence; returns the resulting fault log."""
    for i in range(ops):
        injector.program_fails(i % 32, i % 4, pe_cycles=i % 100)
        injector.read_uncorrectable(i % 32, i % 4, pe_cycles=i % 100)
        if i % 7 == 0:
            injector.erase_fails(i % 32, pe_cycles=i % 100)
    return list(injector.fault_log)


def test_same_seed_same_fault_sequence():
    profile = FaultProfile(
        program_fail_prob=0.01, erase_fail_prob=0.02, read_uncorrectable_prob=0.005
    )
    a = _drive(FaultInjector(profile, seed=123))
    b = _drive(FaultInjector(profile, seed=123))
    assert a == b
    assert a  # the rates above must actually fire over 2000 ops


def test_different_seed_different_sequence():
    profile = FaultProfile(program_fail_prob=0.01, read_uncorrectable_prob=0.01)
    a = _drive(FaultInjector(profile, seed=1))
    b = _drive(FaultInjector(profile, seed=2))
    assert a != b


def test_categories_draw_from_independent_streams():
    """Enabling reads must not perturb the program-fault sequence."""
    program_only = FaultProfile(program_fail_prob=0.01)
    both = FaultProfile(program_fail_prob=0.01, read_uncorrectable_prob=0.05)
    a = _drive(FaultInjector(program_only, seed=9))
    b = _drive(FaultInjector(both, seed=9))
    programs_a = [entry for entry in a if entry[0] == "program"]
    programs_b = [entry for entry in b if entry[0] == "program"]
    assert programs_a == programs_b


def test_counters_match_log():
    profile = FaultProfile(program_fail_prob=0.02, erase_fail_prob=0.02)
    injector = FaultInjector(profile, seed=5)
    log = _drive(injector)
    assert injector.total_faults() == len(log)
    assert injector.program_faults == sum(1 for e in log if e[0] == "program")
    assert injector.erase_faults == sum(1 for e in log if e[0] == "erase")


def test_fault_log_is_capped():
    injector = FaultInjector(FaultProfile(program_fail_prob=1.0), seed=0, log_limit=10)
    for i in range(50):
        assert injector.program_fails(0, i, pe_cycles=0)
    assert len(injector.fault_log) == 10
    assert injector.program_faults == 50


# ----------------------------------------------------------------------
# Wear coupling
# ----------------------------------------------------------------------
def test_wear_scaling_raises_program_fail_probability():
    profile = FaultProfile(
        program_fail_prob=1e-4, wear_driven=True, wear_onset_pe=100, wear_fail_scale=0.5
    )
    injector = FaultInjector(profile, seed=0)
    fresh = injector._wear_scaled(profile.program_fail_prob, pe_cycles=50)
    worn = injector._wear_scaled(profile.program_fail_prob, pe_cycles=400)
    assert fresh == profile.program_fail_prob
    assert worn > fresh
    assert injector._wear_scaled(profile.program_fail_prob, pe_cycles=10**9) <= 1.0


def test_wear_driven_read_probability_monotonic_in_wear():
    profile = FaultProfile(wear_driven=True, retention_s=2_500_000.0)
    injector = FaultInjector(profile, seed=0)
    fresh = injector._wear_read_prob(0)
    worn = injector._wear_read_prob(30_000)
    assert 0.0 <= fresh <= worn <= 1.0
