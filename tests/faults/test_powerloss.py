"""Tests for SPO planning and the power-loss emulator."""

import pytest

from repro.core.policies import lazy_bgc_policy
from repro.faults.powerloss import PowerLossEmulator, SpoPlan
from repro.host import HostSystem
from repro.nand.array import OOB_UNSTAMPED
from repro.sim.engine import SimulationError
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig


# ----------------------------------------------------------------------
# SpoPlan
# ----------------------------------------------------------------------
def test_plan_validation():
    with pytest.raises(ValueError):
        SpoPlan(at_ns=(-1,))
    with pytest.raises(ValueError):
        SpoPlan(random_cuts=-1)
    with pytest.raises(ValueError):
        SpoPlan(every_k_events=0)


def test_plan_enabled():
    assert not SpoPlan().enabled
    assert SpoPlan(at_ns=(5,)).enabled
    assert SpoPlan(random_cuts=2).enabled
    assert not SpoPlan(every_k_events=64).enabled  # sweep mode, no live cut


def test_cut_times_sorted_deduped_and_deterministic():
    plan = SpoPlan(at_ns=(900, 100, 100), random_cuts=4, seed=3)
    times = plan.cut_times(0, 1_000_000)
    assert times == sorted(set(times))
    assert {100, 900} <= set(times)
    assert len([t for t in times if t not in (100, 900)]) == 4
    assert times == SpoPlan(at_ns=(900, 100, 100), random_cuts=4, seed=3).cut_times(
        0, 1_000_000
    )
    assert times != SpoPlan(at_ns=(900, 100), random_cuts=4, seed=4).cut_times(
        0, 1_000_000
    )


def test_random_cuts_need_a_window():
    with pytest.raises(ValueError):
        SpoPlan(random_cuts=1).cut_times(10, 10)
    assert SpoPlan(at_ns=(5,)).cut_times(10, 10) == [5]


# ----------------------------------------------------------------------
# PowerLossEmulator
# ----------------------------------------------------------------------
def _small_host():
    config = SsdConfig.small(blocks=32, pages_per_block=8)
    host = HostSystem(config, lazy_bgc_policy(), seed=1)
    host.prefill(host.user_pages // 2)
    return host


def test_cut_power_tears_frontiers_and_kills_the_queue():
    host = _small_host()
    host.run_for(SECOND)
    ftl = host.ftl
    user_block = ftl.active_user_block
    frontier_page = int(ftl.nand.program_ptr[user_block])
    emulator = PowerLossEmulator()
    cut = emulator.cut_power(host)

    assert cut.t_ns == host.sim.now
    assert cut.durable is not None
    # The flusher (at minimum) had an event pending on the rail.
    assert cut.events_dropped >= 1
    assert (user_block, frontier_page) in cut.torn
    assert len(cut.torn) <= 2
    # The torn page is consumed but unstamped on the captured image.
    ppn = user_block * host.config.geometry.pages_per_block + frontier_page
    assert cut.durable.program_ptr[user_block] == frontier_page + 1
    assert cut.durable.oob_seq[ppn] == OOB_UNSTAMPED
    assert emulator.cuts == [cut]
    # The dead simulator refuses further scheduling.
    with pytest.raises(SimulationError):
        host.run_for(SECOND)


def test_cut_without_tearing_models_quiescent_cut():
    host = _small_host()
    emulator = PowerLossEmulator(tear_frontiers=False)
    cut = emulator.cut_power(host)
    assert cut.torn == []
    assert cut.durable.torn_pages == 0


def test_resume_at_restores_the_timeline():
    host = _small_host()
    emulator = PowerLossEmulator()
    cut = emulator.cut_power(host)
    resumed = HostSystem(
        host.config,
        lazy_bgc_policy(),
        seed=2,
        start_time_ns=cut.t_ns + 123,
    )
    assert resumed.sim.now == cut.t_ns + 123
    resumed.run_for(SECOND)
    assert resumed.sim.now == cut.t_ns + 123 + SECOND
