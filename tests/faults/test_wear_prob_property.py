"""Property test: the injector's wear-read cache vs the exact ECC tail.

:meth:`FaultInjector._wear_read_prob` buckets wear to 64 P/E cycles and
caches one page-failure probability per bucket.  The stated tolerance of
that approximation: it must equal :meth:`EccConfig.page_failure_probability`
*exactly* at the bucket floor, and bracket the exact value at any P/E
count inside the bucket from below (RBER -- hence the binomial tail --
is monotone in wear, so flooring can only under-estimate, never
over-estimate, and by no more than the next bucket boundary's value).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injector import FaultInjector, FaultProfile

BUCKET = 64  # matches FaultInjector's pe_cycles >> 6 quantisation


def make_injector(retention_s: float) -> FaultInjector:
    profile = FaultProfile(wear_driven=True, retention_s=retention_s)
    return FaultInjector(profile, seed=1)


@settings(max_examples=60, deadline=None)
@given(
    pe=st.integers(min_value=0, max_value=6000),
    retention_s=st.floats(
        min_value=0.0, max_value=5e6, allow_nan=False, allow_infinity=False
    ),
)
def test_wear_read_prob_matches_exact_tail_at_bucket_floor(pe, retention_s):
    injector = make_injector(retention_s)
    approx = injector._wear_read_prob(pe)
    floor = (pe // BUCKET) * BUCKET
    exact_floor = injector.ecc.page_failure_probability(
        injector.bit_error_model.rber(floor, retention_s=retention_s)
    )
    # Equality, not approximation: the cache IS the exact tail at the floor.
    assert approx == exact_floor


@settings(max_examples=60, deadline=None)
@given(
    pe=st.integers(min_value=0, max_value=6000),
    retention_s=st.floats(
        min_value=0.0, max_value=5e6, allow_nan=False, allow_infinity=False
    ),
)
def test_wear_read_prob_brackets_exact_tail_from_below(pe, retention_s):
    injector = make_injector(retention_s)
    approx = injector._wear_read_prob(pe)
    bem, ecc = injector.bit_error_model, injector.ecc
    exact_here = ecc.page_failure_probability(bem.rber(pe, retention_s=retention_s))
    exact_next = ecc.page_failure_probability(
        bem.rber((pe // BUCKET + 1) * BUCKET, retention_s=retention_s)
    )
    # Monotone in wear: floor value <= exact <= next bucket boundary.
    assert approx <= exact_here <= exact_next
    assert 0.0 <= approx <= 1.0


@settings(max_examples=40, deadline=None)
@given(pe=st.integers(min_value=0, max_value=6000))
def test_wear_read_prob_cache_is_stable_and_seed_independent(pe):
    a = make_injector(2_500_000.0)
    b = make_injector(2_500_000.0)
    first = a._wear_read_prob(pe)
    # Cached second call and an independent injector agree exactly: the
    # probability is analytic, not drawn from the fault RNG streams.
    assert a._wear_read_prob(pe) == first
    assert b._wear_read_prob(pe) == first


def test_wear_read_prob_monotone_across_bucket_grid():
    injector = make_injector(1_000_000.0)
    grid = [injector._wear_read_prob(pe) for pe in range(0, 50_001, 8 * BUCKET)]
    assert grid == sorted(grid)
    # The wearout regime actually moves: fresh ~0, deep wear decidedly not.
    assert grid[0] < 1e-6
    assert grid[-1] > 1e-3
