"""Deterministic, seed-reproducible NAND fault injection.

The paper's lifetime argument hinges on wear: JIT-GC wins because it
avoids unnecessary P/E cycles, and P/E cycles matter because worn blocks
eventually *fail*.  :class:`FaultInjector` turns that failure process
into live events on the simulated I/O path: program status-fails, erase
fails and ECC-uncorrectable reads, either at fixed per-operation rates or
driven by per-block wear through the analytic
:class:`~repro.nand.reliability.BitErrorModel` /
:class:`~repro.nand.reliability.EccConfig` pair.

Determinism is load-bearing.  Each fault category draws from its own
seeded :class:`numpy.random.Generator`, so

* two runs with the same seed and the same operation sequence inject a
  byte-identical fault sequence (asserted by tests and logged via
  :attr:`FaultInjector.fault_log`), and
* enabling or disabling one category never perturbs the draws seen by
  another (per-category streams, as in :class:`repro.sim.randomness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nand.reliability import BitErrorModel, EccConfig
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class FaultProfile:
    """Per-scenario fault configuration (all probabilities per operation).

    Attributes:
        program_fail_prob: chance one page program status-fails.
        erase_fail_prob: chance one block erase fails.
        read_uncorrectable_prob: chance one page read exceeds ECC
            (ignored when ``wear_driven`` is set).
        read_retry_success_prob: chance each read-retry attempt recovers
            an uncorrectable read (voltage-shifted re-sense).
        wear_driven: derive the uncorrectable-read probability from the
            block's P/E count via ``bit_error_model``/``ecc`` instead of
            the flat rate, and scale program/erase fail rates linearly in
            wear past ``wear_onset_pe`` cycles.
        wear_onset_pe: P/E count where wear starts scaling the
            program/erase fail rates.
        wear_fail_scale: added program/erase fail probability per full
            ``wear_onset_pe`` of cycles past the onset.
        retention_s: retention age fed to the bit-error model (the worst
            case the ECC must handle, not tracked per page).
    """

    program_fail_prob: float = 0.0
    erase_fail_prob: float = 0.0
    read_uncorrectable_prob: float = 0.0
    read_retry_success_prob: float = 0.75
    wear_driven: bool = False
    wear_onset_pe: int = 1000
    wear_fail_scale: float = 1e-3
    retention_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "program_fail_prob",
            "erase_fail_prob",
            "read_uncorrectable_prob",
            "read_retry_success_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.wear_onset_pe <= 0:
            raise ValueError(f"wear_onset_pe must be positive, got {self.wear_onset_pe}")
        if self.wear_fail_scale < 0:
            raise ValueError(f"wear_fail_scale must be >= 0, got {self.wear_fail_scale}")
        if self.retention_s < 0:
            raise ValueError(f"retention_s must be >= 0, got {self.retention_s}")

    @property
    def enabled(self) -> bool:
        """True when the profile can ever inject a fault."""
        return (
            self.wear_driven
            or self.program_fail_prob > 0
            or self.erase_fail_prob > 0
            or self.read_uncorrectable_prob > 0
        )


#: Named presets for the CLI's ``--faults`` flag and sweep scenarios.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    # A handful of faults over a short measured run: every recovery path
    # exercises without materially moving IOPS/WAF.
    "light": FaultProfile(
        program_fail_prob=2e-4,
        erase_fail_prob=2e-4,
        read_uncorrectable_prob=5e-5,
    ),
    # Aggressive rates that visibly erode OP during a normal run.
    "heavy": FaultProfile(
        program_fail_prob=2e-3,
        erase_fail_prob=5e-3,
        read_uncorrectable_prob=5e-4,
        read_retry_success_prob=0.5,
    ),
    # Reliability coupled to wear through the analytic RBER/ECC models:
    # a fresh device injects almost nothing; a cycled one degrades.
    "wearout": FaultProfile(
        program_fail_prob=1e-5,
        erase_fail_prob=1e-5,
        wear_driven=True,
        wear_onset_pe=500,
        wear_fail_scale=5e-3,
        retention_s=2_500_000.0,
    ),
}


def resolve_fault_profile(profile) -> FaultProfile:
    """Accept a :class:`FaultProfile`, a preset name, or ``None``."""
    if profile is None:
        return FAULT_PROFILES["none"]
    if isinstance(profile, FaultProfile):
        return profile
    if isinstance(profile, str):
        try:
            return FAULT_PROFILES[profile]
        except KeyError:
            raise KeyError(
                f"unknown fault profile {profile!r}; known: {sorted(FAULT_PROFILES)}"
            ) from None
    raise TypeError(f"cannot resolve fault profile from {type(profile).__name__}")


class FaultInjector:
    """Decides, per NAND operation, whether an injected fault occurs.

    The :class:`~repro.nand.array.NandArray` consults it on every read,
    program and erase, passing the target block's current P/E count so
    wear-driven profiles can couple failure rates to the block's life
    history.

    Args:
        profile: rates / wear coupling.
        seed: root seed; category streams derive from it.
        bit_error_model: RBER model for ``wear_driven`` profiles.
        ecc: ECC strength for ``wear_driven`` profiles.
        log_limit: cap on :attr:`fault_log` entries (determinism checks
            only need a prefix; unbounded logs would grow with the run).
    """

    #: "meta" (metadata-region programs/erases) is appended last:
    #: ``SeedSequence.spawn`` is prefix-stable, so adding the category
    #: left every pre-existing stream -- and therefore every recorded
    #: user-operation fault sequence -- byte-identical.
    _CATEGORIES = ("program", "erase", "read", "retry", "meta")

    def __init__(
        self,
        profile: FaultProfile,
        seed: int = 0,
        bit_error_model: Optional[BitErrorModel] = None,
        ecc: Optional[EccConfig] = None,
        log_limit: int = 4096,
    ) -> None:
        self.profile = profile
        self.seed = int(seed)
        self.bit_error_model = bit_error_model or BitErrorModel()
        self.ecc = ecc or EccConfig()
        self.log_limit = log_limit

        ss = np.random.SeedSequence(self.seed)
        children = ss.spawn(len(self._CATEGORIES))
        self._rngs: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(self._CATEGORIES, children)
        }

        #: Injected-fault counters by category.
        self.program_faults = 0
        self.erase_faults = 0
        self.read_faults = 0
        #: Ordered (kind, block, page) record of every injected fault,
        #: capped at ``log_limit`` -- the reproducibility witness.
        self.fault_log: List[Tuple[str, int, int]] = []
        #: Cache of wear-driven page-failure probabilities by P/E bucket
        #: (the binomial tail in EccConfig is too slow per read).
        self._page_fail_cache: Dict[int, float] = {}
        #: Sim-time tracer; replaced by Observability.install when tracing.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Per-operation decisions
    # ------------------------------------------------------------------
    def program_fails(self, block: int, page: int, pe_cycles: int) -> bool:
        prob = self._wear_scaled(self.profile.program_fail_prob, pe_cycles)
        if prob <= 0.0:
            return False
        if self._rngs["program"].random() >= prob:
            return False
        self.program_faults += 1
        self._log("program", block, page)
        return True

    def erase_fails(self, block: int, pe_cycles: int) -> bool:
        prob = self._wear_scaled(self.profile.erase_fail_prob, pe_cycles)
        if prob <= 0.0:
            return False
        if self._rngs["erase"].random() >= prob:
            return False
        self.erase_faults += 1
        self._log("erase", block, -1)
        return True

    def read_uncorrectable(self, block: int, page: int, pe_cycles: int) -> bool:
        if self.profile.wear_driven:
            prob = self._wear_read_prob(pe_cycles)
        else:
            prob = self.profile.read_uncorrectable_prob
        if prob <= 0.0:
            return False
        if self._rngs["read"].random() >= prob:
            return False
        self.read_faults += 1
        self._log("read", block, page)
        return True

    def program_batch_clear(self, block: int, count: int, pe_cycles: int) -> bool:
        """Pre-draw the program-fault stream for a ``count``-page batch.

        Returns True when none of the next ``count`` program draws would
        fail, leaving the stream exactly where ``count`` per-page
        :meth:`program_fails` calls would have left it (one uniform per
        page, drawn in the same order -- numpy's ``Generator.random(n)``
        consumes the stream identically to ``n`` scalar draws).

        Returns False when *any* draw in the batch would fail; the stream
        is then **restored to its pre-call state** and no counters or log
        entries are touched, so a per-page replay of the same pages sees
        the same draws and fires (and accounts) the fault at the exact
        per-page point.  ``pe_cycles`` is the block's current P/E count;
        it is constant across a batch because programs never erase.
        """
        prob = self._wear_scaled(self.profile.program_fail_prob, pe_cycles)
        if prob <= 0.0:
            return True
        rng = self._rngs["program"]
        state = rng.bit_generator.state
        if bool((rng.random(count) < prob).any()):
            rng.bit_generator.state = state
            return False
        return True

    def meta_program_fails(self, block: int, page: int, pe_cycles: int) -> bool:
        """Program-fault draw for a metadata-region page.

        Same rates and wear coupling as user programs, but drawn from
        the dedicated "meta" stream: metadata traffic (checkpoints,
        tombstone journals) must not perturb the fault sequence user
        operations see, or runs differing only in checkpoint cadence
        would stop replaying identical user faults.
        """
        prob = self._wear_scaled(self.profile.program_fail_prob, pe_cycles)
        if prob <= 0.0:
            return False
        if self._rngs["meta"].random() >= prob:
            return False
        self.program_faults += 1
        self._log("meta-program", block, page)
        return True

    def meta_erase_fails(self, block: int, pe_cycles: int) -> bool:
        """Erase-fault draw for a metadata-region block ("meta" stream)."""
        prob = self._wear_scaled(self.profile.erase_fail_prob, pe_cycles)
        if prob <= 0.0:
            return False
        if self._rngs["meta"].random() >= prob:
            return False
        self.erase_faults += 1
        self._log("meta-erase", block, -1)
        return True

    def read_retry_succeeds(self) -> bool:
        """One voltage-shifted re-read attempt; True when it recovers."""
        prob = self.profile.read_retry_success_prob
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        return bool(self._rngs["retry"].random() < prob)

    # ------------------------------------------------------------------
    def total_faults(self) -> int:
        return self.program_faults + self.erase_faults + self.read_faults

    def _log(self, kind: str, block: int, page: int) -> None:
        if len(self.fault_log) < self.log_limit:
            self.fault_log.append((kind, block, page))
        if self.tracer.enabled:
            self.tracer.emit(
                "faults", f"fault.inject.{kind}", block=block, page=page
            )

    def _wear_scaled(self, base: float, pe_cycles: int) -> float:
        if not self.profile.wear_driven or pe_cycles <= self.profile.wear_onset_pe:
            return base
        excess = (pe_cycles - self.profile.wear_onset_pe) / self.profile.wear_onset_pe
        return min(1.0, base + excess * self.profile.wear_fail_scale)

    def _wear_read_prob(self, pe_cycles: int) -> float:
        # Bucket P/E counts so the expensive binomial tail is evaluated
        # once per ~64 cycles of wear rather than once per read.
        bucket = pe_cycles >> 6
        prob = self._page_fail_cache.get(bucket)
        if prob is None:
            rber = self.bit_error_model.rber(
                bucket << 6, retention_s=self.profile.retention_s
            )
            prob = self.ecc.page_failure_probability(rber)
            self._page_fail_cache[bucket] = prob
        return prob

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector seed={self.seed} prog={self.program_faults} "
            f"erase={self.erase_faults} read={self.read_faults}>"
        )
