"""Sudden-power-off (SPO) emulation.

A power cut is not a NAND-op fault: it kills the whole controller at an
arbitrary simulated instant.  Three things happen, in order:

1. **Torn pages** -- any program in flight on a write frontier is
   interrupted: the page's cells are partially charged (it is consumed
   -- erase-before-write still applies) but its OOB stamp never landed,
   so recovery can detect and discard it
   (:meth:`~repro.nand.array.NandArray.tear_frontier_page`).
2. **Durable capture** -- the media image that survives
   (:meth:`~repro.nand.array.NandArray.capture_durable_state`): block
   states, program pointers, OOB columns, erase counts, the bad-block
   table.  Controller DRAM -- the mapping, indexes, page cache, queued
   I/O -- is gone.
3. **Event-queue drop** -- every pending simulator event dies with the
   rail (:meth:`~repro.sim.engine.Simulator.power_cut`).

SPO composes with the per-operation fault profiles
(none/light/heavy/wearout): the cut is orthogonal to injected media
faults, and a post-recovery phase re-arms a fresh injector over the same
profile.  :class:`SpoPlan` describes *when* cuts happen -- explicitly
scheduled times, N seed-deterministic random times in the measurement
window, or "every k events" for exhaustive crash-point sweeps
(:mod:`repro.experiments.crashsweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.nand.array import NandDurableState


@dataclass(frozen=True)
class SpoPlan:
    """When sudden power-offs strike a run.

    Attributes:
        at_ns: explicitly scheduled cut times (absolute sim ns).
        random_cuts: number of additional uniformly-random cuts drawn in
            the measurement window, seed-deterministically.
        seed: seed for the random cut draws (independent of workload and
            fault-injector streams).
        every_k_events: crash-point sweep stride -- snapshot-and-recover
            at every k-th dispatched event (sweep harness only; not a
            live cut).
    """

    at_ns: Tuple[int, ...] = ()
    random_cuts: int = 0
    seed: int = 0
    every_k_events: Optional[int] = None

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.at_ns):
            raise ValueError(f"cut times must be >= 0, got {self.at_ns}")
        if self.random_cuts < 0:
            raise ValueError(f"random_cuts must be >= 0, got {self.random_cuts}")
        if self.every_k_events is not None and self.every_k_events <= 0:
            raise ValueError(
                f"every_k_events must be positive, got {self.every_k_events}"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.at_ns) or self.random_cuts > 0

    def cut_times(self, window_start_ns: int, window_end_ns: int) -> List[int]:
        """All cut times for one run, ascending and de-duplicated.

        Scheduled times are taken as-is (they may fall outside the
        window); the ``random_cuts`` draws are uniform over
        ``[window_start_ns, window_end_ns)`` from a private seeded
        stream, so the same plan always cuts at the same instants.
        """
        times = [int(t) for t in self.at_ns]
        if self.random_cuts > 0:
            if window_end_ns <= window_start_ns:
                raise ValueError(
                    f"empty random-cut window [{window_start_ns}, {window_end_ns})"
                )
            rng = np.random.default_rng(np.random.SeedSequence(self.seed))
            times.extend(
                int(t)
                for t in rng.integers(
                    window_start_ns, window_end_ns, size=self.random_cuts
                )
            )
        return sorted(set(times))


@dataclass
class PowerCut:
    """Everything a recovery phase needs about one emulated power cut."""

    t_ns: int
    #: ``(block, page)`` frontier pages torn by in-flight programs.
    torn: List[Tuple[int, int]] = field(default_factory=list)
    #: Live simulator events that died with the rail.
    events_dropped: int = 0
    durable: Optional[NandDurableState] = None


class PowerLossEmulator:
    """Cuts power on a live :class:`~repro.host.HostSystem`.

    Stateless except for the cut log; one emulator can cut the same
    timeline repeatedly across sequential recovery phases.
    """

    def __init__(self, tear_frontiers: bool = True) -> None:
        #: Tear the in-flight frontier page of each open write stream.
        #: Disable to model a cut during a quiescent instant.
        self.tear_frontiers = tear_frontiers
        self.cuts: List[PowerCut] = []

    def cut_power(self, host) -> PowerCut:
        """Kill ``host`` at its current simulated instant.

        Tears the active frontiers, captures the durable media image and
        drops the pending event queue.  The host object is dead
        afterwards -- recovery builds a new one from ``cut.durable``.
        """
        ftl = host.ftl
        nand = ftl.nand
        cut = PowerCut(t_ns=host.sim.now)
        if self.tear_frontiers:
            for block in (ftl.active_user_block, ftl.active_gc_block):
                page = nand.tear_frontier_page(block)
                if page is not None:
                    cut.torn.append((block, page))
        cut.durable = nand.capture_durable_state()
        cut.events_dropped = host.sim.power_cut()
        if nand.tracer.enabled:
            nand.tracer.emit(
                "faults",
                "spo.cut",
                torn=len(cut.torn),
                events_dropped=cut.events_dropped,
            )
        self.cuts.append(cut)
        return cut

    def cut_recovery(self, nand, t_ns: int = 0, tear_checkpoint: bool = False) -> PowerCut:
        """Cut power *while a recovery is in progress* on ``nand``.

        The recovery scan itself is read-only, so a cut during it leaves
        the media exactly as the previous cut did -- there is no frontier
        program to tear.  The one mutation recovery may perform is the
        optional post-recovery checkpoint; when ``tear_checkpoint`` is
        set, the newest metadata record (that checkpoint, mid-program
        when the rail died) is torn so the next power-on must fall back
        to the previous generation or a full scan.  Returns the cut with
        the re-captured durable image; there is no live host/simulator to
        kill, so ``events_dropped`` is always 0.
        """
        cut = PowerCut(t_ns=t_ns)
        if tear_checkpoint:
            torn = nand.meta.tear_last()
            if torn is not None:
                # Record the tear in the cut log; meta records live off
                # the user geometry, so flag it with block -1.
                cut.torn.append((-1, torn.pages))
        cut.durable = nand.capture_durable_state()
        if nand.tracer.enabled:
            nand.tracer.emit(
                "faults",
                "spo.cut_recovery",
                torn=len(cut.torn),
                tear_checkpoint=tear_checkpoint,
            )
        self.cuts.append(cut)
        return cut


def cut_during_recovery(
    durable: NandDurableState,
    config,
    seed: int = 0,
    keep_pages: Optional[int] = None,
):
    """Nested-crash harness: recover from ``durable``, cut mid-checkpoint.

    Runs a full recovery (with the post-recovery checkpoint enabled),
    then emulates the rail dying while that checkpoint was programming:
    the newest metadata record is torn to ``keep_pages`` pages (default:
    half).  Returns ``(second_durable, first_report)`` -- the durable
    image a *second* recovery must cope with, and the first recovery's
    report.  ``config`` is duck-typed (needs ``recover_from``) to keep
    this module import-light.
    """
    ftl, report = config.recover_from(durable, seed=seed, post_checkpoint=True)
    ftl.nand.meta.tear_last(keep_pages=keep_pages)
    return ftl.nand.capture_durable_state(), report
