"""Fault injection and recovery support.

* :mod:`repro.faults.injector` -- the deterministic
  :class:`FaultInjector`, the :class:`FaultProfile` configuration and the
  named presets behind the CLI's ``--faults`` flag.
* :mod:`repro.faults.powerloss` -- sudden-power-off emulation: the
  :class:`SpoPlan` schedule, the :class:`PowerLossEmulator` that tears
  frontier pages / captures the durable media image / drops the event
  queue, and the :class:`PowerCut` record recovery consumes.

Recovery itself lives where it belongs: the NAND array raises the
recoverable fault exceptions (:mod:`repro.nand.errors`) and the FTL
(:mod:`repro.ftl.ftl`, :mod:`repro.ftl.recovery`) retries, rewrites,
retires blocks and rebuilds its state after a power cut.
"""

from repro.faults.injector import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    resolve_fault_profile,
)
from repro.faults.powerloss import PowerCut, PowerLossEmulator, SpoPlan

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "resolve_fault_profile",
    "PowerCut",
    "PowerLossEmulator",
    "SpoPlan",
]
