"""Fault injection and recovery support.

* :mod:`repro.faults.injector` -- the deterministic
  :class:`FaultInjector`, the :class:`FaultProfile` configuration and the
  named presets behind the CLI's ``--faults`` flag.

Recovery itself lives where it belongs: the NAND array raises the
recoverable fault exceptions (:mod:`repro.nand.errors`) and the FTL
(:mod:`repro.ftl.ftl`) retries, rewrites and retires blocks.
"""

from repro.faults.injector import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    resolve_fault_profile,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "resolve_fault_profile",
]
