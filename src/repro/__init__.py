"""repro -- a reproduction of *"To Collect or Not to Collect: Just-in-Time
Garbage Collection for High-Performance SSDs with Long Lifetimes"*
(Hahn, Lee, Kim -- DAC 2015).

The package provides, bottom-up:

* :mod:`repro.sim` -- a deterministic discrete-event simulation kernel;
* :mod:`repro.nand` -- a timed NAND flash array model;
* :mod:`repro.ftl` -- a page-mapped FTL with pluggable GC victim selection;
* :mod:`repro.ssd` -- the SSD device (queueing, BGC hooks, extended
  host interface);
* :mod:`repro.oskernel` -- the host page cache, flusher thread and I/O
  dispatcher;
* :mod:`repro.core` -- **JIT-GC itself**: the buffered/direct future-write
  predictors, the SIP list, the JIT-GC manager and the policy suite
  (L-BGC, A-BGC, ADP-GC, JIT-GC);
* :mod:`repro.workloads` -- models of the paper's six benchmarks;
* :mod:`repro.metrics` / :mod:`repro.experiments` -- measurement and the
  harnesses that regenerate every table and figure of the paper.

Quickstart::

    from repro import SsdConfig, JitGcPolicy
    from repro.experiments import ScenarioSpec, run_scenario

    spec = ScenarioSpec(workload="YCSB", policy="JIT-GC")
    print(run_scenario(spec))
"""

from repro.faults import FAULT_PROFILES, FaultInjector, FaultProfile
from repro.host import HostSystem
from repro.ssd.config import SsdConfig
from repro.core.policies import (
    GcPolicy,
    NoBgcPolicy,
    FixedReservePolicy,
    lazy_bgc_policy,
    aggressive_bgc_policy,
    AdaptiveGcPolicy,
    JitGcPolicy,
)

__version__ = "1.1.0"

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "HostSystem",
    "SsdConfig",
    "GcPolicy",
    "NoBgcPolicy",
    "FixedReservePolicy",
    "lazy_bgc_policy",
    "aggressive_bgc_policy",
    "AdaptiveGcPolicy",
    "JitGcPolicy",
    "__version__",
]
