"""The I/O dispatcher: where buffered and direct writes part ways.

Workload generators issue all their I/O through :class:`IoDispatcher`,
which models the kernel datapath of the paper's Fig. 3:

* **buffered writes** land in the page cache and complete at memory
  speed -- unless dirty throttling is active, in which case the writer
  blocks until write-back drains (this is how device-level GC stalls
  reach buffered applications);
* **direct writes** (``O_SYNC`` / ``O_DIRECT``) bypass the cache and
  complete only when the SSD does;
* **reads** are served from the cache when possible, otherwise fetched
  from the device and inserted clean.

The dispatcher also keeps the buffered/direct byte accounting that
reproduces the paper's Table 1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional, Tuple


def _coalesce(sorted_pages: Iterable[int]) -> List[Tuple[int, int]]:
    """Group sorted page numbers into (start, length) extents."""
    extents: List[Tuple[int, int]] = []
    start = prev = None
    for page in sorted_pages:
        if start is None:
            start = prev = page
        elif page == prev + 1:
            prev = page
        else:
            extents.append((start, prev - start + 1))
            start = prev = page
    if start is not None:
        extents.append((start, prev - start + 1))
    return extents

from repro.obs.audit import DISABLED_AUDIT, BackpressureRecord
from repro.oskernel.cache import PageCache
from repro.sim.engine import Simulator
from repro.sim.simtime import MICROSECOND
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoKind, IoRequest


@dataclass
class WriteTrafficStats:
    """Application-level write accounting (the paper's Table 1 input)."""

    buffered_bytes: int = 0
    direct_bytes: int = 0
    buffered_ops: int = 0
    direct_ops: int = 0
    read_bytes: int = 0
    read_ops: int = 0
    throttle_events: int = 0
    fsync_ops: int = 0
    trim_ops: int = 0
    trim_bytes: int = 0

    def buffered_fraction(self) -> float:
        """Share of write bytes that took the buffered path."""
        total = self.buffered_bytes + self.direct_bytes
        if total == 0:
            return 0.0
        return self.buffered_bytes / total

    def direct_fraction(self) -> float:
        return 1.0 - self.buffered_fraction() if (self.buffered_bytes + self.direct_bytes) else 0.0


class IoDispatcher:
    """Kernel I/O entry point for workload generators.

    All completion callbacks receive no arguments; workloads typically
    pass a :class:`~repro.sim.process.WaitFor` wake.

    Args:
        sim: shared simulator.
        cache: the page cache.
        device: the SSD.
        memcpy_ns_per_page: cost of a buffered write landing in DRAM.
    """

    def __init__(
        self,
        sim: Simulator,
        cache: PageCache,
        device: SsdDevice,
        memcpy_ns_per_page: int = 2 * MICROSECOND,
    ) -> None:
        self.sim = sim
        self.cache = cache
        self.device = device
        self.memcpy_ns_per_page = memcpy_ns_per_page
        self.stats = WriteTrafficStats()
        #: Decision audit; replaced by Observability.install when auditing.
        #: The dispatcher records dirty-throttling (backpressure) spans
        #: for tail-latency attribution.
        self.audit = DISABLED_AUDIT
        #: Writers blocked on dirty throttling, FIFO.
        self._throttle_queue: Deque[Tuple[int, int, Callable[[], None]]] = deque()
        self._throttle_started_ns = 0
        self._throttle_parks = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(
        self,
        lpn: int,
        page_count: int,
        direct: bool,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Issue an application write of ``page_count`` pages at ``lpn``.

        ``direct=True`` models an ``O_SYNC`` write: it bypasses the page
        cache and completes with the device.
        """
        if direct:
            self._write_direct(lpn, page_count, on_complete)
        else:
            self._write_buffered(lpn, page_count, on_complete)

    def _write_direct(
        self, lpn: int, page_count: int, on_complete: Optional[Callable[[], None]]
    ) -> None:
        self.stats.direct_bytes += page_count * self.cache.page_size
        self.stats.direct_ops += 1
        # Direct I/O invalidates any cached copies (coherence).
        self.cache.invalidate(range(lpn, lpn + page_count))
        self.device.submit(
            IoRequest(
                IoKind.DIRECT_WRITE,
                lpn,
                page_count,
                on_complete=(lambda req: on_complete()) if on_complete else None,
            )
        )

    def _write_buffered(
        self, lpn: int, page_count: int, on_complete: Optional[Callable[[], None]]
    ) -> None:
        if self.cache.throttled():
            # Park the writer; retried when write-back drains the cache.
            self.stats.throttle_events += 1
            if not self._throttle_queue:
                self._throttle_started_ns = self.sim.now
                self._throttle_parks = 0
            self._throttle_parks += 1
            self._throttle_queue.append((lpn, page_count, on_complete))
            if len(self._throttle_queue) == 1:
                self.cache.drain_listeners.append(self._release_throttled)
            return
        self.stats.buffered_bytes += page_count * self.cache.page_size
        self.stats.buffered_ops += 1
        now = self.sim.now
        for page in range(lpn, lpn + page_count):
            self.cache.write_page(page, now)
        if on_complete is not None:
            self.sim.schedule(
                self.memcpy_ns_per_page * page_count,
                on_complete,
                name="iopath.buffered_done",
            )

    def _release_throttled(self) -> None:
        """Re-dispatch parked writers now that the cache drained."""
        while self._throttle_queue and not self.cache.throttled():
            lpn, page_count, on_complete = self._throttle_queue.popleft()
            self._write_buffered(lpn, page_count, on_complete)
        if self._throttle_queue:
            self.cache.drain_listeners.append(self._release_throttled)
        elif self.audit.enabled and self._throttle_parks:
            # Episode over: every parked writer re-dispatched.  One span
            # from the first park to this drain, for tail attribution.
            self.audit.record_backpressure(
                BackpressureRecord(
                    t_ns=self._throttle_started_ns,
                    dur_ns=self.sim.now - self._throttle_started_ns,
                    writers=self._throttle_parks,
                )
            )
            self._throttle_parks = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self,
        lpn: int,
        page_count: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Read pages, cache-first; misses are fetched as one extent."""
        self.stats.read_bytes += page_count * self.cache.page_size
        self.stats.read_ops += 1
        misses = [p for p in range(lpn, lpn + page_count) if not self.cache.read_page(p)]
        if not misses:
            if on_complete is not None:
                self.sim.schedule(
                    self.memcpy_ns_per_page * page_count,
                    on_complete,
                    name="iopath.read_hit",
                )
            return

        def fetched(req: IoRequest) -> None:
            for page in misses:
                self.cache.insert_clean(page)
            if on_complete is not None:
                on_complete()

        first, last = min(misses), max(misses)
        self.device.submit(
            IoRequest(IoKind.READ, first, last - first + 1, on_complete=fetched)
        )

    # ------------------------------------------------------------------
    # fsync
    # ------------------------------------------------------------------
    def fsync(
        self,
        lpn: int,
        page_count: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Force write-back of the dirty pages in a range and complete
        when the device has written them (``fsync``/``fdatasync``).

        The pages remain *buffered* writes for traffic accounting (an
        fsync does not change how the data entered the kernel); what it
        adds is the synchronous wait -- which is how buffered benchmarks
        feel GC stalls on a real system.  Returns the number of pages
        submitted.
        """
        self.stats.fsync_ops += 1
        dirty = [
            page
            for page in range(lpn, lpn + page_count)
            if self.cache.contains_dirty(page)
        ]
        if not dirty:
            if on_complete is not None:
                self.sim.schedule(0, on_complete, name="iopath.fsync_noop")
            return 0
        self.cache.begin_writeback(dirty)
        remaining = {"extents": 0}

        def extent_done(pages_of_extent):
            self.cache.complete_writeback(pages_of_extent)
            remaining["extents"] -= 1
            if remaining["extents"] == 0 and on_complete is not None:
                on_complete()

        for start, length in _coalesce(dirty):
            remaining["extents"] += 1
            extent = list(range(start, start + length))
            self.device.submit(
                IoRequest(
                    IoKind.WRITEBACK,
                    start,
                    length,
                    on_complete=lambda req, pages=extent: extent_done(pages),
                )
            )
        return len(dirty)

    # ------------------------------------------------------------------
    def trim(
        self, lpn: int, page_count: int, on_complete: Optional[Callable[[], None]] = None
    ) -> None:
        """Discard pages (file deletion): drop cache copies, TRIM device.

        The device acknowledges the discard only after the FTL has
        journaled its unmap tombstones, so a completed TRIM is durable:
        recovery after a crash will not resurrect the discarded pages.
        """
        self.stats.trim_ops += 1
        self.stats.trim_bytes += page_count * self.cache.page_size
        self.cache.invalidate(range(lpn, lpn + page_count))
        self.device.submit(
            IoRequest(
                IoKind.TRIM,
                lpn,
                page_count,
                on_complete=(lambda req: on_complete()) if on_complete else None,
            )
        )

    @property
    def blocked_writers(self) -> int:
        return len(self._throttle_queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IoDispatcher blocked={self.blocked_writers} stats={self.stats}>"
