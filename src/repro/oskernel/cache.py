"""The write-back page cache.

This is the data structure the paper's buffered-write predictor exploits:
dirty pages carry their *last-update* timestamp, and the kernel flushes
them once they are older than ``tau_expire`` -- so scanning the dirty set
tells you, with near certainty, how much data will hit the SSD in each
future write-back interval (paper Sec 3.2.1).

The cache holds two page populations:

* **dirty** pages -- written by applications, not yet issued to the SSD.
  An overwrite *resets* the page's age (the paper's B -> B' example in
  Fig. 4), delaying its flush.
* **clean** pages -- either read from the SSD or dirty pages whose
  write-back completed; kept for read hits, evicted LRU under capacity
  pressure (dirty pages are never evicted, they must be written first).

Dirty throttling: when dirty bytes exceed ``dirty_throttle_fraction`` of
capacity, buffered writers must block until write-back drains the cache
-- this is how a buffered-write workload ever feels SSD speed, and thus
how GC stalls propagate to application IOPS.

Hot-path acceleration (PERFORMANCE.md): the flusher and the buffered
predictor interrogate the dirty set every tick.  By default the cache
maintains a *last-update expiry index* -- dirty LPNs grouped into
per-timestamp buckets kept in age order -- so :meth:`expired_dirty`
costs O(pages expired) and :meth:`iter_oldest_dirty` streams
oldest-first without sorting the whole population.  The original
full-scan implementations remain as ``*_scan`` methods (the executable
specification; selected via :mod:`repro.perf`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Tuple

from repro import perf


@dataclass
class DirtyPage:
    """One dirty cache page.

    Attributes:
        lpn: logical page number backing this cache page.
        last_update: simulated time of the most recent write to the page
            (an overwrite resets it, delaying the flush).
    """

    lpn: int
    last_update: int


class PageCache:
    """Write-back page cache with dirty aging and throttling.

    Args:
        page_size: bytes per page (matches the device's logical pages).
        capacity_bytes: total cache capacity.
        dirty_throttle_fraction: dirty share of capacity beyond which
            buffered writers must block (Linux ``dirty_ratio`` analogue).
        indexed: maintain the last-update expiry index (None reads the
            :mod:`repro.perf` process default).
    """

    def __init__(
        self,
        page_size: int,
        capacity_bytes: int,
        dirty_throttle_fraction: float = 0.4,
        indexed: bool = None,
    ) -> None:
        if page_size <= 0 or capacity_bytes < page_size:
            raise ValueError("cache must hold at least one page")
        if not 0.0 < dirty_throttle_fraction <= 1.0:
            raise ValueError(
                f"dirty_throttle_fraction must be in (0, 1], got {dirty_throttle_fraction}"
            )
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self.dirty_throttle_pages = max(
            1, int(self.capacity_pages * dirty_throttle_fraction)
        )
        self._indexed = (
            perf.hotpath_indexing_enabled() if indexed is None else bool(indexed)
        )

        self._dirty: "OrderedDict[int, DirtyPage]" = OrderedDict()
        self._clean: "OrderedDict[int, bool]" = OrderedDict()
        #: Pages issued to the device but not yet acknowledged.
        self._in_writeback: Dict[int, bool] = {}

        #: Expiry index: last_update -> {lpn: None}, buckets kept in
        #: ascending-timestamp order (sim time is monotone, so appends
        #: are O(1); the out-of-order fallback only fires in synthetic
        #: unit tests that rewind the clock).
        self._by_time: "OrderedDict[int, Dict[int, None]]" = OrderedDict()
        self._max_bucket_ts: int = -1

        #: Callbacks fired when dirty population drops below the throttle.
        self.drain_listeners: List[Callable[[], None]] = []
        #: Callbacks fired when a write pushes the cache into throttling
        #: (the flusher subscribes to start background write-back early).
        self.pressure_listeners: List[Callable[[], None]] = []
        #: Callbacks fired when pages enter write-back; receive the list
        #: of (lpn, last_update) pairs so observers can tell age-expired
        #: flushes from early (fsync/volume-pressure) ones.
        self.writeback_listeners: List[Callable[[List[tuple]], None]] = []
        #: Callbacks fired on every dirty-population change with
        #: ``(added, removed)`` lists of ``(lpn, last_update)`` pairs.
        #: Exactly ONE call per cache operation, however many pages the
        #: operation touches -- the buffered predictor keeps its ``Dbuf``
        #: histogram current from these without rescanning the cache.
        self.dirty_listeners: List[
            Callable[[List[Tuple[int, int]], List[Tuple[int, int]]], None]
        ] = []

        # Counters.
        self.write_hits = 0
        self.read_hits = 0
        self.read_misses = 0

    # ------------------------------------------------------------------
    # Expiry-index maintenance
    # ------------------------------------------------------------------
    def _bucket_add(self, lpn: int, ts: int) -> None:
        bucket = self._by_time.get(ts)
        if bucket is None:
            bucket = self._by_time[ts] = {}
            if ts >= self._max_bucket_ts:
                self._max_bucket_ts = ts
            else:
                # Clock went backwards (synthetic test input): restore
                # ascending bucket order.  Never hit under a simulator.
                for key in sorted(self._by_time):
                    self._by_time.move_to_end(key)
        bucket[lpn] = None

    def _bucket_remove(self, lpn: int, ts: int) -> None:
        bucket = self._by_time[ts]
        del bucket[lpn]
        if not bucket:
            del self._by_time[ts]

    def _notify_dirty(
        self, added: List[Tuple[int, int]], removed: List[Tuple[int, int]]
    ) -> None:
        for listener in list(self.dirty_listeners):
            listener(added, removed)

    # ------------------------------------------------------------------
    # Application-side operations
    # ------------------------------------------------------------------
    def write_page(self, lpn: int, now: int) -> None:
        """Buffer a write to ``lpn`` at time ``now`` (marks/refreshes dirty).

        Callers must check :meth:`throttled` first; writing while
        throttled is allowed (the model keeps state consistent) but a
        well-behaved dispatcher blocks the writer instead.
        """
        entry = self._dirty.get(lpn)
        if entry is not None:
            # Overwrite: age resets, flush is postponed (paper Fig. 4, B').
            old_ts = entry.last_update
            entry.last_update = now
            self._dirty.move_to_end(lpn)
            if self._indexed and old_ts != now:
                self._bucket_remove(lpn, old_ts)
                self._bucket_add(lpn, now)
            self.write_hits += 1
            if self.dirty_listeners:
                self._notify_dirty([(lpn, now)], [(lpn, old_ts)])
            return
        # A write to a page under write-back re-dirties it.
        self._in_writeback.pop(lpn, None)
        self._clean.pop(lpn, None)
        self._dirty[lpn] = DirtyPage(lpn=lpn, last_update=now)
        if self._indexed:
            self._bucket_add(lpn, now)
        if self.dirty_listeners:
            self._notify_dirty([(lpn, now)], [])
        self._evict_if_needed()
        if self.throttled():
            for listener in list(self.pressure_listeners):
                listener()

    def read_page(self, lpn: int) -> bool:
        """Look up ``lpn``; returns True on hit (and refreshes LRU)."""
        if lpn in self._dirty or lpn in self._in_writeback:
            self.read_hits += 1
            return True
        if lpn in self._clean:
            self._clean.move_to_end(lpn)
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    def insert_clean(self, lpn: int) -> None:
        """Cache a page fetched from the device."""
        if lpn in self._dirty or lpn in self._in_writeback:
            return
        self._clean[lpn] = True
        self._clean.move_to_end(lpn)
        self._evict_if_needed()

    def invalidate(self, lpns: Iterable[int]) -> None:
        """Drop pages (file deletion, direct write over cached data).

        Dirty listeners observe the whole batch as ONE call, however
        many pages are dropped.
        """
        removed: List[Tuple[int, int]] = []
        for lpn in lpns:
            entry = self._dirty.pop(lpn, None)
            if entry is not None:
                if self._indexed:
                    self._bucket_remove(lpn, entry.last_update)
                removed.append((lpn, entry.last_update))
            self._clean.pop(lpn, None)
            self._in_writeback.pop(lpn, None)
        if removed and self.dirty_listeners:
            self._notify_dirty([], removed)

    # ------------------------------------------------------------------
    # Flusher-side operations
    # ------------------------------------------------------------------
    def expired_dirty(self, now: int, tau_expire: int) -> List[DirtyPage]:
        """Dirty pages older than ``tau_expire`` at time ``now``.

        O(pages expired) on the expiry index (oldest bucket first, LPN
        order within a bucket); the scan reference is
        :meth:`expired_dirty_scan`.
        """
        if not self._indexed:
            return self.expired_dirty_scan(now, tau_expire)
        expired: List[DirtyPage] = []
        for ts, bucket in self._by_time.items():
            if now - ts < tau_expire:
                break
            expired.extend(self._dirty[lpn] for lpn in sorted(bucket))
        return expired

    def expired_dirty_scan(self, now: int, tau_expire: int) -> List[DirtyPage]:
        """Reference implementation: full scan of the dirty set."""
        return [e for e in self._dirty.values() if now - e.last_update >= tau_expire]

    def oldest_dirty(self) -> List[DirtyPage]:
        """All dirty pages ordered oldest-first (by last update)."""
        if not self._indexed:
            return self.oldest_dirty_scan()
        return list(self.iter_oldest_dirty())

    def oldest_dirty_scan(self) -> List[DirtyPage]:
        """Reference implementation: sort the whole dirty set."""
        return sorted(self._dirty.values(), key=lambda e: (e.last_update, e.lpn))

    def iter_oldest_dirty(self) -> Iterator[DirtyPage]:
        """Stream dirty pages oldest-first, lazily.

        The flusher's volume condition only needs the oldest ``excess``
        pages; with the index this stops after yielding them instead of
        sorting the whole population.  Both implementations yield the
        identical ``(last_update, lpn)`` order.
        """
        if not self._indexed:
            yield from self.oldest_dirty_scan()
            return
        for bucket in self._by_time.values():
            for lpn in sorted(bucket):
                yield self._dirty[lpn]

    def begin_writeback(self, lpns: Iterable[int]) -> None:
        """Move pages from dirty to the in-flight write-back set.

        Writeback and dirty listeners each observe the whole batch as
        ONE call (listener invocations do not scale with batch size).
        """
        moved = []
        for lpn in lpns:
            entry = self._dirty.pop(lpn, None)
            if entry is None:
                raise KeyError(f"page {lpn} is not dirty")
            if self._indexed:
                self._bucket_remove(lpn, entry.last_update)
            self._in_writeback[lpn] = True
            moved.append((lpn, entry.last_update))
        if moved:
            if self.dirty_listeners:
                self._notify_dirty([], moved)
            for listener in list(self.writeback_listeners):
                listener(moved)

    def complete_writeback(self, lpns: Iterable[int]) -> None:
        """Acknowledge device completion; pages become clean.

        Fires drain listeners if the dirty+writeback population dropped
        below the throttle threshold (one notification per call, not
        per page).
        """
        for lpn in lpns:
            if self._in_writeback.pop(lpn, None) is not None:
                self._clean[lpn] = True
        self._evict_if_needed()
        if not self.throttled():
            listeners, self.drain_listeners = self.drain_listeners, []
            for listener in listeners:
                listener()

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.page_size

    @property
    def writeback_pages(self) -> int:
        return len(self._in_writeback)

    @property
    def cached_pages(self) -> int:
        return len(self._dirty) + len(self._clean) + len(self._in_writeback)

    def throttled(self) -> bool:
        """True when buffered writers should block (dirty pressure)."""
        return len(self._dirty) + len(self._in_writeback) >= self.dirty_throttle_pages

    def dirty_items(self) -> List[DirtyPage]:
        """Snapshot of dirty pages (the predictor's scan input)."""
        return list(self._dirty.values())

    def dirty_lpns(self) -> List[int]:
        """Dirty LPNs in insertion order (the SIP-list snapshot)."""
        return list(self._dirty.keys())

    def contains_dirty(self, lpn: int) -> bool:
        return lpn in self._dirty

    # ------------------------------------------------------------------
    def _evict_if_needed(self) -> None:
        """LRU-evict clean pages past capacity (dirty pages are pinned)."""
        while self.cached_pages > self.capacity_pages and self._clean:
            self._clean.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PageCache dirty={self.dirty_pages} clean={len(self._clean)} "
            f"wb={self.writeback_pages}/{self.capacity_pages}p>"
        )
