"""The periodic flusher thread (Linux write-back model, paper Sec 3.2.1).

The flusher wakes every ``p`` seconds (the *write-back interval*).  At
each wake-up it flushes:

1. every dirty page older than ``tau_expire`` since its last update
   (the age condition), and
2. if the dirty population exceeds the ``tau_flush`` volume threshold,
   additionally the oldest dirty pages until the population is back
   under the threshold (the volume condition).

Flushed pages are coalesced into contiguous extents and issued to the
SSD as ``WRITEBACK`` requests.  Pages stay in the cache's *in-writeback*
set until the device acknowledges them, which is when dirty throttling
releases blocked writers.

The flusher exposes a tick hook so host-side GC-policy code can run
*right after* write-back is issued -- exactly where the paper invokes
its buffered-write predictor.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.obs.tracer import NULL_TRACER
from repro.oskernel.cache import PageCache
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.simtime import SECOND
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoKind, IoRequest


class FlusherThread:
    """Periodic write-back daemon.

    Args:
        sim: shared simulator.
        cache: the page cache to drain.
        device: the SSD receiving write-back requests.
        period_ns: wake-up period ``p`` (paper default: 5 s).
        tau_expire_ns: dirty-age expiration threshold (paper: 30 s).
        tau_flush_pages: dirty-volume threshold in pages; ``None``
            derives the Linux-like default of 10 % of cache capacity.
        max_request_pages: largest write-back request issued at once.
    """

    def __init__(
        self,
        sim: Simulator,
        cache: PageCache,
        device: SsdDevice,
        period_ns: int = 5 * SECOND,
        tau_expire_ns: int = 30 * SECOND,
        tau_flush_pages: Optional[int] = None,
        max_request_pages: int = 64,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        if tau_expire_ns % period_ns != 0:
            raise ValueError(
                "tau_expire must be a multiple of the flusher period "
                f"(paper Sec 3.2.1); got {tau_expire_ns} / {period_ns}"
            )
        self.sim = sim
        self.cache = cache
        self.device = device
        self.period_ns = period_ns
        self.tau_expire_ns = tau_expire_ns
        if tau_flush_pages is None:
            tau_flush_pages = max(1, cache.capacity_pages // 10)
        self.tau_flush_pages = tau_flush_pages
        self.max_request_pages = max(1, max_request_pages)

        #: Hooks run at each wake-up, *after* this tick's write-back was
        #: issued (predictor / JIT manager attach here).
        self.tick_hooks: List[Callable[[int], None]] = []

        self.wakeups = 0
        self.pages_flushed = 0
        #: Pages flushed by pressure-triggered background write-back.
        self.background_flushes = 0
        #: Sim-time tracer; replaced by Observability.install when tracing.
        self.tracer = NULL_TRACER
        self._started = False
        self._bg_flush_pending = False
        cache.pressure_listeners.append(self._on_pressure)

    # ------------------------------------------------------------------
    @property
    def nwb(self) -> int:
        """The paper's ``Nwb = tau_expire / p``."""
        return self.tau_expire_ns // self.period_ns

    def start(self) -> None:
        """Schedule the first wake-up one period from now."""
        if self._started:
            raise RuntimeError("flusher already started")
        self._started = True
        self.sim.schedule(
            self.period_ns, self._wake, priority=PRIORITY_CONTROL, name="flusher"
        )

    # ------------------------------------------------------------------
    def _wake(self) -> None:
        self.wakeups += 1
        now = self.sim.now
        pages = self.flush_once(now)
        if self.tracer.enabled:
            # Duration event on the flusher track (a wake-up is atomic in
            # sim time, so dur=0) carrying what the wake-up issued.
            self.tracer.complete(
                "flusher",
                "flusher.wakeup",
                start_ns=now,
                dur_ns=0,
                pages_issued=pages,
                dirty_pages=self.cache.dirty_pages,
                wakeup=self.wakeups,
            )
        for hook in list(self.tick_hooks):
            hook(now)
        self.sim.schedule(
            self.period_ns, self._wake, priority=PRIORITY_CONTROL, name="flusher"
        )

    def flush_once(self, now: int) -> int:
        """Apply both flush conditions once; returns pages issued."""
        to_flush = {e.lpn for e in self.cache.expired_dirty(now, self.tau_expire_ns)}
        self._add_volume_excess(to_flush)
        return self._flush_set(to_flush)

    def _add_volume_excess(self, to_flush: set) -> None:
        """Volume condition: drain oldest-first down to the threshold."""
        excess = self.cache.dirty_pages - len(to_flush) - self.tau_flush_pages
        if excess <= 0:
            return
        for entry in self.cache.iter_oldest_dirty():
            if excess <= 0:
                break
            if entry.lpn not in to_flush:
                to_flush.add(entry.lpn)
                excess -= 1

    def _flush_set(self, to_flush: set) -> int:
        if not to_flush:
            return 0
        lpns = sorted(to_flush)
        self.cache.begin_writeback(lpns)
        self._issue(lpns)
        self.pages_flushed += len(lpns)
        return len(lpns)

    # ------------------------------------------------------------------
    # Pressure-triggered background write-back
    # ------------------------------------------------------------------
    def _on_pressure(self) -> None:
        """Dirty throttling engaged: schedule an immediate volume flush.

        Mirrors Linux waking the bdi flusher on dirty pressure instead of
        letting writers stall until the next periodic wake-up.  Pure
        volume-condition flushing: the predictor's age-based model is
        unaffected (this is exactly the "second flush condition" the
        paper's predictor deliberately relaxes).
        """
        if self._bg_flush_pending:
            return
        self._bg_flush_pending = True
        self.sim.schedule(
            0, self._background_flush, priority=PRIORITY_CONTROL, name="bg-flush"
        )

    def _background_flush(self) -> None:
        self._bg_flush_pending = False
        to_flush: set = set()
        self._add_volume_excess(to_flush)
        pages = self._flush_set(to_flush)
        self.background_flushes += pages
        if self.tracer.enabled:
            self.tracer.complete(
                "flusher",
                "flusher.bg_flush",
                start_ns=self.sim.now,
                dur_ns=0,
                pages_issued=pages,
                dirty_pages=self.cache.dirty_pages,
            )

    def _issue(self, lpns: Sequence[int]) -> None:
        """Coalesce sorted LPNs into extents and submit WRITEBACK I/O."""
        start = lpns[0]
        prev = start
        for lpn in list(lpns[1:]) + [None]:
            contiguous = lpn is not None and lpn == prev + 1
            full = lpn is not None and (prev - start + 1) >= self.max_request_pages
            if contiguous and not full:
                prev = lpn
                continue
            extent = range(start, prev + 1)
            self.device.submit(
                IoRequest(
                    IoKind.WRITEBACK,
                    start,
                    prev - start + 1,
                    on_complete=lambda req, pages=extent: self.cache.complete_writeback(
                        pages
                    ),
                )
            )
            if lpn is not None:
                start = prev = lpn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlusherThread p={self.period_ns} wakeups={self.wakeups}>"
