"""A minimal extent-based file layer.

Postmark and Filebench are *file* benchmarks: they create, append to,
read and delete many small files, and their metadata/journal updates are
synchronous (direct) writes.  :class:`SimpleFileSystem` provides just
enough structure to generate that traffic faithfully:

* files are allocated as single contiguous extents from a first-fit free
  list over the device's logical space;
* data I/O goes through the :class:`~repro.oskernel.iopath.IoDispatcher`
  as buffered writes/reads;
* each metadata-changing operation (create, delete, append) also writes
  a small journal record to a dedicated journal region as a *direct*
  write, mirroring ext4-style ``jbd2`` commits.

Deleting a file TRIMs its extent, creating device garbage without device
writes -- an important source of GC fodder in the file workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


class FsError(RuntimeError):
    """File-layer failures (out of space, unknown file)."""


@dataclass
class _File:
    file_id: int
    start_lpn: int
    pages: int          #: allocated extent length
    used_pages: int     #: pages actually written (<= pages)


class SimpleFileSystem:
    """Extent-allocated flat file namespace over a logical page range.

    Args:
        dispatcher: kernel I/O entry point.
        first_lpn / page_count: the logical region the filesystem manages.
        journal_pages: size of the circular journal region carved from the
            start of the managed range (journal writes are direct).
    """

    def __init__(
        self,
        dispatcher,
        first_lpn: int,
        page_count: int,
        journal_pages: int = 64,
        journal_record_pages: int = 1,
    ) -> None:
        if page_count <= journal_pages:
            raise FsError("region too small for data plus journal")
        if not 1 <= journal_record_pages <= journal_pages:
            raise FsError("journal_record_pages must fit in the journal region")
        self.dispatcher = dispatcher
        self.journal_start = first_lpn
        self.journal_pages = journal_pages
        self.journal_record_pages = journal_record_pages
        self._journal_head = 0
        self.data_start = first_lpn + journal_pages
        self.data_pages = page_count - journal_pages

        #: Free extents as (start, length), sorted by start, coalesced.
        self._free: List[Tuple[int, int]] = [(self.data_start, self.data_pages)]
        self._files: Dict[int, _File] = {}
        self._next_id = 0

        self.journal_writes = 0

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(
        self,
        pages: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Create a file with an extent of ``pages``; returns its id.

        Writes the file data (buffered, asynchronous) and a journal
        record (direct, synchronous).  ``on_complete`` fires when the
        journal commit reaches the device -- the durability point a real
        application transaction waits on.
        """
        if pages <= 0:
            raise FsError(f"file size must be positive, got {pages}")
        start = self._allocate(pages)
        file_id = self._next_id
        self._next_id += 1
        self._files[file_id] = _File(file_id, start, pages, used_pages=pages)
        self.dispatcher.write(start, pages, direct=False)
        self._journal_commit(on_complete)
        return file_id

    def delete(
        self,
        file_id: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Delete a file: TRIM of its extent plus a synchronous journal
        commit (``on_complete`` fires at the commit)."""
        handle = self._lookup(file_id)
        del self._files[file_id]
        self._release(handle.start_lpn, handle.pages)
        self.dispatcher.trim(handle.start_lpn, handle.pages)
        self._journal_commit(on_complete)

    def append(
        self,
        file_id: int,
        pages: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Append by rewriting the tail extent (extent files cannot grow
        in place, so appends reallocate like real extent filesystems do
        for fragmented files).  Data is buffered/asynchronous; the
        journal commit is synchronous."""
        handle = self._lookup(file_id)
        new_pages = handle.pages + pages
        new_start = self._allocate(new_pages)
        self._release(handle.start_lpn, handle.pages)
        self.dispatcher.trim(handle.start_lpn, handle.pages)
        handle.start_lpn = new_start
        handle.pages = new_pages
        handle.used_pages = new_pages
        self.dispatcher.write(new_start, new_pages, direct=False)
        self._journal_commit(on_complete)

    def overwrite(
        self,
        file_id: int,
        offset_pages: int,
        pages: int,
        direct: bool = False,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Overwrite a range inside the file (no reallocation)."""
        handle = self._lookup(file_id)
        if offset_pages + pages > handle.pages:
            raise FsError("overwrite beyond end of file")
        self.dispatcher.write(
            handle.start_lpn + offset_pages, pages, direct=direct, on_complete=on_complete
        )

    def read(
        self,
        file_id: int,
        offset_pages: int,
        pages: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        handle = self._lookup(file_id)
        if offset_pages + pages > handle.pages:
            raise FsError("read beyond end of file")
        self.dispatcher.read(handle.start_lpn + offset_pages, pages, on_complete=on_complete)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def file_count(self) -> int:
        return len(self._files)

    def file_ids(self) -> List[int]:
        return list(self._files.keys())

    def file_pages(self, file_id: int) -> int:
        return self._lookup(file_id).pages

    def free_pages(self) -> int:
        return sum(length for _, length in self._free)

    def largest_free_extent(self) -> int:
        return max((length for _, length in self._free), default=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lookup(self, file_id: int) -> _File:
        handle = self._files.get(file_id)
        if handle is None:
            raise FsError(f"unknown file id {file_id}")
        return handle

    def _journal_commit(self, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Synchronous journal record (circular log)."""
        pages = self.journal_record_pages
        if self._journal_head + pages > self.journal_pages:
            self._journal_head = 0
        lpn = self.journal_start + self._journal_head
        self._journal_head += pages
        self.journal_writes += 1
        self.dispatcher.write(lpn, pages, direct=True, on_complete=on_complete)

    def _allocate(self, pages: int) -> int:
        for index, (start, length) in enumerate(self._free):
            if length >= pages:
                if length == pages:
                    self._free.pop(index)
                else:
                    self._free[index] = (start + pages, length - pages)
                return start
        raise FsError(f"no free extent of {pages} pages (free={self.free_pages()})")

    def _release(self, start: int, pages: int) -> None:
        """Return an extent, keeping the free list sorted and coalesced."""
        self._free.append((start, pages))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for extent_start, extent_len in self._free:
            if merged and merged[-1][0] + merged[-1][1] == extent_start:
                merged[-1] = (merged[-1][0], merged[-1][1] + extent_len)
            else:
                merged.append((extent_start, extent_len))
        self._free = merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimpleFileSystem files={self.file_count} free={self.free_pages()}p>"
