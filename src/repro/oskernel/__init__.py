"""Host operating-system substrate.

Models the kernel half of the paper's I/O datapath (Fig. 3):

* :mod:`repro.oskernel.cache` -- the write-back page cache with dirty
  aging, the substrate the buffered-write predictor scans.
* :mod:`repro.oskernel.flusher` -- the periodic flusher thread with the
  two Linux flush conditions (``tau_expire`` age, ``tau_flush`` volume).
* :mod:`repro.oskernel.iopath` -- the I/O dispatcher: buffered writes go
  through the cache (with dirty throttling); ``O_SYNC``-style direct
  writes bypass it; reads are served cache-first.
* :mod:`repro.oskernel.files` -- a minimal extent-based file layer so
  file-oriented workloads (Postmark, Filebench) generate realistic
  create/append/delete traffic including journal-style direct writes.
"""

from repro.oskernel.cache import PageCache, DirtyPage
from repro.oskernel.flusher import FlusherThread
from repro.oskernel.iopath import IoDispatcher, WriteTrafficStats
from repro.oskernel.files import SimpleFileSystem, FsError

__all__ = [
    "PageCache",
    "DirtyPage",
    "FlusherThread",
    "IoDispatcher",
    "WriteTrafficStats",
    "SimpleFileSystem",
    "FsError",
]
