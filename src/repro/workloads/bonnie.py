"""Bonnie++-like workload (filesystem throughput phases).

Bonnie++ measures storage through distinct sequential and random phases.
The write-relevant cycle modelled here per actor:

1. **sequential write** of a large file region (buffered, large extents),
2. **rewrite** -- read + modify + write back of the same region,
3. **sequential read** of the region,
4. **random seeks** -- small scattered writes a fraction of which are
   fsync'd, i.e. direct (this phase supplies the 27.6 % direct share of
   Table 1).

The sequential phases produce long device-busy stretches followed by
idle gaps -- the bursty pattern where BGC timing matters most.
"""

from __future__ import annotations

from typing import Generator, List

from repro.workloads.base import Region, Workload


class BonnieWorkload(Workload):
    """Phase-structured sequential/random filesystem benchmark."""

    name = "Bonnie++"
    paper_buffered_fraction = 0.724

    #: Extent size of sequential-phase writes.
    SEQ_EXTENT_PAGES = 16
    #: Random-phase ops per cycle relative to sequential extents; sized
    #: so the fsync'd seek phase carries Table 1's 27.6 % direct share.
    SEEK_OPS_FACTOR = 8.0
    #: Fraction of random-phase writes that are fsync'd (direct).
    SEEK_DIRECT_FRACTION = 0.85

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        actors: int = 2,
        **kwargs,
    ) -> None:
        # Throughput benchmark: runs flat out during ON phases; the OFF
        # phases model the inter-pass setup/teardown quiet periods.
        kwargs.setdefault("think_ns", 10_000)
        kwargs.setdefault("phase_on_ns", 2_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        self.actors = actors
        self._lanes = region.split(actors)

    def build_actors(self) -> List[Generator]:
        return [self._actor(lane, index) for index, lane in enumerate(self._lanes)]

    def _actor(self, lane: Region, index: int) -> Generator:
        rng = self.actor_rng(index)
        extents = max(1, lane.pages // self.SEQ_EXTENT_PAGES)
        seek_ops = int(extents * self.SEEK_OPS_FACTOR)
        while True:
            # Phase 1: sequential write.
            for extent in range(extents):
                lpn = lane.start + extent * self.SEQ_EXTENT_PAGES
                pages = min(self.SEQ_EXTENT_PAGES, lane.end - lpn)
                yield from self.op_gate()
                yield from self.op_write(lpn, pages, direct=False)
                yield from self.think(rng)
            # End of write phase: Bonnie++ fsyncs the file.
            yield from self.op_gate()
            yield from self.op_fsync(lane.start, lane.pages)

            # Phase 2: rewrite (read-modify-write).
            for extent in range(extents):
                lpn = lane.start + extent * self.SEQ_EXTENT_PAGES
                pages = min(self.SEQ_EXTENT_PAGES, lane.end - lpn)
                yield from self.op_gate()
                yield from self.op_read(lpn, pages)
                yield from self.op_gate()
                yield from self.op_write(lpn, pages, direct=False)
                yield from self.think(rng)
            yield from self.op_gate()
            yield from self.op_fsync(lane.start, lane.pages)

            # Phase 3: sequential read.
            for extent in range(extents):
                lpn = lane.start + extent * self.SEQ_EXTENT_PAGES
                pages = min(self.SEQ_EXTENT_PAGES, lane.end - lpn)
                yield from self.op_gate()
                yield from self.op_read(lpn, pages)
                yield from self.think(rng)
            
            # Phase 4: random small writes, mostly fsync'd.
            for _ in range(seek_ops):
                lpn = lane.start + int(rng.integers(0, lane.pages - 2))
                direct = bool(rng.random() < self.SEEK_DIRECT_FRACTION)
                yield from self.op_gate()
                yield from self.op_write(lpn, 2, direct=direct)
                yield from self.think(rng)
            