"""Workload-generator infrastructure.

The paper's six benchmarks are modelled as *closed-loop* generators:
actors issue an operation, wait for its completion, think, and repeat --
so application throughput (IOPS) reflects storage speed, exactly as when
running the real benchmarks on a real SSD.  Between bursts, actors pause,
producing the idle windows background GC lives on.

Each workload targets the buffered/direct write mix of the paper's
Table 1 through its own structure (journal commits, redo logs, O_DIRECT
threads), not by coin-flipping individual writes -- the mix *emerges*
from the modelled application behaviour and is verified by the Table 1
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterator, List, Optional

import numpy as np

from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector
from repro.sim.process import Process, Timeout, WaitFor
from repro.sim.simtime import MILLISECOND, SECOND


@dataclass(frozen=True)
class Region:
    """A contiguous LPN range owned by one workload structure."""

    start: int
    pages: int

    def __post_init__(self) -> None:
        if self.pages <= 0 or self.start < 0:
            raise ValueError(f"invalid region start={self.start} pages={self.pages}")

    @property
    def end(self) -> int:
        """One past the last LPN."""
        return self.start + self.pages

    def sub(self, offset: int, pages: int) -> "Region":
        """A sub-region; bounds-checked."""
        if offset < 0 or offset + pages > self.pages:
            raise ValueError(
                f"sub-region [{offset}, {offset + pages}) outside 0..{self.pages}"
            )
        return Region(self.start + offset, pages)

    def split(self, parts: int) -> List["Region"]:
        """Split into ``parts`` near-equal sub-regions."""
        if parts <= 0 or parts > self.pages:
            raise ValueError(f"cannot split {self.pages} pages into {parts} parts")
        base = self.pages // parts
        out = []
        offset = 0
        for index in range(parts):
            size = base + (1 if index < self.pages % parts else 0)
            out.append(self.sub(offset, size))
            offset += size
        return out


class ZipfGenerator:
    """Bounded Zipfian sampler over ``[0, n)`` (YCSB-style hot spots).

    Item 0 is the hottest.  Uses batched inverse-CDF sampling so the
    per-sample cost is O(log n) with O(n) one-time setup.
    """

    def __init__(
        self,
        n: int,
        theta: float,
        rng: np.random.Generator,
        _shared_cdf: Optional[np.ndarray] = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        if _shared_cdf is not None:
            self._cdf = _shared_cdf
        else:
            weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]
        self._batch: np.ndarray = np.empty(0, dtype=np.int64)
        self._cursor = 0

    def with_rng(self, rng: np.random.Generator) -> "ZipfGenerator":
        """A sampler over the same distribution driven by another rng
        (used to give each workload actor an independent stream while
        sharing the O(n) CDF table)."""
        return ZipfGenerator(self.n, self.theta, rng, _shared_cdf=self._cdf)

    def sample(self) -> int:
        if self._cursor >= len(self._batch):
            uniforms = self._rng.random(4096)
            self._batch = np.searchsorted(self._cdf, uniforms)
            self._cursor = 0
        value = int(self._batch[self._cursor])
        self._cursor += 1
        return value


class Workload:
    """Base class for closed-loop benchmark generators.

    Subclasses implement :meth:`build_actors`, returning one generator
    per concurrent actor; actors use the ``op_write`` / ``op_read`` /
    ``think`` helpers (via ``yield from``) so every operation is counted
    in the metrics collector.

    Args:
        host: the assembled host system.
        metrics: collector that counts operations and latencies.
        region: LPN range this workload may touch (typically the working
            set: half the user capacity, per the paper's setup).
        think_ns: mean think time between operations inside a burst.
        burst_ops: operations per burst before an idle pause.
        idle_ns: mean idle pause between bursts (BGC's opportunity);
            used when ``wave_period_ns`` is None.
        wave_period_ns: when set, actors synchronise to global load
            waves: each actor runs one burst per wave, then sleeps until
            the next wave boundary.
        phase_on_ns / phase_off_ns: when set, a global duty-cycle gate
            drives the whole benchmark: actors issue operations freely
            during ON phases and all park during OFF phases.  Real
            benchmarks alternate between I/O-intensive stretches and
            compute/quiet stretches in exactly this way; the OFF phases
            are the guaranteed global idle that background GC lives on,
            and the number of operations completed per ON phase is what
            couples IOPS to device latency (including any GC stall).
            This is the pacing mode used by all six paper benchmarks.
    """

    #: Subclasses set a human-readable benchmark name.
    name = "base"
    #: The paper's Table 1 buffered share, used as the reference value.
    paper_buffered_fraction: float = 0.5

    def __init__(
        self,
        host: HostSystem,
        metrics: MetricsCollector,
        region: Region,
        think_ns: int = 30_000,
        burst_ops: int = 2048,
        idle_ns: int = 8 * SECOND,
        wave_period_ns: Optional[int] = None,
        phase_on_ns: Optional[int] = None,
        phase_off_ns: Optional[int] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.metrics = metrics
        self.region = region
        self.think_ns = think_ns
        self.burst_ops = burst_ops
        self.idle_ns = idle_ns
        self.wave_period_ns = wave_period_ns
        if (phase_on_ns is None) != (phase_off_ns is None):
            raise ValueError("phase_on_ns and phase_off_ns must be set together")
        self.phase_on_ns = phase_on_ns
        self.phase_off_ns = phase_off_ns
        self._gate_open = True
        self._gate_waiters: List[WaitFor] = []
        self.streams = host.streams.fork(f"workload:{self.name}")
        self.rng = self.streams.numpy("ops")
        self.pyrng = self.streams.python("ops")
        self._processes: List[Process] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn all actors (idempotent-guarded)."""
        if self._processes:
            raise RuntimeError(f"workload {self.name} already started")
        for index, generator in enumerate(self.build_actors()):
            process = Process(self.sim, generator, name=f"{self.name}[{index}]")
            process.start(delay=index * (self.think_ns // 2 + 1))
            self._processes.append(process)
        if self.phase_on_ns is not None:
            controller = Process(
                self.sim, self._phase_controller(), name=f"{self.name}.phases"
            )
            controller.start()
            self._processes.append(controller)

    def stop(self) -> None:
        """Kill all actors (end of measurement)."""
        for process in self._processes:
            process.kill()

    def build_actors(self) -> List[Generator]:
        """Return one generator per concurrent actor."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Actor helpers (use with ``yield from``)
    # ------------------------------------------------------------------
    def op_write(self, lpn: int, pages: int, direct: bool) -> Iterator:
        """One application write operation, counted on completion."""
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        self.host.dispatcher.write(lpn, pages, direct=direct, on_complete=waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="write", issue_ns=start, queue_depth=depth
        )

    def op_fsync(self, lpn: int, pages: int) -> Iterator:
        """fsync a range: wait until its dirty pages hit the device."""
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        self.host.dispatcher.fsync(lpn, pages, on_complete=waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="fsync", issue_ns=start, queue_depth=depth
        )

    def op_read(self, lpn: int, pages: int) -> Iterator:
        """One application read operation, counted on completion."""
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        self.host.dispatcher.read(lpn, pages, on_complete=waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="read", issue_ns=start, queue_depth=depth
        )

    def op_trim(self, lpn: int, pages: int) -> Iterator:
        """One discard (TRIM) operation, counted on completion.

        Completion means the device acknowledged the discard -- with
        unmap journaling on, the tombstones are durable by then.
        """
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        self.host.dispatcher.trim(lpn, pages, on_complete=waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="trim", issue_ns=start, queue_depth=depth
        )

    def actor_rng(self, index: int) -> np.random.Generator:
        """Dedicated random stream for actor ``index``.

        Per-actor streams make each actor's randomness a function of its
        own progress only -- never of how the scheduler interleaved the
        actors -- so two runs differing only in GC policy replay
        *identical* workloads (same op choices, same pauses).  Sharing
        one stream would let a policy-induced reordering shuffle the
        heavy-tailed idle draws between actors, adding tens of percent
        of noise to policy comparisons.
        """
        return self.streams.numpy(f"actor-{index}")

    def _phase_controller(self) -> Generator:
        """Toggles the global gate: ON for phase_on_ns, OFF for
        phase_off_ns, waking parked actors at each reopening."""
        while True:
            yield Timeout(self.phase_on_ns)
            self._gate_open = False
            yield Timeout(self.phase_off_ns)
            self._gate_open = True
            waiters, self._gate_waiters = self._gate_waiters, []
            for waiter in waiters:
                waiter.wake()

    def op_gate(self) -> Iterator:
        """Park until the load gate is open (no-op when already open or
        when duty-cycle pacing is disabled)."""
        if self._gate_open:
            return
        waiter = WaitFor()
        self._gate_waiters.append(waiter)
        yield waiter

    def think(self, rng: Optional[np.random.Generator] = None) -> Iterator:
        """Exponential think time inside a burst (truncated at 4x mean)."""
        delay = self._exponential(self.think_ns, rng)
        if delay > 0:
            yield Timeout(delay)

    def burst_pause(self, rng: Optional[np.random.Generator] = None) -> Iterator:
        """Pause after a burst: until the next global wave boundary when
        wave synchronisation is on, otherwise a truncated-exponential idle."""
        if self.wave_period_ns is not None:
            period = self.wave_period_ns
            next_wave = (self.sim.now // period + 1) * period
            yield Timeout(next_wave - self.sim.now)
            return
        delay = self._exponential(self.idle_ns, rng)
        if delay > 0:
            yield Timeout(delay)

    def _exponential(self, mean_ns: int, rng: Optional[np.random.Generator] = None) -> int:
        if mean_ns <= 0:
            return 0
        draw = int((rng or self.rng).exponential(mean_ns))
        # Truncate the tail: a single 20x-mean pause would dominate a
        # whole measurement window.
        return min(draw, 4 * mean_ns)

    def uniform_lpn(
        self, pages: int = 1, rng: Optional[np.random.Generator] = None
    ) -> int:
        """A uniformly random aligned LPN inside the region."""
        if pages > self.region.pages:
            raise ValueError("operation larger than region")
        return self.region.start + int(
            (rng or self.rng).integers(0, self.region.pages - pages + 1)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.name} actors={len(self._processes)}>"
