"""YCSB-like workload (Yahoo! Cloud Serving Benchmark on Cassandra).

The paper runs YCSB as its update-intensive workload: a key-value store
where records are updated with a strong Zipfian skew.  Cassandra-style
persistence produces the write mix:

* record updates accumulate in the memtable and reach the SSD as
  *buffered* sstable-style writes (the dominant share -- the paper's
  Table 1 measures 88.2 % buffered), and
* every few updates a small commit-log record is forced out with
  ``O_SYNC`` semantics -- the *direct* minority (11.8 %).

Model: records are 2 pages; each actor updates Zipf-hot records and
reads others; every ``log_every`` updates appends one direct page to a
circular commit-log region carved from the top of the working set.
"""

from __future__ import annotations

from typing import Generator, List

from repro.workloads.base import Region, Workload, ZipfGenerator


class YcsbWorkload(Workload):
    """Update-heavy Zipfian key-value workload."""

    name = "YCSB"
    paper_buffered_fraction = 0.882

    #: Pages per KV record.
    RECORD_PAGES = 2
    #: Commit-log pages carved from the region top.
    LOG_PAGES = 128

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        actors: int = 4,
        update_fraction: float = 0.5,
        zipf_theta: float = 0.99,
        log_every: int = 4,
        **kwargs,
    ) -> None:
        # Key-value stores are latency-bound (short client think time)
        # and serve diurnal/phased demand: I/O-intensive ON phases
        # alternating with quiet stretches.
        kwargs.setdefault("think_ns", 20_000)
        kwargs.setdefault("phase_on_ns", 2_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        if region.pages <= self.LOG_PAGES + self.RECORD_PAGES:
            raise ValueError("region too small for YCSB records plus commit log")
        self.actors = actors
        self.update_fraction = update_fraction
        self.log_every = max(1, log_every)
        self.records_region = region.sub(0, region.pages - self.LOG_PAGES)
        self.log_region = region.sub(region.pages - self.LOG_PAGES, self.LOG_PAGES)
        self.num_records = self.records_region.pages // self.RECORD_PAGES
        self.zipf = ZipfGenerator(self.num_records, zipf_theta, self.streams.numpy("zipf"))
        self._log_head = 0
        self._updates_since_log = 0

    def _record_lpn(self, record: int) -> int:
        return self.records_region.start + record * self.RECORD_PAGES

    def _next_log_lpn(self) -> int:
        lpn = self.log_region.start + self._log_head
        self._log_head = (self._log_head + 1) % self.log_region.pages
        return lpn

    def build_actors(self) -> List[Generator]:
        return [self._actor(index) for index in range(self.actors)]

    def _actor(self, index: int) -> Generator:
        rng = self.actor_rng(index)
        zipf = self.zipf.with_rng(rng)
        while True:
            yield from self.op_gate()
            record = zipf.sample()
            lpn = self._record_lpn(record)
            if rng.random() < self.update_fraction:
                yield from self.op_write(lpn, self.RECORD_PAGES, direct=False)
                self._updates_since_log += 1
                if self._updates_since_log >= self.log_every:
                    self._updates_since_log = 0
                    yield from self.op_write(self._next_log_lpn(), 1, direct=True)
            else:
                # Reads scan the whole table near-uniformly (YCSB's
                # read side is much colder than its update side), so
                # a large fraction miss the page cache and feel the
                # device queue -- including any GC stall in it.
                cold = int(rng.integers(0, self.num_records))
                yield from self.op_read(self._record_lpn(cold), self.RECORD_PAGES)
            yield from self.think(rng)
