"""Filebench-like workload (fileserver personality).

Filebench's fileserver profile emulates a departmental file server:
larger files than Postmark, a read-heavier mix, and whole-file rewrites.
Journal commits remain the direct-write source (Table 1: 14.2 % direct);
the bigger per-file data writes push the buffered share above
Postmark's.

Structure mirrors :class:`~repro.workloads.postmark.PostmarkWorkload`
(per-actor private filesystems) with fileserver-flavoured parameters and
an explicit whole-file *rewrite* operation that generates large
overwrites -- the pattern that leaves partially-invalid blocks behind
for GC.
"""

from __future__ import annotations

from typing import Generator, List

from repro.oskernel.files import FsError, SimpleFileSystem
from repro.sim.process import WaitFor
from repro.workloads.base import Region, Workload


class FilebenchWorkload(Workload):
    """Fileserver: mixed create/rewrite/append/read/delete on larger files."""

    name = "Filebench"
    paper_buffered_fraction = 0.858

    MIN_FILE_PAGES = 4
    MAX_FILE_PAGES = 24
    TARGET_UTILISATION = 0.55

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        actors: int = 3,
        initial_files: int = 16,
        **kwargs,
    ) -> None:
        # Fileserver phases: fewer, larger operations than Postmark,
        # same journal-commit synchronisation.
        kwargs.setdefault("think_ns", 20_000)
        kwargs.setdefault("phase_on_ns", 2_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        self.actors = actors
        self.initial_files = initial_files
        self._filesystems: List[SimpleFileSystem] = []
        for sub in region.split(actors):
            self._filesystems.append(
                SimpleFileSystem(
                    host.dispatcher,
                    first_lpn=sub.start,
                    page_count=sub.pages,
                    journal_pages=32,
                    # Fileserver metadata transactions are fatter than
                    # Postmark's (attributes, directory blocks) -- this
                    # carries Table 1's 14.2 % direct share.
                    journal_record_pages=2,
                )
            )

    def _file_size(self, rng) -> int:
        return int(rng.integers(self.MIN_FILE_PAGES, self.MAX_FILE_PAGES + 1))

    def build_actors(self) -> List[Generator]:
        return [
            self._actor(fs, index) for index, fs in enumerate(self._filesystems)
        ]

    def _wait_op(self, start_action) -> Generator:
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        start_action(waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="write", issue_ns=start, queue_depth=depth
        )

    def _actor(self, fs: SimpleFileSystem, index: int) -> Generator:
        rng = self.actor_rng(index)
        for _ in range(self.initial_files):
            size = self._file_size(rng)
            if fs.largest_free_extent() <= size:
                break
            yield from self._wait_op(lambda done, s=size: fs.create(s, on_complete=done))

        while True:
            yield from self.op_gate()
            yield from self._operation(fs, rng)
            yield from self.think(rng)

    def _operation(self, fs: SimpleFileSystem, rng) -> Generator:
        utilisation = 1.0 - fs.free_pages() / max(1, fs.data_pages)
        file_ids = fs.file_ids()
        roll = rng.random()

        if not file_ids or (roll < 0.2 and utilisation < self.TARGET_UTILISATION):
            size = self._file_size(rng)
            if fs.largest_free_extent() > size:
                yield from self._wait_op(
                    lambda done, s=size: fs.create(s, on_complete=done)
                )
                return
            roll = 0.25

        if not file_ids:
            return
        target = file_ids[int(rng.integers(0, len(file_ids)))]

        if roll < 0.3 or utilisation >= self.TARGET_UTILISATION:
            yield from self._wait_op(
                lambda done, f=target: fs.delete(f, on_complete=done)
            )
        elif roll < 0.5:
            # Whole-file rewrite: in-place overwrite of the full extent.
            pages = fs.file_pages(target)
            yield from self._wait_op(
                lambda done, f=target, p=pages: fs.overwrite(
                    f, 0, p, direct=False, on_complete=done
                )
            )
        elif roll < 0.65:
            append_pages = max(1, self._file_size(rng) // 4)
            try:
                yield from self._wait_op(
                    lambda done, f=target, p=append_pages: fs.append(
                        f, p, on_complete=done
                    )
                )
            except FsError:
                yield from self._wait_op(
                    lambda done, f=target: fs.delete(f, on_complete=done)
                )
        else:
            pages = fs.file_pages(target)
            yield from self._wait_op(
                lambda done, f=target, p=pages: fs.read(f, 0, p, on_complete=done)
            )
