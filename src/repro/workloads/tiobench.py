"""Tiobench-like workload (threaded I/O benchmark).

Tiobench runs several concurrent threads through sequential-write,
random-write, sequential-read and random-read passes, **synchronising at
a barrier between passes** -- every thread finishes pass *k* before any
thread starts pass *k+1*, exactly as the real benchmark reports
per-pass aggregate numbers.  Half the threads are configured with
``O_DIRECT`` in the paper's setup, yielding the near-even 46.3 %
buffered / 53.7 % direct byte split of Table 1; buffered threads fsync
their lane at the end of each write pass (tiobench measures durable
throughput), which is where they feel device-side GC stalls.
"""

from __future__ import annotations

from typing import Generator, List

from repro.sim.process import WaitFor
from repro.workloads.base import Region, Workload


class TiobenchWorkload(Workload):
    """Multi-threaded sequential+random passes, half the threads direct."""

    name = "Tiobench"
    paper_buffered_fraction = 0.463

    SEQ_EXTENT_PAGES = 8
    RANDOM_OPS_PER_PASS = 96
    #: Direct lanes write slightly larger random extents (direct I/O
    #: amortises syscall cost with bigger requests).
    DIRECT_RANDOM_PAGES = 3
    BUFFERED_RANDOM_PAGES = 2

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        threads: int = 4,
        **kwargs,
    ) -> None:
        # Threaded I/O benchmark: passes run flat out with short pauses.
        kwargs.setdefault("think_ns", 10_000)
        kwargs.setdefault("phase_on_ns", 2_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        if threads < 2:
            raise ValueError("Tiobench needs at least two threads")
        self.threads = threads
        self._lanes = region.split(threads)
        self._barrier_arrived = 0
        self._barrier_waiters: List[WaitFor] = []

    # ------------------------------------------------------------------
    def _pass_barrier(self) -> Generator:
        """Inter-pass synchronisation: block until every thread arrives."""
        self._barrier_arrived += 1
        if self._barrier_arrived >= self.threads:
            self._barrier_arrived = 0
            waiters, self._barrier_waiters = self._barrier_waiters, []
            for waiter in waiters:
                waiter.wake()
            return
        waiter = WaitFor()
        self._barrier_waiters.append(waiter)
        yield waiter

    def build_actors(self) -> List[Generator]:
        # Odd-indexed threads run O_DIRECT, even-indexed buffered.
        return [
            self._thread(lane, index, direct=(index % 2 == 1))
            for index, lane in enumerate(self._lanes)
        ]

    def _thread(self, lane: Region, index: int, direct: bool) -> Generator:
        rng = self.actor_rng(index)
        extents = max(1, lane.pages // self.SEQ_EXTENT_PAGES)
        random_pages = self.DIRECT_RANDOM_PAGES if direct else self.BUFFERED_RANDOM_PAGES
        while True:
            # Sequential write pass.
            for extent in range(extents):
                lpn = lane.start + extent * self.SEQ_EXTENT_PAGES
                pages = min(self.SEQ_EXTENT_PAGES, lane.end - lpn)
                yield from self.op_gate()
                yield from self.op_write(lpn, pages, direct=direct)
                yield from self.think(rng)
            if not direct:
                # Buffered threads fsync at the end of each write pass.
                yield from self.op_gate()
                yield from self.op_fsync(lane.start, lane.pages)
            yield from self._pass_barrier()

            # Random write pass.
            for _ in range(self.RANDOM_OPS_PER_PASS):
                lpn = lane.start + int(rng.integers(0, lane.pages - random_pages))
                yield from self.op_gate()
                yield from self.op_write(lpn, random_pages, direct=direct)
                yield from self.think(rng)
            if not direct:
                yield from self.op_gate()
                yield from self.op_fsync(lane.start, lane.pages)
            yield from self._pass_barrier()

            # Sequential + random read passes.
            for extent in range(0, extents, 2):
                lpn = lane.start + extent * self.SEQ_EXTENT_PAGES
                pages = min(self.SEQ_EXTENT_PAGES, lane.end - lpn)
                yield from self.op_gate()
                yield from self.op_read(lpn, pages)
                yield from self.think(rng)
            for _ in range(self.RANDOM_OPS_PER_PASS // 2):
                lpn = lane.start + int(rng.integers(0, lane.pages - 1))
                yield from self.op_gate()
                yield from self.op_read(lpn, 1)
                yield from self.think(rng)
            yield from self._pass_barrier()
