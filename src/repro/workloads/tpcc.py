"""TPC-C-like workload (OLTP on MySQL/InnoDB).

TPC-C on MySQL is the paper's direct-write extreme: Table 1 measures
99.9 % of write bytes as direct.  InnoDB opens its redo log and table
spaces with ``O_DIRECT``/``O_SYNC``, so *every* transaction's durability
traffic bypasses the page cache:

* each transaction appends 1-2 redo-log pages (sequential, circular,
  synchronous), and
* checkpointing flushes dirty buffer-pool pages -- random single-page
  direct writes with Zipfian skew over the database.

A tiny buffered trickle (error logs, slow-query log) supplies the 0.1 %.
"""

from __future__ import annotations

from typing import Generator, List

from repro.workloads.base import Region, Workload, ZipfGenerator


class TpccWorkload(Workload):
    """OLTP: synchronous redo log plus random direct page flushes."""

    name = "TPC-C"
    paper_buffered_fraction = 0.001

    LOG_PAGES = 256
    #: Buffered trickle: one buffered page per this many transactions.
    BUFFERED_TRICKLE_EVERY = 700

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        actors: int = 6,
        zipf_theta: float = 0.8,
        pages_per_checkpoint: int = 3,
        **kwargs,
    ) -> None:
        # OLTP pacing: transactions are I/O-latency-bound (every commit
        # waits on the redo log) and arrive in long load phases -- the
        # short lulls between phases are where background GC must fit.
        kwargs.setdefault("think_ns", 50_000)
        kwargs.setdefault("phase_on_ns", 5_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        if region.pages <= self.LOG_PAGES + 1:
            raise ValueError("region too small for TPC-C data plus redo log")
        self.actors = actors
        self.pages_per_checkpoint = pages_per_checkpoint
        self.data_region = region.sub(0, region.pages - self.LOG_PAGES)
        self.log_region = region.sub(region.pages - self.LOG_PAGES, self.LOG_PAGES)
        self.zipf = ZipfGenerator(
            self.data_region.pages, zipf_theta, self.streams.numpy("zipf")
        )
        self._log_head = 0
        self._txns = 0

    def _next_log_extent(self, pages: int) -> int:
        if self._log_head + pages > self.log_region.pages:
            self._log_head = 0
        lpn = self.log_region.start + self._log_head
        self._log_head += pages
        return lpn

    def build_actors(self) -> List[Generator]:
        return [self._actor(index) for index in range(self.actors)]

    def _actor(self, index: int) -> Generator:
        rng = self.actor_rng(index)
        zipf = self.zipf.with_rng(rng)
        while True:
            yield from self.op_gate()
            # Transaction: redo-log append (sync) ...
            log_pages = 1 + int(rng.integers(0, 2))
            yield from self.op_write(
                self._next_log_extent(log_pages), log_pages, direct=True
            )
            # ... then a buffer-pool checkpoint flush of hot pages.
            for _ in range(self.pages_per_checkpoint):
                page = self.data_region.start + zipf.sample()
                yield from self.op_write(page, 1, direct=True)
            # Point reads for the transaction's selects.
            page = self.data_region.start + zipf.sample()
            yield from self.op_read(page, 1)

            self._txns += 1
            if self._txns % self.BUFFERED_TRICKLE_EVERY == 0:
                yield from self.op_write(self.data_region.start, 1, direct=False)
            yield from self.think(rng)
