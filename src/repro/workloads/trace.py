"""I/O trace recording and replay.

Traces decouple workload generation from policy evaluation: record one
run's application-level I/O, then replay it bit-identically against any
number of device/policy configurations.  The format is line-oriented
CSV -- ``time_ns,op,lpn,pages,direct`` -- trivially greppable and
diffable.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Generator, Iterable, List, Union

from repro.sim.process import Timeout, WaitFor
from repro.workloads.base import Region, Workload

#: Operations a trace record may carry.
_OPS = ("write", "read", "trim")


@dataclass(frozen=True)
class TraceRecord:
    """One application I/O in a trace."""

    time_ns: int
    op: str            #: "write" | "read" | "trim"
    lpn: int
    pages: int
    direct: bool = False

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {_OPS}")
        if self.time_ns < 0 or self.lpn < 0 or self.pages <= 0:
            raise ValueError(f"invalid trace record {self}")


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records as CSV; returns the count written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_ns", "op", "lpn", "pages", "direct"])
        for record in records:
            writer.writerow(
                [record.time_ns, record.op, record.lpn, record.pages, int(record.direct)]
            )
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a CSV trace; validates every record."""
    out: List[TraceRecord] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            out.append(
                TraceRecord(
                    time_ns=int(row["time_ns"]),
                    op=row["op"],
                    lpn=int(row["lpn"]),
                    pages=int(row["pages"]),
                    direct=bool(int(row["direct"])),
                )
            )
    return out


class TraceRecorder:
    """Subscribe to an :class:`~repro.oskernel.iopath.IoDispatcher` by
    wrapping its write/read/trim methods; collects TraceRecords."""

    def __init__(self, dispatcher, sim) -> None:
        self.records: List[TraceRecord] = []
        self._sim = sim
        self._dispatcher = dispatcher
        self._orig_write = dispatcher.write
        self._orig_read = dispatcher.read
        self._orig_trim = dispatcher.trim
        dispatcher.write = self._write
        dispatcher.read = self._read
        dispatcher.trim = self._trim

    def _write(self, lpn, page_count, direct, on_complete=None):
        self.records.append(
            TraceRecord(self._sim.now, "write", lpn, page_count, direct)
        )
        return self._orig_write(lpn, page_count, direct, on_complete)

    def _read(self, lpn, page_count, on_complete=None):
        self.records.append(TraceRecord(self._sim.now, "read", lpn, page_count))
        return self._orig_read(lpn, page_count, on_complete)

    def _trim(self, lpn, page_count):
        self.records.append(TraceRecord(self._sim.now, "trim", lpn, page_count))
        return self._orig_trim(lpn, page_count)

    def detach(self) -> None:
        """Restore the dispatcher's original methods."""
        self._dispatcher.write = self._orig_write
        self._dispatcher.read = self._orig_read
        self._dispatcher.trim = self._orig_trim


class TraceWorkload(Workload):
    """Replays a trace with its original timing (open-loop).

    Records are issued at their recorded timestamps; if the device lags,
    issuance still follows the trace clock (like ``fio --replay``).
    """

    name = "Trace"

    def __init__(self, host, metrics, region: Region, records: List[TraceRecord], **kwargs):
        super().__init__(host, metrics, region, **kwargs)
        self.records = sorted(records, key=lambda r: r.time_ns)

    def build_actors(self) -> List[Generator]:
        return [self._replayer()]

    def _replayer(self) -> Generator:
        for record in self.records:
            delay = record.time_ns - self.sim.now
            if delay > 0:
                yield Timeout(delay)
            if record.op == "write":
                waiter = WaitFor()
                self.host.dispatcher.write(
                    record.lpn, record.pages, direct=record.direct, on_complete=waiter.wake
                )
                yield waiter
                self.metrics.record_op()
            elif record.op == "read":
                waiter = WaitFor()
                self.host.dispatcher.read(record.lpn, record.pages, on_complete=waiter.wake)
                yield waiter
                self.metrics.record_op()
            else:  # trim
                self.host.dispatcher.trim(record.lpn, record.pages)
                self.metrics.record_op()
