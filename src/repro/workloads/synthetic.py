"""Fully parametric synthetic workload.

The six benchmark models fix their behaviour to match the paper; the
synthetic workload exposes every knob -- write size, direct fraction,
locality skew, read mix, burstiness -- for unit tests, ablation benches
and sensitivity studies.
"""

from __future__ import annotations

from typing import Generator, List

from repro.workloads.base import Region, Workload, ZipfGenerator


class SyntheticWorkload(Workload):
    """Knob-driven generator for controlled experiments.

    Args:
        direct_fraction: probability a write op is direct.
        write_fraction: probability an op is a write (vs read).
        trim_fraction: probability an op is a discard (``lba_discard``,
            the wiscsee verb): a TRIM of a zipf-located extent, so
            discards hit recently-rewritten hot data like real file
            deletions do.  Carved off *before* the write/read split.
        min_pages / max_pages: uniform op-size range (writes, reads and
            discards share it).
        zipf_theta: locality skew; 0 = uniform.
        actors: concurrent closed-loop actors.
    """

    name = "Synthetic"

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        direct_fraction: float = 0.2,
        write_fraction: float = 0.7,
        trim_fraction: float = 0.0,
        min_pages: int = 1,
        max_pages: int = 4,
        zipf_theta: float = 0.9,
        actors: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(host, metrics, region, **kwargs)
        if not 0.0 <= direct_fraction <= 1.0:
            raise ValueError(f"direct_fraction must be in [0,1], got {direct_fraction}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0,1], got {write_fraction}")
        if not 0.0 <= trim_fraction <= 1.0:
            raise ValueError(f"trim_fraction must be in [0,1], got {trim_fraction}")
        if not 1 <= min_pages <= max_pages:
            raise ValueError("need 1 <= min_pages <= max_pages")
        self.direct_fraction = direct_fraction
        self.write_fraction = write_fraction
        self.trim_fraction = trim_fraction
        self.min_pages = min_pages
        self.max_pages = max_pages
        self.actors = actors
        slots = max(1, region.pages - max_pages)
        self.zipf = ZipfGenerator(slots, zipf_theta, self.streams.numpy("zipf"))

    def build_actors(self) -> List[Generator]:
        return [self._actor(index) for index in range(self.actors)]

    def _actor(self, index: int) -> Generator:
        rng = self.actor_rng(index)
        zipf = self.zipf.with_rng(rng)
        while True:
            for _ in range(self.burst_ops):
                lpn = self.region.start + zipf.sample()
                pages = int(rng.integers(self.min_pages, self.max_pages + 1))
                # The trim draw is only taken when discards are enabled,
                # so trim_fraction=0 replays the exact pre-TRIM random
                # stream (existing scenarios stay bit-identical).
                if self.trim_fraction > 0.0 and rng.random() < self.trim_fraction:
                    yield from self.op_trim(lpn, pages)
                elif rng.random() < self.write_fraction:
                    direct = bool(rng.random() < self.direct_fraction)
                    yield from self.op_write(lpn, pages, direct=direct)
                else:
                    yield from self.op_read(lpn, pages)
                yield from self.think(rng)
            yield from self.burst_pause(rng)
