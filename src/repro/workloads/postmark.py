"""Postmark-like workload (mail-server small-file churn).

Postmark models an ISP mail spool: a pool of small files undergoing
create / delete / read / append transactions.  Every namespace mutation
commits a one-page journal record synchronously (the direct share --
Table 1 measures 18.3 % direct), while message bodies are ordinary
buffered writes.

Each actor owns a private :class:`~repro.oskernel.files.SimpleFileSystem`
over a split of the working-set region, so concurrent actors never race
on the same namespace.  File deletion TRIMs extents, making Postmark the
workload with the richest garbage structure (and the paper's largest
SIP-filtering win in Table 3).
"""

from __future__ import annotations

from typing import Generator, List

from repro.oskernel.files import FsError, SimpleFileSystem
from repro.sim.process import WaitFor
from repro.workloads.base import Region, Workload


class PostmarkWorkload(Workload):
    """Small-file create/delete/append/read transactions."""

    name = "Postmark"
    paper_buffered_fraction = 0.817

    MIN_FILE_PAGES = 1
    MAX_FILE_PAGES = 8
    #: Keep the namespace around this utilisation of each actor's region.
    TARGET_UTILISATION = 0.6

    def __init__(
        self,
        host,
        metrics,
        region: Region,
        actors: int = 3,
        initial_files: int = 32,
        **kwargs,
    ) -> None:
        # Mail-server transactions run flat out within load phases; the
        # per-transaction journal commit is the synchronous anchor.
        kwargs.setdefault("think_ns", 20_000)
        kwargs.setdefault("phase_on_ns", 2_000_000_000)
        kwargs.setdefault("phase_off_ns", 2_000_000_000)
        super().__init__(host, metrics, region, **kwargs)
        self.actors = actors
        self.initial_files = initial_files
        self._filesystems: List[SimpleFileSystem] = []
        for sub in region.split(actors):
            self._filesystems.append(
                SimpleFileSystem(
                    host.dispatcher,
                    first_lpn=sub.start,
                    page_count=sub.pages,
                    journal_pages=32,
                )
            )

    def _file_size(self, rng) -> int:
        return int(rng.integers(self.MIN_FILE_PAGES, self.MAX_FILE_PAGES + 1))

    def build_actors(self) -> List[Generator]:
        return [
            self._actor(fs, index) for index, fs in enumerate(self._filesystems)
        ]

    # ------------------------------------------------------------------
    def _fs_write_op(self, action) -> Generator:
        """Run a filesystem mutation whose data write completes async."""
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        action(waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="write", issue_ns=start, queue_depth=depth
        )

    def _actor(self, fs: SimpleFileSystem, index: int) -> Generator:
        rng = self.actor_rng(index)
        # Seed the namespace.
        for _ in range(self.initial_files):
            size = self._file_size(rng)
            if fs.largest_free_extent() <= size:
                break
            yield from self._fs_write_op(
                lambda done, s=size: fs.create(s, on_complete=done)
            )

        # Postmark transaction loop.
        while True:
            yield from self.op_gate()
            yield from self._transaction(fs, rng)
            yield from self.think(rng)

    def _transaction(self, fs: SimpleFileSystem, rng) -> Generator:
        utilisation = 1.0 - fs.free_pages() / max(1, fs.data_pages)
        roll = rng.random()
        file_ids = fs.file_ids()

        if not file_ids or (roll < 0.3 and utilisation < self.TARGET_UTILISATION):
            size = self._file_size(rng)
            if fs.largest_free_extent() > size:
                yield from self._fs_write_op(
                    lambda done, s=size: fs.create(s, on_complete=done)
                )
                return
            roll = 0.5  # fall through to delete pressure

        victim = file_ids[int(rng.integers(0, len(file_ids)))] if file_ids else None
        if victim is None:
            return

        if roll < 0.3 or utilisation >= self.TARGET_UTILISATION:
            # Delete: TRIM plus synchronous journal commit.
            yield from self._fs_write_op(
                lambda done, f=victim: fs.delete(f, on_complete=done)
            )
        elif roll < 0.55:
            append_pages = max(1, self._file_size(rng) // 2)
            try:
                yield from self._fs_write_op(
                    lambda done, f=victim, p=append_pages: fs.append(
                        f, p, on_complete=done
                    )
                )
            except FsError:
                yield from self._fs_write_op(
                    lambda done, f=victim: fs.delete(f, on_complete=done)
                )
        else:
            pages = min(fs.file_pages(victim), self._file_size(rng))
            yield from self._read_op(fs, victim, pages)

    def _read_op(self, fs: SimpleFileSystem, file_id: int, pages: int) -> Generator:
        start = self.sim.now
        depth = self.host.device.queue_depth
        waiter = WaitFor()
        fs.read(file_id, 0, pages, on_complete=waiter.wake)
        yield waiter
        self.metrics.record_op(
            self.sim.now - start, kind="read", issue_ns=start, queue_depth=depth
        )
