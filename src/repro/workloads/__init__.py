"""Workload generators for the paper's six benchmarks plus utilities.

The registry :data:`BENCHMARKS` maps the paper's benchmark names to their
generator classes in the order the paper's tables list them.
"""

from repro.workloads.base import Region, Workload, ZipfGenerator
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.postmark import PostmarkWorkload
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.bonnie import BonnieWorkload
from repro.workloads.tiobench import TiobenchWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import (
    TraceRecord,
    TraceRecorder,
    TraceWorkload,
    load_trace,
    save_trace,
)

#: The paper's benchmark suite, in Table 1 order.
BENCHMARKS = {
    "YCSB": YcsbWorkload,
    "Postmark": PostmarkWorkload,
    "Filebench": FilebenchWorkload,
    "Bonnie++": BonnieWorkload,
    "Tiobench": TiobenchWorkload,
    "TPC-C": TpccWorkload,
}

__all__ = [
    "Region",
    "Workload",
    "ZipfGenerator",
    "YcsbWorkload",
    "PostmarkWorkload",
    "FilebenchWorkload",
    "BonnieWorkload",
    "TiobenchWorkload",
    "TpccWorkload",
    "SyntheticWorkload",
    "TraceRecord",
    "TraceRecorder",
    "TraceWorkload",
    "load_trace",
    "save_trace",
    "BENCHMARKS",
]
