"""Workload generators for the paper's six benchmarks plus utilities.

The registry :data:`BENCHMARKS` maps the paper's benchmark names to their
generator classes in the order the paper's tables list them; the wider
:data:`WORKLOADS` registry adds the non-paper generators (the knob-driven
synthetic workload) for scenario runners that are not reproducing a paper
table -- the Table 1 / Fig. 7 artifact experiments iterate
:data:`BENCHMARKS` and stay unchanged by additions here.
"""

from repro.workloads.base import Region, Workload, ZipfGenerator
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.postmark import PostmarkWorkload
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.bonnie import BonnieWorkload
from repro.workloads.tiobench import TiobenchWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import (
    TraceRecord,
    TraceRecorder,
    TraceWorkload,
    load_trace,
    save_trace,
)

#: The paper's benchmark suite, in Table 1 order.
BENCHMARKS = {
    "YCSB": YcsbWorkload,
    "Postmark": PostmarkWorkload,
    "Filebench": FilebenchWorkload,
    "Bonnie++": BonnieWorkload,
    "Tiobench": TiobenchWorkload,
    "TPC-C": TpccWorkload,
}

#: Every runnable workload: the paper suite plus synthetic generators.
WORKLOADS = {
    **BENCHMARKS,
    "Synthetic": SyntheticWorkload,
}

__all__ = [
    "Region",
    "Workload",
    "ZipfGenerator",
    "YcsbWorkload",
    "PostmarkWorkload",
    "FilebenchWorkload",
    "BonnieWorkload",
    "TiobenchWorkload",
    "TpccWorkload",
    "SyntheticWorkload",
    "TraceRecord",
    "TraceRecorder",
    "TraceWorkload",
    "load_trace",
    "save_trace",
    "BENCHMARKS",
    "WORKLOADS",
]
