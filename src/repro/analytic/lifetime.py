"""Years-to-ECC-cliff lifetime projection (the paper's title claim).

The paper argues JIT-GC's lower WAF buys *long lifetimes*: fewer P/E
cycles per host byte means the drive takes longer to wear to the point
where retention-aged raw bit error rates exceed the ECC.  This module
quantifies that end to end:

1. :func:`max_tolerable_pe` inverts the reliability stack -- given a
   :class:`~repro.nand.reliability.BitErrorModel`, an
   :class:`~repro.nand.reliability.EccConfig`, a retention target (how
   long data must stay readable after programming) and an UBER target
   (uncorrectable bit error rate the product may ship with), it finds
   the largest P/E cycle count whose end-of-retention failure rate
   still meets the target.  The failure rate is monotonic in wear, so a
   bisection over integer P/E counts is exact.

2. :func:`project_lifetime` turns that cycle budget into wall-clock
   years for a measured WAF and a daily host-write volume (drive-writes
   -per-day style accounting)::

       years = max_pe * physical_bytes / (waf * daily_bytes * 365.25)

   Policies enter only through their WAF, which is exactly the paper's
   argument: the GC policy cannot change the physics, only how fast it
   spends the cycle budget.

``repro lifetime-report`` (see :mod:`repro.experiments.lifetimereport`)
runs the policy comparison for the measured WAFs and prints the
JIT-GC-vs-baselines lifetime table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nand.reliability import BitErrorModel, EccConfig, ReliabilityProfile

#: Default reliability targets: one-year retention at 1e-15 UBER is the
#: classic client-SSD JEDEC-style operating point.
DEFAULT_RETENTION_S = 365.25 * 86_400.0
DEFAULT_UBER_TARGET = 1e-15


@dataclass(frozen=True)
class LifetimeModel:
    """ECC-cliff lifetime calculator over a reliability stack.

    Attributes:
        bit_error_model: wear/retention/disturb -> RBER surface.
        ecc: code strength the controller ships.
        page_bytes: physical page size (UBER normalisation).
        retention_target_s: how long data must remain readable after its
            last program; end-of-retention is when the UBER is checked.
        uber_target: uncorrectable bit error rate ceiling at the end of
            the retention window.
    """

    bit_error_model: BitErrorModel = field(default_factory=BitErrorModel)
    ecc: EccConfig = field(default_factory=EccConfig)
    page_bytes: int = 4096
    retention_target_s: float = DEFAULT_RETENTION_S
    uber_target: float = DEFAULT_UBER_TARGET

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ValueError(f"page_bytes must be positive, got {self.page_bytes}")
        if self.retention_target_s < 0:
            raise ValueError(
                f"retention_target_s must be non-negative, got {self.retention_target_s}"
            )
        if not 0.0 < self.uber_target < 1.0:
            raise ValueError(
                f"uber_target must be in (0, 1), got {self.uber_target}"
            )

    @classmethod
    def from_profile(
        cls,
        profile: ReliabilityProfile,
        retention_target_s: float = DEFAULT_RETENTION_S,
        uber_target: float = DEFAULT_UBER_TARGET,
    ) -> "LifetimeModel":
        """Build from the same profile the live subsystem runs."""
        return cls(
            bit_error_model=profile.bit_error_model,
            ecc=profile.ecc,
            page_bytes=profile.page_bytes,
            retention_target_s=retention_target_s,
            uber_target=uber_target,
        )

    def uber_at(self, pe_cycles: float) -> float:
        """Uncorrectable *bit* error rate at end-of-retention wear.

        The page failure probability divided by the page's bits -- the
        standard UBER normalisation (errors per bit read).
        """
        rber = self.bit_error_model.rber(
            pe_cycles, retention_s=self.retention_target_s
        )
        page_fail = self.ecc.page_failure_probability(
            rber, page_bytes=self.page_bytes
        )
        return page_fail / (self.page_bytes * 8)

    def max_tolerable_pe(self, limit: int = 1_000_000) -> int:
        """Largest P/E count meeting the UBER target (0 if even fresh
        cells miss it; ``limit`` when the target never binds below it).

        The RBER surface is monotonically increasing in wear, so the
        failure probability is too; bisect over integers.
        """
        if self.uber_at(0) > self.uber_target:
            return 0
        if self.uber_at(limit) <= self.uber_target:
            return limit
        low, high = 0, limit  # invariant: uber(low) ok, uber(high) not
        while high - low > 1:
            mid = (low + high) // 2
            if self.uber_at(mid) <= self.uber_target:
                low = mid
            else:
                high = mid
        return low


def max_tolerable_pe(
    model: Optional[LifetimeModel] = None, limit: int = 1_000_000
) -> int:
    """Module-level convenience over :meth:`LifetimeModel.max_tolerable_pe`."""
    return (model or LifetimeModel()).max_tolerable_pe(limit=limit)


@dataclass(frozen=True)
class LifetimeProjection:
    """One policy's years-to-ECC-cliff verdict.

    Attributes:
        policy: policy name.
        waf: measured write amplification driving the projection.
        max_pe_cycles: cycle budget from the reliability stack.
        years: projected years until the drive's average block crosses
            the ECC cliff (infinity when nothing is ever written).
    """

    policy: str
    waf: float
    max_pe_cycles: int
    years: float


def project_lifetime(
    policy: str,
    waf: float,
    physical_bytes: int,
    daily_write_bytes: float,
    model: Optional[LifetimeModel] = None,
) -> LifetimeProjection:
    """Years until the cycle budget is spent at the measured WAF.

    Assumes ideal wear levelling (every block ages at the fleet average)
    -- the standard TBW-style endurance arithmetic:
    ``total NAND writes = waf * host writes``, and the device dies when
    ``total NAND writes = max_pe * physical_bytes``.
    """
    if waf < 1.0:
        raise ValueError(f"waf must be >= 1.0, got {waf}")
    if physical_bytes <= 0:
        raise ValueError(f"physical_bytes must be positive, got {physical_bytes}")
    if daily_write_bytes < 0:
        raise ValueError(
            f"daily_write_bytes must be non-negative, got {daily_write_bytes}"
        )
    lifetime_model = model or LifetimeModel()
    max_pe = lifetime_model.max_tolerable_pe()
    if daily_write_bytes == 0:
        years = float("inf")
    else:
        total_nand_bytes = float(max_pe) * physical_bytes
        years = total_nand_bytes / (waf * daily_write_bytes * 365.25)
    return LifetimeProjection(
        policy=policy, waf=waf, max_pe_cycles=max_pe, years=years
    )
