"""Mean-field steady-state predictor (the analytic WAF oracle).

Under sustained uniform-random overwrites with greedy victim selection,
the per-block valid-page fraction ``u`` of a *closed* block converges to
the stationary density of the mean-field model (Li, Lee & Lui,
"Stochastic Modeling of Large-Scale Solid-State Storage Systems"):

    f(u) = 1 / (u * ln(1/u_min))        for u in [u_min, 1]

i.e. blocks drift down in occupancy at a rate proportional to their
occupancy, and greedy GC reclaims exactly the blocks that reach the
floor ``u_min``.  The floor is pinned by capacity conservation: the mean
occupancy over closed blocks must equal the mapped-data share,

    u_bar = (1 - u_min) / ln(1/u_min) = M / (N_closed * pages_per_block)

and every GC collection then frees ``(1 - u_min)`` of a block while
rewriting ``u_min`` of it, giving the classic greedy steady-state

    WAF = 1 / (1 - u_min).

TRIM traffic shrinks the mapped share: with writes and discards mixing
at rates ``w : t`` over the working set, the stationary mapped fraction
is ``m = w / (w + t)`` (Frankie, Lanka, Sun & Zhang, "Analysis of Trim
Commands on Overprovisioning and Write Amplification") -- a discarded
LPN stays unmapped until its next write, so the live-data level the GC
balance sees is ``M = working_set * m``.

Hot/cold skew (Zipf theta) is treated as second order for the
*occupancy distribution*: greedy selection equalises the collection
floor across temperature classes (hot blocks just reach it faster), so
the stationary shape stays ``1/u`` -- the tolerance-validation suite in
``tests/analytic`` bounds the residual error against full simulation.
PERFORMANCE.md documents where the approximation thins out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ftl.space import SpaceModel

#: Free-pool reserve (as Cresv / C_OP) the adaptive policies hover at in
#: simulated steady state.  ADP-GC's CDH targets roughly one write
#: horizon of reclaim headroom and JIT-GC's predictors keep just enough
#: ahead of demand; both calibrate near the OP capacity itself on the
#: reference configs (measured by the tolerance suite).
_POLICY_RESERVE_OVER_OP = {
    "ADP-GC": 1.0,
    "JIT-GC": 1.0,
}
_DEFAULT_RESERVE_OVER_OP = 0.5


@dataclass(frozen=True)
class SteadyStatePrediction:
    """The analytic steady state of one (device, workload, policy) triple.

    Attributes:
        mapped_pages: LPNs holding live data (``M``); the working set
            less the stationary TRIM'd fraction.
        working_set_pages: LPN span the workload touches.
        closed_blocks: fully-programmed blocks GC chooses among.
        free_blocks: erased blocks in the wear-aware pool, *excluding*
            the two open write frontiers.
        u_min: greedy collection floor (valid fraction at which a block
            is reclaimed).
        mean_occupancy: ``u_bar``, mean valid fraction of closed blocks.
        waf: predicted steady-state write amplification
            ``1 / (1 - u_min)``.
        valid_counts: per-closed-block valid-page counts -- a stratified
            (deterministic inverse-CDF) sample of the ``1/u`` density,
            ascending, summing exactly to ``mapped_pages``.
        free_page_target: free-page level the BGC policy defends (the
            reserve the free pool is sized from).
        window_write_bytes: expected host-write volume per write-back
            horizon -- the value CDH-based policies seed their windows
            with so their percentile targets open consistent with the
            installed free pool.
        mapped_fraction: stationary mapped share ``m = w / (w + t)``.
    """

    mapped_pages: int
    working_set_pages: int
    closed_blocks: int
    free_blocks: int
    u_min: float
    mean_occupancy: float
    waf: float
    valid_counts: np.ndarray
    free_page_target: int
    window_write_bytes: int
    mapped_fraction: float


def solve_u_min(mean_occupancy: float, tol: float = 1e-12) -> float:
    """Invert ``u_bar = (1 - u) / ln(1/u)`` for the collection floor.

    The right-hand side increases monotonically from 0 (u -> 0) to 1
    (u -> 1), so bisection converges unconditionally.
    """
    if not 0.0 < mean_occupancy < 1.0:
        raise ValueError(
            f"mean occupancy must be in (0, 1), got {mean_occupancy}"
        )
    lo, hi = 1e-15, 1.0 - 1e-15
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        value = (1.0 - mid) / math.log(1.0 / mid)
        if value < mean_occupancy:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


def occupancy_quantile(u_min: float, q: np.ndarray) -> np.ndarray:
    """Inverse CDF of the stationary ``1/u`` density on [u_min, 1].

    ``F(u) = ln(u / u_min) / ln(1 / u_min)`` inverts to
    ``u(q) = u_min ** (1 - q)``.
    """
    return np.power(u_min, 1.0 - np.asarray(q, dtype=np.float64))


def _stratified_valid_counts(
    u_min: float, closed_blocks: int, pages_per_block: int, mapped_pages: int
) -> np.ndarray:
    """Deterministic per-block valid counts matching the 1/u density.

    Stratified sampling (one quantile per block at ``q = (i+0.5)/N``)
    rather than random draws: the synthesized image is then a pure
    function of the scenario parameters, and the sample's mean is
    already within half a page of the analytic mean.  The residual
    rounding error is spread one page at a time from the extremes so the
    counts still sum to exactly ``mapped_pages``.
    """
    n = closed_blocks
    q = (np.arange(n, dtype=np.float64) + 0.5) / n
    counts = np.rint(occupancy_quantile(u_min, q) * pages_per_block).astype(np.int64)
    np.clip(counts, 0, pages_per_block, out=counts)
    deficit = int(mapped_pages - counts.sum())
    # Correct the rounding drift: +1 page starting from the emptiest
    # blocks (they have headroom), -1 starting from the fullest.
    step = 1 if deficit > 0 else -1
    order = range(n) if deficit > 0 else range(n - 1, -1, -1)
    remaining = abs(deficit)
    while remaining > 0:
        adjusted = False
        for i in order:
            if remaining == 0:
                break
            new = counts[i] + step
            if 0 <= new <= pages_per_block:
                counts[i] = new
                remaining -= 1
                adjusted = True
        if not adjusted:  # pragma: no cover - capacity checked upstream
            raise ValueError("cannot reconcile valid counts with mapped pages")
    return counts.astype(np.int32)


def policy_reserve_pages(space: SpaceModel, policy, mapped_pages: int) -> int:
    """Free-page level ``policy`` defends at steady state.

    Fixed-reserve policies expose ``cresv_over_op`` directly (the Fig. 2
    x-axis); the adaptive policies hover at a calibrated multiple of the
    OP capacity (:data:`_POLICY_RESERVE_OVER_OP`).  Clamped by the
    paper's ``Cresv <= Cunused + C_OP`` rule, exactly as the live
    policies clamp their targets.
    """
    cresv = getattr(policy, "cresv_over_op", None)
    if cresv is None:
        name = getattr(policy, "name", "")
        cresv = _POLICY_RESERVE_OVER_OP.get(name, _DEFAULT_RESERVE_OVER_OP)
    requested = space.reserved_pages(cresv)
    return space.clamp_reserved_pages(requested, mapped_pages)


def predict_steady_state(
    space: SpaceModel,
    *,
    working_set_pages: int,
    policy=None,
    trim_fraction: float = 0.0,
    write_fraction: float = 1.0,
    zipf_theta: float = 0.0,
    good_blocks: int | None = None,
    flusher_period_ns: int | None = None,
) -> SteadyStatePrediction:
    """Predict the steady state for one scenario.

    Args:
        space: the device's capacity split.
        working_set_pages: LPN span the workload overwrites.
        policy: the GC policy (duck-typed: ``cresv_over_op`` / ``name``
            are read if present); None assumes the lazy default reserve.
        trim_fraction / write_fraction: per-operation discard and write
            probabilities of the workload mix (the ``t`` and ``w``
            rates of the Frankie et al. stationary mapped fraction).
        zipf_theta: locality skew; second-order here (see module doc),
            accepted so callers state their workload fully.
        good_blocks: usable physical blocks (defaults to all of them).
        flusher_period_ns: write-back period, used to scale the CDH
            seeding hint; None leaves the hint at one reserve's worth.

    Raises:
        ValueError: the working set cannot reach a GC steady state on
            this device (no closed-block population, or occupancy >= 1
            -- i.e. the live data plus the policy reserve exceed the
            physical capacity).
    """
    del zipf_theta  # second-order for the stationary shape; see module doc
    geometry = space.geometry
    ppb = geometry.pages_per_block
    total_blocks = geometry.total_blocks if good_blocks is None else good_blocks

    if not 0 <= working_set_pages <= space.user_pages:
        raise ValueError(
            f"working set {working_set_pages} outside [0, {space.user_pages}]"
        )
    if trim_fraction < 0 or write_fraction < 0:
        raise ValueError("operation fractions must be non-negative")
    if trim_fraction > 0 and write_fraction <= 0:
        raise ValueError("trim_fraction > 0 requires write_fraction > 0")

    mapped_fraction = (
        write_fraction / (write_fraction + trim_fraction)
        if trim_fraction > 0
        else 1.0
    )
    mapped_pages = int(round(working_set_pages * mapped_fraction))
    if mapped_pages <= 0:
        raise ValueError("steady state needs a non-empty mapped working set")

    free_page_target = policy_reserve_pages(space, policy, mapped_pages)
    # The pool holds whole blocks; the two open frontiers contribute the
    # rest of the policy's free-page level, so the pool itself rounds to
    # at least one block of headroom above the FGC watermark.
    free_blocks = max(1, round(free_page_target / ppb))

    closed_blocks = total_blocks - free_blocks - 2  # 2 open frontiers
    if closed_blocks <= 0:
        raise ValueError(
            f"no closed-block population: {total_blocks} good blocks, "
            f"{free_blocks} reserved free, 2 frontiers"
        )
    mean_occupancy = mapped_pages / (closed_blocks * ppb)
    if mean_occupancy >= 1.0:
        raise ValueError(
            f"mapped data ({mapped_pages} pages) does not fit the closed-block "
            f"population ({closed_blocks * ppb} pages) at the policy reserve -- "
            "no steady state exists"
        )

    u_min = solve_u_min(mean_occupancy)
    waf = 1.0 / (1.0 - u_min)
    valid_counts = _stratified_valid_counts(u_min, closed_blocks, ppb, mapped_pages)

    # CDH seeding hint: the reserve the policy defends, expressed as the
    # write volume whose reclaim keeps the pool there.  Self-consistent
    # with the installed free pool, so a CDH-driven policy's first
    # percentile reads open with ~zero excess reclaim demand.
    del flusher_period_ns  # reserved for horizon-scaled refinements
    window_write_bytes = free_page_target * geometry.page_size

    return SteadyStatePrediction(
        mapped_pages=mapped_pages,
        working_set_pages=working_set_pages,
        closed_blocks=closed_blocks,
        free_blocks=free_blocks,
        u_min=u_min,
        mean_occupancy=mean_occupancy,
        waf=waf,
        valid_counts=valid_counts,
        free_page_target=free_page_target,
        window_write_bytes=window_write_bytes,
        mapped_fraction=mapped_fraction,
    )
