"""Warm-start synthesizer: materialise the predicted steady state.

:func:`synthesize_steady_state` turns a
:class:`~repro.analytic.model.SteadyStatePrediction` into a *live
device*: it writes the int32 NAND state vectors (``block_states``,
``program_ptr``, erase counts), stamps every synthesized page's OOB
``(lpn, seq)`` slot, builds the L2P table, and hands the lot to
:class:`~repro.ftl.ftl.PageMappedFtl` through the same ``recovered=``
installation path power-on recovery uses -- so the valid-count min-heap,
SIP counters, wear-aware free pool and write frontiers are rebuilt by
the exact code that rebuilds them after a real power cycle, and the
result must pass the same ``invariant_check()``.

The synthesized image is *recoverable by construction*: OOB stamps are
laid out so a full-device scan (or a checkpoint-bounded tail scan)
reproduces the installed L2P exactly.  Per closed block the live pages
sit at the tail offsets ``[ppb - v, ppb)`` and the overwritten (stale)
pages at ``[0, ppb - v)``, keeping within-block sequence numbers
monotonic as real programs would have left them; stale stamps reuse
currently-mapped LPNs with strictly older sequence numbers, so
newest-stamp-wins replay never resurrects an unmapped LPN.

Everything is a pure function of ``(config, seed, scenario knobs)``:
the only randomness is a generator derived from the scenario seed via
the :class:`~repro.sim.randomness.RandomStreams` convention, so two
synthesized devices from equal inputs are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analytic.model import SteadyStatePrediction, predict_steady_state
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.mapping import TRANS_LPN_BASE, UNMAPPED
from repro.ftl.recovery import RecoveredFtlState
from repro.nand.array import STATE_BAD, STATE_FULL, STATE_OPEN
from repro.sim.randomness import RandomStreams
from repro.ssd.config import SsdConfig

#: Device-fills of host data the synthesized wear level corresponds to
#: (prefill writes the working set once, then churns it down to the OP
#: floor -- about one more working-set pass through the GC loop).
_SYNTH_FILL_PASSES = 2.0


def workload_mix_hints(workload: str, workload_kwargs: dict) -> dict:
    """Extract the predictor's workload-mix knobs from a scenario.

    The synthetic generator carries its mix explicitly; the paper
    benchmarks issue no discards, so their stationary mapped fraction
    is 1 and only the (second-order) skew hint varies.
    """
    if workload == "Synthetic":
        return {
            "trim_fraction": workload_kwargs.get("trim_fraction", 0.0),
            "write_fraction": workload_kwargs.get("write_fraction", 0.7),
            "zipf_theta": workload_kwargs.get("zipf_theta", 0.9),
        }
    return {"trim_fraction": 0.0, "write_fraction": 1.0, "zipf_theta": 0.99}


def _ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(n) for n in lengths])`` without the loop."""
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return np.arange(total, dtype=np.int64) - starts


def synthesize_steady_state(
    config: SsdConfig,
    *,
    seed: int,
    working_set_pages: int,
    policy=None,
    trim_fraction: float = 0.0,
    write_fraction: float = 1.0,
    zipf_theta: float = 0.0,
    registry=None,
) -> Tuple[PageMappedFtl, SteadyStatePrediction]:
    """Build a device already at its predicted steady state.

    Returns ``(ftl, prediction)``; the FTL has passed
    ``invariant_check()`` and is ready to serve I/O.  The caller (the
    experiment runner) hands it to :class:`~repro.host.HostSystem` via
    ``ftl=`` and seeds CDH-based policies from ``prediction``.

    Raises:
        ValueError: no steady state exists for these parameters (see
            :func:`~repro.analytic.model.predict_steady_state`).
    """
    nand = config.build_nand(seed=seed)
    space = config.space_model()
    geometry = config.geometry
    ppb = geometry.pages_per_block

    good = np.flatnonzero(nand.block_states != STATE_BAD).astype(np.int64)
    prediction = predict_steady_state(
        space,
        working_set_pages=working_set_pages,
        policy=policy,
        trim_fraction=trim_fraction,
        write_fraction=write_fraction,
        zipf_theta=zipf_theta,
        good_blocks=int(good.size),
    )

    rng = RandomStreams(seed).numpy("analytic-warmstart")
    n_closed = prediction.closed_blocks
    closed = good[:n_closed]
    free_list = good[n_closed:]  # prediction.free_blocks + 2 frontier blocks

    # Decorrelate occupancy from block number: the stratified counts are
    # ascending, and leaving them that way would make victim rank a
    # staircase of block indices.
    valid = prediction.valid_counts[rng.permutation(n_closed)].astype(np.int64)
    stale = ppb - valid
    stale_total = int(stale.sum())
    mapped_total = int(valid.sum())

    # Physical layout, in global (block, page) order: stale pages fill
    # each closed block's head, live pages its tail.
    live_ppns = (
        np.repeat(closed, valid) * ppb + np.repeat(stale, valid) + _ragged_arange(valid)
    )
    stale_ppns = np.repeat(closed, stale) * ppb + _ragged_arange(stale)

    # Mapped LPNs: a seed-deterministic draw of the stationary mapped
    # subset of the working set, already shuffled across the live slots.
    mapped_lpns = rng.permutation(working_set_pages)[:mapped_total].astype(np.int64)

    nand.block_states[closed] = STATE_FULL
    nand.program_ptr[closed] = ppb
    nand.oob_lpn[stale_ppns] = mapped_lpns[np.arange(stale_total) % mapped_total]
    nand.oob_seq[stale_ppns] = np.arange(stale_total, dtype=np.int64)
    nand.oob_lpn[live_ppns] = mapped_lpns
    nand.oob_seq[live_ppns] = stale_total + np.arange(mapped_total, dtype=np.int64)

    # Uniform synthetic wear: the erase work of filling and churning the
    # device to its logically-full state, spread evenly (the prefill's
    # uniform overwrites produce no wear skew worth modelling).
    fills = _SYNTH_FILL_PASSES * working_set_pages * prediction.waf
    per_block = max(1, int(round(fills / (good.size * ppb))))
    nand.endurance.erase_counts[good] = per_block
    nand.endurance.total_erases = int(nand.endurance.erase_counts.sum())

    l2p = np.full(space.user_pages, UNMAPPED, dtype=np.int64)
    l2p[mapped_lpns] = live_ppns
    write_seq = stale_total + mapped_total

    # DFTL: lay the translation tier out on NAND too.  Every translation
    # page the working set spans gets a fully-valid on-NAND copy, packed
    # sequentially into blocks taken from the free-pool head; the GTD
    # points at them and their OOB stamps (TRANS_LPN_BASE + tvpn, seq)
    # continue the data sequence, so a full-device scan rebuilds this
    # exact GTD -- the image stays recoverable by construction.  A
    # partial last block becomes the open translation frontier.
    gtd = None
    active_trans: Optional[int] = None
    trans_closed: np.ndarray = np.zeros(0, dtype=np.int64)
    if config.mapping_mode == "dftl":
        ept = geometry.page_size // 8
        n_tvpn_total = -(-space.user_pages // ept)
        n_tvpn = min(n_tvpn_total, -(-working_set_pages // ept))
        n_tblocks = -(-n_tvpn // ppb)
        if n_tblocks >= free_list.size:
            raise ValueError(
                f"free pool too small to lay out {n_tblocks} translation "
                f"blocks (only {free_list.size} free blocks)"
            )
        tblocks = free_list[:n_tblocks]
        free_list = free_list[n_tblocks:]
        slots = np.arange(n_tvpn, dtype=np.int64)
        t_ppns = tblocks[slots // ppb] * ppb + slots % ppb
        nand.oob_lpn[t_ppns] = TRANS_LPN_BASE + slots
        nand.oob_seq[t_ppns] = write_seq + slots
        write_seq += n_tvpn
        remainder = n_tvpn % ppb
        if remainder:
            full_tblocks = tblocks[:-1]
            active_trans = int(tblocks[-1])
            nand.block_states[active_trans] = STATE_OPEN
            nand.program_ptr[active_trans] = remainder
        else:
            full_tblocks = tblocks
        nand.block_states[full_tblocks] = STATE_FULL
        nand.program_ptr[full_tblocks] = ppb
        trans_closed = full_tblocks
        gtd = np.full(n_tvpn_total, UNMAPPED, dtype=np.int64)
        gtd[:n_tvpn] = t_ppns

    recovered = RecoveredFtlState(
        l2p=l2p,
        free_blocks=[int(b) for b in free_list],
        closed_blocks=[int(b) for b in closed] + [int(b) for b in trans_closed],
        retired_blocks=set(),
        active_user_block=None,
        active_gc_block=None,
        write_seq=write_seq,
        checkpoint_generation=0,
        gtd=gtd,
        active_trans_block=active_trans,
    )
    ftl = config.build_ftl(
        seed=seed, registry=registry, nand=nand, recovered=recovered
    )
    ftl.invariant_check()
    return ftl, prediction
