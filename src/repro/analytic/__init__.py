"""Mean-field steady-state analysis and analytic warm-start.

Two halves, used together or separately:

* :mod:`repro.analytic.model` -- a closed-form predictor of the
  steady-state an SSD converges to under sustained random-overwrite
  traffic: the valid-page occupancy distribution over closed blocks,
  the minimum occupancy a greedy victim selector sees, the resulting
  write amplification, and the free-pool level a BGC policy holds.
  This is the analytic WAF oracle (ROADMAP item 3), following the
  mean-field model of Li, Lee & Lui and the TRIM extension of
  Frankie et al. (PAPERS.md).

* :mod:`repro.analytic.warmstart` -- a synthesizer that materialises
  that prediction directly into the SoA data plane (NAND state
  vectors, OOB stamps, L2P table, valid-count index, free pool), so
  experiments start *at* steady state instead of simulating their way
  into it (``--warm-start analytic``).

* :mod:`repro.analytic.lifetime` -- the years-to-ECC-cliff projection
  closing the paper's title claim: UBER target -> max tolerable P/E at
  the retention target, then measured WAF -> years of service
  (``repro lifetime-report``).
"""

from repro.analytic.lifetime import (
    LifetimeModel,
    LifetimeProjection,
    max_tolerable_pe,
    project_lifetime,
)
from repro.analytic.model import SteadyStatePrediction, predict_steady_state
from repro.analytic.warmstart import synthesize_steady_state

__all__ = [
    "LifetimeModel",
    "LifetimeProjection",
    "SteadyStatePrediction",
    "max_tolerable_pe",
    "predict_steady_state",
    "project_lifetime",
    "synthesize_steady_state",
]
