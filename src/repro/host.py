"""Host-system assembly: one call builds the whole paper testbed.

:class:`HostSystem` wires together the simulator, the SSD device (with
the policy's victim selector installed), the page cache, the flusher
thread and the I/O dispatcher, then attaches the GC policy -- the
software stack of the paper's Fig. 3(b) in one object.

The capacity ratios default to the paper's testbed scaled down: a 240 GB
SSD driven by a PC with 8 GB of RAM gives a page-cache-to-SSD ratio of
1/30, which is preserved at any device scale.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import GcPolicy
from repro.obs import Observability
from repro.oskernel.cache import PageCache
from repro.oskernel.flusher import FlusherThread
from repro.oskernel.iopath import IoDispatcher
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.ssd.device import SsdDevice


class HostSystem:
    """A complete simulated host + SSD running one GC policy.

    Args:
        config: device configuration (shared across compared policies).
        policy: the GC policy under test.
        seed: root seed for all randomness (workloads fork from it).
        cache_bytes: page-cache capacity; defaults to 1/4 of the user
            capacity -- the paper's "ample RAM" regime where dirty data
            ages out (tau_expire flushing) rather than being forced out
            by volume pressure, which is the regime its buffered-write
            predictor (and its 90-99 % accuracies) presumes.
        flusher_period_ns: the write-back period ``p`` (paper: 5 s; the
            scaled default scenarios use 1 s, keeping ``Nwb = 6``).
        tau_expire_ns: dirty-age threshold (paper: 30 s; scaled: 6 s).
        dirty_throttle_fraction: dirty share of the cache beyond which
            buffered writers block.
        tau_flush_fraction: dirty share of the cache that triggers
            volume flushing (kept high so age flushing dominates).
        obs: observability for the run -- an
            :class:`~repro.obs.Observability`, an
            :class:`~repro.obs.ObservabilityConfig`, or None for the
            disabled default (real metrics registry, no-op tracer).
        ftl: pre-built FTL to serve instead of formatting a fresh device
            -- the power-loss path passes the *recovered* FTL here.  Its
            clock is rebound to this host's simulator.
        start_time_ns: initial simulated time (power-loss recovery
            resumes the pre-cut timeline: cut time + recovery scan).
    """

    def __init__(
        self,
        config: SsdConfig,
        policy: GcPolicy,
        seed: int = 42,
        cache_bytes: Optional[int] = None,
        flusher_period_ns: int = SECOND,
        tau_expire_ns: int = 6 * SECOND,
        dirty_throttle_fraction: float = 0.8,
        tau_flush_fraction: float = 0.6,
        obs=None,
        ftl=None,
        start_time_ns: int = 0,
    ) -> None:
        self.config = config
        self.policy = policy
        self.sim = Simulator()
        if start_time_ns:
            self.sim.resume_at(start_time_ns)
        self.streams = RandomStreams(seed)
        self.obs = Observability.resolve(obs)

        selector = policy.make_victim_selector()
        self.device = SsdDevice(
            self.sim,
            config,
            victim_selector=selector,
            controller=policy,
            seed=seed,
            registry=self.obs.registry,
            ftl=ftl,
        )
        if ftl is not None:
            # The recovered FTL was built before this simulator existed;
            # rebind its clock so block ages and audit records continue
            # on the resumed timeline.
            sim = self.sim
            ftl._clock = lambda: sim.now
            if selector is not None:
                # A pre-built FTL bypasses SsdDevice's selector install;
                # wire the policy's selector in here so victim ranking
                # (and its SIP statistics) track the *attached* policy,
                # not a default selector.
                ftl.victim_selector = selector

        page_size = config.geometry.page_size
        if cache_bytes is None:
            cache_bytes = max(page_size * 64, config.user_bytes // 4)
        self.cache = PageCache(
            page_size, cache_bytes, dirty_throttle_fraction=dirty_throttle_fraction
        )
        self.flusher = FlusherThread(
            self.sim,
            self.cache,
            self.device,
            period_ns=flusher_period_ns,
            tau_expire_ns=tau_expire_ns,
            tau_flush_pages=max(1, int(self.cache.capacity_pages * tau_flush_fraction)),
        )
        self.dispatcher = IoDispatcher(self.sim, self.cache, self.device)

        policy.attach(self.sim, self.device, self.cache, self.flusher)
        self.flusher.start()
        self.obs.install(self)

    # ------------------------------------------------------------------
    @property
    def ftl(self):
        return self.device.ftl

    @property
    def user_pages(self) -> int:
        return self.ftl.space.user_pages

    def prefill(self, pages: int, stride: int = 1, age: bool = True) -> None:
        """Pre-condition the device: write ``pages`` logical pages
        directly through the FTL in zero simulated time.

        Gives every compared policy an identical aged starting state
        without burning simulated hours on the fill:

        1. the working set (``pages`` LPNs) is written once, so
           ``Cused`` matches the benchmark setup; then
        2. with ``age=True``, random overwrites churn the working set
           until the free capacity is down to roughly the OP capacity --
           the "logically full" steady state a deployed SSD lives in,
           where every spare block holds garbage and GC policy actually
           matters.

        Call before starting any workload.
        """
        if pages > self.user_pages:
            raise ValueError(
                f"prefill of {pages} pages exceeds user capacity {self.user_pages}"
            )
        for lpn in range(0, pages * stride, stride):
            self.ftl.host_write_page(lpn % self.user_pages)
        if not age or pages == 0:
            return
        rng = self.streams.numpy("prefill-churn")
        ftl = self.ftl
        floor = ftl.space.op_pages + 2 * self.config.geometry.pages_per_block
        while ftl.free_pages() > floor:
            batch = rng.integers(0, pages, size=1024)
            for lpn in batch:
                ftl.host_write_page(int(lpn) * stride % self.user_pages)
                if ftl.free_pages() <= floor:
                    break

    def run_for(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.sim.run_until(self.sim.now + duration_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HostSystem policy={self.policy.name} t={self.sim.now}>"
