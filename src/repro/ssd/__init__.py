"""SSD device model.

Combines the NAND array and the FTL into a timed device with a request
queue, idle-time background GC and the paper's extended host interface:

* :mod:`repro.ssd.config` -- scenario-level device configuration.
* :mod:`repro.ssd.request` -- host I/O request objects.
* :mod:`repro.ssd.bandwidth` -- online ``Bw`` / ``Bgc`` estimators used by
  the JIT-GC manager's ``Tidle``/``Tgc`` computation.
* :mod:`repro.ssd.device` -- :class:`SsdDevice`: queueing, service,
  idle-time BGC driven by a pluggable reclaim controller.
* :mod:`repro.ssd.interface` -- :class:`ExtendedHostInterface`, the
  SG_IO-style custom commands (Cfree query, SIP-list download, explicit
  BGC invocation, WAF profiling).
"""

from repro.ssd.config import SsdConfig
from repro.ssd.request import IoRequest, IoKind
from repro.ssd.bandwidth import BandwidthEstimator
from repro.ssd.device import SsdDevice, ReclaimController
from repro.ssd.interface import ExtendedHostInterface

__all__ = [
    "SsdConfig",
    "IoRequest",
    "IoKind",
    "BandwidthEstimator",
    "SsdDevice",
    "ReclaimController",
    "ExtendedHostInterface",
]
