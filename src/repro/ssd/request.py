"""Host I/O requests.

An :class:`IoRequest` addresses a contiguous LPN extent.  The ``kind``
records how the request entered the device -- directly from the
application (``DIRECT``), from the page-cache flusher (``WRITEBACK``) or
as a read/trim -- which the experiments use to attribute traffic (the
paper's Table 1 write-type breakdown) and which the predictors use to
separate their two estimation paths.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

_request_ids = itertools.count()


class IoKind(enum.Enum):
    """How a request entered the device."""

    READ = "read"
    DIRECT_WRITE = "direct_write"      #: O_SYNC / O_DIRECT application write
    WRITEBACK = "writeback"            #: page-cache flusher write
    TRIM = "trim"


@dataclass
class IoRequest:
    """One host command against a contiguous logical extent.

    Attributes:
        kind: request class, see :class:`IoKind`.
        lpn: first logical page number.
        page_count: extent length in pages.
        on_complete: optional callback invoked with this request when the
            device finishes service.
        submit_time / start_time / complete_time: filled by the device for
            latency accounting (integer nanoseconds; -1 = not yet).
    """

    kind: IoKind
    lpn: int
    page_count: int
    on_complete: Optional[Callable[["IoRequest"], None]] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    submit_time: int = -1
    start_time: int = -1
    complete_time: int = -1

    def __post_init__(self) -> None:
        if self.page_count <= 0:
            raise ValueError(f"page_count must be positive, got {self.page_count}")
        if self.lpn < 0:
            raise ValueError(f"lpn must be >= 0, got {self.lpn}")

    @property
    def lpns(self) -> List[int]:
        """The logical pages touched, in order."""
        return list(range(self.lpn, self.lpn + self.page_count))

    @property
    def is_write(self) -> bool:
        return self.kind in (IoKind.DIRECT_WRITE, IoKind.WRITEBACK)

    def latency(self) -> int:
        """Submit-to-complete latency; valid after completion."""
        if self.complete_time < 0 or self.submit_time < 0:
            raise ValueError("request not completed yet")
        return self.complete_time - self.submit_time

    def bytes_size(self, page_size: int) -> int:
        return self.page_count * page_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<IoRequest #{self.request_id} {self.kind.value} "
            f"lpn={self.lpn}+{self.page_count}>"
        )
