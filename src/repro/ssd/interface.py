"""The extended host interface (paper Secs 3.1 and 4.1).

The real implementation extends the SM843T's host interface with custom
SG_IO (SCSI generic I/O) commands so the host-side JIT-GC modules can:

* query the free capacity ``Cfree``,
* download a SIP (soon-to-be-invalidated page) list,
* explicitly invoke BGC for a requested reclaim amount, and
* read profiling data such as the WAF.

:class:`ExtendedHostInterface` models that command set, including the
measured ~160 microseconds of per-command SG_IO overhead (paper Sec 4.1).
Commands are control-plane: they do not occupy the device's data path but
their overhead is accumulated for reporting.
"""

from __future__ import annotations

from typing import Iterable

from repro.ftl.stats import FtlStats
from repro.nand.endurance import WearStats
from repro.sim.simtime import MICROSECOND
from repro.ssd.device import SsdDevice


class ExtendedHostInterface:
    """SG_IO-style command channel between host modules and the SSD.

    All host-resident policy code (the future-write-demand predictor and
    the JIT-GC manager) talks to the device exclusively through this
    object, mirroring Fig. 3(b) of the paper where both modules run in the
    Linux kernel and command the mostly-unmodified SM843T firmware.
    """

    #: Measured SG_IO ioctl round-trip overhead (paper Sec 4.1).
    COMMAND_OVERHEAD_NS = 160 * MICROSECOND

    def __init__(self, device: SsdDevice) -> None:
        self.device = device
        #: Number of extended commands issued.
        self.commands_issued = 0
        #: Total host-side overhead spent on extended commands.
        self.overhead_ns = 0

    def _charge(self) -> None:
        self.commands_issued += 1
        self.overhead_ns += self.COMMAND_OVERHEAD_NS

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def query_free_capacity(self) -> int:
        """``Cfree`` in bytes (paper Sec 3.3)."""
        self._charge()
        return self.device.free_bytes()

    def set_sip_list(self, lpns: Iterable[int]) -> None:
        """Download the SIP list for GC victim filtering (paper Sec 3.1)."""
        self._charge()
        self.device.ftl.set_sip_list(lpns)

    def invoke_bgc(self) -> None:
        """Explicit BGC invocation command.

        The reclaim amount itself is communicated through the policy's
        reclaim controller (the device consults it when idle); this
        command wakes an idle device so it re-reads the demand now.
        """
        self._charge()
        self.device.kick_bgc()

    # ------------------------------------------------------------------
    # Profiling functions (paper Sec 4.1)
    # ------------------------------------------------------------------
    def get_waf(self) -> float:
        self._charge()
        return self.device.ftl.stats.waf()

    def get_ftl_stats(self) -> FtlStats:
        self._charge()
        return self.device.ftl.stats.snapshot()

    def get_wear_stats(self) -> WearStats:
        self._charge()
        return self.device.ftl.nand.wear_stats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExtendedHostInterface commands={self.commands_issued}>"
