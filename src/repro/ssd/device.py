"""The timed SSD device: queueing, service and idle-time background GC.

:class:`SsdDevice` serializes host requests through a FIFO queue, charges
each one the NAND latency the FTL reports (scaled by the configured
channel parallelism) and -- whenever the queue drains -- consults a
pluggable :class:`ReclaimController` to decide whether to spend the idle
time collecting blocks in the background.  All GC-policy differences in
this reproduction live in the controller (see :mod:`repro.core.policies`);
the device mechanics are identical across policies, exactly as on the real
SM843T where the firmware is fixed and the host drives BGC through the
extended interface.

Background GC runs one victim block at a time, so an arriving host request
waits at most one block-collection before being served -- the standard
preemption granularity of real drives.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.ftl.victim import VictimSelector
from repro.obs.audit import DISABLED_AUDIT, GcSpanRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_DEVICE, PRIORITY_LOW
from repro.sim.simtime import MICROSECOND
from repro.ssd.bandwidth import BandwidthEstimator
from repro.ssd.config import SsdConfig
from repro.ssd.request import IoKind, IoRequest


class ReclaimController:
    """Decides how much space BGC should reclaim right now.

    The device calls :meth:`reclaim_demand_pages` whenever it goes idle
    (and again after each collected block).  Returning 0 means "stay
    idle".  Subclasses implement the paper's policies.
    """

    def reclaim_demand_pages(self, device: "SsdDevice") -> int:
        """Pages of free space the controller still wants reclaimed."""
        return 0

    def on_block_collected(self, device: "SsdDevice", freed_pages: int) -> None:
        """Notification after each BGC block (freed_pages = net gain)."""


class SsdDevice:
    """A simulated SSD with the paper's BGC hooks.

    Args:
        sim: shared simulator.
        config: device configuration.
        victim_selector: GC victim policy handed to the FTL.
        controller: background-reclaim controller (may be set later via
            :attr:`controller`).
        seed: scenario seed forwarded to the FTL build (drives the fault
            injector when the config carries a fault profile).
        registry: shared metrics registry handed down to the FTL (the
            host system passes its Observability registry here so the
            whole stack reports into one instrument namespace).
        ftl: pre-built FTL to adopt instead of building a fresh one --
            the power-loss path hands a *recovered* FTL here so the new
            device serves the surviving state.  The caller must have
            built it against the same config (and with a sim-now clock).
    """

    #: Fixed service latency of a TRIM command.
    TRIM_LATENCY_NS = 20 * MICROSECOND

    def __init__(
        self,
        sim: Simulator,
        config: SsdConfig,
        victim_selector: Optional[VictimSelector] = None,
        controller: Optional[ReclaimController] = None,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        ftl=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ftl = ftl if ftl is not None else config.build_ftl(
            victim_selector=victim_selector,
            clock=lambda: sim.now,
            seed=seed,
            registry=registry,
        )
        self.controller = controller
        self.parallelism = max(1, config.channel_parallelism)
        #: Sim-time tracer; replaced by Observability.install when tracing.
        self.tracer = NULL_TRACER
        #: Decision audit; replaced by Observability.install when auditing.
        #: The device records GC occupancy spans (FGC stalls, BGC blocks,
        #: wear-level moves) for tail-latency attribution.
        self.audit = DISABLED_AUDIT

        self._queue: Deque[IoRequest] = deque()
        self._busy = False
        self._bgc_active = False
        #: Invalidates pending idle checks whenever host activity occurs.
        self._idle_token = 0

        timing = config.timing
        page = config.geometry.page_size
        write_prior = page * self.parallelism * 1e9 / timing.host_program_ns()
        gc_prior = page * self.parallelism * 1e9 / timing.migrate_page_ns()
        #: Online estimate of host-write bandwidth (the manager's ``Bw``).
        self.write_bandwidth = BandwidthEstimator(write_prior)
        #: Online estimate of GC reclaim bandwidth (the manager's ``Bgc``).
        self.gc_bandwidth = BandwidthEstimator(gc_prior)

        #: Completion listeners (metrics collectors subscribe here).
        self.completion_listeners: List[Callable[[IoRequest], None]] = []

        # Busy-time accounting.
        self.busy_ns = 0
        self.write_busy_ns = 0
        self.read_busy_ns = 0
        self.bgc_busy_ns = 0
        self.requests_completed = 0

    # ------------------------------------------------------------------
    # Host-facing API
    # ------------------------------------------------------------------
    def submit(self, request: IoRequest) -> None:
        """Queue a request; service starts immediately if the device is idle.

        A request arriving during a BGC block waits for that block to
        finish (BGC is preemptible at block granularity only).
        """
        request.submit_time = self.sim.now
        self._idle_token += 1
        self._queue.append(request)
        if not self._busy:
            self._start_next()

    @property
    def idle(self) -> bool:
        """True when neither host service nor BGC occupies the device."""
        return not self._busy and not self._queue

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def free_bytes(self) -> int:
        """The paper's ``Cfree``."""
        return self.ftl.free_bytes()

    def free_pages(self) -> int:
        return self.ftl.free_pages()

    def kick_bgc(self) -> None:
        """Prod the device to (re)consult its reclaim controller.

        Policies call this from their periodic tick after raising demand.
        """
        if not self._busy:
            self._maybe_bgc()

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if self._busy:
            return
        if not self._queue:
            self._schedule_idle_check()
            return
        request = self._queue.popleft()
        request.start_time = self.sim.now
        raw_latency, fgc_ns = self._execute(request)
        latency = self._scale_latency(raw_latency, request.page_count, fgc_ns)
        self._busy = True
        self.sim.schedule(
            latency,
            lambda: self._complete(request, latency, fgc_ns),
            priority=PRIORITY_DEVICE,
            name="ssd.complete",
        )

    def _execute(self, request: IoRequest) -> tuple:
        """Run the FTL state changes; returns (raw latency, FGC portion)."""
        ftl = self.ftl
        fgc_before = ftl.stats.fgc_time_ns
        latency = 0
        if request.kind == IoKind.READ:
            for lpn in request.lpns:
                latency += ftl.host_read_page(lpn)
        elif request.is_write:
            if request.page_count > 1 and ftl.supports_batched_writes:
                latency += ftl.host_write_extent(request.lpn, request.page_count)
            else:
                for lpn in request.lpns:
                    latency += ftl.host_write_page(lpn)
        elif request.kind == IoKind.TRIM:
            # The FTL returns the unmap journal's metadata program time:
            # a durable TRIM is acknowledged only once its tombstones are
            # on NAND, so the journaling cost is part of the service.
            latency = self.TRIM_LATENCY_NS + ftl.trim(request.lpns)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown request kind {request.kind}")
        fgc_ns = ftl.stats.fgc_time_ns - fgc_before
        return latency, fgc_ns

    def _scale_latency(self, raw_ns: int, pages: int, fgc_ns: int) -> int:
        """Model channel striping: up to ``parallelism`` pages overlap.

        The FTL reports serial per-page latencies; a multi-page request
        (and the GC work inside it) overlaps across channels.
        """
        factor = min(self.parallelism, max(1, pages)) if fgc_ns == 0 else self.parallelism
        return max(1, raw_ns // factor)

    def _complete(self, request: IoRequest, latency: int, fgc_ns: int) -> None:
        self._busy = False
        request.complete_time = self.sim.now
        self.busy_ns += latency
        self.requests_completed += 1
        if fgc_ns > 0:
            if self.tracer.enabled:
                # The request stalled on foreground GC: a duration event
                # on the device track spanning the whole (stalled) service.
                self.tracer.complete(
                    "device",
                    "fgc.stall",
                    start_ns=request.start_time,
                    dur_ns=latency,
                    fgc_ns=fgc_ns,
                    kind=request.kind.name,
                    pages=request.page_count,
                )
            if self.audit.enabled:
                self.audit.record_gc_span(
                    GcSpanRecord(
                        t_ns=request.start_time,
                        dur_ns=latency,
                        background=False,
                        pages=request.page_count,
                    )
                )

        nbytes = request.page_count * self.config.geometry.page_size
        if request.is_write:
            self.write_busy_ns += latency
            # Exclude the FGC stall from the bandwidth sample: Bw is the
            # device's clean write rate, which Tw = Creq/Bw relies on.
            clean_ns = max(1, latency - fgc_ns // self.parallelism)
            self.write_bandwidth.observe(nbytes, clean_ns)
        elif request.kind == IoKind.READ:
            self.read_busy_ns += latency

        if request.on_complete is not None:
            request.on_complete(request)
        for listener in self.completion_listeners:
            listener(request)

        self._start_next()

    # ------------------------------------------------------------------
    # Background GC
    # ------------------------------------------------------------------
    def _schedule_idle_check(self) -> None:
        """Arm BGC after the idle-detection grace period.

        A real drive does not launch a multi-millisecond GC block the
        microsecond its queue happens to be empty -- it waits until the
        host has been quiet for a while (cf. adaptive idle-time GC,
        Park et al.).  Any submit before the grace expires cancels the
        check, so BGC never wedges itself between a burst's requests.
        """
        if self.controller is None:
            return
        grace = self.config.bgc_idle_grace_ns
        if grace <= 0:
            self._maybe_bgc()
            return
        self._idle_token += 1
        token = self._idle_token
        self.sim.schedule(
            grace,
            lambda: self._idle_check(token),
            priority=PRIORITY_LOW,
            name="ssd.idle_check",
        )

    def _idle_check(self, token: int) -> None:
        if token == self._idle_token and self.idle:
            self._maybe_bgc()

    def _maybe_bgc(self) -> None:
        if self._busy or self._queue:
            return
        if self.ftl.read_only:
            # Terminal degraded state: no spare capacity left to reclaim
            # into; background work would only burn the remaining blocks.
            return
        controller = self.controller
        if controller is None:
            return
        demand = controller.reclaim_demand_pages(self)
        if demand <= 0 or not self.ftl.has_victim():
            # Reclaim declined the window: refresh scrub gets first call
            # on the spare idle time (data at risk beats wear spread),
            # then wear levelling.  Both are no-ops unless armed.
            if self._maybe_scrub():
                return
            self._maybe_wear_level()
            return
        free_before = self.ftl.free_pages()
        raw_latency = self.ftl.collect_one_block(background=True)
        latency = max(1, raw_latency // self.parallelism)
        self._busy = True
        self._bgc_active = True
        self.sim.schedule(
            latency,
            lambda: self._bgc_done(latency, free_before),
            priority=PRIORITY_DEVICE,
            name="ssd.bgc_done",
        )

    def _bgc_done(self, latency: int, free_before: int) -> None:
        self._busy = False
        self._bgc_active = False
        self.busy_ns += latency
        self.bgc_busy_ns += latency
        freed_pages = self.ftl.free_pages() - free_before
        freed_bytes = freed_pages * self.config.geometry.page_size
        self.gc_bandwidth.observe(max(0, freed_bytes), latency)
        if self.tracer.enabled:
            self.tracer.complete(
                "device",
                "bgc.block",
                start_ns=self.sim.now - latency,
                dur_ns=latency,
                freed_pages=freed_pages,
            )
        if self.audit.enabled:
            self.audit.record_gc_span(
                GcSpanRecord(
                    t_ns=self.sim.now - latency,
                    dur_ns=latency,
                    background=True,
                    pages=freed_pages,
                )
            )
        if self.controller is not None:
            self.controller.on_block_collected(self, freed_pages)
        if self._queue:
            self._start_next()
        else:
            # Chain consecutive BGC blocks without re-waiting the grace:
            # the device is already in a confirmed idle period.
            self._maybe_bgc()

    def _maybe_scrub(self) -> bool:
        """Run one refresh-scrub relocation if a block is at risk.

        Returns True when a scrub block was launched (the device is busy
        until :meth:`_scrub_done` fires).
        """
        raw = self.ftl.maybe_scrub()
        if raw <= 0:
            return False
        latency = max(1, raw // self.parallelism)
        self._busy = True
        self.sim.schedule(
            latency,
            lambda: self._scrub_done(latency),
            priority=PRIORITY_DEVICE,
            name="ssd.scrub_done",
        )
        return True

    def _scrub_done(self, latency: int) -> None:
        self._busy = False
        self.busy_ns += latency
        self.bgc_busy_ns += latency
        if self.tracer.enabled:
            self.tracer.complete(
                "device",
                "scrub.block",
                start_ns=self.sim.now - latency,
                dur_ns=latency,
            )
        if self.audit.enabled:
            # Scrub relocations occupy the device like a BGC block, but
            # carry the scrub flag so tail attribution can report
            # ``scrub-interference`` separately from ``bgc-overlap``.
            self.audit.record_gc_span(
                GcSpanRecord(
                    t_ns=self.sim.now - latency,
                    dur_ns=latency,
                    background=True,
                    scrub=True,
                )
            )
        if self._queue:
            self._start_next()
        else:
            # Confirmed idle period: drain the at-risk queue (and let
            # BGC reclaim) without re-waiting the grace.
            self._maybe_bgc()

    def _maybe_wear_level(self) -> None:
        raw = self.ftl.maybe_wear_level()
        if raw <= 0:
            return
        latency = max(1, raw // self.parallelism)
        self._busy = True
        self.sim.schedule(
            latency,
            lambda: self._wl_done(latency),
            priority=PRIORITY_DEVICE,
            name="ssd.wl_done",
        )

    def _wl_done(self, latency: int) -> None:
        self._busy = False
        self.busy_ns += latency
        self.bgc_busy_ns += latency
        if self.tracer.enabled:
            self.tracer.complete(
                "device",
                "wear_level.block",
                start_ns=self.sim.now - latency,
                dur_ns=latency,
            )
        if self.audit.enabled:
            # Wear-level moves occupy the device exactly like a BGC
            # block; attribution charges ops queued behind them to GC.
            self.audit.record_gc_span(
                GcSpanRecord(
                    t_ns=self.sim.now - latency, dur_ns=latency, background=True
                )
            )
        self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SsdDevice t={self.sim.now} queue={len(self._queue)} "
            f"busy={self._busy} free={self.ftl.free_pool_blocks()}blk>"
        )
