"""Device-level configuration bundle.

:class:`SsdConfig` collects everything needed to instantiate a device --
geometry, timing, OP ratio, GC watermark, wear-levelling options -- and a
:meth:`~SsdConfig.build_ftl` factory.  Experiments construct one config
and reuse it across all policies under comparison, so every run sees an
identical device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.injector import FaultInjector, FaultProfile, resolve_fault_profile
from repro.ftl.checkpoint_policy import CheckpointPolicy, make_checkpoint_policy
from repro.ftl.ftl import PageMappedFtl
from repro.ftl.recovery import recover_ftl
from repro.ftl.space import SpaceModel
from repro.ftl.victim import VictimSelector
from repro.ftl.wear import StaticWearLeveler
from repro.nand.array import NandArray, NandDurableState
from repro.nand.endurance import EnduranceModel
from repro.nand.geometry import NandGeometry
from repro.nand.reliability import (
    ReadDisturbTracker,
    ReliabilityProfile,
    resolve_reliability_profile,
)
from repro.nand.timing import NAND_20NM_MLC, NandTiming


@dataclass
class SsdConfig:
    """Everything needed to build one simulated SSD.

    Attributes:
        geometry: NAND organisation; defaults to the 1/256-scaled SM843T.
        timing: NAND latencies; defaults to 20 nm MLC.
        op_ratio: over-provisioning as a fraction of user capacity
            (SM843T: 7 %).
        fgc_watermark: free-pool floor that triggers foreground GC.
        pe_cycle_limit: endurance rating; None disables wear-out.
        enable_wear_leveling: install a static wear leveller.
        wear_level_threshold: allowed erase-count spread.
        channel_parallelism: number of NAND operations the device overlaps
            (channel striping); multi-page requests and GC complete up to
            this factor faster than serial NAND timing.
        fault_profile: media-fault injection configuration -- a
            :class:`~repro.faults.injector.FaultProfile`, a preset name
            from :data:`~repro.faults.injector.FAULT_PROFILES`, or None
            for a fault-free device.
        max_read_retries / max_program_retries / max_erase_retries:
            FTL recovery budgets (see :class:`PageMappedFtl`).
    """

    geometry: NandGeometry = field(default_factory=NandGeometry.scaled_sm843t)
    timing: NandTiming = NAND_20NM_MLC
    op_ratio: float = 0.07
    fgc_watermark: int = 2
    pe_cycle_limit: Optional[int] = None
    enable_wear_leveling: bool = False
    wear_level_threshold: int = 64
    channel_parallelism: int = 8
    fgc_penalty: float = 4.0
    #: Idle-detection grace before background GC may start (ns).  The
    #: device only launches a BGC block after the host has been quiet
    #: this long, so BGC never wedges into intra-burst think gaps.
    bgc_idle_grace_ns: int = 1_000_000
    fault_profile: Optional[object] = None
    max_read_retries: int = 4
    max_program_retries: int = 4
    max_erase_retries: int = 2
    #: Write a durable mapping checkpoint every N host pages (None
    #: disables checkpointing; recovery then pays the full OOB scan).
    checkpoint_interval_pages: Optional[int] = None
    #: Journal TRIM/data-loss unmaps as durable tombstones (the fix for
    #: the pre-PR-6 resurrect-after-TRIM hole).  Off only for A/B tests.
    journal_unmaps: bool = True
    #: Reserved metadata blocks backing the durable-metadata log; their
    #: wear and faults are modelled (:mod:`repro.nand.metaregion`).
    meta_blocks: int = 4
    #: Mapping architecture: ``dram`` (full map in controller DRAM, the
    #: historical model) or ``dftl`` (translation pages on NAND behind a
    #: cached mapping table -- the full-capacity mode).
    mapping_mode: str = "dram"
    #: DRAM budget for the cached mapping table in dftl mode; None picks
    #: 1/64 of the full map (user_pages * 8 bytes / 64).  Ignored in
    #: dram mode.
    cmt_budget_bytes: Optional[int] = None
    #: Checkpoint scheduling: ``interval`` (fixed host-page interval) or
    #: ``adaptive`` (accrual-bounded with GC-quiescence early fire; the
    #: interval becomes the recovery-tail bound).  Only meaningful when
    #: checkpoint_interval_pages is set.
    checkpoint_policy: str = "interval"
    #: Live data-integrity subsystem: a
    #: :class:`~repro.nand.reliability.ReliabilityProfile`, a preset name
    #: from :data:`~repro.nand.reliability.RELIABILITY_PROFILES`
    #: ("mlc-20nm", ...), or None/"off" for the historical
    #: reliability-free device (bit-identical behaviour: no retention
    #: stamping, no disturb tracking, no ECC ladder, no scrubber).
    reliability: Optional[object] = None

    def __post_init__(self) -> None:
        # Catch misconfiguration here, with a clear message, instead of
        # as downstream arithmetic surprises (negative capacities, empty
        # free pools, division by zero in the space model).
        if self.geometry.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.geometry.page_size}")
        if self.geometry.total_blocks <= 0:
            raise ValueError(
                f"device capacity must be positive, got {self.geometry.total_blocks} blocks"
            )
        if not 0.0 < self.op_ratio < 1.0:
            raise ValueError(
                f"op_ratio must be in (0, 1) -- an OP of 100 % or more leaves "
                f"no user capacity; got {self.op_ratio}"
            )
        if self.fgc_watermark < 2:
            raise ValueError(f"fgc_watermark must be >= 2, got {self.fgc_watermark}")
        if self.channel_parallelism < 1:
            raise ValueError(
                f"channel_parallelism must be >= 1, got {self.channel_parallelism}"
            )
        if self.fgc_penalty < 1.0:
            raise ValueError(f"fgc_penalty must be >= 1.0, got {self.fgc_penalty}")
        if self.pe_cycle_limit is not None and self.pe_cycle_limit <= 0:
            raise ValueError(
                f"pe_cycle_limit must be positive or None, got {self.pe_cycle_limit}"
            )
        if self.bgc_idle_grace_ns < 0:
            raise ValueError(
                f"bgc_idle_grace_ns must be >= 0, got {self.bgc_idle_grace_ns}"
            )
        if (
            self.checkpoint_interval_pages is not None
            and self.checkpoint_interval_pages < 1
        ):
            raise ValueError(
                "checkpoint_interval_pages must be >= 1 or None, got "
                f"{self.checkpoint_interval_pages}"
            )
        if self.meta_blocks < 1:
            raise ValueError(f"meta_blocks must be >= 1, got {self.meta_blocks}")
        if self.mapping_mode not in ("dram", "dftl"):
            raise ValueError(
                f"mapping_mode must be 'dram' or 'dftl', got {self.mapping_mode!r}"
            )
        if self.cmt_budget_bytes is not None and self.cmt_budget_bytes < self.geometry.page_size:
            raise ValueError(
                "cmt_budget_bytes must hold at least one translation page "
                f"({self.geometry.page_size} B), got {self.cmt_budget_bytes}"
            )
        if self.checkpoint_policy not in ("interval", "adaptive"):
            raise ValueError(
                "checkpoint_policy must be 'interval' or 'adaptive', got "
                f"{self.checkpoint_policy!r}"
            )
        # Resolve preset names eagerly so typos fail at config time.
        self.fault_profile = (
            resolve_fault_profile(self.fault_profile)
            if self.fault_profile is not None
            else None
        )
        # Same eager resolution for the reliability profile; a profile
        # instance re-validates its own knobs (thresholds non-negative,
        # retry-level latencies monotonic) at construction, so a bad
        # hand-built profile fails here too, at config time.
        self.reliability = resolve_reliability_profile(self.reliability)

    def space_model(self) -> SpaceModel:
        return SpaceModel.from_op_ratio(self.geometry, self.op_ratio)

    def _checkpoint_policy(self) -> Optional[CheckpointPolicy]:
        """Fresh policy instance per FTL (the adaptive policy is stateful).

        Returns None for the default interval policy: the FTL builds its
        own from ``checkpoint_interval_pages``, keeping the historical
        construction path (and its bit-identical behaviour) untouched.
        """
        if self.checkpoint_policy == "interval" or self.checkpoint_interval_pages is None:
            return None
        return make_checkpoint_policy(
            self.checkpoint_policy, self.checkpoint_interval_pages
        )

    def resolved_fault_profile(self) -> FaultProfile:
        return resolve_fault_profile(self.fault_profile)

    def resolved_reliability_profile(self) -> Optional[ReliabilityProfile]:
        return resolve_reliability_profile(self.reliability)

    def build_read_disturb(self) -> Optional[ReadDisturbTracker]:
        """A fresh read-disturb tracker when reliability is armed.

        Fresh on every call by design: the counters are volatile
        controller DRAM, so both first boot and every power-on start
        them at zero (DESIGN.md, power-on disturb-reset semantics).
        """
        profile = self.resolved_reliability_profile()
        if profile is None:
            return None
        return ReadDisturbTracker(
            self.geometry.total_blocks, scrub_threshold=profile.disturb_threshold
        )

    def build_nand(self, seed: int = 0) -> NandArray:
        endurance = EnduranceModel(self.geometry.total_blocks, self.pe_cycle_limit)
        injector = None
        profile = self.resolved_fault_profile()
        if profile.enabled:
            injector = FaultInjector(profile, seed=seed)
        return NandArray(
            self.geometry,
            self.timing,
            endurance,
            read_disturb=self.build_read_disturb(),
            fault_injector=injector,
            meta_blocks=self.meta_blocks,
        )

    def build_ftl(
        self,
        victim_selector: Optional[VictimSelector] = None,
        clock=None,
        seed: int = 0,
        registry=None,
        nand: Optional[NandArray] = None,
        recovered=None,
    ) -> PageMappedFtl:
        """Instantiate a fresh FTL (and NAND) per this configuration.

        ``seed`` feeds the fault injector (when a fault profile is set),
        keeping fault sequences reproducible per scenario seed.
        ``registry`` is an optional shared metrics registry; the FTL
        creates a private one when omitted.  ``nand`` substitutes a
        pre-built array (the analytic warm-start synthesizes one) and
        ``recovered`` hands the FTL pre-installed state through the same
        path power-on recovery uses.
        """
        if nand is None:
            nand = self.build_nand(seed=seed)
        leveler = None
        if self.enable_wear_leveling:
            leveler = StaticWearLeveler(nand.endurance, self.wear_level_threshold)
        return PageMappedFtl(
            nand,
            self.space_model(),
            victim_selector=victim_selector,
            fgc_watermark=self.fgc_watermark,
            clock=clock,
            wear_leveler=leveler,
            fgc_penalty=self.fgc_penalty,
            max_read_retries=self.max_read_retries,
            max_program_retries=self.max_program_retries,
            max_erase_retries=self.max_erase_retries,
            checkpoint_interval_pages=self.checkpoint_interval_pages,
            journal_unmaps=self.journal_unmaps,
            registry=registry,
            recovered=recovered,
            mapping_mode=self.mapping_mode,
            cmt_budget_bytes=self.cmt_budget_bytes,
            checkpoint_policy=self._checkpoint_policy(),
            reliability=self.resolved_reliability_profile(),
        )

    def recover_from(
        self,
        durable: NandDurableState,
        victim_selector: Optional[VictimSelector] = None,
        clock=None,
        seed: int = 0,
        registry=None,
        post_checkpoint: bool = False,
    ):
        """Power the device back on from a captured media image.

        Counterpart of :meth:`build_ftl` for the post-power-cut path:
        rebuilds the NAND from ``durable``
        (:meth:`~repro.nand.array.NandArray.from_durable`), arms a fresh
        fault injector over the same profile (``seed`` keeps the
        post-recovery fault sequence reproducible but independent of the
        pre-cut stream) and runs the recovery scan -- checkpoint-bounded
        when the image holds a complete checkpoint, the full OOB sweep
        otherwise.  With ``post_checkpoint=True`` the recovered FTL
        immediately writes a fresh checkpoint so the next power-on skips
        the scan it just did.

        Returns ``(ftl, report)`` -- see
        :func:`~repro.ftl.recovery.recover_ftl`.
        """
        injector = None
        profile = self.resolved_fault_profile()
        if profile.enabled:
            injector = FaultInjector(profile, seed=seed)
        nand = NandArray.from_durable(
            self.geometry,
            durable,
            timing=self.timing,
            pe_cycle_limit=self.pe_cycle_limit,
            fault_injector=injector,
            # Power-on disturb-reset semantics: the tracker is rebuilt
            # zeroed (volatile DRAM died with the rail) while the
            # retention clock rides the durable image itself.
            read_disturb=self.build_read_disturb(),
            meta_blocks=self.meta_blocks,
        )
        leveler = None
        if self.enable_wear_leveling:
            leveler = StaticWearLeveler(nand.endurance, self.wear_level_threshold)
        return recover_ftl(
            nand,
            self.space_model(),
            post_checkpoint=post_checkpoint,
            victim_selector=victim_selector,
            fgc_watermark=self.fgc_watermark,
            clock=clock,
            wear_leveler=leveler,
            fgc_penalty=self.fgc_penalty,
            max_read_retries=self.max_read_retries,
            max_program_retries=self.max_program_retries,
            max_erase_retries=self.max_erase_retries,
            checkpoint_interval_pages=self.checkpoint_interval_pages,
            journal_unmaps=self.journal_unmaps,
            registry=registry,
            mapping_mode=self.mapping_mode,
            cmt_budget_bytes=self.cmt_budget_bytes,
            checkpoint_policy=self._checkpoint_policy(),
            reliability=self.resolved_reliability_profile(),
        )

    @property
    def user_bytes(self) -> int:
        return self.space_model().user_bytes

    @property
    def op_bytes(self) -> int:
        return self.space_model().op_bytes

    @classmethod
    def small(cls, blocks: int = 512, pages_per_block: int = 64, **kwargs) -> "SsdConfig":
        """A tiny device for unit tests and fast benchmark harness runs."""
        geometry = NandGeometry(
            page_size=4096, pages_per_block=pages_per_block, blocks_per_plane=blocks
        )
        return cls(geometry=geometry, **kwargs)
