"""Device-level configuration bundle.

:class:`SsdConfig` collects everything needed to instantiate a device --
geometry, timing, OP ratio, GC watermark, wear-levelling options -- and a
:meth:`~SsdConfig.build_ftl` factory.  Experiments construct one config
and reuse it across all policies under comparison, so every run sees an
identical device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ftl.ftl import PageMappedFtl
from repro.ftl.space import SpaceModel
from repro.ftl.victim import VictimSelector
from repro.ftl.wear import StaticWearLeveler
from repro.nand.array import NandArray
from repro.nand.endurance import EnduranceModel
from repro.nand.geometry import NandGeometry
from repro.nand.timing import NAND_20NM_MLC, NandTiming


@dataclass
class SsdConfig:
    """Everything needed to build one simulated SSD.

    Attributes:
        geometry: NAND organisation; defaults to the 1/256-scaled SM843T.
        timing: NAND latencies; defaults to 20 nm MLC.
        op_ratio: over-provisioning as a fraction of user capacity
            (SM843T: 7 %).
        fgc_watermark: free-pool floor that triggers foreground GC.
        pe_cycle_limit: endurance rating; None disables wear-out.
        enable_wear_leveling: install a static wear leveller.
        wear_level_threshold: allowed erase-count spread.
        channel_parallelism: number of NAND operations the device overlaps
            (channel striping); multi-page requests and GC complete up to
            this factor faster than serial NAND timing.
    """

    geometry: NandGeometry = field(default_factory=NandGeometry.scaled_sm843t)
    timing: NandTiming = NAND_20NM_MLC
    op_ratio: float = 0.07
    fgc_watermark: int = 2
    pe_cycle_limit: Optional[int] = None
    enable_wear_leveling: bool = False
    wear_level_threshold: int = 64
    channel_parallelism: int = 8
    fgc_penalty: float = 4.0
    #: Idle-detection grace before background GC may start (ns).  The
    #: device only launches a BGC block after the host has been quiet
    #: this long, so BGC never wedges into intra-burst think gaps.
    bgc_idle_grace_ns: int = 1_000_000

    def space_model(self) -> SpaceModel:
        return SpaceModel.from_op_ratio(self.geometry, self.op_ratio)

    def build_nand(self) -> NandArray:
        endurance = EnduranceModel(self.geometry.total_blocks, self.pe_cycle_limit)
        return NandArray(self.geometry, self.timing, endurance)

    def build_ftl(
        self,
        victim_selector: Optional[VictimSelector] = None,
        clock=None,
    ) -> PageMappedFtl:
        """Instantiate a fresh FTL (and NAND) per this configuration."""
        nand = self.build_nand()
        leveler = None
        if self.enable_wear_leveling:
            leveler = StaticWearLeveler(nand.endurance, self.wear_level_threshold)
        return PageMappedFtl(
            nand,
            self.space_model(),
            victim_selector=victim_selector,
            fgc_watermark=self.fgc_watermark,
            clock=clock,
            wear_leveler=leveler,
            fgc_penalty=self.fgc_penalty,
        )

    @property
    def user_bytes(self) -> int:
        return self.space_model().user_bytes

    @property
    def op_bytes(self) -> int:
        return self.space_model().op_bytes

    @classmethod
    def small(cls, blocks: int = 512, pages_per_block: int = 64, **kwargs) -> "SsdConfig":
        """A tiny device for unit tests and fast benchmark harness runs."""
        geometry = NandGeometry(
            page_size=4096, pages_per_block=pages_per_block, blocks_per_plane=blocks
        )
        return cls(geometry=geometry, **kwargs)
