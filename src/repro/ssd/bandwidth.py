"""Online bandwidth estimation.

The JIT-GC manager (paper Sec 3.3) needs an *average write bandwidth*
``Bw(t)`` and an *average GC bandwidth* ``Bgc(t)`` to compute the idle
time ``Tidle`` and the GC time ``Tgc``.  :class:`BandwidthEstimator`
maintains an exponentially-weighted moving average of observed
(bytes, busy-nanoseconds) samples, seeded with an analytic prior derived
from the NAND timing so estimates are sane before any observation.
"""

from __future__ import annotations

from repro.sim.simtime import SECOND


class BandwidthEstimator:
    """EWMA bytes-per-second estimator.

    Args:
        prior_bytes_per_sec: initial estimate (from NAND timing).
        alpha: EWMA weight of a new sample (0 < alpha <= 1).
        min_sample_ns: samples shorter than this are folded into the next
            one rather than producing a noisy rate.
    """

    def __init__(
        self,
        prior_bytes_per_sec: float,
        alpha: float = 0.2,
        min_sample_ns: int = SECOND // 1000,
    ) -> None:
        if prior_bytes_per_sec <= 0:
            raise ValueError(f"prior must be positive, got {prior_bytes_per_sec}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._estimate = float(prior_bytes_per_sec)
        self.alpha = alpha
        self.min_sample_ns = min_sample_ns
        self._pending_bytes = 0
        self._pending_ns = 0
        self.samples = 0

    @property
    def bytes_per_second(self) -> float:
        """Current bandwidth estimate."""
        return self._estimate

    def observe(self, nbytes: int, busy_ns: int) -> None:
        """Record that ``nbytes`` moved during ``busy_ns`` of device time."""
        if nbytes < 0 or busy_ns < 0:
            raise ValueError("observations must be non-negative")
        self._pending_bytes += nbytes
        self._pending_ns += busy_ns
        if self._pending_ns < self.min_sample_ns:
            return
        rate = self._pending_bytes * SECOND / self._pending_ns
        self._estimate = (1 - self.alpha) * self._estimate + self.alpha * rate
        self._pending_bytes = 0
        self._pending_ns = 0
        self.samples += 1

    def time_for_bytes(self, nbytes: int) -> int:
        """Estimated nanoseconds needed to move ``nbytes``."""
        if nbytes <= 0:
            return 0
        return int(nbytes * SECOND / self._estimate)

    def bytes_in_time(self, duration_ns: int) -> int:
        """Estimated bytes movable in ``duration_ns``."""
        if duration_ns <= 0:
            return 0
        return int(self._estimate * duration_ns / SECOND)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BandwidthEstimator {self._estimate / (1 << 20):.1f} MiB/s n={self.samples}>"
