"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's experiment entry points so every paper
artifact can be regenerated from a shell:

* ``run``      -- one (workload, policy) scenario, metrics printed.
* ``compare``  -- the four-policy Fig. 7 comparison on one workload.
* ``fig2`` / ``fig7`` / ``table1`` / ``table2`` / ``table3``
               -- the full paper artifacts.
* ``oracle``   -- JIT-GC vs the ideal (future-knowing) policy.
* ``sweep``    -- many scenarios with fault isolation and checkpointing.
* ``crash-sweep`` -- exhaustive power-loss crash-point verification.
* ``latency-report`` -- tail-latency percentiles + per-cause attribution
               across policies on a GC-heavy scenario.
* ``lifetime-report`` -- measured WAF -> years-to-ECC-cliff projection
               per policy (the paper's "long lifetimes" claim).
* ``list``     -- available workloads and policies.

Power-loss emulation rides on ``run``: ``--spo-at T`` cuts power at
simulated second T (repeatable), ``--spo-random N`` adds N seeded
random cuts in the measurement window; the device recovers from its
OOB metadata and the workload resumes.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro import __version__
from repro.experiments import (
    POLICY_FACTORIES,
    WARM_START_MODES,
    ScenarioSpec,
    format_table,
    gc_heavy_spec,
    normalize_to,
    run_crash_sweep,
    run_latency_report,
    run_lifetime_report,
    run_fig2,
    run_fig7,
    run_oracle_comparison,
    run_policy_comparison,
    run_scenario,
    run_scenario_with_spo,
    run_sweep,
    run_table1,
    run_table2,
    run_table3,
)
from repro.faults import FAULT_PROFILES, SpoPlan
from repro.obs import TRACE_FORMATS, ObservabilityConfig
from repro.sim.simtime import SECOND
from repro.workloads import WORKLOADS


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="YCSB", choices=sorted(WORKLOADS))
    parser.add_argument("--blocks", type=int, default=1024)
    parser.add_argument("--pages-per-block", type=int, default=64)
    parser.add_argument("--warmup", type=int, default=20, metavar="S")
    parser.add_argument("--measure", type=int, default=60, metavar="S")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--warm-start", default="sim", choices=sorted(WARM_START_MODES),
        help="preconditioning mode: 'sim' replays the prefill + warmup "
        "simulation (reference); 'analytic' synthesizes the predicted "
        "steady state directly and skips the warmup (see PERFORMANCE.md)",
    )
    parser.add_argument(
        "--faults",
        default="none",
        choices=sorted(FAULT_PROFILES),
        help="media-fault injection profile (default: none)",
    )
    _add_mapping_args(parser)
    _add_reliability_arg(parser)
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="PAGES",
        help="write a durable mapping checkpoint every PAGES host pages "
        "(bounds post-power-cut recovery to a log-tail scan; default: off)",
    )
    parser.add_argument(
        "--checkpoint-policy", default="interval",
        choices=("interval", "adaptive"),
        help="checkpoint scheduling: 'interval' fires on a fixed "
        "host-page count; 'adaptive' fires on actual tail-scan accrual "
        "(all program streams) and early during GC quiescence",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a simulation trace to PATH (see OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--trace-format", default="jsonl", choices=TRACE_FORMATS,
        help="trace file format: jsonl, or chrome (Perfetto-loadable)",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=1.0, metavar="S",
        help="sim-time registry sampling period in seconds (0 disables)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile event-loop wall time and print the report",
    )


def _add_mapping_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mapping", default="dram", choices=("dram", "dftl"),
        help="FTL mapping architecture: 'dram' keeps the whole page map "
        "in DRAM (reference); 'dftl' stores translation pages on NAND "
        "behind a cached mapping table (see DESIGN.md)",
    )
    parser.add_argument(
        "--cmt-budget-kb", type=int, default=None, metavar="KIB",
        help="cached-mapping-table DRAM budget in KiB (dftl only; "
        "default: 1/64 of the full in-DRAM map)",
    )


def _add_reliability_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reliability", default="off",
        choices=("off", "mlc-20nm", "mlc-20nm-accel"),
        help="data-integrity subsystem profile: retention clock, ECC "
        "read-retry escalation ladder and background refresh scrub "
        "('off' keeps the historical bit-identical device; "
        "'mlc-20nm-accel' compresses retention physics into simulated "
        "seconds for demos/tests)",
    )


def _cmt_budget_bytes(args: argparse.Namespace):
    kib = getattr(args, "cmt_budget_kb", None)
    return None if kib is None else kib * 1024


def _obs_config_from(args: argparse.Namespace):
    trace = getattr(args, "trace", None)
    profile = bool(getattr(args, "profile", False))
    if trace is None and not profile:
        return None
    return ObservabilityConfig(
        trace_path=trace,
        trace_format=getattr(args, "trace_format", "jsonl"),
        metrics_interval_ns=int(getattr(args, "metrics_interval", 1.0) * SECOND),
        profile=profile,
        audit=trace is not None,
    )


def _spec_from(args: argparse.Namespace) -> ScenarioSpec:
    return ScenarioSpec(
        workload=args.workload,
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        warmup_s=args.warmup,
        measure_s=args.measure,
        seed=args.seed,
        fault_profile=getattr(args, "faults", "none"),
        checkpoint_interval=getattr(args, "checkpoint_interval", None),
        obs=_obs_config_from(args),
        warm_start=getattr(args, "warm_start", "sim"),
        mapping=getattr(args, "mapping", "dram"),
        cmt_budget_bytes=_cmt_budget_bytes(args),
        checkpoint_policy=getattr(args, "checkpoint_policy", "interval"),
        reliability=_reliability_from(args),
    )


def _reliability_from(args: argparse.Namespace):
    """CLI knob -> spec field ('off' -> None keeps historical keys)."""
    profile = getattr(args, "reliability", "off")
    return None if profile in (None, "off") else profile


def _echo_run_header(spec: ScenarioSpec) -> None:
    """State the resolved seed (and fault profile) so every printed
    result is reproducible from its own transcript."""
    faults = spec.fault_profile
    tag = faults if isinstance(faults, str) else ("custom" if faults else "none")
    print(f"seed={spec.seed} faults={tag}")


def _print_metrics(metrics) -> None:
    rows = [
        ["IOPS", f"{metrics.iops:.1f}"],
        ["WAF", f"{metrics.waf:.3f}"],
        ["host pages written", metrics.host_pages_written],
        ["GC pages migrated", metrics.gc_pages_migrated],
        ["FGC invocations", metrics.fgc_invocations],
        ["FGC stall time (s)", f"{metrics.fgc_time_ns / 1e9:.2f}"],
        ["BGC blocks", metrics.bgc_blocks],
        ["erases", metrics.erases],
        ["buffered write share", f"{metrics.buffered_fraction:.1%}"],
        ["mean op latency (ms)", f"{metrics.mean_latency_ns / 1e6:.3f}"],
        ["p50 op latency (ms)", f"{metrics.p50_latency_ns / 1e6:.3f}"],
        ["p95 op latency (ms)", f"{metrics.p95_latency_ns / 1e6:.3f}"],
        ["p99 op latency (ms)", f"{metrics.p99_latency_ns / 1e6:.3f}"],
        ["p999 op latency (ms)", f"{metrics.p999_latency_ns / 1e6:.3f}"],
        ["p9999 op latency (ms)", f"{metrics.p9999_latency_ns / 1e6:.3f}"],
        ["max op latency (ms)", f"{metrics.max_latency_ns / 1e6:.3f}"],
    ]
    if metrics.mapping_mode == "dftl":
        rows.extend(
            [
                ["mapping mode", metrics.mapping_mode],
                ["CMT hits/misses", f"{metrics.cmt_hits}/{metrics.cmt_misses}"],
                ["CMT hit rate", f"{metrics.cmt_hit_rate():.1%}"],
                [
                    "translation pages written",
                    metrics.trans_pages_written + metrics.trans_pages_migrated,
                ],
                [
                    "translation WAF share",
                    f"{metrics.translation_waf_share:.1%}",
                ],
            ]
        )
    if metrics.tail_causes:
        causes = ", ".join(
            f"{cause}={pair[0]}"
            for cause, pair in metrics.tail_causes.items()
            if pair[0]
        )
        rows.append(
            [
                f"tail ops >= p{metrics.tail_threshold_pct:g}",
                f"{metrics.tail_slow_ops} ({causes or 'none'})",
            ]
        )
    if metrics.trim_count:
        rows.append(["pages trimmed", metrics.trim_count])
    if metrics.prediction_accuracy_pct is not None:
        rows.append(["prediction accuracy", f"{metrics.prediction_accuracy_pct:.1f}%"])
    if metrics.sip_selections:
        rows.append(
            ["SIP-filtered victims", f"{metrics.sip_filtered}/{metrics.sip_selections}"]
        )
    if metrics.injected_faults or metrics.blocks_retired or metrics.device_read_only:
        rows.extend(
            [
                ["injected faults", metrics.injected_faults],
                ["read retries", metrics.read_retries],
                ["uncorrectable reads", metrics.uncorrectable_reads],
                ["program faults", metrics.program_faults],
                ["erase faults", metrics.erase_faults],
                ["blocks retired", metrics.blocks_retired],
                ["effective OP pages", metrics.effective_op_pages],
                ["device read-only", "yes" if metrics.device_read_only else "no"],
            ]
        )
    if metrics.ecc_fast_reads or metrics.ecc_retry_reads or metrics.uecc_count:
        ladder = ", ".join(
            f"L{level}={count}"
            for level, count in sorted(
                metrics.ecc_retry_histogram.items(), key=lambda kv: int(kv[0])
            )
        )
        rows.extend(
            [
                ["ECC fast reads", metrics.ecc_fast_reads],
                ["ECC retry reads", f"{metrics.ecc_retry_reads} ({ladder or '-'})"],
                ["ECC soft decodes", metrics.ecc_soft_decodes],
                ["UECC (data lost)", metrics.uecc_count],
                [
                    "scrub refreshes",
                    f"{metrics.scrub_blocks_refreshed} blocks / "
                    f"{metrics.scrub_pages_migrated} pages",
                ],
            ]
        )
    print(
        format_table(
            ["Metric", "Value"], rows, title=f"{metrics.workload} / {metrics.policy}"
        )
    )


def _spo_plan_from(args: argparse.Namespace) -> SpoPlan:
    try:
        return SpoPlan(
            at_ns=tuple(int(t * SECOND) for t in args.spo_at or ()),
            random_cuts=args.spo_random,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(f"repro run: invalid SPO plan: {exc}")


def cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from(args)
    spec.policy = args.policy
    _echo_run_header(spec)
    plan = _spo_plan_from(args)
    if plan.enabled:
        outcome = run_scenario_with_spo(spec, plan)
        metrics = outcome.metrics
        for cut, report in zip(outcome.cuts, outcome.reports):
            mode = (
                "full scan"
                if report.full_scan
                else f"checkpoint gen {report.checkpoint_generation} + tail"
            )
            print(
                f"power cut at {cut.t_ns / 1e9:.3f}s: {len(cut.torn)} torn "
                f"pages, {cut.events_dropped} events dropped; recovered "
                f"{report.mapped_lpns} LPNs in {report.duration_ns / 1e6:.1f}ms "
                f"({mode}, {report.pages_scanned} OOB reads)"
            )
        _print_metrics(metrics)
        print(
            f"survived {metrics.spo_count} power cuts; total recovery "
            f"{metrics.recovery_time_ns / 1e6:.1f}ms"
        )
    else:
        _print_metrics(run_scenario(spec))
    return 0


def cmd_crash_sweep(args: argparse.Namespace) -> int:
    spec = gc_heavy_spec(
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        seed=args.seed,
        measure_s=args.measure,
        warmup_s=args.warmup,
        fault_profile=args.faults,
        trim_heavy=args.trim_heavy,
        checkpoint_interval=args.checkpoint_interval,
        warm_start=args.warm_start,
        mapping=args.mapping,
        cmt_budget_bytes=_cmt_budget_bytes(args),
        reliability=_reliability_from(args),
    )
    _echo_run_header(spec)
    ticks = {"n": 0}

    def progress(check) -> None:
        ticks["n"] += 1
        if not check.ok:
            print(f"point {check.index} @ {check.t_ns}ns FAILED: {check.error}")
        elif ticks["n"] % 25 == 0:
            print(
                f"{ticks['n']} points verified "
                f"(t={check.t_ns / 1e9:.2f}s, {check.torn_pages} torn)"
            )

    result = run_crash_sweep(
        spec,
        points=args.points,
        stride_events=args.stride,
        progress=progress,
        nested_every=args.nested_every,
    )
    print(result.summary())
    nested = sum(1 for p in result.points if p.nested)
    if nested:
        print(f"{nested} points also verified crash-during-recovery")
    return 0 if result.ok() else 1


def cmd_compare(args: argparse.Namespace) -> int:
    spec = _spec_from(args)
    _echo_run_header(spec)
    results = run_policy_comparison(spec, jobs=args.jobs)
    iops = normalize_to({p: m.iops for p, m in results.items()}, "A-BGC")
    waf = normalize_to({p: m.waf for p, m in results.items()}, "A-BGC")
    rows = [
        [p, m.iops, iops[p], m.waf, waf[p], m.fgc_invocations, m.bgc_blocks]
        for p, m in results.items()
    ]
    print(
        format_table(
            ["Policy", "IOPS", "/A-BGC", "WAF", "/A-BGC", "FGC", "BGC"],
            rows,
            title=f"Policy comparison on {args.workload}",
        )
    )
    return 0


def cmd_oracle(args: argparse.Namespace) -> int:
    print(run_oracle_comparison(_spec_from(args)).format())
    return 0


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for scenario execution (0 = adaptive: one "
        "per CPU, capped at the scenario count; 1 = in-process; results "
        "are identical, only wall-clock changes — see PERFORMANCE.md)",
    )


def _artifact_command(runner):
    def command(args: argparse.Namespace) -> int:
        spec = _spec_from(args)
        print(runner(spec).format())
        return 0

    return command


def cmd_fig2(args: argparse.Namespace) -> int:
    print(run_fig2(_spec_from(args), jobs=args.jobs).format())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    base = _spec_from(args)
    specs = [base.with_policy(name) for name in sorted(POLICY_FACTORIES)]
    _echo_run_header(base)
    outcome = run_sweep(
        specs,
        checkpoint=args.checkpoint,
        resume=not args.no_resume,
        timeout_s=args.timeout,
        on_result=lambda key, m: print(f"done {key}: {m.iops:.1f} IOPS"),
        jobs=args.jobs,
    )
    for key in outcome.skipped:
        print(f"skipped {key} (already in checkpoint)")
    for key, error in outcome.failures.items():
        print(f"FAILED {key}: {error}")
    rows = [
        [key, f"{m.iops:.1f}", f"{m.waf:.3f}", m.blocks_retired,
         "yes" if m.device_read_only else "no"]
        for key, m in outcome.results.items()
    ]
    print(
        format_table(
            ["Scenario", "IOPS", "WAF", "Retired", "Read-only"],
            rows,
            title=f"Sweep on {args.workload} (faults={args.faults})",
        )
    )
    return 0 if outcome.ok() else 1


def cmd_latency_report(args: argparse.Namespace) -> int:
    spec = gc_heavy_spec(
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        seed=args.seed,
        measure_s=args.measure,
        mapping=args.mapping,
        cmt_budget_bytes=_cmt_budget_bytes(args),
        reliability=_reliability_from(args),
    )
    # The report defaults to a working set below the crash sweep's 0.9:
    # with idle headroom available, just-in-time background collection
    # can actually differ from lazy collection -- at 0.9 every policy is
    # pinned at the FGC watermark and the attribution tables converge.
    spec = replace(spec, working_set_fraction=args.working_set)
    if args.workload != spec.workload:
        spec = replace(spec, workload=args.workload)
    if args.trace is not None:
        spec = replace(
            spec,
            obs=ObservabilityConfig(
                trace_path=args.trace, trace_format=args.trace_format
            ),
        )
    policies = None
    if args.policies:
        names = [name.strip() for name in args.policies.split(",") if name.strip()]
        unknown = [name for name in names if name not in POLICY_FACTORIES]
        if unknown:
            raise SystemExit(
                f"repro latency-report: unknown policies {unknown}; "
                f"known: {sorted(POLICY_FACTORIES)}"
            )
        policies = {name: POLICY_FACTORIES[name] for name in names}
    _echo_run_header(spec)
    result = run_latency_report(
        spec, policies, jobs=args.jobs, threshold_pct=args.threshold_pct
    )
    print(result.format())
    return 0 if result.attribution_ok() else 1


def cmd_lifetime_report(args: argparse.Namespace) -> int:
    spec = gc_heavy_spec(
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        seed=args.seed,
        measure_s=args.measure,
        mapping=args.mapping,
        cmt_budget_bytes=_cmt_budget_bytes(args),
        reliability=_reliability_from(args),
    )
    if args.workload != spec.workload:
        spec = replace(spec, workload=args.workload)
    _echo_run_header(spec)
    result = run_lifetime_report(
        spec,
        jobs=args.jobs,
        reliability_profile=args.lifetime_profile,
        uber_target=args.uber_target,
        retention_target_s=args.retention_days * 86_400.0,
        drive_writes_per_day=args.dwpd,
    )
    print(result.format())
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:", ", ".join(WORKLOADS))
    print("policies :", ", ".join(POLICY_FACTORIES))
    print("faults   :", ", ".join(sorted(FAULT_PROFILES)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JIT-GC (DAC 2015) reproduction harness",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one (workload, policy) scenario")
    _add_scenario_args(run_parser)
    run_parser.add_argument(
        "--policy", default="JIT-GC", choices=sorted(POLICY_FACTORIES)
    )
    run_parser.add_argument(
        "--spo-at", type=float, action="append", default=None, metavar="S",
        help="cut power at simulated second S and recover (repeatable)",
    )
    run_parser.add_argument(
        "--spo-random", type=int, default=0, metavar="N",
        help="additionally cut power at N seeded-random instants in the "
        "measurement window",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare", help="four-policy comparison")
    _add_scenario_args(compare_parser)
    _add_jobs_arg(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    oracle_parser = sub.add_parser("oracle", help="JIT-GC vs the ideal policy")
    _add_scenario_args(oracle_parser)
    oracle_parser.set_defaults(func=cmd_oracle)

    fig2_parser = sub.add_parser("fig2", help="reserved-capacity sweep (paper Fig. 2)")
    _add_scenario_args(fig2_parser)
    _add_jobs_arg(fig2_parser)
    fig2_parser.set_defaults(func=cmd_fig2)

    for name, runner, help_text in (
        ("fig7", run_fig7, "four policies x six benchmarks (paper Fig. 7)"),
        ("table1", run_table1, "buffered/direct write mix (paper Table 1)"),
        ("table2", run_table2, "prediction accuracy (paper Table 2)"),
        ("table3", run_table3, "SIP victim filtering (paper Table 3)"),
    ):
        artifact_parser = sub.add_parser(name, help=help_text)
        _add_scenario_args(artifact_parser)
        artifact_parser.set_defaults(func=_artifact_command(runner))

    sweep_parser = sub.add_parser(
        "sweep", help="all policies on one workload, isolated + checkpointed"
    )
    _add_scenario_args(sweep_parser)
    sweep_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist per-scenario results here; resumable after a crash",
    )
    sweep_parser.add_argument(
        "--no-resume", action="store_true",
        help="re-run scenarios even if the checkpoint already has them",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per scenario (seconds)",
    )
    _add_jobs_arg(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    crash_parser = sub.add_parser(
        "crash-sweep",
        help="verify crash-consistent recovery at many crash points of a "
        "GC-heavy run",
    )
    crash_parser.add_argument("--blocks", type=int, default=256)
    crash_parser.add_argument("--pages-per-block", type=int, default=64)
    crash_parser.add_argument("--measure", type=int, default=30, metavar="S")
    crash_parser.add_argument(
        "--warmup", type=int, default=2, metavar="S",
        help="simulated preconditioning seconds before the swept window "
        "(default: 2 -- the prefill already leaves the device GC-bound)",
    )
    crash_parser.add_argument("--seed", type=int, default=42)
    crash_parser.add_argument(
        "--warm-start", default="sim", choices=sorted(WARM_START_MODES),
        help="preconditioning mode for the swept run (see PERFORMANCE.md)",
    )
    crash_parser.add_argument(
        "--faults", default="none", choices=sorted(FAULT_PROFILES),
        help="media-fault profile active while the sweep runs",
    )
    _add_mapping_args(crash_parser)
    _add_reliability_arg(crash_parser)
    crash_parser.add_argument(
        "--points", type=int, default=100, metavar="N",
        help="crash points to verify (default: 100)",
    )
    crash_parser.add_argument(
        "--stride", type=int, default=512, metavar="EVENTS",
        help="simulator events between crash points (default: 512)",
    )
    crash_parser.add_argument(
        "--trim-heavy", action="store_true",
        help="run the synthetic workload with 25%% discards, so crash "
        "points land around TRIM journal writes",
    )
    crash_parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="PAGES",
        help="arm durable mapping checkpoints every PAGES host pages "
        "during the swept run",
    )
    crash_parser.add_argument(
        "--nested-every", type=int, default=0, metavar="K",
        help="every K-th point, also crash the recovery itself (torn "
        "post-recovery checkpoint) and verify the second power-on "
        "(0 = off)",
    )
    crash_parser.set_defaults(func=cmd_crash_sweep)

    latency_parser = sub.add_parser(
        "latency-report",
        help="tail-latency percentiles + per-cause attribution across "
        "policies on a GC-heavy scenario",
    )
    latency_parser.add_argument(
        "--workload", default="YCSB", choices=sorted(WORKLOADS)
    )
    latency_parser.add_argument("--blocks", type=int, default=256)
    latency_parser.add_argument("--pages-per-block", type=int, default=64)
    latency_parser.add_argument("--measure", type=int, default=30, metavar="S")
    latency_parser.add_argument("--seed", type=int, default=42)
    latency_parser.add_argument(
        "--working-set", type=float, default=0.75, metavar="F",
        help="working-set fraction of user capacity (default: 0.75 -- "
        "GC-heavy but with idle headroom, so background-collection "
        "policies can differentiate)",
    )
    latency_parser.add_argument(
        "--policies", default=None, metavar="A,B",
        help="comma-separated policy subset (default: all four)",
    )
    latency_parser.add_argument(
        "--threshold-pct", type=float, default=99.0, metavar="Q",
        help="percentile defining a slow op (default: 99)",
    )
    latency_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also write per-policy traces (op completions, p99/p999 "
        "counter tracks) next to PATH",
    )
    latency_parser.add_argument(
        "--trace-format", default="jsonl", choices=TRACE_FORMATS,
    )
    _add_mapping_args(latency_parser)
    _add_reliability_arg(latency_parser)
    _add_jobs_arg(latency_parser)
    latency_parser.set_defaults(func=cmd_latency_report)

    lifetime_parser = sub.add_parser(
        "lifetime-report",
        help="years-to-ECC-cliff projection per policy from measured WAF "
        "(the paper's long-lifetimes claim, quantified)",
    )
    lifetime_parser.add_argument(
        "--workload", default="YCSB", choices=sorted(WORKLOADS)
    )
    lifetime_parser.add_argument("--blocks", type=int, default=256)
    lifetime_parser.add_argument("--pages-per-block", type=int, default=64)
    lifetime_parser.add_argument("--measure", type=int, default=30, metavar="S")
    lifetime_parser.add_argument("--seed", type=int, default=42)
    lifetime_parser.add_argument(
        "--lifetime-profile", default="mlc-20nm",
        choices=("mlc-20nm", "mlc-20nm-accel"),
        help="reliability profile whose physics define the ECC cliff "
        "(independent of --reliability, which arms the *measured* run)",
    )
    lifetime_parser.add_argument(
        "--uber-target", type=float, default=1e-15, metavar="P",
        help="uncorrectable bit error rate ceiling at end of retention "
        "(default: 1e-15, the classic client-SSD operating point)",
    )
    lifetime_parser.add_argument(
        "--retention-days", type=float, default=365.25, metavar="D",
        help="retention window the UBER target must hold over "
        "(default: one year)",
    )
    lifetime_parser.add_argument(
        "--dwpd", type=float, default=1.0, metavar="N",
        help="assumed host volume in drive-writes per day (default: 1)",
    )
    _add_mapping_args(lifetime_parser)
    _add_reliability_arg(lifetime_parser)
    _add_jobs_arg(lifetime_parser)
    lifetime_parser.set_defaults(func=cmd_lifetime_report)

    list_parser = sub.add_parser("list", help="available workloads and policies")
    list_parser.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
