"""Wall-clock profiling of the simulator event loop.

Unlike the tracer (which records *simulated* time), the profiler answers
"where does the harness spend *real* CPU time": events dispatched per
category and wall nanoseconds per component callback.  The simulator
carries an optional profiler (see :meth:`repro.sim.engine.Simulator.
set_profiler`); with none attached the dispatch loop pays a single
``is None`` check per event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class LoopProfiler:
    """Per-event-label dispatch counts and wall time."""

    __slots__ = ("counts", "wall_ns")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.wall_ns: Dict[str, int] = {}

    def record(self, label: str, wall_ns: int) -> None:
        """Account one dispatched event of ``label`` costing ``wall_ns``."""
        self.counts[label] = self.counts.get(label, 0) + 1
        self.wall_ns[label] = self.wall_ns.get(label, 0) + wall_ns

    # ------------------------------------------------------------------
    def total_events(self) -> int:
        return sum(self.counts.values())

    def total_wall_ns(self) -> int:
        return sum(self.wall_ns.values())

    def rows(self, top: Optional[int] = None) -> List[Tuple[str, int, int, float]]:
        """``(label, count, wall_ns, mean_us)`` sorted by wall time."""
        rows = [
            (label, self.counts[label], self.wall_ns[label],
             self.wall_ns[label] / self.counts[label] / 1e3)
            for label in self.counts
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:top] if top is not None else rows

    def format(self, top: int = 20) -> str:
        """Human-readable report (the CLI's ``--profile`` output)."""
        lines = [
            f"event-loop profile: {self.total_events()} events, "
            f"{self.total_wall_ns() / 1e6:.1f} ms wall",
            f"{'event':<28} {'count':>10} {'wall ms':>10} {'mean us':>9}",
        ]
        for label, count, wall, mean_us in self.rows(top):
            lines.append(f"{label:<28} {count:>10} {wall / 1e6:>10.2f} {mean_us:>9.2f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LoopProfiler events={self.total_events()}>"
