"""Decision-audit records: *why* the system did what it did, when.

JIT-GC's claim is temporal -- BGC runs as late as possible, only when
``Tidle < Tgc`` -- so end-of-window aggregates cannot falsify it.  The
audit log captures every decision with its full inputs:

* :class:`ManagerTickRecord` -- one per JIT-GC manager tick: the demand
  vectors, ``Cfree``, the Sec 3.3 time estimates, the branch taken
  (``no-bgc`` / ``defer`` / ``invoke``) and the reclaim quota issued.
* :class:`VictimRecord` -- one per GC victim selection: chosen block,
  its valid-page count and selector score, and the SIP-filter outcome
  (how many better-ranked candidates were skipped).
* :class:`FaultRecord` -- one per injected-fault *recovery*: the fault
  kind and how the FTL resolved it (read-retry, rewrite-elsewhere,
  block retirement, data loss).
* :class:`GcSpanRecord` / :class:`BackpressureRecord` -- device GC
  occupancy intervals and kernel dirty-throttling episodes: the
  timeline the tail-latency attribution engine
  (:mod:`repro.obs.attribution`) joins slow host ops against.

Records are plain frozen dataclasses so tests can assert on them
directly; the log is bounded (oldest runs of a long simulation matter
less than its recent behaviour is *not* assumed -- instead recording
simply stops at the cap and the drop count is reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Manager branch outcomes (see ManagerDecision.branch).
BRANCH_NO_BGC = "no-bgc"
BRANCH_DEFER = "defer"
BRANCH_INVOKE = "invoke"


@dataclass(frozen=True)
class ManagerTickRecord:
    """Full inputs and outcome of one JIT-GC manager tick.

    Attributes:
        t_ns: sim time of the tick.
        dbuf_bytes / ddir_bytes: summed buffered / direct demand vectors
            fed to the manager (``Creq = dbuf + ddir``).
        creq_bytes / cfree_bytes: the Sec 3.3 comparison operands.
        tw_ns / tidle_ns / tgc_ns: the time estimates (0 on the fast
            ``Cfree >= Creq`` path).
        reclaim_bytes: ``Dreclaim`` from the deferral rule.
        guard_bytes: demand-coverage guard contribution (0 when the
            deferral rule alone set the quota).
        quota_pages: pages of reclaim actually handed to the device.
        branch: which rule fired -- ``no-bgc``, ``defer`` or ``invoke``.
        write_bw / gc_bw: bandwidth estimates (bytes/s) used for
            ``Tw``/``Tgc``, recorded so the rule can be re-derived.
        sip_pages: size of the SIP list downloaded this tick.
    """

    t_ns: int
    dbuf_bytes: int
    ddir_bytes: int
    creq_bytes: int
    cfree_bytes: int
    tw_ns: int
    tidle_ns: int
    tgc_ns: int
    reclaim_bytes: int
    guard_bytes: int
    quota_pages: int
    branch: str
    write_bw: float
    gc_bw: float
    sip_pages: int = 0


@dataclass(frozen=True)
class VictimRecord:
    """One GC victim selection.

    Attributes:
        t_ns: sim time (FTL clock) of the selection.
        block: the chosen victim.
        valid_pages: its valid-page count (the migration cost).
        score: selector-specific ranking score of the winner.
        candidates_considered: candidate pool size examined.
        filtered_by_sip: better-ranked candidates skipped as SIP-heavy.
        background: True for BGC, False for a foreground stall.
    """

    t_ns: int
    block: int
    valid_pages: Optional[int]
    score: Optional[float]
    candidates_considered: int
    filtered_by_sip: int
    background: bool


@dataclass(frozen=True)
class FaultRecord:
    """One fault-recovery episode on the FTL datapath.

    Attributes:
        t_ns: sim time (FTL clock).
        kind: fault category (``read`` / ``program`` / ``erase``).
        block / page: physical location (page -1 for block-level faults).
        resolution: how the FTL resolved it -- ``read-retry``,
            ``data-lost``, ``block-retired``, ``rewrite``.
        retries: recovery attempts spent before resolution.
    """

    t_ns: int
    kind: str
    block: int
    page: int
    resolution: str
    retries: int = 0


@dataclass(frozen=True)
class GcSpanRecord:
    """One GC occupancy interval on the device.

    The tail-latency attribution engine (:mod:`repro.obs.attribution`)
    joins slow host ops against these spans: an op whose service window
    overlaps a foreground span stalled on GC directly; one overlapping a
    background span waited behind supposedly-idle-time work.

    Attributes:
        t_ns: span start (sim time).
        dur_ns: span length.
        background: True for BGC block collections and wear-level moves,
            False for a foreground stall inside a host request.
        pages: foreground -- the stalled request's page count;
            background -- net pages freed by the collection.
        scrub: True for refresh-scrub relocations (a background span
            attributed as ``scrub-interference`` rather than
            ``bgc-overlap``).
    """

    t_ns: int
    dur_ns: int
    background: bool
    pages: int = 0
    scrub: bool = False


@dataclass(frozen=True)
class BackpressureRecord:
    """One dirty-throttling episode in the kernel write path.

    Spans from the first writer parked on the throttle to the drain that
    released the last one -- the window in which buffered applications
    feel device-level stalls (the paper's Fig. 3 coupling).

    Attributes:
        t_ns: first park (sim time).
        dur_ns: span length (park to final release).
        writers: writer parks during the episode.
    """

    t_ns: int
    dur_ns: int
    writers: int = 1


@dataclass(frozen=True)
class MappingFaultRecord:
    """One CMT miss or writeback on the DFTL translation path.

    Only accesses that cost NAND time are recorded: a CMT hit is free
    and a clean eviction writes nothing.  The attribution engine joins
    slow host ops against these spans under the ``mapping-fault`` cause.

    Attributes:
        t_ns: span start (sim time, FTL clock).
        dur_ns: NAND time charged to the host op (translation-page read
            on a miss, plus program when a dirty entry was evicted).
        kind: ``miss`` (read only) or ``writeback`` (dirty eviction
            programmed, possibly on top of a miss read).
        pages: translation pages touched (read + programmed).
    """

    t_ns: int
    dur_ns: int
    kind: str
    pages: int = 1


@dataclass(frozen=True)
class CheckpointRecord:
    """One durable mapping checkpoint written to the NAND metadata region.

    Attributes:
        t_ns: sim time (FTL clock) of the checkpoint program.
        generation: monotonic checkpoint generation stamp.
        meta_pages: metadata pages the record occupies.
        horizon_seq: the write-sequence horizon snapshotted -- every OOB
            stamp and tombstone at or past it postdates this checkpoint.
        trigger: what caused it (``interval`` / ``recovery`` / ``manual``).
    """

    t_ns: int
    generation: int
    meta_pages: int
    horizon_seq: int
    trigger: str = "interval"


@dataclass(frozen=True)
class RecoveryRecord:
    """One post-power-loss recovery scan.

    Attributes:
        t_ns: sim time of the power cut.
        duration_ns: modelled scan cost (one OOB read per scanned page
            plus one read per surviving metadata page).
        pages_scanned: programmed pages swept (the tail past the
            checkpoint's program pointers, or every programmed page on
            the full-scan path).
        torn_pages: consumed-but-unstamped pages discarded.
        stale_pages: out-place-superseded copies discarded.
        mapped_lpns: logical pages whose newest copy survived.
        free_blocks / closed_blocks / retired_blocks: re-discovered
            layout (pool, GC candidates, grown-bad set).
        read_only: the recovered device came back write-refusing.
        full_scan: True when no usable checkpoint bounded the scan.
        checkpoint_generation: generation loaded (-1 on the full scan).
        tombstones_replayed: journaled unmap entries that won the merge.
        torn_meta_records: torn/corrupt metadata records discarded.
        checkpoint_fallbacks: torn checkpoints skipped before a complete
            (older) generation was found.
    """

    t_ns: int
    duration_ns: int
    pages_scanned: int
    torn_pages: int
    stale_pages: int
    mapped_lpns: int
    free_blocks: int
    closed_blocks: int
    retired_blocks: int
    read_only: bool = False
    full_scan: bool = True
    checkpoint_generation: int = -1
    tombstones_replayed: int = 0
    torn_meta_records: int = 0
    checkpoint_fallbacks: int = 0


@dataclass
class DecisionAuditLog:
    """Bounded in-memory store of decision records.

    Hot paths guard recording with ``if audit.enabled:`` so the disabled
    default (:data:`DISABLED_AUDIT`) costs one attribute check.
    """

    enabled: bool = True
    limit: int = 200_000
    manager_ticks: List[ManagerTickRecord] = field(default_factory=list)
    victim_selections: List[VictimRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    checkpoints: List[CheckpointRecord] = field(default_factory=list)
    gc_spans: List[GcSpanRecord] = field(default_factory=list)
    backpressure_spans: List[BackpressureRecord] = field(default_factory=list)
    mapping_fault_spans: List[MappingFaultRecord] = field(default_factory=list)
    dropped: int = 0

    # ------------------------------------------------------------------
    def _append(self, store: List, record) -> None:
        if len(store) < self.limit:
            store.append(record)
        else:
            self.dropped += 1

    def record_manager_tick(self, record: ManagerTickRecord) -> None:
        if self.enabled:
            self._append(self.manager_ticks, record)

    def record_victim(self, record: VictimRecord) -> None:
        if self.enabled:
            self._append(self.victim_selections, record)

    def record_fault(self, record: FaultRecord) -> None:
        if self.enabled:
            self._append(self.faults, record)

    def record_recovery(self, record: RecoveryRecord) -> None:
        if self.enabled:
            self._append(self.recoveries, record)

    def record_checkpoint(self, record: CheckpointRecord) -> None:
        if self.enabled:
            self._append(self.checkpoints, record)

    def record_gc_span(self, record: GcSpanRecord) -> None:
        if self.enabled:
            self._append(self.gc_spans, record)

    def record_backpressure(self, record: BackpressureRecord) -> None:
        if self.enabled:
            self._append(self.backpressure_spans, record)

    def record_mapping_fault(self, record: MappingFaultRecord) -> None:
        if self.enabled:
            self._append(self.mapping_fault_spans, record)

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def ticks(self, branch: Optional[str] = None) -> List[ManagerTickRecord]:
        """Manager ticks, optionally filtered by branch taken."""
        if branch is None:
            return list(self.manager_ticks)
        return [t for t in self.manager_ticks if t.branch == branch]

    def filtered_selections(self) -> List[VictimRecord]:
        """Victim selections in which at least one candidate was skipped."""
        return [v for v in self.victim_selections if v.filtered_by_sip > 0]

    def fgc_spans(self) -> List[GcSpanRecord]:
        """Foreground-GC stall intervals, in record order."""
        return [s for s in self.gc_spans if not s.background]

    def bgc_spans(self) -> List[GcSpanRecord]:
        """Background collection (and wear-level) intervals."""
        return [s for s in self.gc_spans if s.background]

    def total_records(self) -> int:
        return (
            len(self.manager_ticks)
            + len(self.victim_selections)
            + len(self.faults)
            + len(self.recoveries)
            + len(self.checkpoints)
            + len(self.gc_spans)
            + len(self.backpressure_spans)
            + len(self.mapping_fault_spans)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DecisionAuditLog ticks={len(self.manager_ticks)} "
            f"victims={len(self.victim_selections)} faults={len(self.faults)}>"
        )


#: Shared disabled audit log; components default their ``audit`` to this.
DISABLED_AUDIT = DecisionAuditLog(enabled=False)
