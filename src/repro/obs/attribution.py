"""Tail-latency attribution: *why* was this op slow?

JIT-GC's claim is that the host never sees a GC-induced stall; a p999
number alone cannot say whether the residual tail is GC at all.  This
module closes the loop:

* :class:`OpLog` -- a structure-of-arrays per-op completion record
  (op kind, issue/complete sim-time, device queue depth at issue),
  appended by the metrics collector behind an ``enabled`` guard exactly
  like the tracer and audit log (:data:`DISABLED_OPLOG` is the shared
  no-op default).
* :func:`attribute_tail` -- joins every op above a percentile threshold
  against the decision-audit timeline (FGC stall spans, BGC block
  collections, flusher backpressure spans, fault recoveries, post-SPO
  recovery windows) and classifies it into exactly one cause.

Cause taxonomy, checked in priority order (an op overlapping several
phenomena is charged to the first match -- the most direct mechanism):

1. ``fgc-stall`` -- the op's service window overlaps a foreground-GC
   stall: the device ran out of clean capacity while serving it (or a
   request queued ahead of it) and collected inline.
2. ``bgc-overlap`` -- the window overlaps a background block collection
   (or wear-level move): the op arrived while the device was busy with
   supposedly-idle-time work and waited for the block to finish.
3. ``scrub-interference`` -- the window overlaps a refresh-scrub
   relocation (retention/read-disturb refresh): idle-time reliability
   work, distinguished from reclaim BGC so the scrubber's host impact
   is directly visible.
4. ``flusher-backpressure`` -- the window overlaps a dirty-throttling
   span: the writer was parked until write-back drained the cache (how
   device-level stalls reach buffered applications).
5. ``fault-retry`` -- a media-fault recovery (read retry, rewrite,
   block retirement) fired inside the window.
6. ``mapping-fault`` -- the window overlaps a CMT miss or dirty-entry
   writeback on the DFTL translation path: the op paid a
   translation-page read and/or program out of its own budget.
7. ``recovery-window`` -- the window overlaps a post-power-loss
   recovery scan (only possible in SPO runs).
8. ``media-queueing`` -- none of the above, but the op was issued into
   a non-empty device queue: it waited its turn behind normal traffic.
9. ``none`` -- nothing in the timeline explains it (think-time jitter,
   large requests, cache-miss fills); the catch-all that makes the
   per-cause counts always sum to the slow-op count.

Every classification is mechanical over recorded state, so the same
run always yields the same table -- the attribution is as deterministic
as the simulation it describes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.hdr import nearest_rank

#: Cause labels, in attribution priority order (most direct first).
CAUSE_FGC_STALL = "fgc-stall"
CAUSE_BGC_OVERLAP = "bgc-overlap"
CAUSE_SCRUB = "scrub-interference"
CAUSE_FLUSHER = "flusher-backpressure"
CAUSE_FAULT_RETRY = "fault-retry"
CAUSE_MAPPING_FAULT = "mapping-fault"
CAUSE_RECOVERY = "recovery-window"
CAUSE_QUEUEING = "media-queueing"
CAUSE_NONE = "none"

CAUSES: Tuple[str, ...] = (
    CAUSE_FGC_STALL,
    CAUSE_BGC_OVERLAP,
    CAUSE_SCRUB,
    CAUSE_FLUSHER,
    CAUSE_FAULT_RETRY,
    CAUSE_MAPPING_FAULT,
    CAUSE_RECOVERY,
    CAUSE_QUEUEING,
    CAUSE_NONE,
)


class OpLog:
    """Structure-of-arrays store of per-op completion records.

    Parallel lists (one slot per completed op) keep the memory footprint
    flat and the append path allocation-free; the log is bounded like
    the audit log -- past ``limit`` ops recording stops and ``dropped``
    counts the overflow (attribution then covers the recorded prefix).
    """

    __slots__ = ("enabled", "limit", "kinds", "issue_ns", "complete_ns", "queue_depths", "dropped")

    def __init__(self, limit: int = 2_000_000, enabled: bool = True) -> None:
        self.enabled = enabled
        self.limit = limit
        self.kinds: List[str] = []
        self.issue_ns: List[int] = []
        self.complete_ns: List[int] = []
        self.queue_depths: List[int] = []
        self.dropped = 0

    def record(self, kind: str, issue_ns: int, complete_ns: int, queue_depth: int) -> None:
        """Append one completed op (call sites guard on ``enabled``)."""
        if len(self.issue_ns) >= self.limit:
            self.dropped += 1
            return
        self.kinds.append(kind)
        self.issue_ns.append(issue_ns)
        self.complete_ns.append(complete_ns)
        self.queue_depths.append(queue_depth)

    def __len__(self) -> int:
        return len(self.issue_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OpLog n={len(self)} enabled={self.enabled} dropped={self.dropped}>"


#: Shared disabled op log; the collector defaults to this.
DISABLED_OPLOG = OpLog(limit=0, enabled=False)


@dataclass
class TailReport:
    """Per-cause breakdown of the ops above the latency threshold.

    Attributes:
        threshold_pct: the percentile defining "slow" (default p99).
        threshold_ns: that percentile's latency value; ops with latency
            >= it are classified.
        total_ops: ops in the log.
        slow_ops: ops at or above the threshold.
        causes: cause -> (count, total latency ns).  Counts always sum
            to ``slow_ops`` (``none`` is the catch-all).
    """

    threshold_pct: float
    threshold_ns: int
    total_ops: int
    slow_ops: int
    causes: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def count(self, cause: str) -> int:
        return self.causes.get(cause, (0, 0))[0]

    def total_ns(self, cause: str) -> int:
        return self.causes.get(cause, (0, 0))[1]

    def accounted(self) -> int:
        """Sum of per-cause counts -- always equals ``slow_ops``."""
        return sum(count for count, _ in self.causes.values())

    def to_wire(self) -> Dict[str, List[int]]:
        """JSON-safe ``{cause: [count, total_ns]}`` map."""
        return {cause: [int(c), int(t)] for cause, (c, t) in self.causes.items()}


class SpanIndex:
    """Merged, sorted, non-overlapping intervals with O(log n) overlap
    queries -- the join structure for audit timeline spans."""

    def __init__(self, spans: Sequence[Tuple[int, int]]) -> None:
        merged: List[Tuple[int, int]] = []
        for start, end in sorted((s, e) for s, e in spans if e >= s):
            if merged and start <= merged[-1][1]:
                last_start, last_end = merged[-1]
                merged[-1] = (last_start, max(last_end, end))
            else:
                merged.append((start, end))
        self.starts = [s for s, _ in merged]
        self.ends = [e for _, e in merged]

    def overlaps(self, start: int, end: int) -> bool:
        """True when ``[start, end]`` intersects any stored interval."""
        if not self.starts:
            return False
        # Candidate: the last interval starting at or before `end`.
        index = bisect_right(self.starts, end) - 1
        return index >= 0 and self.ends[index] >= start

    def __len__(self) -> int:
        return len(self.starts)


class PointIndex:
    """Sorted instants with O(log n) any-in-range queries (faults)."""

    def __init__(self, points: Sequence[int]) -> None:
        self.points = sorted(points)

    def any_in(self, start: int, end: int) -> bool:
        index = bisect_right(self.points, end) - 1
        return index >= 0 and self.points[index] >= start

    def __len__(self) -> int:
        return len(self.points)


def attribute_tail(
    oplog: OpLog,
    audit,
    threshold_pct: float = 99.0,
    threshold_ns: Optional[int] = None,
) -> TailReport:
    """Classify every op at or above the latency threshold into a cause.

    Args:
        oplog: the per-op completion log (may be empty or disabled).
        audit: a :class:`~repro.obs.audit.DecisionAuditLog` carrying the
            decision timeline (GC spans, backpressure spans, faults,
            recoveries).  A disabled audit yields an empty timeline, so
            slow ops fall through to ``media-queueing``/``none``.
        threshold_pct: percentile defining "slow"; the threshold value
            is the nearest-rank percentile of the recorded latencies.
        threshold_ns: overrides the computed threshold (used when
            re-attributing against a fixed bar, e.g. across policies).

    Returns a :class:`TailReport` whose cause counts sum to its
    ``slow_ops`` -- every slow op lands in exactly one bucket.
    """
    latencies = [c - i for i, c in zip(oplog.issue_ns, oplog.complete_ns)]
    total_ops = len(latencies)
    if threshold_ns is None:
        if total_ops == 0:
            return TailReport(threshold_pct, 0, 0, 0, {cause: (0, 0) for cause in CAUSES})
        ordered = sorted(latencies)
        threshold_ns = ordered[nearest_rank(threshold_pct, total_ops) - 1]

    fgc = SpanIndex(
        [(r.t_ns, r.t_ns + r.dur_ns) for r in getattr(audit, "gc_spans", []) if not r.background]
    )
    # Background spans split by origin: refresh-scrub relocations get
    # their own cause (getattr tolerates pre-scrub records on disk).
    bgc = SpanIndex(
        [
            (r.t_ns, r.t_ns + r.dur_ns)
            for r in getattr(audit, "gc_spans", [])
            if r.background and not getattr(r, "scrub", False)
        ]
    )
    scrub = SpanIndex(
        [
            (r.t_ns, r.t_ns + r.dur_ns)
            for r in getattr(audit, "gc_spans", [])
            if r.background and getattr(r, "scrub", False)
        ]
    )
    backpressure = SpanIndex(
        [(r.t_ns, r.t_ns + r.dur_ns) for r in getattr(audit, "backpressure_spans", [])]
    )
    recovery = SpanIndex(
        [
            (r.t_ns, r.t_ns + r.duration_ns)
            for r in getattr(audit, "recoveries", [])
        ]
    )
    faults = PointIndex([r.t_ns for r in getattr(audit, "faults", [])])
    mapping_faults = SpanIndex(
        [
            (r.t_ns, r.t_ns + r.dur_ns)
            for r in getattr(audit, "mapping_fault_spans", [])
        ]
    )

    counts: Dict[str, int] = {cause: 0 for cause in CAUSES}
    totals: Dict[str, int] = {cause: 0 for cause in CAUSES}
    slow_ops = 0
    for index in range(total_ops):
        latency = latencies[index]
        if latency < threshold_ns:
            continue
        slow_ops += 1
        issue = oplog.issue_ns[index]
        complete = oplog.complete_ns[index]
        if fgc.overlaps(issue, complete):
            cause = CAUSE_FGC_STALL
        elif bgc.overlaps(issue, complete):
            cause = CAUSE_BGC_OVERLAP
        elif scrub.overlaps(issue, complete):
            cause = CAUSE_SCRUB
        elif backpressure.overlaps(issue, complete):
            cause = CAUSE_FLUSHER
        elif faults.any_in(issue, complete):
            cause = CAUSE_FAULT_RETRY
        elif mapping_faults.overlaps(issue, complete):
            cause = CAUSE_MAPPING_FAULT
        elif recovery.overlaps(issue, complete):
            cause = CAUSE_RECOVERY
        elif oplog.queue_depths[index] > 0:
            cause = CAUSE_QUEUEING
        else:
            cause = CAUSE_NONE
        counts[cause] += 1
        totals[cause] += latency

    return TailReport(
        threshold_pct=threshold_pct,
        threshold_ns=int(threshold_ns),
        total_ops=total_ops,
        slow_ops=slow_ops,
        causes={cause: (counts[cause], totals[cause]) for cause in CAUSES},
    )


def causes_from_wire(wire: Optional[Mapping]) -> Dict[str, Tuple[int, int]]:
    """Inverse of :meth:`TailReport.to_wire` for RunMetrics transport."""
    if not wire:
        return {}
    return {str(cause): (int(pair[0]), int(pair[1])) for cause, pair in wire.items()}
