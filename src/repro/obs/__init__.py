"""``repro.obs`` -- the observability substrate.

Four pieces, designed to cost a single guarded branch when disabled:

* :mod:`repro.obs.tracer` -- sim-time event tracing with JSONL and
  Chrome ``trace_event`` (Perfetto-loadable) sinks.
* :mod:`repro.obs.registry` -- counters / gauges / histograms / time
  series with periodic sim-time sampling.
* :mod:`repro.obs.audit` -- decision-audit records for manager ticks,
  victim selections and fault recoveries.
* :mod:`repro.obs.profiler` -- wall-clock event-loop profiling.

:class:`Observability` bundles one of each per run and knows how to wire
them into a :class:`~repro.host.HostSystem`; :class:`ObservabilityConfig`
is the serializable knob set the CLI (``--trace``, ``--trace-format``,
``--metrics-interval``, ``--profile``) maps onto.  See OBSERVABILITY.md
for the trace schema and metric-name catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.attribution import (
    CAUSES,
    DISABLED_OPLOG,
    OpLog,
    TailReport,
    attribute_tail,
)
from repro.obs.audit import (
    BRANCH_DEFER,
    BRANCH_INVOKE,
    BRANCH_NO_BGC,
    DISABLED_AUDIT,
    BackpressureRecord,
    DecisionAuditLog,
    FaultRecord,
    GcSpanRecord,
    ManagerTickRecord,
    VictimRecord,
)
from repro.obs.profiler import LoopProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    TimeSeries,
)
from repro.obs.tracer import (
    NULL_TRACER,
    ChromeTraceSink,
    InMemorySink,
    JsonlTraceSink,
    NullTracer,
    TraceSink,
    Tracer,
)
from repro.sim.simtime import SECOND

#: Accepted ``--trace-format`` values.
TRACE_FORMATS = ("jsonl", "chrome")


@dataclass
class ObservabilityConfig:
    """What a run should record; the CLI flag set in dataclass form.

    Attributes:
        trace_path: write a trace here (None disables tracing).
        trace_format: ``"jsonl"`` or ``"chrome"``.
        metrics_interval_ns: registry sampling period; 0 disables
            periodic sampling.
        profile: attach a wall-clock event-loop profiler.
        audit: keep decision-audit records in memory (implied by
            tracing, since audit records feed trace events).
        tail_attribution: keep a per-op completion log and attribute
            tail-latency ops against the decision-audit timeline
            (implies ``audit``; see :mod:`repro.obs.attribution`).
        tail_threshold_pct: percentile defining a "slow" op for the
            attribution report (default: p99).
        header: extra attribution fields merged into the trace header
            (the runner adds seed, fault profile, policy, workload).
    """

    trace_path: Optional[str] = None
    trace_format: str = "jsonl"
    metrics_interval_ns: int = SECOND
    profile: bool = False
    audit: bool = False
    tail_attribution: bool = False
    tail_threshold_pct: float = 99.0
    header: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trace_format not in TRACE_FORMATS:
            raise ValueError(
                f"trace_format must be one of {TRACE_FORMATS}, got {self.trace_format!r}"
            )
        if self.metrics_interval_ns < 0:
            raise ValueError(
                f"metrics_interval_ns must be >= 0, got {self.metrics_interval_ns}"
            )
        if not 0.0 <= self.tail_threshold_pct <= 100.0:
            raise ValueError(
                f"tail_threshold_pct must be in [0, 100], got {self.tail_threshold_pct}"
            )

    def enabled(self) -> bool:
        return bool(self.trace_path) or self.profile or self.audit or self.tail_attribution

    def with_suffix(self, tag: str) -> "ObservabilityConfig":
        """Same config, trace path suffixed with ``-tag`` before the
        extension -- used by multi-scenario commands so compared runs
        never overwrite each other's traces."""
        if not self.trace_path:
            return replace(self)
        path = Path(self.trace_path)
        return replace(self, trace_path=str(path.with_name(f"{path.stem}-{tag}{path.suffix}")))


class Observability:
    """One run's tracer + registry + audit log + profiler, wired together.

    Every :class:`~repro.host.HostSystem` owns one (a disabled instance by
    default).  The registry is always real -- it is the single source of
    truth for event-driven series like the FTL's effective-OP timeline --
    while the tracer, audit log and profiler are no-ops unless configured.
    """

    def __init__(
        self,
        tracer: Tracer = NULL_TRACER,
        registry: Optional[MetricsRegistry] = None,
        audit: Optional[DecisionAuditLog] = None,
        profiler: Optional[LoopProfiler] = None,
        metrics_interval_ns: int = 0,
        oplog: Optional[OpLog] = None,
        tail_threshold_pct: float = 99.0,
    ) -> None:
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()
        self.audit = audit if audit is not None else DISABLED_AUDIT
        self.profiler = profiler
        self.metrics_interval_ns = metrics_interval_ns
        self.oplog = oplog if oplog is not None else DISABLED_OPLOG
        self.tail_threshold_pct = tail_threshold_pct
        self.sampler: Optional[MetricsSampler] = None
        self._finished = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Observability":
        """The default: real registry, everything else a no-op."""
        return cls()

    @classmethod
    def from_config(
        cls, config: ObservabilityConfig, header: Optional[Dict[str, Any]] = None
    ) -> "Observability":
        """Build sinks/instruments per ``config``.

        ``header`` fields (seed, fault profile, policy, workload) are
        merged over ``config.header`` and written into the trace file
        header so every trace is attributable on its own.
        """
        merged = dict(config.header)
        merged.update(header or {})
        tracer: Tracer = NULL_TRACER
        if config.trace_path:
            if config.trace_format == "chrome":
                sink: TraceSink = ChromeTraceSink(config.trace_path, header=merged)
            else:
                sink = JsonlTraceSink(config.trace_path, header=merged)
            tracer = Tracer(sink)
        audit = (
            DecisionAuditLog()
            if (config.audit or config.trace_path or config.tail_attribution)
            else DISABLED_AUDIT
        )
        profiler = LoopProfiler() if config.profile else None
        return cls(
            tracer=tracer,
            audit=audit,
            profiler=profiler,
            metrics_interval_ns=config.metrics_interval_ns if config.trace_path else 0,
            oplog=OpLog() if config.tail_attribution else DISABLED_OPLOG,
            tail_threshold_pct=config.tail_threshold_pct,
        )

    @classmethod
    def resolve(cls, obs) -> "Observability":
        """Accept an Observability, a config, or None."""
        if obs is None:
            return cls.disabled()
        if isinstance(obs, Observability):
            return obs
        if isinstance(obs, ObservabilityConfig):
            return cls.from_config(obs)
        raise TypeError(f"cannot resolve observability from {type(obs).__name__}")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, host) -> None:
        """Bind the clock and hand the tracer/audit to every component.

        Called by :class:`~repro.host.HostSystem` after assembly; safe
        (and cheap) to call on a disabled instance -- components keep
        their no-op defaults and only the standard gauges are bound.
        """
        sim = host.sim
        if self.tracer.enabled:
            self.tracer.clock = lambda: sim.now
            host.device.tracer = self.tracer
            host.flusher.tracer = self.tracer
            ftl = host.ftl
            ftl.tracer = self.tracer
            ftl.nand.tracer = self.tracer
            if ftl.nand.fault_injector is not None:
                ftl.nand.fault_injector.tracer = self.tracer
        if self.audit.enabled:
            host.ftl.audit = self.audit
            # The attribution timeline also needs device GC spans and
            # kernel backpressure episodes (see repro.obs.attribution).
            host.device.audit = self.audit
            host.dispatcher.audit = self.audit
        host.policy.observe(self)
        self._register_standard_metrics(host)
        if self.metrics_interval_ns > 0:
            self.sampler = MetricsSampler(
                self.registry, self.metrics_interval_ns, tracer=self.tracer
            )
            self.sampler.start(sim)
        if self.profiler is not None:
            sim.set_profiler(self.profiler)

    def _register_standard_metrics(self, host) -> None:
        """The standard observable set every run exposes by name."""
        ftl = host.ftl
        registry = self.registry
        registry.gauge("ftl.free_pages", ftl.free_pages)
        registry.gauge("ftl.free_bytes", ftl.free_bytes)
        registry.gauge("cache.dirty_pages", lambda: host.cache.dirty_pages)
        registry.gauge(
            "cache.dirty_bytes",
            lambda: host.cache.dirty_pages * host.cache.page_size,
        )
        registry.gauge("ftl.waf", ftl.stats.waf)
        registry.gauge("ftl.fgc_invocations", lambda: ftl.stats.fgc_invocations)
        registry.gauge("ftl.bgc_blocks", lambda: ftl.stats.bgc_blocks_collected)
        registry.gauge("ftl.effective_op_pages", ftl.effective_op_pages)
        registry.gauge("device.queue_depth", lambda: host.device.queue_depth)
        registry.gauge("nand.page_programs", lambda: ftl.nand.page_programs)
        registry.gauge("nand.block_erases", lambda: ftl.nand.block_erases)
        injector = ftl.nand.fault_injector
        if injector is not None:
            registry.gauge("faults.injected", injector.total_faults)
        # host.ops is a Counter incremented by the MetricsCollector; make
        # sure it exists so sampled runs always carry the IOPS series.
        registry.counter("host.ops")

    # ------------------------------------------------------------------
    # Teardown / reporting
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Stop sampling and flush/close the trace sink; idempotent."""
        if self._finished:
            return
        self._finished = True
        if self.sampler is not None:
            self.sampler.stop()
        self.tracer.close()

    def profile_report(self, top: int = 20) -> Optional[str]:
        if self.profiler is None:
            return None
        return self.profiler.format(top)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Observability tracing={self.tracer.enabled} "
            f"audit={self.audit.enabled} profile={self.profiler is not None}>"
        )


__all__ = [
    "BRANCH_DEFER",
    "BRANCH_INVOKE",
    "BRANCH_NO_BGC",
    "BackpressureRecord",
    "CAUSES",
    "ChromeTraceSink",
    "Counter",
    "DISABLED_AUDIT",
    "DISABLED_OPLOG",
    "DecisionAuditLog",
    "FaultRecord",
    "GcSpanRecord",
    "OpLog",
    "TailReport",
    "attribute_tail",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlTraceSink",
    "LoopProfiler",
    "ManagerTickRecord",
    "MetricsRegistry",
    "MetricsSampler",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "ObservabilityConfig",
    "TRACE_FORMATS",
    "TimeSeries",
    "TraceSink",
    "Tracer",
    "VictimRecord",
]
