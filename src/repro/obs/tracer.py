"""Sim-time tracing: a near-zero-overhead-when-disabled event API.

Components hold a :class:`Tracer` (default: the shared :data:`NULL_TRACER`)
and guard every emission site with ``if self.tracer.enabled:`` so the
disabled hot-path cost is a single attribute load plus a branch -- no
argument packing, no dict allocation.  Enabled tracers stamp each record
with the simulated clock and hand it to a pluggable sink:

* :class:`JsonlTraceSink` -- one JSON object per line, header first;
  greppable, streamable, diffable.
* :class:`ChromeTraceSink` -- the Chrome ``trace_event`` JSON object
  format, loadable directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``; each trace category becomes its own track and
  duration events render as slices.
* :class:`InMemorySink` -- list of records, for tests.

Record phases follow the trace_event convention: ``"i"`` instant,
``"X"`` complete (duration), ``"C"`` counter.  All timestamps are the
*simulated* clock in integer nanoseconds; wall time never appears in a
trace (see :mod:`repro.obs.profiler` for wall-clock profiling).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

#: Trace-record phases (a subset of the trace_event phase alphabet).
PHASE_INSTANT = "i"
PHASE_COMPLETE = "X"
PHASE_COUNTER = "C"

#: Format tag written into every trace header.
TRACE_FORMAT_VERSION = "repro-trace/1"


class TraceSink:
    """Receives normalized trace records and persists them somewhere."""

    def write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Flush and release any resources; idempotent."""


class InMemorySink(TraceSink):
    """Keeps records in a list -- the test double."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.closed = False

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        """All records with the given event name (test convenience)."""
        return [r for r in self.records if r.get("name") == name]


class JsonlTraceSink(TraceSink):
    """One JSON object per line; the first line is the run header.

    Args:
        path: output file path (opened and owned by the sink).
        header: run-attribution fields (seed, fault profile, policy, ...)
            written as the ``{"type": "header"}`` first line so any tool
            reading the file -- or a human resuming a checkpointed sweep
            -- can attribute the trace without external context.
    """

    def __init__(
        self, path: Union[str, Path], header: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = Path(path)
        self._file = open(self.path, "w", encoding="utf-8")
        head = {"type": "header", "format": TRACE_FORMAT_VERSION, "time_unit": "ns"}
        head.update(header or {})
        self._file.write(json.dumps(head) + "\n")
        self.events_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        payload = {"type": "event"}
        payload.update(record)
        self._file.write(json.dumps(payload) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class ChromeTraceSink(TraceSink):
    """Chrome ``trace_event`` JSON object format (Perfetto-loadable).

    Events are buffered and written on :meth:`close` as::

        {"traceEvents": [...], "otherData": {...header...},
         "displayTimeUnit": "ms"}

    Simulated nanoseconds map to the format's microsecond ``ts``/``dur``
    fields (divided by 1000, fractional part kept).  Each trace category
    gets its own thread id, named via ``thread_name`` metadata events, so
    GC invocations, flusher wakeups and FGC stalls land on separate
    per-component tracks.
    """

    #: All tracks share one synthetic process.
    PID = 1

    def __init__(
        self, path: Union[str, Path], header: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = Path(path)
        self.header = dict(header or {})
        self.header.setdefault("format", TRACE_FORMAT_VERSION)
        self._events: List[Dict[str, Any]] = []
        self._tids: Dict[str, int] = {}
        self._closed = False

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
        return tid

    def write(self, record: Dict[str, Any]) -> None:
        track = record.get("cat", "sim")
        event: Dict[str, Any] = {
            "name": record.get("name", ""),
            "cat": track,
            "ph": record.get("ph", PHASE_INSTANT),
            "ts": record.get("ts", 0) / 1000.0,
            "pid": self.PID,
            "tid": self._tid(track),
        }
        if event["ph"] == PHASE_INSTANT:
            event["s"] = "t"  # thread-scoped instant marker
        if "dur" in record:
            event["dur"] = record["dur"] / 1000.0
        args = record.get("args")
        if args:
            event["args"] = args
        self._events.append(event)

    def _metadata_events(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.PID,
                "tid": 0,
                "ts": 0,
                "args": {"name": "repro-sim"},
            }
        ]
        for track, tid in self._tids.items():
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.PID,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": track},
                }
            )
        return meta

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Events are buffered in *emission* order, but duration events
        # whose ts is an earlier start time (per-op completions, FGC
        # stalls) arrive out of ts order; viewers and the validator
        # require monotone timestamps per track, so sort before writing.
        # The sort is stable: same-ts events keep their emission order.
        self._events.sort(key=lambda event: event["ts"])
        document = {
            "traceEvents": self._metadata_events() + self._events,
            "otherData": self.header,
            "displayTimeUnit": "ms",
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)


class Tracer:
    """Emits sim-time-stamped events to a sink.

    Args:
        sink: destination for records.
        clock: zero-arg callable returning the current simulated time in
            nanoseconds; bound to ``sim.now`` by
            :meth:`repro.obs.Observability.install`.
    """

    __slots__ = ("sink", "clock", "enabled")

    def __init__(self, sink: TraceSink, clock: Optional[Callable[[], int]] = None) -> None:
        self.sink = sink
        self.clock = clock or (lambda: 0)
        self.enabled = True

    # ------------------------------------------------------------------
    def emit(self, category: str, name: str, **fields: Any) -> None:
        """Instant event at the current sim time on the given track."""
        self.sink.write(
            {
                "ph": PHASE_INSTANT,
                "cat": category,
                "name": name,
                "ts": self.clock(),
                "args": fields,
            }
        )

    def complete(
        self, category: str, name: str, start_ns: int, dur_ns: int, **fields: Any
    ) -> None:
        """Duration event spanning ``[start_ns, start_ns + dur_ns]``."""
        self.sink.write(
            {
                "ph": PHASE_COMPLETE,
                "cat": category,
                "name": name,
                "ts": start_ns,
                "dur": dur_ns,
                "args": fields,
            }
        )

    def counter(self, category: str, name: str, values: Dict[str, float]) -> None:
        """Counter sample; Perfetto renders these as counter tracks."""
        self.sink.write(
            {
                "ph": PHASE_COUNTER,
                "cat": category,
                "name": name,
                "ts": self.clock(),
                "args": values,
            }
        )

    def close(self) -> None:
        self.sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} enabled={self.enabled}>"


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    ``enabled`` is False, so instrumentation sites guarded with
    ``if tracer.enabled:`` never build event payloads; unguarded cold-path
    calls still cost only an empty method invocation.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(TraceSink.__new__(TraceSink))
        self.enabled = False

    def emit(self, category: str, name: str, **fields: Any) -> None:
        pass

    def complete(
        self, category: str, name: str, start_ns: int, dur_ns: int, **fields: Any
    ) -> None:
        pass

    def counter(self, category: str, name: str, values: Dict[str, float]) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled tracer; components default their ``tracer`` to this.
NULL_TRACER = NullTracer()
