"""The metrics registry: counters, gauges, histograms and time series.

One :class:`MetricsRegistry` per run is the single source of truth for
every numeric observable.  Instruments are created on demand and looked
up by name, so producers (the FTL, the device, policies) and consumers
(the :class:`~repro.metrics.collector.MetricsCollector`, trace export)
never hold diverging copies:

* :class:`Counter` -- monotonically increasing count (host ops, faults).
* :class:`Gauge` -- a zero-arg probe read at sampling time (``Cfree``,
  dirty pages, WAF).
* :class:`Histogram` -- power-of-two-bucketed value distribution.
* :class:`TimeSeries` -- explicit ``(t_ns, value)`` points, either
  event-driven (the FTL's effective-OP degradation timeline) or produced
  by periodic sampling.

:class:`MetricsSampler` schedules itself on the simulator at a fixed
sim-time interval, snapshots every gauge and counter into same-named
series, and (when a tracer is enabled) mirrors each sample as a Chrome
counter event so Perfetto draws the trajectories as counter tracks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.hdr import HdrHistogram
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.simtime import SECOND

#: Percentiles every registered HDR histogram is sampled at; each gets
#: a ``<name>.p<q>`` series / Perfetto counter track per interval.
HDR_SAMPLE_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p99", 99.0),
    ("p999", 99.9),
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named probe evaluated at sampling time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return float(self.fn())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}>"


class Histogram:
    """Power-of-two-bucketed distribution of non-negative values.

    Bucket ``i`` counts values whose integer part has bit length ``i``
    (i.e. value in ``[2^(i-1), 2^i)``; bucket 0 holds zeros), which is
    enough resolution for latency/size distributions at O(1) memory.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name} observed negative {value}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean():.1f}>"


class TimeSeries:
    """Append-only ``(t_ns, value)`` sequence."""

    __slots__ = ("name", "times_ns", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times_ns: List[int] = []
        self.values: List[float] = []

    def append(self, t_ns: int, value: float) -> None:
        self.times_ns.append(t_ns)
        self.values.append(value)

    @property
    def points(self) -> List[Tuple[int, float]]:
        return list(zip(self.times_ns, self.values))

    def __len__(self) -> int:
        return len(self.times_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name} n={len(self)}>"


class MetricsRegistry:
    """Name-indexed instrument store; instruments created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.hdr_histograms: Dict[str, HdrHistogram] = {}
        self._hdr_marks: Dict[str, Tuple[Dict[int, int], int]] = {}
        self._series: Dict[str, TimeSeries] = {}

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by name)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register (or re-bind) a gauge probe."""
        instrument = Gauge(name, fn)
        self.gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def hdr(self, name: str, bucket_bits: int = 8) -> HdrHistogram:
        """Register (or fetch) an HDR latency histogram.

        Registered histograms are quantile-sampled: every
        :meth:`sample` appends the *interval* percentiles of
        :data:`HDR_SAMPLE_PERCENTILES` to ``<name>.p99`` /
        ``<name>.p999`` series, which the sampler mirrors as Perfetto
        counter tracks -- the per-interval tail trajectory of the run.
        """
        instrument = self.hdr_histograms.get(name)
        if instrument is None:
            instrument = self.hdr_histograms[name] = HdrHistogram(bucket_bits)
            self._hdr_marks[name] = instrument.mark()
        return instrument

    def series(self, name: str) -> TimeSeries:
        instrument = self._series.get(name)
        if instrument is None:
            instrument = self._series[name] = TimeSeries(name)
        return instrument

    def has_series(self, name: str) -> bool:
        return name in self._series

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now_ns: int) -> Dict[str, float]:
        """Read every gauge and counter into its same-named series.

        Returns the sampled ``{name: value}`` row (used by the sampler
        to mirror values into the trace).
        """
        row: Dict[str, float] = {}
        for name, gauge in self.gauges.items():
            value = gauge.read()
            self.series(name).append(now_ns, value)
            row[name] = value
        for name, counter in self.counters.items():
            self.series(name).append(now_ns, counter.value)
            row[name] = counter.value
        for name, hist in self.hdr_histograms.items():
            interval = hist.interval_percentiles(
                self._hdr_marks[name], [q for _, q in HDR_SAMPLE_PERCENTILES]
            )
            self._hdr_marks[name] = hist.mark()
            for label, q in HDR_SAMPLE_PERCENTILES:
                series_name = f"{name}.{label}"
                self.series(series_name).append(now_ns, interval[q])
                row[series_name] = interval[q]
        return row

    def rate_points(self, name: str, per_ns: int = SECOND) -> List[Tuple[int, float]]:
        """Per-interval rate derived from a cumulative series.

        Point ``(t_i, r_i)`` is the increase over ``(t_{i-1}, t_i]``
        scaled to ``per_ns`` (per-second by default) -- e.g. the sampled
        ``host.ops`` counter becomes a per-interval IOPS trajectory.
        """
        series = self.series(name)
        rates: List[Tuple[int, float]] = []
        for index in range(1, len(series)):
            dt = series.times_ns[index] - series.times_ns[index - 1]
            if dt <= 0:
                continue
            dv = series.values[index] - series.values[index - 1]
            rates.append((series.times_ns[index], dv * per_ns / dt))
        return rates

    def snapshot(self) -> Dict[str, Any]:
        """Serializable view of everything the registry holds."""
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": sorted(self.gauges),
            "histograms": {name: h.summary() for name, h in self.histograms.items()},
            "hdr": {name: h.to_wire() for name, h in self.hdr_histograms.items()},
            "series": {
                name: {"times_ns": list(s.times_ns), "values": list(s.values)}
                for name, s in self._series.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"gauges={len(self.gauges)} series={len(self._series)}>"
        )


class MetricsSampler:
    """Samples a registry every ``period_ns`` of simulated time.

    Sampling only *reads* system state (gauges are pure probes), so a
    sampled run is behaviourally identical to an unsampled one -- the
    determinism guarantee tracing relies on.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        period_ns: int,
        tracer: Tracer = NULL_TRACER,
        track: str = "metrics",
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"sampling period must be positive, got {period_ns}")
        self.registry = registry
        self.period_ns = period_ns
        self.tracer = tracer
        self.track = track
        self.samples_taken = 0
        self._sim = None
        self._running = False

    def start(self, sim) -> "MetricsSampler":
        """Begin sampling on ``sim`` (first sample fires immediately)."""
        if self._running:
            raise RuntimeError("sampler already running")
        from repro.sim.events import PRIORITY_LOW  # local: avoid cycle

        self._sim = sim
        self._priority = PRIORITY_LOW
        self._running = True
        sim.schedule(0, self._tick, priority=self._priority, name="obs.sample")
        return self

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self._sim.now
        row = self.registry.sample(now)
        self.samples_taken += 1
        if self.tracer.enabled:
            for name, value in row.items():
                self.tracer.counter(self.track, name, {"value": value})
        self._sim.schedule(
            self.period_ns, self._tick, priority=self._priority, name="obs.sample"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricsSampler period={self.period_ns} samples={self.samples_taken}>"
