"""Latency recording with bounded memory.

Keeps an exact list up to ``reservoir_size`` samples, then switches to
uniform reservoir sampling, so multi-million-op runs stay O(1) in memory
while percentiles remain statistically sound.
"""

from __future__ import annotations

import random
from typing import List


class LatencyRecorder:
    """Reservoir-sampled latency distribution (nanosecond samples)."""

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._samples: List[int] = []
        self._count = 0
        self._sum = 0
        self._max = 0
        self._rng = random.Random(seed)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"latency must be >= 0, got {latency_ns}")
        self._count += 1
        self._sum += latency_ns
        self._max = max(self._max, latency_ns)
        if len(self._samples) < self.reservoir_size:
            self._samples.append(latency_ns)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir_size:
                self._samples[slot] = latency_ns

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def max(self) -> int:
        return self._max

    def percentile(self, q: float) -> int:
        """q-th percentile (q in [0, 100]) of the sampled distribution."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._samples:
            return 0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LatencyRecorder n={self._count} mean={self.mean():.0f}ns>"
