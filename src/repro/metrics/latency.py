"""Reservoir-sampled latency recording: the reference oracle.

Since the HDR histogram (:mod:`repro.metrics.hdr`) became the primary
latency estimator, the reservoir survives as the *executable
specification* for quantiles -- the same role the brute-force scan
implementations play for the GC hot paths (:mod:`repro.perf`).  Inside
:func:`reservoir_reference` the metrics collector records into a
:class:`LatencyRecorder` alongside the histogram and reports the
reservoir's statistics, so equivalence tests can assert that an
HDR-instrumented run is bit-identical in every event/GC count and
within the configured relative error on every quantile.

Both implementations share one quantile definition -- **nearest rank**
(:func:`repro.metrics.hdr.nearest_rank`): ``P_q`` is the sample at
1-based rank ``ceil(q/100 * N)`` of the sorted stream.  The previous
``int(round(...))`` interpolation picked inconsistent ranks at small N
(banker's rounding sent q=50 of a 4-sample set to rank 2 or 3 depending
on parity); nearest rank is deterministic and matches what the
histogram approximates.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator, List

from repro.metrics.hdr import nearest_rank

#: Module-level switch; prefer :func:`reservoir_reference` over writes.
RESERVOIR_REFERENCE: bool = False


def reservoir_reference_enabled() -> bool:
    """True when metrics collectors built now should report latency from
    the reservoir oracle instead of the HDR histogram."""
    return RESERVOIR_REFERENCE


@contextmanager
def reservoir_reference() -> Iterator[None]:
    """Report latency from the reservoir oracle inside the block.

    Collectors built inside the block keep a :class:`LatencyRecorder`
    next to the HDR histogram and freeze *its* mean/percentiles into the
    :class:`~repro.metrics.collector.RunMetrics`.  Recording into the
    reservoir never touches simulation state (it draws from its own
    seeded ``random.Random``), so the run itself is bit-identical --
    only the latency summary estimator changes::

        with reservoir_reference():
            oracle = run_scenario(spec)    # reservoir quantiles
        primary = run_scenario(spec)       # HDR quantiles
        assert oracle.fgc_invocations == primary.fgc_invocations  # etc.
    """
    global RESERVOIR_REFERENCE
    previous = RESERVOIR_REFERENCE
    RESERVOIR_REFERENCE = True
    try:
        yield
    finally:
        RESERVOIR_REFERENCE = previous


class LatencyRecorder:
    """Reservoir-sampled latency distribution (nanosecond samples).

    Keeps an exact list up to ``reservoir_size`` samples, then switches
    to uniform reservoir sampling, so multi-million-op runs stay O(1) in
    memory while percentiles remain statistically sound.  Below the
    reservoir size the sample set is the full stream and
    :meth:`percentile` is *exact* under the nearest-rank definition --
    which is what makes it usable as the HDR oracle.
    """

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._samples: List[int] = []
        self._count = 0
        self._sum = 0
        self._max = 0
        self._rng = random.Random(seed)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"latency must be >= 0, got {latency_ns}")
        self._count += 1
        self._sum += latency_ns
        self._max = max(self._max, latency_ns)
        if len(self._samples) < self.reservoir_size:
            self._samples.append(latency_ns)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir_size:
                self._samples[slot] = latency_ns

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def max(self) -> int:
        return self._max

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile of the sampled distribution.

        Same definition as :meth:`repro.metrics.hdr.HdrHistogram.
        percentile`; exact while the stream fits the reservoir.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._samples:
            return 0
        ordered = sorted(self._samples)
        return ordered[nearest_rank(q, len(ordered)) - 1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LatencyRecorder n={self._count} mean={self.mean():.0f}ns>"
