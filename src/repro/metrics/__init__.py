"""Measurement instrumentation.

* :mod:`repro.metrics.iops` -- application-level operation counting and
  IOPS over a measurement window.
* :mod:`repro.metrics.latency` -- latency percentiles via reservoir
  sampling.
* :mod:`repro.metrics.collector` -- the per-run measurement bundle used
  by every experiment: IOPS + WAF (FTL-counter delta) + GC activity +
  policy-specific extras, with explicit begin/end windows so the cold
  ramp-up is excluded.
"""

from repro.metrics.iops import IopsMeter
from repro.metrics.latency import LatencyRecorder
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.timeline import TimelineSampler

__all__ = [
    "IopsMeter",
    "LatencyRecorder",
    "MetricsCollector",
    "RunMetrics",
    "TimelineSampler",
]
