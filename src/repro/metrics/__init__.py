"""Measurement instrumentation.

* :mod:`repro.metrics.iops` -- application-level operation counting and
  IOPS over a measurement window.
* :mod:`repro.metrics.hdr` -- HDR-style log-linear latency histogram,
  the primary percentile estimator (exact counts, mergeable).
* :mod:`repro.metrics.latency` -- the reservoir-sampled oracle the
  histogram is equivalence-tested against.
* :mod:`repro.metrics.collector` -- the per-run measurement bundle used
  by every experiment: IOPS + WAF (FTL-counter delta) + GC activity +
  latency percentiles + tail attribution, with explicit begin/end
  windows so the cold ramp-up is excluded.

The collector pulls in the whole host stack, which itself reaches back
into :mod:`repro.metrics.hdr` through the observability registry --
so the heavyweight names below resolve lazily (PEP 562) and only the
leaf modules import eagerly.
"""

from repro.metrics.iops import IopsMeter
from repro.metrics.hdr import HdrHistogram, merge_wire_histograms, nearest_rank
from repro.metrics.latency import (
    LatencyRecorder,
    reservoir_reference,
    reservoir_reference_enabled,
)

_LAZY = {
    "LATENCY_PERCENTILES": ("repro.metrics.collector", "LATENCY_PERCENTILES"),
    "MetricsCollector": ("repro.metrics.collector", "MetricsCollector"),
    "RunMetrics": ("repro.metrics.collector", "RunMetrics"),
    "TimelineSampler": ("repro.metrics.timeline", "TimelineSampler"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value


__all__ = [
    "HdrHistogram",
    "IopsMeter",
    "LATENCY_PERCENTILES",
    "LatencyRecorder",
    "MetricsCollector",
    "RunMetrics",
    "TimelineSampler",
    "merge_wire_histograms",
    "nearest_rank",
    "reservoir_reference",
    "reservoir_reference_enabled",
]
