"""The per-run measurement bundle.

:class:`MetricsCollector` snapshots FTL counters at window begin/end so
WAF, migrations and GC activity are measured over exactly the same
steady-state window as IOPS.  :class:`RunMetrics` is the frozen result
every experiment stores and formats.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from repro.ftl.stats import FtlStats
from repro.host import HostSystem
from repro.metrics.iops import IopsMeter
from repro.metrics.latency import LatencyRecorder


@dataclass
class RunMetrics:
    """Results of one measured run (window-scoped).

    Attributes:
        policy: policy name.
        workload: workload name.
        duration_ns: measurement-window length.
        iops: application operations per second.
        waf: write amplification over the window.
        host_pages_written / gc_pages_migrated: window deltas.
        fgc_invocations / fgc_time_ns: foreground-GC stalls in the window.
        bgc_blocks: background-GC blocks collected in the window.
        prediction_accuracy_pct: Table 2 metric (None for non-predicting
            policies).
        sip_selections / sip_filtered: Table 3 counters (JIT-GC only).
        buffered_fraction: share of application write bytes that took the
            buffered path (Table 1).
        mean_latency_ns / p99_latency_ns: application op latency.
        injected_faults: media faults the injector fired over the whole
            run (0 on a fault-free device).
        read_retries / uncorrectable_reads / program_faults /
        erase_faults / blocks_retired: window-scoped recovery counters
            (see :class:`~repro.ftl.stats.FtlStats`).
        effective_op_pages: OP capacity remaining at window end, net of
            retired blocks.
        op_timeline: ``(t_ns, effective_op_pages)`` degradation events
            within the window.
        device_read_only: the device hit its terminal read-only state.
    """

    policy: str
    workload: str
    duration_ns: int
    iops: float
    waf: float
    host_pages_written: int
    gc_pages_migrated: int
    fgc_invocations: int
    fgc_time_ns: int
    bgc_blocks: int
    erases: int
    prediction_accuracy_pct: Optional[float] = None
    sip_selections: int = 0
    sip_filtered: int = 0
    buffered_fraction: float = 0.0
    mean_latency_ns: float = 0.0
    p99_latency_ns: int = 0
    injected_faults: int = 0
    read_retries: int = 0
    uncorrectable_reads: int = 0
    program_faults: int = 0
    erase_faults: int = 0
    blocks_retired: int = 0
    effective_op_pages: Optional[int] = None
    op_timeline: List[Tuple[int, int]] = field(default_factory=list)
    device_read_only: bool = False
    #: Sudden power-offs survived during the run (0 without SPO).
    spo_count: int = 0
    #: Total simulated time spent in post-SPO recovery scans.
    recovery_time_ns: int = 0
    #: Pages discarded (TRIM) by the host over the window.
    trim_count: int = 0

    def to_wire(self) -> dict:
        """Flat plain-types dict safe for queues, pickles and JSON.

        Sweep workers stream these through the result queue instead of
        pickled :class:`RunMetrics` objects; :meth:`from_wire` restores
        an equal instance (``from_wire(m.to_wire()) == m``).
        """
        wire = dataclasses.asdict(self)
        wire["op_timeline"] = [[int(t), int(v)] for t, v in self.op_timeline]
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping) -> "RunMetrics":
        """Inverse of :meth:`to_wire`; tolerates extra keys (schema tags)."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in wire.items() if k in names}
        kwargs["op_timeline"] = [
            (int(t), int(v)) for t, v in kwargs.get("op_timeline", [])
        ]
        return cls(**kwargs)

    def recovered_faults(self) -> int:
        """Faults survived without data loss or scenario failure."""
        return self.program_faults + self.erase_faults + self.read_retries

    def sip_filtered_pct(self) -> float:
        """Table 3: % of victim selections that filtered a candidate."""
        if self.sip_selections == 0:
            return 0.0
        return 100.0 * self.sip_filtered / self.sip_selections


class MetricsCollector:
    """Instrumentation attached to one :class:`HostSystem` run."""

    def __init__(self, host: HostSystem, workload_name: str = "") -> None:
        self.host = host
        self.workload_name = workload_name
        self.iops_meter = IopsMeter()
        self.latency = LatencyRecorder()
        # The registry is the single source of truth: sampled alongside
        # the gauges, host.ops becomes the per-interval IOPS series.
        self._ops_counter = host.obs.registry.counter("host.ops")
        self._latency_hist = host.obs.registry.histogram("host.op_latency_ns")
        self._begin_stats: Optional[FtlStats] = None
        self._begin_ns = 0
        self._end_ns = -1
        self._sip_begin = (0, 0)

    # ------------------------------------------------------------------
    # Workload-facing hooks
    # ------------------------------------------------------------------
    def record_op(self, latency_ns: Optional[int] = None) -> None:
        """One application operation completed."""
        self.iops_meter.record_op()
        self._ops_counter.inc()
        if latency_ns is not None:
            self.latency.record(latency_ns)
            self._latency_hist.observe(latency_ns)

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def begin(self) -> None:
        now = self.host.sim.now
        self.iops_meter.begin_window(now)
        self._begin_stats = self.host.ftl.stats.snapshot()
        self._begin_ns = now
        self._sip_begin = self._sip_counters()

    def end(self) -> None:
        now = self.host.sim.now
        self.iops_meter.end_window(now)
        self._end_ns = now

    def _sip_counters(self) -> tuple:
        stats = self.host.ftl.stats
        return (stats.victim_selections, stats.victims_filtered_by_sip)

    # ------------------------------------------------------------------
    def results(self) -> RunMetrics:
        """Freeze the window into a :class:`RunMetrics`."""
        if self._begin_stats is None or self._end_ns < 0:
            raise RuntimeError("measurement window not begun/ended")
        delta = self.host.ftl.stats.delta_since(self._begin_stats)
        accuracy = None
        policy = self.host.policy
        tracker = getattr(policy, "accuracy", None)
        if tracker is not None and tracker.intervals_scored > 0:
            accuracy = tracker.accuracy_percent()
        sip_end = self._sip_counters()
        ftl = self.host.ftl
        injector = ftl.nand.fault_injector
        # ftl.op_timeline is derived from the registry's
        # ftl.effective_op_pages.events series (single source of truth).
        op_timeline = [
            (int(t), int(op))
            for t, op in ftl.op_timeline
            if self._begin_ns <= t <= self._end_ns
        ]
        return RunMetrics(
            policy=policy.name,
            workload=self.workload_name,
            duration_ns=self._end_ns - self._begin_ns,
            iops=self.iops_meter.iops(),
            waf=delta.waf(),
            host_pages_written=delta.host_pages_written,
            gc_pages_migrated=delta.gc_pages_migrated,
            fgc_invocations=delta.fgc_invocations,
            fgc_time_ns=delta.fgc_time_ns,
            bgc_blocks=delta.bgc_blocks_collected,
            erases=delta.blocks_erased,
            prediction_accuracy_pct=accuracy,
            sip_selections=sip_end[0] - self._sip_begin[0],
            sip_filtered=sip_end[1] - self._sip_begin[1],
            buffered_fraction=self.host.dispatcher.stats.buffered_fraction(),
            mean_latency_ns=self.latency.mean(),
            p99_latency_ns=self.latency.percentile(99),
            injected_faults=injector.total_faults() if injector is not None else 0,
            read_retries=delta.read_retries,
            uncorrectable_reads=delta.uncorrectable_reads,
            program_faults=delta.program_faults,
            erase_faults=delta.erase_faults,
            blocks_retired=delta.blocks_retired,
            effective_op_pages=ftl.effective_op_pages(),
            op_timeline=op_timeline,
            device_read_only=ftl.read_only,
            trim_count=delta.pages_trimmed,
        )
