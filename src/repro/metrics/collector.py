"""The per-run measurement bundle.

:class:`MetricsCollector` snapshots FTL counters at window begin/end so
WAF, migrations and GC activity are measured over exactly the same
steady-state window as IOPS.  :class:`RunMetrics` is the frozen result
every experiment stores and formats.

Latency is measured by the HDR histogram registered as
``host.op_latency_ns`` in the run's metrics registry (exact counts,
bounded memory, mergeable across ``--jobs`` workers and SPO phases);
inside :func:`repro.metrics.latency.reservoir_reference` the collector
co-records into the legacy reservoir and freezes *its* statistics
instead, which is how the equivalence tests pin the histogram against
the oracle without perturbing the simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ftl.stats import FtlStats
from repro.host import HostSystem
from repro.metrics.hdr import HdrHistogram
from repro.metrics.iops import IopsMeter
from repro.metrics.latency import LatencyRecorder, reservoir_reference_enabled
from repro.obs.attribution import attribute_tail

#: Percentiles frozen into every RunMetrics (p50/p95/p99/p999/p9999).
LATENCY_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0, 99.9, 99.99)


@dataclass
class RunMetrics:
    """Results of one measured run (window-scoped).

    Attributes:
        policy: policy name.
        workload: workload name.
        duration_ns: measurement-window length.
        iops: application operations per second.
        waf: write amplification over the window.
        host_pages_written / gc_pages_migrated: window deltas.
        fgc_invocations / fgc_time_ns: foreground-GC stalls in the window.
        bgc_blocks: background-GC blocks collected in the window.
        prediction_accuracy_pct: Table 2 metric (None for non-predicting
            policies).
        sip_selections / sip_filtered: Table 3 counters (JIT-GC only).
        buffered_fraction: share of application write bytes that took the
            buffered path (Table 1).
        mean_latency_ns / p50..p9999 / max_latency_ns: application op
            latency summary (HDR histogram; reservoir inside
            :func:`~repro.metrics.latency.reservoir_reference`).
        latency_hist: the full distribution in
            :meth:`~repro.metrics.hdr.HdrHistogram.to_wire` form, so
            merges recompute exact percentiles (None when no op carried
            a latency or the run predates histograms).
        tail_threshold_pct / tail_threshold_ns / tail_slow_ops /
        tail_causes: the tail-attribution table (``{cause: [count,
            total_ns]}``), empty unless the run enabled
            ``tail_attribution`` (see :mod:`repro.obs.attribution`).
        injected_faults: media faults the injector fired over the whole
            run (0 on a fault-free device).
        read_retries / uncorrectable_reads / program_faults /
        erase_faults / blocks_retired: window-scoped recovery counters
            (see :class:`~repro.ftl.stats.FtlStats`).
        effective_op_pages: OP capacity remaining at window end, net of
            retired blocks.
        op_timeline: ``(t_ns, effective_op_pages)`` degradation events
            within the window.
        device_read_only: the device hit its terminal read-only state.
    """

    policy: str
    workload: str
    duration_ns: int
    iops: float
    waf: float
    host_pages_written: int
    gc_pages_migrated: int
    fgc_invocations: int
    fgc_time_ns: int
    bgc_blocks: int
    erases: int
    prediction_accuracy_pct: Optional[float] = None
    sip_selections: int = 0
    sip_filtered: int = 0
    buffered_fraction: float = 0.0
    mean_latency_ns: float = 0.0
    p50_latency_ns: int = 0
    p95_latency_ns: int = 0
    p99_latency_ns: int = 0
    p999_latency_ns: int = 0
    p9999_latency_ns: int = 0
    max_latency_ns: int = 0
    #: Full latency distribution (HdrHistogram.to_wire) or None.
    latency_hist: Optional[dict] = None
    tail_threshold_pct: float = 0.0
    tail_threshold_ns: int = 0
    tail_slow_ops: int = 0
    #: ``{cause: [count, total_ns]}``; empty without tail attribution.
    tail_causes: Dict[str, List[int]] = field(default_factory=dict)
    injected_faults: int = 0
    read_retries: int = 0
    uncorrectable_reads: int = 0
    program_faults: int = 0
    erase_faults: int = 0
    blocks_retired: int = 0
    effective_op_pages: Optional[int] = None
    op_timeline: List[Tuple[int, int]] = field(default_factory=list)
    device_read_only: bool = False
    #: Sudden power-offs survived during the run (0 without SPO).
    spo_count: int = 0
    #: Total simulated time spent in post-SPO recovery scans.
    recovery_time_ns: int = 0
    #: Pages discarded (TRIM) by the host over the window.
    trim_count: int = 0
    #: Mapping mode the run used (``dram`` or ``dftl``).
    mapping_mode: str = "dram"
    #: CMT lookups served from the cache / missed to NAND (window delta;
    #: both 0 in dram mode).
    cmt_hits: int = 0
    cmt_misses: int = 0
    #: Translation-page programs over the window (writebacks + GC moves).
    trans_pages_written: int = 0
    trans_pages_migrated: int = 0
    #: Share of all window programs that were translation pages.
    translation_waf_share: float = 0.0
    #: ECC escalation ladder (window deltas; all zero with the
    #: reliability profile off -- see repro.nand.reliability).
    ecc_fast_reads: int = 0
    ecc_retry_reads: int = 0
    ecc_soft_decodes: int = 0
    uecc_count: int = 0
    #: ``{retry level (str): successful reads}``; the deepest level is
    #: the soft decoder.  String keys keep the wire form JSON-safe.
    ecc_retry_histogram: Dict[str, int] = field(default_factory=dict)
    #: Refresh scrubber (window deltas; zero with the scrubber off).
    scrub_blocks_refreshed: int = 0
    scrub_pages_migrated: int = 0

    def cmt_hit_rate(self) -> float:
        """CMT hit fraction over the window (1.0 when nothing missed)."""
        lookups = self.cmt_hits + self.cmt_misses
        if lookups == 0:
            return 1.0
        return self.cmt_hits / lookups

    def to_wire(self) -> dict:
        """Flat plain-types dict safe for queues, pickles and JSON.

        Sweep workers stream these through the result queue instead of
        pickled :class:`RunMetrics` objects; :meth:`from_wire` restores
        an equal instance (``from_wire(m.to_wire()) == m``).
        """
        wire = dataclasses.asdict(self)
        wire["op_timeline"] = [[int(t), int(v)] for t, v in self.op_timeline]
        wire["tail_causes"] = {
            str(cause): [int(pair[0]), int(pair[1])]
            for cause, pair in self.tail_causes.items()
        }
        wire["ecc_retry_histogram"] = {
            str(level): int(count)
            for level, count in self.ecc_retry_histogram.items()
        }
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping) -> "RunMetrics":
        """Inverse of :meth:`to_wire`; tolerates extra keys (schema tags)."""
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in wire.items() if k in names}
        kwargs["op_timeline"] = [
            (int(t), int(v)) for t, v in kwargs.get("op_timeline", [])
        ]
        kwargs["tail_causes"] = {
            str(cause): [int(pair[0]), int(pair[1])]
            for cause, pair in (kwargs.get("tail_causes") or {}).items()
        }
        kwargs["ecc_retry_histogram"] = {
            str(level): int(count)
            for level, count in (kwargs.get("ecc_retry_histogram") or {}).items()
        }
        return cls(**kwargs)

    def latency_histogram(self) -> Optional[HdrHistogram]:
        """Rehydrate the full distribution (None when not carried)."""
        if self.latency_hist is None:
            return None
        return HdrHistogram.from_wire(self.latency_hist)

    def recovered_faults(self) -> int:
        """Faults survived without data loss or scenario failure."""
        return self.program_faults + self.erase_faults + self.read_retries

    def sip_filtered_pct(self) -> float:
        """Table 3: % of victim selections that filtered a candidate."""
        if self.sip_selections == 0:
            return 0.0
        return 100.0 * self.sip_filtered / self.sip_selections


class MetricsCollector:
    """Instrumentation attached to one :class:`HostSystem` run."""

    def __init__(self, host: HostSystem, workload_name: str = "") -> None:
        self.host = host
        self.workload_name = workload_name
        self.iops_meter = IopsMeter()
        # HDR histogram in the registry: the primary latency estimator,
        # shared with the per-interval p99/p999 sampler.
        self.hdr = host.obs.registry.hdr("host.op_latency_ns")
        #: Reservoir oracle, kept only inside reservoir_reference().
        self.latency: Optional[LatencyRecorder] = (
            LatencyRecorder() if reservoir_reference_enabled() else None
        )
        # The registry is the single source of truth: sampled alongside
        # the gauges, host.ops becomes the per-interval IOPS series.
        self._ops_counter = host.obs.registry.counter("host.ops")
        self._oplog = host.obs.oplog
        self._tracer = host.obs.tracer
        self._begin_stats: Optional[FtlStats] = None
        self._begin_ns = 0
        self._end_ns = -1
        self._sip_begin = (0, 0)
        self._ecc_hist_begin: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Workload-facing hooks
    # ------------------------------------------------------------------
    def record_op(
        self,
        latency_ns: Optional[int] = None,
        kind: str = "op",
        issue_ns: Optional[int] = None,
        queue_depth: int = 0,
    ) -> None:
        """One application operation completed.

        ``kind``/``issue_ns``/``queue_depth`` feed the per-op completion
        log and trace events when tail attribution or tracing is on;
        plain ``record_op(latency)`` call sites keep working unchanged.
        """
        self.iops_meter.record_op()
        self._ops_counter.inc()
        if latency_ns is None:
            return
        self.hdr.record(latency_ns)
        if self.latency is not None:
            self.latency.record(latency_ns)
        if issue_ns is None:
            return
        if self._oplog.enabled:
            self._oplog.record(kind, issue_ns, issue_ns + latency_ns, queue_depth)
        if self._tracer.enabled:
            self._tracer.complete(
                "host",
                "op.complete",
                issue_ns,
                latency_ns,
                kind=kind,
                queue_depth=queue_depth,
            )

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def begin(self) -> None:
        now = self.host.sim.now
        self.iops_meter.begin_window(now)
        self._begin_stats = self.host.ftl.stats.snapshot()
        self._begin_ns = now
        self._sip_begin = self._sip_counters()
        # ECC retry-level histogram lives off FtlStats (it is a dict);
        # window-scope it the same way via a begin copy.
        self._ecc_hist_begin = dict(
            getattr(self.host.ftl, "ecc_retry_histogram", {})
        )

    def end(self) -> None:
        now = self.host.sim.now
        self.iops_meter.end_window(now)
        self._end_ns = now

    def _sip_counters(self) -> tuple:
        stats = self.host.ftl.stats
        return (stats.victim_selections, stats.victims_filtered_by_sip)

    def _ecc_retry_delta(self) -> Dict[str, int]:
        """Window delta of the FTL's retry-level histogram (str keys)."""
        current = getattr(self.host.ftl, "ecc_retry_histogram", {})
        delta: Dict[str, int] = {}
        for level, count in current.items():
            window = count - self._ecc_hist_begin.get(level, 0)
            if window > 0:
                delta[str(level)] = window
        return delta

    # ------------------------------------------------------------------
    def _latency_summary(self) -> dict:
        """Latency fields for :meth:`results` (HDR, or the reservoir
        oracle when built inside ``reservoir_reference()``)."""
        if self.latency is not None:
            return {
                "mean_latency_ns": self.latency.mean(),
                "p50_latency_ns": self.latency.percentile(50),
                "p95_latency_ns": self.latency.percentile(95),
                "p99_latency_ns": self.latency.percentile(99),
                "p999_latency_ns": self.latency.percentile(99.9),
                "p9999_latency_ns": self.latency.percentile(99.99),
                "max_latency_ns": self.latency.max(),
                "latency_hist": self.hdr.to_wire() if self.hdr.count else None,
            }
        pcts = self.hdr.percentiles(LATENCY_PERCENTILES)
        return {
            "mean_latency_ns": self.hdr.mean(),
            "p50_latency_ns": pcts.get(50.0, 0),
            "p95_latency_ns": pcts.get(95.0, 0),
            "p99_latency_ns": pcts.get(99.0, 0),
            "p999_latency_ns": pcts.get(99.9, 0),
            "p9999_latency_ns": pcts.get(99.99, 0),
            "max_latency_ns": self.hdr.max(),
            "latency_hist": self.hdr.to_wire() if self.hdr.count else None,
        }

    def _tail_summary(self) -> dict:
        """Tail-attribution fields (zeros unless the op log is live)."""
        if not self._oplog.enabled or not len(self._oplog):
            return {}
        report = attribute_tail(
            self._oplog,
            self.host.obs.audit,
            threshold_pct=self.host.obs.tail_threshold_pct,
        )
        return {
            "tail_threshold_pct": report.threshold_pct,
            "tail_threshold_ns": report.threshold_ns,
            "tail_slow_ops": report.slow_ops,
            "tail_causes": report.to_wire(),
        }

    def results(self) -> RunMetrics:
        """Freeze the window into a :class:`RunMetrics`."""
        if self._begin_stats is None or self._end_ns < 0:
            raise RuntimeError("measurement window not begun/ended")
        delta = self.host.ftl.stats.delta_since(self._begin_stats)
        accuracy = None
        policy = self.host.policy
        tracker = getattr(policy, "accuracy", None)
        if tracker is not None and tracker.intervals_scored > 0:
            accuracy = tracker.accuracy_percent()
        sip_end = self._sip_counters()
        ftl = self.host.ftl
        injector = ftl.nand.fault_injector
        # ftl.op_timeline is derived from the registry's
        # ftl.effective_op_pages.events series (single source of truth).
        op_timeline = [
            (int(t), int(op))
            for t, op in ftl.op_timeline
            if self._begin_ns <= t <= self._end_ns
        ]
        return RunMetrics(
            policy=policy.name,
            workload=self.workload_name,
            duration_ns=self._end_ns - self._begin_ns,
            iops=self.iops_meter.iops(),
            waf=delta.waf(),
            host_pages_written=delta.host_pages_written,
            gc_pages_migrated=delta.gc_pages_migrated,
            fgc_invocations=delta.fgc_invocations,
            fgc_time_ns=delta.fgc_time_ns,
            bgc_blocks=delta.bgc_blocks_collected,
            erases=delta.blocks_erased,
            prediction_accuracy_pct=accuracy,
            sip_selections=sip_end[0] - self._sip_begin[0],
            sip_filtered=sip_end[1] - self._sip_begin[1],
            buffered_fraction=self.host.dispatcher.stats.buffered_fraction(),
            injected_faults=injector.total_faults() if injector is not None else 0,
            read_retries=delta.read_retries,
            uncorrectable_reads=delta.uncorrectable_reads,
            program_faults=delta.program_faults,
            erase_faults=delta.erase_faults,
            blocks_retired=delta.blocks_retired,
            effective_op_pages=ftl.effective_op_pages(),
            op_timeline=op_timeline,
            device_read_only=ftl.read_only,
            trim_count=delta.pages_trimmed,
            mapping_mode=getattr(ftl, "mapping_mode", "dram"),
            cmt_hits=delta.cmt_hits,
            cmt_misses=delta.cmt_misses,
            trans_pages_written=delta.trans_pages_written,
            trans_pages_migrated=delta.trans_pages_migrated,
            translation_waf_share=delta.translation_waf_share(),
            ecc_fast_reads=delta.ecc_fast_reads,
            ecc_retry_reads=delta.ecc_retry_reads,
            ecc_soft_decodes=delta.ecc_soft_decodes,
            uecc_count=delta.uecc_count,
            ecc_retry_histogram=self._ecc_retry_delta(),
            scrub_blocks_refreshed=delta.scrub_blocks_refreshed,
            scrub_pages_migrated=delta.scrub_pages_migrated,
            **self._latency_summary(),
            **self._tail_summary(),
        )
