"""Application-level operation counting.

IOPS here is the benchmark-level metric the paper reports: completed
application operations per second of simulated time, measured over an
explicit window so warm-up is excluded.
"""

from __future__ import annotations

from repro.sim.simtime import SECOND


class IopsMeter:
    """Counts operations and computes IOPS over a begin/end window."""

    def __init__(self) -> None:
        self.total_ops = 0
        self._window_start_ops = 0
        self._window_start_ns = 0
        self._window_end_ns: int = -1
        self._window_open = False

    def record_op(self, count: int = 1) -> None:
        """Count ``count`` completed application operations."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.total_ops += count

    def begin_window(self, now_ns: int) -> None:
        self._window_start_ops = self.total_ops
        self._window_start_ns = now_ns
        self._window_end_ns = -1
        self._window_open = True

    def end_window(self, now_ns: int) -> None:
        if not self._window_open:
            raise RuntimeError("no measurement window open")
        if now_ns <= self._window_start_ns:
            raise ValueError("window must have positive duration")
        self._window_end_ns = now_ns
        self._window_open = False

    def window_ops(self) -> int:
        end_ops = self.total_ops
        return end_ops - self._window_start_ops

    def iops(self) -> float:
        """Operations per second over the closed window."""
        if self._window_end_ns < 0:
            raise RuntimeError("measurement window not closed")
        duration = self._window_end_ns - self._window_start_ns
        return self.window_ops() * SECOND / duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IopsMeter total={self.total_ops}>"
