"""HDR-style log-linear latency histogram: exact counts, bounded memory.

The 4096-sample reservoir the repo started with cannot answer the
question this reproduction exists to ask -- whether JIT-GC's tail is
*clean* -- because a p999/p9999 estimate from 4096 uniform samples has
confidence intervals wider than the effect.  :class:`HdrHistogram`
replaces it with the standard high-dynamic-range construction
(Tene's HdrHistogram, also what Nagel et al. use for worst-case
response-time evaluation):

* **log-linear buckets** -- values below ``2^bucket_bits`` are counted
  exactly (one bucket per integer); above that, each power-of-two octave
  is split into ``2^(bucket_bits-1)`` linear sub-buckets, so the bucket
  width never exceeds ``value / 2^(bucket_bits-1)``.  With the default
  ``bucket_bits=8`` the worst-case relative quantile error is
  ``1/128 < 1 %``.
* **O(1) record** -- one ``bit_length`` and one dict increment per
  sample; memory is bounded by the number of *occupied* buckets
  (a few hundred for nanosecond latencies spanning ns..minutes).
* **mergeable** -- histograms add bucket-wise, so ``--jobs`` workers and
  SPO phase merges combine full distributions instead of discarding
  samples: a merge is *bit-identical* to one histogram fed the
  concatenated stream (asserted by a hypothesis property test).

Quantile definition (shared with the reservoir oracle in
:mod:`repro.metrics.latency`): **nearest-rank** -- ``P_q`` is the value
of the sample at 1-based rank ``ceil(q/100 * N)`` (rank 1 when q = 0)
in the sorted stream.  The reservoir returns that sample exactly; the
histogram returns the upper bound of the bucket containing that rank
(clamped to the observed maximum), which is within the configured
relative error of it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


def nearest_rank(q: float, count: int) -> int:
    """1-based nearest rank of percentile ``q`` in ``count`` samples.

    ``rank = ceil(q/100 * count)``, clamped to ``[1, count]`` (so q = 0
    selects the minimum and q = 100 the maximum).  The small epsilon
    guards against binary-float artifacts like ``0.99 * 100`` evaluating
    to ``99.00000000000001`` and ceiling one rank too high.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if count <= 0:
        return 0
    rank = math.ceil(q * count / 100.0 - 1e-9)
    return min(count, max(1, rank))


class HdrHistogram:
    """Log-linear bucketed distribution of non-negative integer values.

    Args:
        bucket_bits: resolution knob.  Values below ``2^bucket_bits``
            are exact; above, relative quantile error is bounded by
            ``2^-(bucket_bits-1)`` (default 8 -> 1/128, under 1 %).
    """

    __slots__ = ("bucket_bits", "_sub", "_half", "counts", "count", "total", "_min", "_max")

    def __init__(self, bucket_bits: int = 8) -> None:
        if not 2 <= bucket_bits <= 20:
            raise ValueError(f"bucket_bits must be in [2, 20], got {bucket_bits}")
        self.bucket_bits = bucket_bits
        self._sub = 1 << bucket_bits
        self._half = self._sub >> 1
        #: Sparse bucket-index -> count map (only occupied buckets exist).
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self._min: Optional[int] = None
        self._max = 0

    # ------------------------------------------------------------------
    # Bucket geometry
    # ------------------------------------------------------------------
    def bucket_index(self, value: int) -> int:
        """Bucket holding ``value`` (exact below ``2^bucket_bits``)."""
        if value < self._sub:
            return value
        shift = value.bit_length() - self.bucket_bits
        return self._sub + (shift - 1) * self._half + ((value >> shift) - self._half)

    def bucket_high(self, index: int) -> int:
        """Highest value the bucket covers (the quantile representative)."""
        if index < self._sub:
            return index
        shift = (index - self._sub) // self._half + 1
        offset = (index - self._sub) % self._half
        return ((self._half + offset + 1) << shift) - 1

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantile error (0 for exact small values)."""
        return 1.0 / self._half

    # ------------------------------------------------------------------
    # Recording / merging
    # ------------------------------------------------------------------
    def record(self, value: int, n: int = 1) -> None:
        """Count ``n`` occurrences of ``value`` (integer nanoseconds)."""
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        value = int(value)
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + n
        self.count += n
        self.total += value * n
        if self._min is None or value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "HdrHistogram") -> "HdrHistogram":
        """Fold ``other`` into this histogram (bucket-wise addition).

        Merging is exact: the result equals one histogram fed both
        streams, bucket for bucket.  Returns ``self`` for chaining.
        """
        if other.bucket_bits != self.bucket_bits:
            raise ValueError(
                f"cannot merge bucket_bits={other.bucket_bits} "
                f"into bucket_bits={self.bucket_bits}"
            )
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Exact mean (the running total is exact, unlike the buckets)."""
        return self.total / self.count if self.count else 0.0

    def max(self) -> int:
        return self._max

    def min(self) -> int:
        return self._min if self._min is not None else 0

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile (see module docstring for definition).

        Returns the upper bound of the bucket holding the rank, clamped
        to the observed extremes -- so ``percentile(100) == max()`` and
        ``percentile(0) >= min()`` always hold exactly.
        """
        rank = nearest_rank(q, self.count)
        if rank == 0:
            return 0
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return max(self.min(), min(self._max, self.bucket_high(index)))
        return self._max  # pragma: no cover - rank <= count guarantees hit

    def percentiles(self, qs: Iterable[float]) -> Dict[float, int]:
        """Several percentiles in one cumulative walk."""
        ranks = {q: nearest_rank(q, self.count) for q in qs}
        out: Dict[float, int] = {}
        if self.count == 0:
            return {q: 0 for q in ranks}
        seen = 0
        remaining = sorted(ranks.items(), key=lambda item: item[1])
        position = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            while position < len(remaining) and remaining[position][1] <= seen:
                q = remaining[position][0]
                out[q] = max(self.min(), min(self._max, self.bucket_high(index)))
                position += 1
            if position == len(remaining):
                break
        return out

    # ------------------------------------------------------------------
    # Wire form (JSON-safe; used by RunMetrics and the --jobs queues)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """Flat plain-types dict; deterministic (buckets sorted)."""
        return {
            "bucket_bits": self.bucket_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min(),
            "max": self._max,
            "counts": [[int(i), int(n)] for i, n in sorted(self.counts.items())],
        }

    @classmethod
    def from_wire(cls, wire: Mapping) -> "HdrHistogram":
        """Inverse of :meth:`to_wire` (``from_wire(h.to_wire()) == h``)."""
        hist = cls(bucket_bits=int(wire["bucket_bits"]))
        hist.counts = {int(i): int(n) for i, n in wire["counts"]}
        hist.count = int(wire["count"])
        hist.total = int(wire["total"])
        hist._max = int(wire["max"])
        hist._min = int(wire["min"]) if hist.count else None
        return hist

    # ------------------------------------------------------------------
    # Interval deltas (per-interval p99/p999 sampling)
    # ------------------------------------------------------------------
    def mark(self) -> Tuple[Dict[int, int], int]:
        """Opaque cumulative snapshot for :meth:`interval_percentiles`."""
        return dict(self.counts), self.count

    def interval_percentiles(
        self, mark: Tuple[Dict[int, int], int], qs: Iterable[float]
    ) -> Dict[float, int]:
        """Percentiles of the values recorded *since* ``mark``.

        The registry sampler uses this to turn the cumulative histogram
        into per-interval p99/p999 series (Perfetto counter tracks)
        without keeping a second histogram.  Returns all-zero when the
        interval is empty.  Interval quantiles are clamped only to the
        bucket bounds (the true interval max is not tracked), so they
        carry the same relative-error bound as cumulative ones.
        """
        old_counts, old_count = mark
        n = self.count - old_count
        qs = list(qs)
        if n <= 0:
            return {q: 0 for q in qs}
        ranks = sorted(
            ((nearest_rank(q, n), q) for q in qs), key=lambda item: item[0]
        )
        out: Dict[float, int] = {}
        seen = 0
        position = 0
        for index in sorted(self.counts):
            delta = self.counts[index] - old_counts.get(index, 0)
            if delta <= 0:
                continue
            seen += delta
            while position < len(ranks) and ranks[position][0] <= seen:
                out[ranks[position][1]] = self.bucket_high(index)
                position += 1
            if position == len(ranks):
                break
        return out

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HdrHistogram):
            return NotImplemented
        return (
            self.bucket_bits == other.bucket_bits
            and self.count == other.count
            and self.total == other.total
            and self._min == other._min
            and self._max == other._max
            and self.counts == other.counts
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash((self.bucket_bits, self.count, self.total))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<HdrHistogram n={self.count} mean={self.mean():.0f} "
            f"p99={self.percentile(99)} max={self._max}>"
        )


def merge_wire_histograms(wires: List[Optional[dict]]) -> Optional[HdrHistogram]:
    """Merge wire-form histograms; None when any phase lacks one.

    The SPO phase merge calls this: multi-phase percentiles are exact
    only when every phase carried its full distribution.
    """
    if not wires or any(w is None for w in wires):
        return None
    merged = HdrHistogram.from_wire(wires[0])
    for wire in wires[1:]:
        merged.merge(HdrHistogram.from_wire(wire))
    return merged
