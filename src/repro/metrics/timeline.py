"""Periodic time-series sampling of system state.

Experiments sometimes need more than end-of-window aggregates: the
free-space trajectory shows *when* a policy reclaims, the dirty-page
trajectory shows the write-back rhythm the predictors exploit.
:class:`TimelineSampler` records configurable probes at a fixed period
into plain columnar lists, exportable as CSV for plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.host import HostSystem
from repro.sim.events import PRIORITY_LOW
from repro.sim.simtime import SECOND


class TimelineSampler:
    """Samples named probes every ``period_ns`` of simulated time.

    Args:
        host: the host system to observe.
        period_ns: sampling period (default 200 ms).
        probes: mapping of column name to zero-arg callable; defaults to
            the standard set (free pages, dirty pages, WAF, FGC stalls,
            BGC blocks).
    """

    def __init__(
        self,
        host: HostSystem,
        period_ns: int = SECOND // 5,
        probes: Dict[str, Callable[[], float]] = None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        self.host = host
        self.period_ns = period_ns
        self.probes = probes or self.default_probes(host)
        self.times_ns: List[int] = []
        self.columns: Dict[str, List[float]] = {name: [] for name in self.probes}
        self._running = False

    @staticmethod
    def default_probes(host: HostSystem) -> Dict[str, Callable[[], float]]:
        ftl = host.ftl
        return {
            "free_pages": lambda: float(ftl.free_pages()),
            "dirty_pages": lambda: float(host.cache.dirty_pages),
            "waf": lambda: ftl.stats.waf(),
            "fgc_invocations": lambda: float(ftl.stats.fgc_invocations),
            "bgc_blocks": lambda: float(ftl.stats.bgc_blocks_collected),
        }

    # ------------------------------------------------------------------
    def start(self) -> "TimelineSampler":
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        self.host.sim.schedule(
            0, self._sample, priority=PRIORITY_LOW, name="timeline"
        )
        return self

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        self.times_ns.append(self.host.sim.now)
        for name, probe in self.probes.items():
            self.columns[name].append(probe())
        self.host.sim.schedule(
            self.period_ns, self._sample, priority=PRIORITY_LOW, name="timeline"
        )

    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return len(self.times_ns)

    def series(self, name: str) -> List[float]:
        """One probe's samples, aligned with :attr:`times_ns`."""
        return list(self.columns[name])

    def minimum(self, name: str) -> float:
        return min(self.columns[name]) if self.columns[name] else 0.0

    def maximum(self, name: str) -> float:
        return max(self.columns[name]) if self.columns[name] else 0.0

    def save_csv(self, path: Union[str, Path]) -> int:
        """Write all columns to CSV; returns rows written."""
        names = list(self.probes)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_ns"] + names)
            for index, time_ns in enumerate(self.times_ns):
                writer.writerow(
                    [time_ns] + [self.columns[name][index] for name in names]
                )
        return len(self.times_ns)
