"""Write-demand predictor for direct writes (paper Sec 3.2.2, Fig. 5).

Direct (``O_SYNC``/``O_DIRECT``) writes bypass the page cache, so no
scan can anticipate them; the paper instead assumes the *volume* of
direct writes is stationary and reserves the 80th percentile of a
cumulative data histogram (CDH) of past per-``tau_expire``-window
direct-write traffic.

The predictor tallies direct-write bytes as the device completes them
(subscribe :meth:`record_direct_bytes` to the completion stream), closes
an observation window every ``tau_expire`` seconds, and at prediction
time returns ``Ddir(t) = (delta/Nwb, ..., delta/Nwb)`` where
``delta = CDH.percentile(0.8)``.
"""

from __future__ import annotations

from typing import List

from repro.core.cdh import CumulativeDataHistogram


class DirectWritePredictor:
    """CDH-based direct-write demand estimator.

    Args:
        period_ns: flusher period ``p`` (defines interval granularity).
        tau_expire_ns: the CDH observation-window length.
        percentile: reservation percentile (the paper found 0.8 to
            balance performance and lifetime; swept in the ablation).
        bin_bytes: CDH bin width.
        window: number of past observation windows remembered.
    """

    def __init__(
        self,
        period_ns: int,
        tau_expire_ns: int,
        percentile: float = 0.8,
        bin_bytes: int = 64 * 1024,
        window: int = 64,
    ) -> None:
        if period_ns <= 0 or tau_expire_ns % period_ns != 0:
            raise ValueError("tau_expire must be a positive multiple of the period")
        if not 0.0 < percentile <= 1.0:
            raise ValueError(f"percentile must be in (0, 1], got {percentile}")
        self.period_ns = period_ns
        self.tau_expire_ns = tau_expire_ns
        self.percentile = percentile
        self.cdh = CumulativeDataHistogram(bin_bytes=bin_bytes, window=window)
        self._window_bytes = 0
        self._window_started = 0
        self.invocations = 0

    @property
    def nwb(self) -> int:
        return self.tau_expire_ns // self.period_ns

    # ------------------------------------------------------------------
    # Observation side
    # ------------------------------------------------------------------
    def record_direct_bytes(self, nbytes: int, now: int) -> None:
        """Tally direct-write traffic; closes windows as time advances."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._roll_windows(now)
        self._window_bytes += nbytes

    def _roll_windows(self, now: int) -> None:
        """Close every full ``tau_expire`` window elapsed before ``now``."""
        while now - self._window_started >= self.tau_expire_ns:
            self.cdh.observe(self._window_bytes)
            self._window_bytes = 0
            self._window_started += self.tau_expire_ns

    # ------------------------------------------------------------------
    # Prediction side
    # ------------------------------------------------------------------
    def delta_dir(self, now: int) -> int:
        """The paper's ``delta_dir(t)``: bytes to reserve for direct
        writes over the next ``tau_expire`` seconds."""
        self._roll_windows(now)
        return self.cdh.percentile_bytes(self.percentile)

    def predict(self, now: int) -> List[int]:
        """``Ddir(t)``: the per-interval demand vector (Sec 3.2.2).

        Each entry is ``delta_dir / Nwb`` -- the paper spreads the window
        reservation evenly over the ``Nwb`` write-back intervals.
        """
        self.invocations += 1
        per_interval = self.delta_dir(now) // self.nwb
        return [per_interval] * self.nwb

    def total_bytes(self, now: int) -> int:
        """``sum_i Ddir_i`` -- the direct share of ``Creq``."""
        return sum(self.predict(now))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DirectWritePredictor pct={self.percentile} "
            f"obs={self.cdh.count} window={self._window_bytes}B>"
        )
