"""The background-GC policies evaluated in the paper.

Every policy is a :class:`~repro.ssd.device.ReclaimController` (the
device consults it when idle) plus an :meth:`attach` hook that wires the
policy into the host system (flusher ticks, completion listeners).  The
four policies of Fig. 7, plus helpers:

* :class:`NoBgcPolicy` -- foreground GC only (ablation baseline).
* :class:`FixedReservePolicy` -- keep ``Cfree >= Cresv`` with
  ``Cresv = k x C_OP``; ``k = 0.5`` is the paper's **L-BGC**, ``k = 1.5``
  its **A-BGC**, and the sweep over ``k`` is Fig. 2.
* :class:`AdaptiveGcPolicy` -- **ADP-GC**: dynamically sizes the reserve
  from a device-internal CDH over *all* writes; no page-cache knowledge,
  no buffered/direct distinction, no SIP filtering (Sec 4.2).
* :class:`JitGcPolicy` -- **JIT-GC**: the paper's contribution; page
  cache scanning for buffered demand, CDH for direct demand, the
  Sec 3.3 ``Tidle``/``Tgc`` deferral rule, and SIP-filtered victim
  selection.

Prediction accuracy (Table 2) is tracked inside the two predicting
policies with a one-tick delay so a prediction made at tick ``t`` for
interval ``[t+p, t+2p)`` is scored against the write traffic actually
observed in that interval.
"""

from __future__ import annotations

from typing import Optional

from repro.core.accuracy import PredictionAccuracyTracker
from repro.core.buffered_predictor import BufferedWritePredictor
from repro.core.cdh import CumulativeDataHistogram
from repro.core.direct_predictor import DirectWritePredictor
from repro.core.manager import JitGcManager
from repro.ftl.victim import SipFilteredSelector, VictimSelector
from repro.obs.audit import DISABLED_AUDIT, ManagerTickRecord
from repro.obs.tracer import NULL_TRACER
from repro.oskernel.cache import PageCache
from repro.oskernel.flusher import FlusherThread
from repro.sim.engine import Simulator
from repro.sim.events import PRIORITY_CONTROL
from repro.ssd.device import ReclaimController, SsdDevice
from repro.ssd.interface import ExtendedHostInterface
from repro.ssd.request import IoKind, IoRequest


#: CDH observation windows pre-loaded by an analytic warm start --
#: roughly what a default simulated warm-up leaves behind (40 s of
#: warm-up over 6 s expiry windows), so seeded and simulated histories
#: decay at the same rate once real traffic arrives.
_CDH_SEED_WINDOWS = 8


class GcPolicy(ReclaimController):
    """Base class: a reclaim controller that can be wired into a host."""

    #: Short name used in experiment reports.
    name = "abstract"
    #: Sim-time tracer / decision-audit log / metrics registry; the
    #: class-level no-op defaults cost one attribute check on hot paths
    #: and are replaced per instance by :meth:`observe`.
    tracer = NULL_TRACER
    audit = DISABLED_AUDIT
    registry = None

    def make_victim_selector(self) -> Optional[VictimSelector]:
        """Victim selector to install in the FTL (None = FTL default)."""
        return None

    def observe(self, obs) -> None:
        """Adopt a run's :class:`~repro.obs.Observability` instruments."""
        self.tracer = obs.tracer
        self.audit = obs.audit
        self.registry = obs.registry

    def attach(
        self,
        sim: Simulator,
        device: SsdDevice,
        cache: PageCache,
        flusher: FlusherThread,
    ) -> None:
        """Wire the policy into a constructed host system."""
        self.sim = sim
        self.device = device
        self.cache = cache
        self.flusher = flusher
        self.interface = ExtendedHostInterface(device)

    def seed_steady_state(self, prediction) -> None:
        """Adopt an analytic steady-state prediction (warm start).

        Called after :meth:`attach` when the run starts from a
        synthesized steady state (``--warm-start analytic``) instead of
        a simulated warm-up.  Stateless policies need nothing; policies
        with demand history (the CDH family) override this so their
        first read-outs are consistent with the installed free pool
        rather than with an empty histogram.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class NoBgcPolicy(GcPolicy):
    """Never runs background GC; every reclaim is a foreground stall."""

    name = "NO-BGC"

    def reclaim_demand_pages(self, device: SsdDevice) -> int:
        return 0


class FixedReservePolicy(GcPolicy):
    """Keep a fixed reserved capacity ``Cresv = cresv_over_op x C_OP``.

    Whenever the device is idle and ``Cfree < Cresv`` (after the paper's
    ``Cresv <= Cunused + C_OP`` cap), BGC collects blocks until the
    reserve is restored.  This is the family the paper's Fig. 2 sweeps
    and whose endpoints are L-BGC and A-BGC.
    """

    def __init__(self, cresv_over_op: float, name: Optional[str] = None) -> None:
        if cresv_over_op < 0:
            raise ValueError(f"cresv_over_op must be >= 0, got {cresv_over_op}")
        self.cresv_over_op = cresv_over_op
        self.name = name or f"FIXED-{cresv_over_op:g}OP"

    def target_pages(self, device: SsdDevice) -> int:
        space = device.ftl.space
        requested = space.reserved_pages(self.cresv_over_op)
        return space.clamp_reserved_pages(requested, device.ftl.used_pages())

    def reclaim_demand_pages(self, device: SsdDevice) -> int:
        return max(0, self.target_pages(device) - device.ftl.free_pages())


def lazy_bgc_policy() -> FixedReservePolicy:
    """The paper's L-BGC: ``Cresv = 0.5 x C_OP``."""
    return FixedReservePolicy(0.5, name="L-BGC")


def aggressive_bgc_policy() -> FixedReservePolicy:
    """The paper's A-BGC: ``Cresv = 1.5 x C_OP``."""
    return FixedReservePolicy(1.5, name="A-BGC")


class AdaptiveGcPolicy(GcPolicy):
    """ADP-GC: adaptive reserve from a device-internal CDH (Sec 4.2).

    Sees only device-level traffic: every write (buffered write-back and
    direct alike) feeds one CDH; the reserve target is its
    ``percentile`` read-out.  No SIP information reaches the garbage
    collector.
    """

    name = "ADP-GC"

    def __init__(
        self,
        percentile: float = 0.8,
        bin_bytes: int = 64 * 1024,
        window: int = 64,
    ) -> None:
        self.percentile = percentile
        self.bin_bytes = bin_bytes
        self.window = window
        self._target_bytes = 0

    def attach(self, sim, device, cache, flusher) -> None:
        super().attach(sim, device, cache, flusher)
        self.cdh = CumulativeDataHistogram(self.bin_bytes, self.window)
        self.tau_expire_ns = flusher.tau_expire_ns
        self.period_ns = flusher.period_ns
        self.nwb = flusher.nwb
        self.accuracy = PredictionAccuracyTracker(horizon_intervals=self.nwb)
        self._window_bytes = 0
        self._window_started = 0
        device.completion_listeners.append(self._on_completion)
        # The ADP tick is device-internal: it does not depend on the
        # flusher, so it runs on its own timer at the same period.
        sim.schedule(self.period_ns, self._tick, priority=PRIORITY_CONTROL)

    def seed_steady_state(self, prediction) -> None:
        """Pre-load the CDH with the predicted per-horizon write volume.

        A cold CDH reads percentile 0 until enough ``tau_expire``
        windows close, which would leave ADP-GC defending no reserve at
        the start of a warm-started measurement window.  Seeding a
        simulated warm-up's worth of windows (not the full CDH depth)
        makes the initial target consistent with the installed free pool
        while letting real traffic take over at the same rate it would
        after a simulated warm-up.
        """
        seeded = min(self.window, _CDH_SEED_WINDOWS)
        for _ in range(seeded):
            self.cdh.observe(prediction.window_write_bytes)
        self._target_bytes = self.cdh.percentile_bytes(self.percentile)

    # ------------------------------------------------------------------
    def _on_completion(self, request: IoRequest) -> None:
        if not request.is_write:
            return
        nbytes = request.page_count * self.device.config.geometry.page_size
        self._window_bytes += nbytes
        self.accuracy.record_actual_bytes(nbytes)

    def _tick(self) -> None:
        now = self.sim.now
        # Close CDH observation windows.
        while now - self._window_started >= self.tau_expire_ns:
            self.cdh.observe(self._window_bytes)
            self._window_bytes = 0
            self._window_started += self.tau_expire_ns

        delta = self.cdh.percentile_bytes(self.percentile)
        self._target_bytes = delta
        # Table 2 bookkeeping: ADP-GC's horizon demand estimate is its
        # CDH read-out (it has nothing finer-grained to offer).
        self.accuracy.on_tick()
        self.accuracy.predict(delta)

        if self.tracer.enabled:
            self.tracer.emit("manager", "adp.tick", target_bytes=delta)

        self.device.kick_bgc()
        self.sim.schedule(self.period_ns, self._tick, priority=PRIORITY_CONTROL)

    def reclaim_demand_pages(self, device: SsdDevice) -> int:
        page = device.config.geometry.page_size
        space = device.ftl.space
        target = space.clamp_reserved_pages(
            self._target_bytes // page, device.ftl.used_pages()
        )
        return max(0, target - device.ftl.free_pages())


class JitGcPolicy(GcPolicy):
    """JIT-GC: just-in-time background garbage collection (Sec 3).

    Args:
        direct_percentile: CDH percentile for the direct-write predictor.
        sip_fraction_threshold: SIP dominance threshold for victim
            filtering; ``None`` disables SIP filtering (the ablation that
            isolates the manager from the collector extension).
        strict_buffered_predictor: use the non-relaxed flush-condition
            model (ablation; paper uses the relaxed one).
    """

    name = "JIT-GC"

    def __init__(
        self,
        direct_percentile: float = 0.8,
        sip_fraction_threshold: Optional[float] = 0.5,
        strict_buffered_predictor: bool = False,
        cdh_bin_bytes: int = 64 * 1024,
        guard_intervals: Optional[int] = None,
    ) -> None:
        self.direct_percentile = direct_percentile
        self.sip_fraction_threshold = sip_fraction_threshold
        self.strict_buffered_predictor = strict_buffered_predictor
        self.cdh_bin_bytes = cdh_bin_bytes
        if guard_intervals is not None and guard_intervals < 0:
            raise ValueError(f"guard_intervals must be >= 0, got {guard_intervals}")
        self.guard_intervals = guard_intervals
        self._quota_pages = 0
        #: Flush-cause counters: pages written back at age (the rule the
        #: buffered predictor models) vs early (fsync/volume pressure).
        self._aged_flush_pages = 0
        self._early_flush_pages = 0
        self._selector: Optional[SipFilteredSelector] = None
        #: Last manager decision (observability / tests).
        self.last_decision = None

    def make_victim_selector(self) -> Optional[VictimSelector]:
        if self.sip_fraction_threshold is None:
            return None
        self._selector = SipFilteredSelector(self.sip_fraction_threshold)
        return self._selector

    def attach(self, sim, device, cache, flusher) -> None:
        super().attach(sim, device, cache, flusher)
        self.buffered_predictor = BufferedWritePredictor(
            cache,
            flusher.period_ns,
            flusher.tau_expire_ns,
            strict=self.strict_buffered_predictor,
            tau_flush_pages=flusher.tau_flush_pages,
        )
        self.direct_predictor = DirectWritePredictor(
            flusher.period_ns,
            flusher.tau_expire_ns,
            percentile=self.direct_percentile,
            bin_bytes=self.cdh_bin_bytes,
        )
        # Early (fsync / volume-pressure) write-back is a recurring bulk
        # flow: the median window estimates it without locking onto the
        # occasional whole-file-fsync peak the way the p80 rule -- meant
        # for scarce, latency-critical direct writes -- would.
        self.early_flush_predictor = DirectWritePredictor(
            flusher.period_ns,
            flusher.tau_expire_ns,
            percentile=0.5,
            bin_bytes=self.cdh_bin_bytes,
        )
        self.manager = JitGcManager(flusher.tau_expire_ns)
        self.accuracy = PredictionAccuracyTracker(horizon_intervals=flusher.nwb)
        device.completion_listeners.append(self._on_completion)
        cache.writeback_listeners.append(self._on_writeback)
        flusher.tick_hooks.append(self._tick)

    # ------------------------------------------------------------------
    def _on_completion(self, request: IoRequest) -> None:
        if not request.is_write:
            return
        nbytes = request.page_count * self.device.config.geometry.page_size
        if request.kind == IoKind.DIRECT_WRITE:
            self.direct_predictor.record_direct_bytes(nbytes, self.sim.now)
        self.accuracy.record_actual_bytes(nbytes)

    def _on_writeback(self, moved) -> None:
        """Feed *early* flushes into the CDH.

        A page written back before its ``tau_expire`` age -- an fsync or
        a volume-pressure flush -- escaped the age-based rule the
        buffered predictor models, so from the predictor's standpoint it
        behaves like a direct write: recurring but not scan-predictable.
        The direct-write CDH is exactly the tool for that class (and the
        page cache, being host-side, can tell the two flush causes
        apart by age).
        """
        now = self.sim.now
        tau = self.buffered_predictor.tau_expire_ns
        page = self.device.config.geometry.page_size
        early_pages = sum(1 for _, last_update in moved if now - last_update < tau)
        self._early_flush_pages += early_pages
        self._aged_flush_pages += len(moved) - early_pages
        if early_pages:
            self.early_flush_predictor.record_direct_bytes(early_pages * page, now)

    def _age_rule_fraction(self) -> float:
        """Observed share of buffered write-back that follows the age
        rule.  ``Dbuf`` is scaled by this so pages destined to leave
        early (fsync/volume) are not counted twice -- once in the scan
        and once in the early-flush CDH."""
        total = self._aged_flush_pages + self._early_flush_pages
        if total == 0:
            return 1.0
        return self._aged_flush_pages / total

    def _tick(self, now: int) -> None:
        """Runs right after each flusher wake-up (paper Sec 3.2.1)."""
        if self.device.ftl.read_only:
            # Terminal degraded state: there is no free capacity to fund
            # and no BGC worth scheduling; the manager stands down.
            return
        prediction = self.buffered_predictor.predict(now)
        age_fraction = self._age_rule_fraction()
        if age_fraction < 1.0:
            prediction.demands_bytes = [
                int(d * age_fraction) for d in prediction.demands_bytes
            ]
        # DFTL induces translation-page writebacks per host page (CMT
        # evictions + GC of translation blocks).  Those programs consume
        # free capacity just like host data, so Dbuf must fund them or
        # the deferral rule under-reclaims and the shortfall lands as
        # foreground GC.  Observed overhead is 0.0 in dram mode, leaving
        # the historical estimate bit-identical.
        trans_overhead = self.device.ftl.translation_write_overhead()
        if trans_overhead > 0.0:
            prediction.demands_bytes = [
                int(d * (1.0 + trans_overhead)) for d in prediction.demands_bytes
            ]
        # Refresh-scrub relocations likewise consume frontier capacity:
        # the trailing scrub-pages-per-host-page ratio scales Dbuf so
        # JIT-GC provisions for reliability traffic too.  0.0 with the
        # scrubber off -- the historical estimate stays bit-identical.
        scrub_overhead = self.device.ftl.scrub_write_overhead()
        if scrub_overhead > 0.0:
            prediction.demands_bytes = [
                int(d * (1.0 + scrub_overhead)) for d in prediction.demands_bytes
            ]
        ddir = self.direct_predictor.predict(now)
        dearly = self.early_flush_predictor.predict(now)
        ddir = [d + e for d, e in zip(ddir, dearly)]
        sip_set = prediction.sip.as_set()
        self.interface.set_sip_list(sip_set)

        cfree = self.interface.query_free_capacity()
        decision = self.manager.decide(
            prediction.demands_bytes,
            ddir,
            cfree,
            self.device.write_bandwidth.bytes_per_second,
            self.device.gc_bandwidth.bytes_per_second,
        )
        self.last_decision = decision
        # Table 2 bookkeeping: score the horizon demand estimate Creq.
        self.accuracy.on_tick()
        self.accuracy.predict(decision.creq_bytes)

        # Demand-coverage guard.  The paper's Tidle/Tgc rule schedules
        # *when* to reclaim, assuming demand arrives evenly across the
        # horizon; real demand is bursty (an ON phase can consume several
        # intervals' worth at once) and a mid-interval shortfall becomes
        # foreground GC.  The guard therefore funds the predicted demand
        # of the next `guard_intervals` intervals up front -- with the
        # default (full horizon) this realises the paper's headline
        # behaviour, "JIT-GC creates an exact free space required for
        # future writes in advance": the reserve tracks predicted demand
        # (not a fixed multiple of OP), and BGC fills it only from real
        # idle time.  Pass a small guard_intervals to study the pure
        # deferral rule (DESIGN.md ablation #3).
        guard = self.guard_intervals
        if guard is None:
            guard = len(prediction.demands_bytes)
        near_term = sum(prediction.demands_bytes[:guard]) + sum(ddir[:guard])
        guard_bytes = max(0, near_term - cfree)

        page = self.device.config.geometry.page_size
        reclaim_bytes = max(decision.reclaim_bytes, guard_bytes)
        self._quota_pages = -(-reclaim_bytes // page)  # ceil

        if self.audit.enabled or self.tracer.enabled:
            record = ManagerTickRecord(
                t_ns=now,
                dbuf_bytes=sum(prediction.demands_bytes),
                ddir_bytes=sum(ddir),
                creq_bytes=decision.creq_bytes,
                cfree_bytes=decision.cfree_bytes,
                tw_ns=decision.tw_ns,
                tidle_ns=decision.tidle_ns,
                tgc_ns=decision.tgc_ns,
                reclaim_bytes=decision.reclaim_bytes,
                guard_bytes=guard_bytes,
                quota_pages=self._quota_pages,
                branch=decision.branch,
                write_bw=self.device.write_bandwidth.bytes_per_second,
                gc_bw=self.device.gc_bandwidth.bytes_per_second,
                sip_pages=len(sip_set),
            )
            self.audit.record_manager_tick(record)
            if self.tracer.enabled:
                self.tracer.emit(
                    "manager",
                    "manager.tick",
                    branch=record.branch,
                    creq_bytes=record.creq_bytes,
                    cfree_bytes=record.cfree_bytes,
                    tw_ns=record.tw_ns,
                    tidle_ns=record.tidle_ns,
                    tgc_ns=record.tgc_ns,
                    reclaim_bytes=record.reclaim_bytes,
                    guard_bytes=record.guard_bytes,
                    quota_pages=record.quota_pages,
                    sip_pages=record.sip_pages,
                )
        if self.registry is not None:
            self.registry.series("manager.creq_bytes").append(now, decision.creq_bytes)

        if self._quota_pages > 0:
            if self.tracer.enabled:
                self.tracer.emit(
                    "manager",
                    "bgc.invoke",
                    quota_pages=self._quota_pages,
                    reclaim_bytes=reclaim_bytes,
                )
            self.interface.invoke_bgc()

    def reclaim_demand_pages(self, device: SsdDevice) -> int:
        return self._quota_pages

    def on_block_collected(self, device: SsdDevice, freed_pages: int) -> None:
        self._quota_pages = max(0, self._quota_pages - max(0, freed_pages))

    # ------------------------------------------------------------------
    def sip_filter_stats(self) -> tuple:
        """(selections, filtered) from the SIP selector, for Table 3."""
        if self._selector is None:
            return (0, 0)
        return (self._selector.total_selections, self._selector.total_filtered)
