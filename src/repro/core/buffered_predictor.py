"""Write-demand predictor for buffered writes (paper Sec 3.2.1, Fig. 4).

Invoked right after each flusher wake-up at time ``t``, the predictor
scans the page cache's dirty pages and emits:

* ``Dbuf(t) = (D1, ..., D_Nwb)`` -- an upper bound, per future
  write-back interval ``I_wb^i(t) = [t + i*p, t + (i+1)*p)``, on the
  buffered bytes that will be flushed to the SSD in that interval; and
* the SIP list -- the dirty pages' logical addresses, whose on-flash old
  versions the flushes will invalidate.

A dirty page last updated at ``w`` expires at ``w + tau_expire`` and is
flushed at the *first flusher wake-up at or after* that instant, i.e. in
interval index ``i = ceil((w + tau_expire - t) / p)`` (1-based).  This is
exactly the paper's Fig. 4 arithmetic: data written during ``(0, 5]``
and scanned at ``t = 5`` lands in ``I^6``, not ``I^5``, because the
flusher only wakes at multiples of ``p``.

The paper deliberately *relaxes the second flush condition* (the
``tau_flush`` volume threshold): the prediction assumes age-based
flushing only.  A volume-triggered early flush therefore arrives sooner
than predicted -- but the space it needs was already counted in a later
interval of the same ``Dbuf`` vector, so the total reservation is
unaffected; the over-prediction is bounded by ``tau_flush`` (Sec 3.2.1).
A ``strict`` mode that models the volume condition too is provided for
the ablation bench.

Hot path (PERFORMANCE.md): by default the predictor keeps the ``Dbuf``
histogram *incrementally* -- it subscribes to the page cache's batched
dirty listeners and maintains a count of dirty pages per absolute
flush-interval index ``c = ceil((w + tau_expire) / p)``.  At a flusher
tick ``t = m*p`` the relative interval of a page is then
``clamp(c - m, 1, Nwb)`` exactly (subtracting the integer multiple of
``p`` commutes with the ceiling), so :meth:`predict` costs O(distinct
intervals) instead of O(dirty pages).  Predictions at times that are not
a multiple of ``p`` (never issued by the flusher, only by ad-hoc
callers) fall back to the reference scan, which also remains available
via :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import perf
from repro.core.sip import SipList
from repro.oskernel.cache import PageCache


@dataclass
class BufferedPrediction:
    """Result of one predictor invocation.

    Attributes:
        demands_bytes: the ``Dbuf`` vector, index 0 = interval ``I^1``.
        sip: SIP snapshot taken during the same scan.
        scanned_at: prediction time ``t``.
    """

    demands_bytes: List[int]
    sip: SipList
    scanned_at: int

    def total_bytes(self) -> int:
        """``sum_i Dbuf_i`` -- the buffered share of ``Creq``."""
        return sum(self.demands_bytes)


class BufferedWritePredictor:
    """Page-cache-scanning predictor.

    Args:
        cache: the page cache to scan.
        period_ns: flusher period ``p``.
        tau_expire_ns: dirty-age threshold; must be a multiple of ``p``.
        strict: model the volume flush condition too (ablation; the
            paper's predictor uses the relaxed, age-only rule).
        tau_flush_pages: volume threshold used in strict mode.
        incremental: maintain the ``Dbuf`` histogram from cache dirty
            listeners (None reads the :mod:`repro.perf` process default).
    """

    def __init__(
        self,
        cache: PageCache,
        period_ns: int,
        tau_expire_ns: int,
        strict: bool = False,
        tau_flush_pages: int = 0,
        incremental: bool = None,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        if tau_expire_ns % period_ns != 0:
            raise ValueError("tau_expire must be a multiple of the period")
        self.cache = cache
        self.period_ns = period_ns
        self.tau_expire_ns = tau_expire_ns
        self.strict = strict
        self.tau_flush_pages = tau_flush_pages
        self.invocations = 0
        self._incremental = (
            perf.hotpath_indexing_enabled() if incremental is None else bool(incremental)
        )
        #: Absolute flush-interval index -> dirty-page count.  The key is
        #: ``c = ceil((last_update + tau_expire) / p)``; see module doc.
        self._interval_counts: Dict[int, int] = {}
        if self._incremental:
            for entry in cache.dirty_items():
                self._bump(entry.last_update, +1)
            cache.dirty_listeners.append(self._on_dirty_delta)

    @property
    def nwb(self) -> int:
        """Number of future intervals covered: ``Nwb = tau_expire / p``."""
        return self.tau_expire_ns // self.period_ns

    # ------------------------------------------------------------------
    # Incremental Dbuf maintenance
    # ------------------------------------------------------------------
    def _bump(self, last_update: int, delta: int) -> None:
        # Absolute interval in which a page stamped `last_update` expires.
        key = -(-(last_update + self.tau_expire_ns) // self.period_ns)
        count = self._interval_counts.get(key, 0) + delta
        if count:
            self._interval_counts[key] = count
        else:
            del self._interval_counts[key]

    def _on_dirty_delta(
        self, added: List[Tuple[int, int]], removed: List[Tuple[int, int]]
    ) -> None:
        for _lpn, ts in removed:
            self._bump(ts, -1)
        for _lpn, ts in added:
            self._bump(ts, +1)

    # ------------------------------------------------------------------
    def predict(self, now: int) -> BufferedPrediction:
        """Compute ``Dbuf(now)`` plus the SIP list.

        Uses the incrementally maintained histogram when enabled and
        ``now`` falls on a flusher tick; otherwise scans the dirty set
        (the reference path -- bit-identical output either way).
        """
        self.invocations += 1
        page = self.cache.page_size
        demands = [0] * self.nwb
        if self._incremental and now % self.period_ns == 0:
            tick = now // self.period_ns
            nwb = self.nwb
            for key, count in self._interval_counts.items():
                interval = min(max(key - tick, 1), nwb)
                demands[interval - 1] += count * page
            sip_lpns = self.cache.dirty_lpns()
        else:
            sip_lpns = []
            for entry in self.cache.dirty_items():
                interval = self._flush_interval(entry.last_update, now)
                demands[interval - 1] += page
                sip_lpns.append(entry.lpn)
        if self.strict and self.tau_flush_pages > 0:
            self._apply_volume_condition(demands, page)
        return BufferedPrediction(
            demands_bytes=demands,
            sip=SipList(sip_lpns, created_at=now),
            scanned_at=now,
        )

    def _flush_interval(self, last_update: int, now: int) -> int:
        """1-based index of the interval in which the page will flush."""
        expire_at = last_update + self.tau_expire_ns
        delta = expire_at - now
        # ceil(delta / p); entries written at exactly `now` land in I^Nwb.
        interval = -(-delta // self.period_ns)
        return min(max(interval, 1), self.nwb)

    def _apply_volume_condition(self, demands: List[int], page: int) -> None:
        """Strict mode: pull demand earlier when the running dirty
        population would exceed ``tau_flush`` (oldest flushed first)."""
        threshold = self.tau_flush_pages * page
        # Walk intervals latest-to-earliest, moving excess one step earlier.
        for index in range(len(demands) - 1, 0, -1):
            backlog = sum(demands[: index + 1])
            if backlog > threshold:
                move = min(demands[index], backlog - threshold)
                demands[index] -= move
                demands[index - 1] += move

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "strict" if self.strict else "relaxed"
        return f"<BufferedWritePredictor {mode} nwb={self.nwb}>"
