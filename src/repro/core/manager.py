"""The JIT-GC manager (paper Sec 3.3, Fig. 6).

At the start of every write-back interval the manager receives the two
demand vectors ``Dbuf(t)`` and ``Ddir(t)`` plus the device's free
capacity ``Cfree(t)`` and decides whether background GC must run *in the
current interval*:

1. ``Creq(t) = sum_i (Dbuf_i + Ddir_i)``.
2. If ``Cfree >= Creq`` -- no BGC; the future is already funded.
3. Otherwise estimate the idle time left in the prediction horizon,
   ``Tidle = tau_expire - Tw`` with ``Tw = Creq / Bw``, and the GC time
   needed, ``Tgc = (Creq - Cfree) / Bgc``.
4. If ``Tidle > Tgc`` the reclaim can still be postponed (a later
   interval will have enough idle time) -- schedule nothing now.
5. If ``Tidle < Tgc`` the debt cannot wait: reclaim
   ``Dreclaim = (Tgc - Tidle) * Bgc`` during the current interval.

Step 4/5 is the *just-in-time* core: GC is deferred to the last interval
where it still fits, which is what prevents the premature erasures of an
aggressive policy while still avoiding foreground GC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.simtime import SECOND


@dataclass
class ManagerDecision:
    """Outcome of one manager tick (all byte/ns quantities >= 0).

    Attributes:
        creq_bytes: total predicted demand ``Creq``.
        cfree_bytes: device free capacity at decision time.
        tw_ns / tidle_ns / tgc_ns: the Sec 3.3 time estimates (0 when the
            fast path ``Cfree >= Creq`` was taken).
        reclaim_bytes: ``Dreclaim`` -- bytes BGC must reclaim now.
    """

    creq_bytes: int
    cfree_bytes: int
    tw_ns: int = 0
    tidle_ns: int = 0
    tgc_ns: int = 0
    reclaim_bytes: int = 0

    #: Branch labels for :attr:`branch` (mirrored in repro.obs.audit).
    BRANCH_NO_BGC = "no-bgc"
    BRANCH_DEFER = "defer"
    BRANCH_INVOKE = "invoke"

    @property
    def invokes_bgc(self) -> bool:
        return self.reclaim_bytes > 0

    @property
    def branch(self) -> str:
        """Which Sec 3.3 rule fired: the decision-audit classification.

        ``no-bgc`` -- the fast path (``Cfree >= Creq``: the future is
        already funded); ``invoke`` -- a positive reclaim was scheduled;
        ``defer`` -- demand exceeds ``Cfree`` but ``Tidle`` still covers
        ``Tgc`` (the JIT deferral), including the boundary case where
        integer rounding truncated the reclaim to zero.
        """
        if self.cfree_bytes >= self.creq_bytes:
            return self.BRANCH_NO_BGC
        if self.reclaim_bytes > 0:
            return self.BRANCH_INVOKE
        return self.BRANCH_DEFER


class JitGcManager:
    """The decision rule, kept free of any device plumbing for testability.

    Args:
        tau_expire_ns: the prediction horizon.
    """

    def __init__(self, tau_expire_ns: int) -> None:
        if tau_expire_ns <= 0:
            raise ValueError(f"tau_expire must be positive, got {tau_expire_ns}")
        self.tau_expire_ns = tau_expire_ns
        self.decisions = 0
        self.bgc_invocations = 0

    def decide(
        self,
        dbuf_bytes: Sequence[int],
        ddir_bytes: Sequence[int],
        cfree_bytes: int,
        write_bw_bytes_per_sec: float,
        gc_bw_bytes_per_sec: float,
    ) -> ManagerDecision:
        """Run the Sec 3.3 rule once; returns the full decision record."""
        if write_bw_bytes_per_sec <= 0 or gc_bw_bytes_per_sec <= 0:
            raise ValueError("bandwidth estimates must be positive")
        self.decisions += 1
        creq = sum(dbuf_bytes) + sum(ddir_bytes)

        if cfree_bytes >= creq:
            return ManagerDecision(creq_bytes=creq, cfree_bytes=cfree_bytes)

        tw = int(creq * SECOND / write_bw_bytes_per_sec)
        tidle = max(0, self.tau_expire_ns - tw)
        tgc = int((creq - cfree_bytes) * SECOND / gc_bw_bytes_per_sec)

        if tidle > tgc:
            # Enough future idle time remains: defer (the JIT deferral).
            return ManagerDecision(
                creq_bytes=creq,
                cfree_bytes=cfree_bytes,
                tw_ns=tw,
                tidle_ns=tidle,
                tgc_ns=tgc,
            )

        reclaim = int((tgc - tidle) * gc_bw_bytes_per_sec / SECOND)
        # Never reclaim more than the actual shortfall.
        reclaim = min(reclaim, creq - cfree_bytes)
        if reclaim > 0:
            self.bgc_invocations += 1
        return ManagerDecision(
            creq_bytes=creq,
            cfree_bytes=cfree_bytes,
            tw_ns=tw,
            tidle_ns=tidle,
            tgc_ns=tgc,
            reclaim_bytes=reclaim,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JitGcManager decisions={self.decisions} "
            f"bgc={self.bgc_invocations}>"
        )
