"""The ideal BGC policy of the paper's Sec 2, as an executable oracle.

The measurement study concludes: *"the ideal BGC invocation policy is
one that can dynamically change Cresv so that only an exact amount of
future writes can be reserved in advance"* -- and JIT-GC approximates it
with predictions.  :class:`OracleGcPolicy` realises the ideal itself: it
is told the future (the exact per-interval device write volumes of the
run, captured beforehand) and reserves exactly that, making it the upper
bound any predictor-based policy can approach.

Use :func:`capture_future_writes` to run a scenario once and harvest the
per-interval write volumes, then replay the identical scenario under
``OracleGcPolicy(future)``.  Because workload replay is deterministic
(per-actor random streams), the captured future is exact up to the
second-order effect of GC timing on completion timing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.policies import GcPolicy
from repro.sim.events import PRIORITY_CONTROL
from repro.ssd.device import SsdDevice
from repro.ssd.request import IoRequest


class FutureWriteLog:
    """Per-interval device write volumes of one recorded run."""

    def __init__(self, interval_ns: int, volumes_bytes: List[int]) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.interval_ns = interval_ns
        self.volumes_bytes = list(volumes_bytes)

    def demand_bytes(self, now_ns: int, horizon_intervals: int) -> int:
        """Exact write volume of the next ``horizon_intervals`` intervals."""
        start = now_ns // self.interval_ns
        window = self.volumes_bytes[start : start + horizon_intervals]
        return sum(window)

    def __len__(self) -> int:
        return len(self.volumes_bytes)


class FutureWriteRecorder:
    """Tallies device write volumes per interval (the capture side)."""

    def __init__(self, device: SsdDevice, interval_ns: int) -> None:
        self.interval_ns = interval_ns
        self.page_size = device.config.geometry.page_size
        self._volumes: Dict[int, int] = {}
        device.completion_listeners.append(self._on_completion)
        self._device = device

    def _on_completion(self, request: IoRequest) -> None:
        if not request.is_write:
            return
        index = self._device.sim.now // self.interval_ns
        self._volumes[index] = (
            self._volumes.get(index, 0) + request.page_count * self.page_size
        )

    def log(self) -> FutureWriteLog:
        if not self._volumes:
            return FutureWriteLog(self.interval_ns, [])
        length = max(self._volumes) + 1
        return FutureWriteLog(
            self.interval_ns,
            [self._volumes.get(index, 0) for index in range(length)],
        )


class OracleGcPolicy(GcPolicy):
    """Reserves exactly the known future demand (Sec 2's ideal policy).

    Args:
        future: a :class:`FutureWriteLog` from a prior identical run.
        horizon_intervals: how far ahead the reserve must cover (matches
            JIT-GC's ``Nwb`` so comparisons are apples-to-apples).
    """

    name = "ORACLE"

    def __init__(self, future: FutureWriteLog, horizon_intervals: int = 6) -> None:
        if horizon_intervals <= 0:
            raise ValueError(
                f"horizon_intervals must be positive, got {horizon_intervals}"
            )
        self.future = future
        self.horizon_intervals = horizon_intervals

    def attach(self, sim, device, cache, flusher) -> None:
        super().attach(sim, device, cache, flusher)
        sim.schedule(
            self.future.interval_ns, self._tick, priority=PRIORITY_CONTROL
        )

    def _tick(self) -> None:
        self.device.kick_bgc()
        self.sim.schedule(
            self.future.interval_ns, self._tick, priority=PRIORITY_CONTROL
        )

    def reclaim_demand_pages(self, device: SsdDevice) -> int:
        page = device.config.geometry.page_size
        demand = self.future.demand_bytes(self.sim.now, self.horizon_intervals)
        demand_pages = -(-demand // page)
        space = device.ftl.space
        target = space.clamp_reserved_pages(demand_pages, device.ftl.used_pages())
        return max(0, target - device.ftl.free_pages())


def capture_future_writes(run_scenario_fn, interval_ns: int):
    """Helper wiring for oracle experiments.

    Not all experiment entry points expose the device; the ablation in
    :mod:`repro.experiments.oracle` shows the full two-pass pattern.
    """
    raise NotImplementedError(
        "use repro.experiments.oracle.run_oracle_comparison, which owns the "
        "two-pass capture/replay wiring"
    )
