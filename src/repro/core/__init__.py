"""JIT-GC: the paper's primary contribution.

* :mod:`repro.core.cdh` -- the cumulative data histogram (Fig. 5) used to
  estimate direct-write demand.
* :mod:`repro.core.sip` -- the soon-to-be-invalidated-page list.
* :mod:`repro.core.buffered_predictor` -- page-cache-scanning predictor
  for buffered write-back demand (Sec 3.2.1, Fig. 4).
* :mod:`repro.core.direct_predictor` -- CDH-based predictor for direct
  writes (Sec 3.2.2, Fig. 5).
* :mod:`repro.core.manager` -- the JIT-GC manager: the ``Creq`` /
  ``Tidle`` / ``Tgc`` decision rule (Sec 3.3, Fig. 6).
* :mod:`repro.core.accuracy` -- prediction-accuracy tracking (Table 2).
* :mod:`repro.core.policies` -- the four BGC policies evaluated in the
  paper (L-BGC, A-BGC, ADP-GC, JIT-GC) plus the parametric fixed-reserve
  policy behind the Fig. 2 sweep.
"""

from repro.core.cdh import CumulativeDataHistogram
from repro.core.sip import SipList
from repro.core.buffered_predictor import BufferedWritePredictor, BufferedPrediction
from repro.core.direct_predictor import DirectWritePredictor
from repro.core.manager import JitGcManager, ManagerDecision
from repro.core.accuracy import PredictionAccuracyTracker
from repro.core.policies import (
    GcPolicy,
    NoBgcPolicy,
    FixedReservePolicy,
    lazy_bgc_policy,
    aggressive_bgc_policy,
    AdaptiveGcPolicy,
    JitGcPolicy,
)
from repro.core.oracle import (
    FutureWriteLog,
    FutureWriteRecorder,
    OracleGcPolicy,
)

__all__ = [
    "CumulativeDataHistogram",
    "SipList",
    "BufferedWritePredictor",
    "BufferedPrediction",
    "DirectWritePredictor",
    "JitGcManager",
    "ManagerDecision",
    "PredictionAccuracyTracker",
    "GcPolicy",
    "NoBgcPolicy",
    "FixedReservePolicy",
    "lazy_bgc_policy",
    "aggressive_bgc_policy",
    "AdaptiveGcPolicy",
    "JitGcPolicy",
    "FutureWriteLog",
    "FutureWriteRecorder",
    "OracleGcPolicy",
]
