"""Prediction-accuracy tracking (paper Table 2).

The paper reports how accurately each policy's predictor anticipates
*future write demand* (e.g. JIT-GC: 98.9 % on YCSB down to 72.5 % on
TPC-C).  The quantity the manager consumes is ``Creq(t)`` -- the demand
over the whole ``tau_expire`` horizon -- so that is what we score: at
each tick the policy registers its horizon prediction, the tracker
accumulates the bytes that actually reach the SSD per interval, and once
the horizon has fully elapsed the pair is scored as::

    accuracy = 1 - |predicted - actual| / max(predicted, actual)

(pairs where both sides are zero carry no information and are skipped).
The reported figure is the mean over all scored horizons.

Horizon-level scoring is deliberate: a dirty page that is re-dirtied
before its flush slides to a later interval -- unknowable in advance and
irrelevant to the manager, which only needs the total over the horizon
to be right.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple


class PredictionAccuracyTracker:
    """Scores horizon predictions against observed write traffic.

    Drive it with :meth:`record_actual_bytes` from a device completion
    listener, and :meth:`on_tick` + :meth:`predict` from the policy tick
    (in that order: ``on_tick`` closes the interval that just ended).

    Args:
        horizon_intervals: ``Nwb`` -- how many write-back intervals a
            prediction covers.
    """

    def __init__(self, horizon_intervals: int = 6) -> None:
        if horizon_intervals <= 0:
            raise ValueError(
                f"horizon_intervals must be positive, got {horizon_intervals}"
            )
        self.horizon_intervals = horizon_intervals
        self._current_interval_bytes = 0
        #: Closed-interval actuals, oldest first.
        self._actuals: List[int] = []
        #: (tick index at prediction time, predicted bytes).
        self._pending: Deque[Tuple[int, int]] = deque()
        self._scores: List[float] = []
        self._pairs: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def record_actual_bytes(self, nbytes: int) -> None:
        """Tally bytes written to the SSD during the current interval."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._current_interval_bytes += nbytes

    def on_tick(self) -> None:
        """Close the interval that just ended and score ripe predictions."""
        self._actuals.append(self._current_interval_bytes)
        self._current_interval_bytes = 0
        completed = len(self._actuals)
        while self._pending:
            made_at, predicted = self._pending[0]
            if completed < made_at + self.horizon_intervals:
                break
            self._pending.popleft()
            actual = sum(
                self._actuals[made_at : made_at + self.horizon_intervals]
            )
            self._score(predicted, actual)

    def predict(self, predicted_bytes: int) -> None:
        """Register the horizon prediction made at the current tick."""
        if predicted_bytes < 0:
            raise ValueError(f"prediction must be >= 0, got {predicted_bytes}")
        self._pending.append((len(self._actuals), predicted_bytes))

    def _score(self, predicted: int, actual: int) -> None:
        if predicted == 0 and actual == 0:
            return
        score = 1.0 - abs(predicted - actual) / max(predicted, actual)
        self._scores.append(score)
        self._pairs.append((predicted, actual))

    # ------------------------------------------------------------------
    @property
    def intervals_scored(self) -> int:
        return len(self._scores)

    def accuracy(self) -> float:
        """Mean accuracy over scored horizons, in [0, 1]."""
        if not self._scores:
            return 1.0
        return sum(self._scores) / len(self._scores)

    def accuracy_percent(self) -> float:
        """Accuracy as a percentage (the Table 2 unit)."""
        return 100.0 * self.accuracy()

    def pairs(self) -> List[Tuple[int, int]]:
        """(predicted, actual) byte pairs, for diagnostics."""
        return list(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PredictionAccuracyTracker n={self.intervals_scored} "
            f"acc={self.accuracy_percent():.1f}%>"
        )
