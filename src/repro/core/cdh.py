"""The cumulative data histogram (paper Sec 3.2.2, Fig. 5).

A CDH summarises how much data was written per observation interval in
the recent past; reading it at a percentile gives a write-demand bound
that holds with that empirical probability.  The paper reserves the 80th
percentile of the direct-write CDH: enough free space to absorb direct
writes in 80 % of intervals, without the premature erasures a higher
percentile (or A-BGC) would cause.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class CumulativeDataHistogram:
    """Fixed-bin histogram over a sliding window of observations.

    Args:
        bin_bytes: histogram bin width (Fig. 5 uses 10 MB bins).
        window: number of most-recent observations retained; ``None``
            keeps everything.
    """

    def __init__(self, bin_bytes: int, window: Optional[int] = 64) -> None:
        if bin_bytes <= 0:
            raise ValueError(f"bin_bytes must be positive, got {bin_bytes}")
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.bin_bytes = bin_bytes
        self._observations: Deque[int] = deque(maxlen=window)

    # ------------------------------------------------------------------
    def observe(self, nbytes: int) -> None:
        """Record the write volume of one completed interval."""
        if nbytes < 0:
            raise ValueError(f"observation must be >= 0, got {nbytes}")
        self._observations.append(nbytes)

    @property
    def count(self) -> int:
        return len(self._observations)

    def bin_of(self, nbytes: int) -> int:
        """Index of the bin holding ``nbytes``."""
        return nbytes // self.bin_bytes

    def histogram(self) -> List[int]:
        """Frequency per bin, index 0 first (Fig. 5(a))."""
        if not self._observations:
            return []
        bins = [0] * (max(self.bin_of(x) for x in self._observations) + 1)
        for value in self._observations:
            bins[self.bin_of(value)] += 1
        return bins

    def cdf(self) -> List[float]:
        """Cumulative probability per bin upper bound (Fig. 5(b))."""
        bins = self.histogram()
        total = sum(bins)
        out: List[float] = []
        acc = 0
        for freq in bins:
            acc += freq
            out.append(acc / total)
        return out

    def percentile_bytes(self, probability: float) -> int:
        """Smallest bin upper bound covering ``probability`` of intervals.

        This is the paper's ``delta_dir`` read-out: reserving the returned
        number of bytes covers at least ``probability`` of observed
        intervals.  Returns 0 when no observation exists yet (a fresh
        system has no evidence of direct-write demand).
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if not self._observations:
            return 0
        for index, cumulative in enumerate(self.cdf()):
            if cumulative >= probability:
                return (index + 1) * self.bin_bytes
        # Floating-point slack: fall back to the maximum bin bound.
        return len(self.cdf()) * self.bin_bytes

    def max_observation(self) -> int:
        return max(self._observations, default=0)

    def mean_observation(self) -> float:
        if not self._observations:
            return 0.0
        return sum(self._observations) / len(self._observations)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CDH n={self.count} bin={self.bin_bytes}B "
            f"p80={self.percentile_bytes(0.8)}B>"
        )
