"""The soon-to-be-invalidated page (SIP) list.

Dirty pages in the host page cache have *old versions on flash* that the
imminent write-back will invalidate.  Migrating those flash pages during
GC is pure waste -- they die moments later.  The buffered-write predictor
collects their logical addresses into a :class:`SipList`, which the JIT-GC
manager downloads to the SSD; the extended garbage collector then avoids
victim blocks dominated by SIP pages (paper Secs 3.1, 3.2.1; Table 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set


class SipList:
    """An immutable-ish snapshot of soon-to-be-invalidated LPNs.

    Attributes:
        created_at: simulated time the snapshot was taken.
    """

    def __init__(self, lpns: Iterable[int] = (), created_at: int = 0) -> None:
        self._lpns: Set[int] = set(lpns)
        self.created_at = created_at

    def __len__(self) -> int:
        return len(self._lpns)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._lpns

    def __iter__(self) -> Iterator[int]:
        return iter(self._lpns)

    def as_set(self) -> Set[int]:
        """The LPN set (a copy; the snapshot stays intact)."""
        return set(self._lpns)

    def union(self, other: "SipList") -> "SipList":
        """Merge two snapshots, keeping the newer timestamp."""
        return SipList(
            self._lpns | other._lpns,
            created_at=max(self.created_at, other.created_at),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SipList n={len(self._lpns)} t={self.created_at}>"
