"""Hot-path acceleration switch: incremental indexes vs reference scans.

The GC/flusher hot paths exist in two functionally identical
implementations:

* **indexed** (the default) -- incrementally maintained structures: the
  page cache's last-update expiry index, the buffered-write predictor's
  ``Dbuf`` interval histogram, and the FTL's valid-count /
  SIP-overlap block indexes (see PERFORMANCE.md).
* **scan** -- the original brute-force implementations that rescan the
  whole dirty set / candidate list on every invocation.

Both paths must produce **bit-identical** simulation results -- same
:class:`~repro.metrics.collector.RunMetrics`, same decision-audit
stream.  The scan path is kept as the executable specification: the
equivalence suite (``tests/integration/test_hotpath_equivalence.py``)
and the benchmark harness (``benchmarks/bench_hotpaths.py``) flip this
switch to compare the two.

The flag is read at *construction* time (``PageCache``,
``BufferedWritePredictor``, ``PageMappedFtl``), so toggling it affects
components built afterwards, never a live system -- which is exactly
what an A/B scenario comparison needs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: Module-level switch; prefer the accessors below over direct writes.
INDEXED_HOTPATHS: bool = True


def hotpath_indexing_enabled() -> bool:
    """True when newly built components should maintain incremental
    indexes (the default)."""
    return INDEXED_HOTPATHS


def set_hotpath_indexing(enabled: bool) -> None:
    """Select the implementation for components built from now on."""
    global INDEXED_HOTPATHS
    INDEXED_HOTPATHS = bool(enabled)


@contextmanager
def scan_reference() -> Iterator[None]:
    """Build components on the original full-scan paths inside the block.

    Used by the equivalence tests and ``bench_hotpaths.py`` to run the
    reference implementation against the indexed one::

        with perf.scan_reference():
            baseline = run_scenario(spec)   # brute-force scans
        indexed = run_scenario(spec)        # incremental indexes
        assert baseline == indexed
    """
    global INDEXED_HOTPATHS
    previous = INDEXED_HOTPATHS
    INDEXED_HOTPATHS = False
    try:
        yield
    finally:
        INDEXED_HOTPATHS = previous
