"""Result persistence: save and reload experiment measurements as JSON.

Long sweeps are expensive; persisting their :class:`RunMetrics` lets a
study resume, diff runs across code versions, and feed external plotting
without rerunning the simulator.  The format is one JSON object per
result with an explicit ``schema`` tag so future field changes can be
migrated.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.metrics.collector import RunMetrics

#: Format tag written into every file.
SCHEMA = "repro.run-metrics.v1"


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Plain-dict form of one result (JSON-ready)."""
    payload = dataclasses.asdict(metrics)
    payload["schema"] = SCHEMA
    return payload


def metrics_from_dict(payload: dict) -> RunMetrics:
    """Inverse of :func:`metrics_to_dict`; validates the schema tag."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r}; expected {SCHEMA}"
        )
    fields = {f.name for f in dataclasses.fields(RunMetrics)}
    return RunMetrics(**{k: v for k, v in payload.items() if k in fields})


def save_results(
    results: Union[RunMetrics, List[RunMetrics], Dict[str, RunMetrics]],
    path: Union[str, Path],
) -> int:
    """Write one result, a list, or a name->result mapping; returns the
    number of results written."""
    if isinstance(results, RunMetrics):
        payload = metrics_to_dict(results)
        count = 1
    elif isinstance(results, dict):
        payload = {name: metrics_to_dict(m) for name, m in results.items()}
        count = len(results)
    else:
        payload = [metrics_to_dict(m) for m in results]
        count = len(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return count


def load_results(path: Union[str, Path]):
    """Load whatever :func:`save_results` wrote, with the same shape."""
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "schema" in payload:
        return metrics_from_dict(payload)
    if isinstance(payload, dict):
        return {name: metrics_from_dict(p) for name, p in payload.items()}
    return [metrics_from_dict(p) for p in payload]
