"""Result persistence: save/reload measurements, sweep checkpointing.

Long sweeps are expensive; persisting their :class:`RunMetrics` lets a
study resume, diff runs across code versions, and feed external plotting
without rerunning the simulator.  The format is one JSON object per
result with an explicit ``schema`` tag so future field changes can be
migrated.

:class:`SweepCheckpoint` extends this to *crash-tolerant sweeps*: every
finished (or failed) scenario is flushed to disk atomically, so a killed
or crashed sweep resumes by skipping everything already measured.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Union

from repro.metrics.collector import RunMetrics

#: Format tag written into every file.
SCHEMA = "repro.run-metrics.v1"
#: Format tag of sweep checkpoint files.
SWEEP_SCHEMA = "repro.sweep-checkpoint.v1"


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Plain-dict form of one result (JSON-ready)."""
    payload = metrics.to_wire()
    payload["schema"] = SCHEMA
    return payload


def metrics_from_dict(payload: dict) -> RunMetrics:
    """Inverse of :func:`metrics_to_dict`; validates the schema tag."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported schema {payload.get('schema')!r}; expected {SCHEMA}"
        )
    # JSON turns tuples into lists; from_wire restores the timeline's shape.
    return RunMetrics.from_wire(payload)


def save_results(
    results: Union[RunMetrics, List[RunMetrics], Dict[str, RunMetrics]],
    path: Union[str, Path],
) -> int:
    """Write one result, a list, or a name->result mapping; returns the
    number of results written."""
    if isinstance(results, RunMetrics):
        payload = metrics_to_dict(results)
        count = 1
    elif isinstance(results, dict):
        payload = {name: metrics_to_dict(m) for name, m in results.items()}
        count = len(results)
    else:
        payload = [metrics_to_dict(m) for m in results]
        count = len(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return count


def load_results(path: Union[str, Path]):
    """Load whatever :func:`save_results` wrote, with the same shape."""
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "schema" in payload:
        return metrics_from_dict(payload)
    if isinstance(payload, dict):
        return {name: metrics_from_dict(p) for name, p in payload.items()}
    return [metrics_from_dict(p) for p in payload]


class SweepCheckpoint:
    """Durable, incrementally-updated record of a sweep in progress.

    One JSON file holds every completed scenario's metrics plus every
    failed scenario's error string.  Updates are atomic (write-to-temp
    then :func:`os.replace`), so a sweep killed mid-flush never corrupts
    the checkpoint; :func:`repro.experiments.runner.run_sweep` reloads it
    and skips everything already measured.

    Args:
        path: checkpoint file location (created on the first record).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Scenario key -> frozen metrics.
        self.completed: Dict[str, RunMetrics] = {}
        #: Scenario key -> error string of the failed attempt.
        self.failures: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def load(self) -> "SweepCheckpoint":
        """Read the checkpoint from disk (no-op when absent)."""
        if not self.path.exists():
            return self
        with open(self.path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != SWEEP_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {payload.get('schema')!r}; "
                f"expected {SWEEP_SCHEMA}"
            )
        self.completed = {
            name: metrics_from_dict(entry)
            for name, entry in payload.get("completed", {}).items()
        }
        self.failures = dict(payload.get("failures", {}))
        return self

    def record_success(self, name: str, metrics: RunMetrics) -> None:
        """Persist one finished scenario (clears any stale failure)."""
        self.completed[name] = metrics
        self.failures.pop(name, None)
        self._flush()

    def record_failure(self, name: str, error: str) -> None:
        """Persist one failed scenario's error for the sweep report."""
        self.failures[name] = error
        self._flush()

    def is_completed(self, name: str) -> bool:
        return name in self.completed

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        payload = {
            "schema": SWEEP_SCHEMA,
            "completed": {
                name: metrics_to_dict(m) for name, m in self.completed.items()
            },
            "failures": self.failures,
        }
        # A typo'd directory must not cost the first scenario's work.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SweepCheckpoint {self.path} completed={len(self.completed)} "
            f"failures={len(self.failures)}>"
        )
