"""Table 2: prediction accuracy of the future-write predictors.

Runs JIT-GC and ADP-GC per benchmark and reports the horizon-level
prediction accuracy their trackers collected (see
:mod:`repro.core.accuracy` for the metric).  Expected shape: JIT-GC's
page-cache-aware predictor beats ADP-GC's device-internal CDH on
buffered-heavy benchmarks and both bottom out on TPC-C, whose direct
writes are fundamentally harder to predict (paper: 72.5 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import ScenarioSpec, run_scenario

DEFAULT_WORKLOADS = ("YCSB", "Postmark", "Filebench", "Bonnie++", "Tiobench", "TPC-C")

#: The paper's Table 2 (percent).
PAPER_ACCURACY = {
    "JIT-GC": {
        "YCSB": 98.9,
        "Postmark": 93.2,
        "Filebench": 97.3,
        "Bonnie++": 89.8,
        "Tiobench": 86.1,
        "TPC-C": 72.5,
    },
    "ADP-GC": {
        "YCSB": 87.7,
        "Postmark": 72.8,
        "Filebench": 82.0,
        "Bonnie++": 73.4,
        "Tiobench": 74.1,
        "TPC-C": 71.2,
    },
}


@dataclass
class Table2Result:
    """``accuracy_pct[policy][workload]`` in percent."""

    accuracy_pct: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def jit_beats_adp(self, workload: str) -> bool:
        return (
            self.accuracy_pct["JIT-GC"][workload]
            >= self.accuracy_pct["ADP-GC"][workload]
        )

    def format(self) -> str:
        workloads = list(next(iter(self.accuracy_pct.values())).keys())
        rows: List[List[object]] = []
        for policy, per_workload in self.accuracy_pct.items():
            rows.append([policy] + [per_workload[w] for w in workloads])
            rows.append(
                [f"  (paper {policy})"]
                + [PAPER_ACCURACY[policy].get(w, float("nan")) for w in workloads]
            )
        return format_table(
            ["Predictor"] + workloads,
            rows,
            title="Table 2: prediction accuracy (%)",
            float_format="{:.1f}",
        )


def run_table2(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Table2Result:
    """Measure predictor accuracy for both predicting policies."""
    base_spec = base_spec or ScenarioSpec()
    result = Table2Result(accuracy_pct={"JIT-GC": {}, "ADP-GC": {}})
    for workload in workloads:
        for policy in ("JIT-GC", "ADP-GC"):
            spec = base_spec.with_policy(policy)
            spec.workload = workload
            metrics = run_scenario(spec)
            result.accuracy_pct[policy][workload] = (
                metrics.prediction_accuracy_pct
                if metrics.prediction_accuracy_pct is not None
                else 100.0
            )
    return result
