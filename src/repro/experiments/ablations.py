"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one JIT-GC design decision:

1. :func:`run_percentile_sweep` -- the direct-write CDH reservation
   percentile (paper picks 0.8 as the performance/lifetime balance).
2. :func:`run_sip_ablation` -- JIT-GC with and without SIP-filtered
   victim selection (the collector extension vs the manager alone).
3. :func:`run_predictor_strictness` -- relaxed (paper) vs strict
   (volume-condition-aware) buffered predictor.
4. :func:`run_manager_laziness` -- full-horizon demand coverage
   (default) vs the pure ``Tidle``/``Tgc`` deferral rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.policies import JitGcPolicy
from repro.experiments.reporting import format_table
from repro.experiments.runner import ScenarioSpec, run_scenario
from repro.metrics.collector import RunMetrics


@dataclass
class AblationResult:
    """``raw[variant]`` -> RunMetrics for one workload."""

    title: str
    workload: str
    raw: Dict[str, RunMetrics] = field(default_factory=dict)

    def format(self) -> str:
        rows: List[List[object]] = []
        for variant, metrics in self.raw.items():
            rows.append(
                [
                    variant,
                    metrics.iops,
                    metrics.waf,
                    metrics.fgc_invocations,
                    metrics.bgc_blocks,
                ]
            )
        return format_table(
            ["Variant", "IOPS", "WAF", "FGC", "BGC blocks"],
            rows,
            title=f"{self.title} [{self.workload}]",
        )


def _run_variants(
    base_spec: ScenarioSpec, title: str, variants: Dict[str, JitGcPolicy]
) -> AblationResult:
    result = AblationResult(title=title, workload=base_spec.workload)
    for name, factory in variants.items():
        result.raw[name] = run_scenario(base_spec.with_policy(name, factory))
    return result


def run_percentile_sweep(
    base_spec: ScenarioSpec = None,
    percentiles: Sequence[float] = (0.5, 0.65, 0.8, 0.95),
) -> AblationResult:
    """Sweep the CDH reservation percentile (paper Sec 3.2.2)."""
    base_spec = base_spec or ScenarioSpec(workload="TPC-C")
    variants = {
        f"p{int(100 * p)}": (lambda p=p: JitGcPolicy(direct_percentile=p))
        for p in percentiles
    }
    return _run_variants(base_spec, "CDH percentile sweep", variants)


def run_sip_ablation(base_spec: ScenarioSpec = None) -> AblationResult:
    """JIT-GC with vs without SIP-filtered victim selection."""
    base_spec = base_spec or ScenarioSpec(workload="Postmark")
    variants = {
        "JIT-GC (SIP)": lambda: JitGcPolicy(),
        "JIT-GC (no SIP)": lambda: JitGcPolicy(sip_fraction_threshold=None),
    }
    return _run_variants(base_spec, "SIP victim-filter ablation", variants)


def run_predictor_strictness(base_spec: ScenarioSpec = None) -> AblationResult:
    """Relaxed (paper) vs strict buffered-flush prediction."""
    base_spec = base_spec or ScenarioSpec(workload="YCSB")
    variants = {
        "relaxed (paper)": lambda: JitGcPolicy(strict_buffered_predictor=False),
        "strict": lambda: JitGcPolicy(strict_buffered_predictor=True),
    }
    return _run_variants(base_spec, "Buffered-predictor strictness", variants)


def run_manager_laziness(base_spec: ScenarioSpec = None) -> AblationResult:
    """Full-horizon demand coverage vs pure Tidle/Tgc deferral."""
    base_spec = base_spec or ScenarioSpec(workload="TPC-C")
    variants = {
        "full-horizon guard": lambda: JitGcPolicy(guard_intervals=None),
        "2-interval guard": lambda: JitGcPolicy(guard_intervals=2),
        "pure deferral": lambda: JitGcPolicy(guard_intervals=0),
    }
    return _run_variants(base_spec, "Manager laziness ablation", variants)
