"""Fig. 2: impact of the reserved capacity on performance and lifetime.

The paper sweeps a fixed-reserve BGC policy's ``Cresv`` over
``{0.5, 0.75, 1.0, 1.25, 1.5} x C_OP`` for all six benchmarks and plots
IOPS (Fig. 2a) and WAF (Fig. 2b), both normalized to the
``1.5 x C_OP`` (A-BGC) point.  Expected shape: IOPS grows with the
reserve, WAF grows with the reserve -- the trade-off that motivates
JIT-GC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Sequence

from repro.core.policies import FixedReservePolicy
from repro.experiments.reporting import format_table, normalize_to
from repro.experiments.runner import ScenarioSpec, run_scenario, run_sweep
from repro.metrics.collector import RunMetrics

#: The paper's Fig. 2 x-axis.
RESERVE_POINTS = (0.5, 0.75, 1.0, 1.25, 1.5)

#: Benchmarks in the paper's order.
DEFAULT_WORKLOADS = ("YCSB", "Postmark", "Filebench", "Bonnie++", "Tiobench", "TPC-C")


@dataclass
class Fig2Result:
    """Sweep results for all workloads.

    ``raw[workload][k]`` is the RunMetrics at ``Cresv = k x C_OP``.
    """

    reserve_points: Sequence[float]
    raw: Dict[str, Dict[float, RunMetrics]] = field(default_factory=dict)

    def normalized_iops(self, workload: str) -> Dict[float, float]:
        """IOPS normalized to the largest-reserve point (paper style)."""
        series = {k: m.iops for k, m in self.raw[workload].items()}
        return normalize_to(series, max(self.reserve_points))

    def normalized_waf(self, workload: str) -> Dict[float, float]:
        series = {k: m.waf for k, m in self.raw[workload].items()}
        return normalize_to(series, max(self.reserve_points))

    def iops_spread(self, workload: str) -> float:
        """max/min IOPS over the sweep (paper: up to ~5x)."""
        values = [m.iops for m in self.raw[workload].values()]
        return max(values) / max(min(values), 1e-12)

    def waf_spread(self, workload: str) -> float:
        """max/min WAF over the sweep (paper: up to ~2x)."""
        values = [m.waf for m in self.raw[workload].values()]
        return max(values) / max(min(values), 1e-12)

    def format(self) -> str:
        """Both panels as text tables."""
        headers = ["Benchmark"] + [f"{k:g}OP" for k in self.reserve_points]
        iops_rows: List[List[object]] = []
        waf_rows: List[List[object]] = []
        for workload in self.raw:
            iops = self.normalized_iops(workload)
            waf = self.normalized_waf(workload)
            iops_rows.append([workload] + [iops[k] for k in self.reserve_points])
            waf_rows.append([workload] + [waf[k] for k in self.reserve_points])
        return (
            format_table(headers, iops_rows, title="Fig 2(a): normalized IOPS vs Cresv")
            + "\n\n"
            + format_table(headers, waf_rows, title="Fig 2(b): normalized WAF vs Cresv")
        )


def fig2_specs(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    reserve_points: Sequence[float] = RESERVE_POINTS,
) -> Dict[str, ScenarioSpec]:
    """The Fig. 2 grid as keyed scenario specs.

    Policy factories are ``functools.partial`` (not lambdas) so the
    specs survive pickling into :func:`run_sweep` worker processes.
    """
    base_spec = base_spec or ScenarioSpec()
    specs: Dict[str, ScenarioSpec] = {}
    for workload in workloads:
        for point in reserve_points:
            spec = base_spec.with_policy(
                f"FIXED-{point:g}OP",
                partial(FixedReservePolicy, point),
            )
            spec = replace(spec, workload=workload)
            specs[spec.key()] = spec
    return specs


def run_fig2(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    reserve_points: Sequence[float] = RESERVE_POINTS,
    jobs: int = 1,
) -> Fig2Result:
    """Run the full Fig. 2 sweep; one scenario per (workload, Cresv)."""
    base_spec = base_spec or ScenarioSpec()
    result = Fig2Result(reserve_points=tuple(reserve_points))
    specs = fig2_specs(base_spec, workloads, reserve_points)
    if jobs <= 1:
        metrics_by_key = {key: run_scenario(spec) for key, spec in specs.items()}
    else:
        outcome = run_sweep(specs, jobs=jobs)
        if outcome.failures:
            key, error = next(iter(outcome.failures.items()))
            raise RuntimeError(f"fig2 scenario {key} failed: {error}")
        metrics_by_key = outcome.results
    for workload in workloads:
        result.raw[workload] = {}
    for key, spec in specs.items():
        point = float(spec.policy.removeprefix("FIXED-").removesuffix("OP"))
        result.raw[spec.workload][point] = metrics_by_key[key]
    return result
