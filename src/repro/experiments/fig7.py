"""Fig. 7: the four-policy comparison (the paper's headline result).

Runs L-BGC, A-BGC, ADP-GC and JIT-GC on each benchmark and reports IOPS
(Fig. 7a) and WAF (Fig. 7b) normalized to A-BGC.  Expected shape:

* IOPS: L-BGC lowest; ADP-GC in between; JIT-GC close to A-BGC for
  buffered-heavy workloads, degrading toward direct-heavy ones
  (paper: TPC-C at ~0.72 of A-BGC);
* WAF: A-BGC highest (premature erasures); JIT-GC at or below L-BGC
  where SIP filtering bites (YCSB/Postmark/Filebench/Bonnie++).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.reporting import format_table, normalize_to
from repro.experiments.runner import (
    POLICY_FACTORIES,
    ScenarioSpec,
    run_policy_comparison,
)
from repro.metrics.collector import RunMetrics

DEFAULT_WORKLOADS = ("YCSB", "Postmark", "Filebench", "Bonnie++", "Tiobench", "TPC-C")
POLICY_ORDER = ("L-BGC", "A-BGC", "ADP-GC", "JIT-GC")


@dataclass
class Fig7Result:
    """``raw[workload][policy]`` -> RunMetrics."""

    raw: Dict[str, Dict[str, RunMetrics]] = field(default_factory=dict)

    def normalized_iops(self, workload: str) -> Dict[str, float]:
        series = {p: m.iops for p, m in self.raw[workload].items()}
        return normalize_to(series, "A-BGC")

    def normalized_waf(self, workload: str) -> Dict[str, float]:
        series = {p: m.waf for p, m in self.raw[workload].items()}
        return normalize_to(series, "A-BGC")

    def mean_iops_gain_over(self, policy: str, baseline: str) -> float:
        """Mean IOPS(policy)/IOPS(baseline) across workloads (paper
        reports JIT-GC at +182 % over L-BGC on their testbed)."""
        ratios = [
            self.raw[w][policy].iops / self.raw[w][baseline].iops for w in self.raw
        ]
        return sum(ratios) / len(ratios)

    def mean_waf_reduction_over(self, policy: str, baseline: str) -> float:
        """Mean 1 - WAF(policy)/WAF(baseline) (paper: JIT-GC -44 % vs
        A-BGC)."""
        ratios = [
            1.0 - self.raw[w][policy].waf / self.raw[w][baseline].waf
            for w in self.raw
        ]
        return sum(ratios) / len(ratios)

    def format(self) -> str:
        headers = ["Benchmark"] + list(POLICY_ORDER)
        iops_rows: List[List[object]] = []
        waf_rows: List[List[object]] = []
        for workload in self.raw:
            iops = self.normalized_iops(workload)
            waf = self.normalized_waf(workload)
            iops_rows.append([workload] + [iops[p] for p in POLICY_ORDER])
            waf_rows.append([workload] + [waf[p] for p in POLICY_ORDER])
        return (
            format_table(headers, iops_rows, title="Fig 7(a): normalized IOPS")
            + "\n\n"
            + format_table(headers, waf_rows, title="Fig 7(b): normalized WAF")
        )


def run_fig7(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Fig7Result:
    """Run all four policies on each workload."""
    base_spec = base_spec or ScenarioSpec()
    result = Fig7Result()
    for workload in workloads:
        spec = base_spec.with_policy(base_spec.policy)
        spec.workload = workload
        result.raw[workload] = run_policy_comparison(
            spec, {name: POLICY_FACTORIES[name] for name in POLICY_ORDER}
        )
    return result
