"""Crash-point sweeps and mid-run power-loss experiments.

Two entry points, both built on the durable-media capture of
:mod:`repro.faults.powerloss` and the OOB recovery scan of
:mod:`repro.ftl.recovery`:

* :func:`run_crash_sweep` -- the exhaustive harness.  One live host runs
  a GC-heavy scenario; every ``stride_events`` dispatched events the
  harness snapshots the durable media image, tears the in-flight
  frontier pages on the *copy* (exactly what a real cut at that instant
  would do), recovers a fresh FTL from the copy and verifies it against
  the still-running original: same L2P table, same valid counts, same
  erase counts, and -- the read-identity witness -- the OOB ``(lpn,
  seq)`` stamp of every mapped page matches, so any host read on the
  recovered device returns the same physical page contents a
  never-crashed device would serve.  Hundreds of crash points cost one
  simulation, not hundreds.

* :func:`run_scenario_with_spo` -- the live-cut experiment.  Power is
  actually cut at each planned instant (:class:`~repro.faults.powerloss.
  SpoPlan`): the event queue dies, the media image is captured, a new
  device is recovered from it (fresh fault injector, same profile) and
  the workload resumes on a new host at ``cut + scan`` time.  Per-phase
  metrics are merged into one :class:`~repro.metrics.collector.
  RunMetrics` with ``spo_count`` / ``recovery_time_ns`` filled in.

The sweep's equality checks are strict and hold for TRIM-issuing
scenarios too: host discards are journaled as durable tombstones before
the device acknowledges them (DESIGN.md "Durable metadata"), so a
recovered device never resurrects pre-TRIM mappings.  With
``nested_every`` set, the sweep additionally crashes *the recovery
itself* at selected points -- the recovered device writes its
post-recovery checkpoint, the rail dies mid-program (the half-written
record is torn), and a second recovery from that doubly-crashed image
must still match the live reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.experiments.runner import ScenarioSpec, build_preconditioned_host
from repro.faults.powerloss import PowerCut, PowerLossEmulator, SpoPlan
from repro.ftl.ftl import DeviceReadOnlyError, FtlError, PageMappedFtl
from repro.ftl.mapping import UNMAPPED
from repro.ftl.recovery import RecoveryReport, recover_ftl
from repro.host import HostSystem
from repro.metrics.collector import LATENCY_PERCENTILES, MetricsCollector, RunMetrics
from repro.metrics.hdr import merge_wire_histograms
from repro.nand.array import STATE_ERASED, STATE_OPEN, NandArray
from repro.obs.audit import RecoveryRecord
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import WORKLOADS, Region


class CrashPointMismatch(AssertionError):
    """Recovered state diverged from the live reference at a crash point."""


# ----------------------------------------------------------------------
# Crash-point verification
# ----------------------------------------------------------------------
@dataclass
class CrashPointCheck:
    """Outcome of one simulated crash point.

    Attributes:
        index: ordinal position in the sweep.
        t_ns: sim time of the (simulated) cut.
        events_dispatched: total events dispatched when the point fired.
        ok: recovery passed every check.
        error: failure description (empty when ``ok``).
        torn_pages / pages_scanned / mapped_lpns / scan_ns: from the
            recovery report.
        read_only: the recovered device came back write-refusing.
        nested: this point also crashed the recovery itself (torn
            post-recovery checkpoint) and re-verified the second
            power-on.
    """

    index: int
    t_ns: int
    events_dispatched: int
    ok: bool = False
    error: str = ""
    torn_pages: int = 0
    pages_scanned: int = 0
    mapped_lpns: int = 0
    scan_ns: int = 0
    read_only: bool = False
    nested: bool = False


@dataclass
class CrashSweepResult:
    """All crash points of one sweep plus the scenario identity."""

    scenario: str
    stride_events: int
    points: List[CrashPointCheck] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for p in self.points if p.ok)

    @property
    def failed(self) -> List[CrashPointCheck]:
        return [p for p in self.points if not p.ok]

    def ok(self) -> bool:
        return bool(self.points) and not self.failed

    def summary(self) -> str:
        span = (
            f"{self.points[0].t_ns}-{self.points[-1].t_ns} ns"
            if self.points
            else "empty"
        )
        torn = sum(p.torn_pages for p in self.points)
        return (
            f"crash sweep [{self.scenario}]: {self.passed}/{len(self.points)} "
            f"points recovered consistently (span {span}, stride "
            f"{self.stride_events} events, {torn} torn pages discarded)"
        )


def _expected_free_blocks(nand: NandArray, streams: int = 2) -> int:
    """Media-visible free-pool expectation: every good ERASED block,
    less one per write stream that lacks an OPEN block to resume
    (``streams`` is 3 in dftl mode -- user, GC and translation)."""
    erased = int((nand.block_states == STATE_ERASED).sum())
    open_count = int((nand.block_states == STATE_OPEN).sum())
    return erased - max(0, streams - open_count)


def _check_recovered_against_live(
    live_ftl: PageMappedFtl,
    ftl: PageMappedFtl,
    nand: NandArray,
    report: RecoveryReport,
    expected_free: int,
    sample_reads: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> None:
    """The crash-point equality battery (see :func:`verify_crash_point`).

    Raises :class:`CrashPointMismatch` on the first divergence between
    the recovered device (``ftl`` over ``nand``) and the live reference.
    """
    live_nand = live_ftl.nand
    live_l2p = live_ftl.page_map.l2p_snapshot()
    rec_l2p = ftl.page_map.l2p_snapshot()
    if not np.array_equal(live_l2p, rec_l2p):
        diff = int((live_l2p != rec_l2p).sum())
        raise CrashPointMismatch(
            f"L2P mismatch after recovery: {diff} LPNs map differently"
        )
    if ftl.page_map.mapped_count != live_ftl.page_map.mapped_count:
        raise CrashPointMismatch(
            f"mapped_count {ftl.page_map.mapped_count} != "
            f"{live_ftl.page_map.mapped_count}"
        )
    if not np.array_equal(
        ftl.page_map.valid_counts(), live_ftl.page_map.valid_counts()
    ):
        raise CrashPointMismatch("per-block valid counts diverged")
    if not np.array_equal(nand.erase_counts, live_nand.erase_counts):
        raise CrashPointMismatch("erase counters diverged across the cut")
    if ftl._write_seq != live_ftl._write_seq:
        raise CrashPointMismatch(
            f"write_seq {ftl._write_seq} != live {live_ftl._write_seq}"
        )
    if live_ftl.mapping_mode == "dftl":
        # The translation tier must survive the cut bit-identically too:
        # same GTD (every translation page's newest on-NAND copy) and
        # matching OOB stamps at those physical locations.
        live_gtd = live_ftl.page_map.gtd_snapshot()
        rec_gtd = ftl.page_map.gtd_snapshot()
        if not np.array_equal(live_gtd, rec_gtd):
            diff = int((live_gtd != rec_gtd).sum())
            raise CrashPointMismatch(
                f"GTD mismatch after recovery: {diff} TVPNs map differently"
            )
        if ftl.page_map.gtd_mapped_count != live_ftl.page_map.gtd_mapped_count:
            raise CrashPointMismatch(
                f"gtd_mapped_count {ftl.page_map.gtd_mapped_count} != "
                f"{live_ftl.page_map.gtd_mapped_count}"
            )
        trans_mapped = np.flatnonzero(live_gtd != UNMAPPED)
        if trans_mapped.size:
            tppns = live_gtd[trans_mapped]
            if not (
                np.array_equal(nand.oob_lpn[tppns], live_nand.oob_lpn[tppns])
                and np.array_equal(nand.oob_seq[tppns], live_nand.oob_seq[tppns])
            ):
                raise CrashPointMismatch(
                    "OOB stamps of mapped translation pages diverged"
                )

    # Read identity: with page payloads not modelled, a physical page's
    # content *is* its (lpn, seq) stamp -- equal stamps at equal PPNs
    # means every post-recovery host read returns bit-identical data.
    mapped = np.flatnonzero(live_l2p != UNMAPPED)
    if mapped.size:
        ppns = live_l2p[mapped]
        if not (
            np.array_equal(nand.oob_lpn[ppns], live_nand.oob_lpn[ppns])
            and np.array_equal(nand.oob_seq[ppns], live_nand.oob_seq[ppns])
        ):
            raise CrashPointMismatch("OOB stamps of mapped pages diverged")
        if sample_reads > 0:
            rng = rng if rng is not None else np.random.default_rng(0)
            picks = rng.choice(mapped, size=min(sample_reads, mapped.size))
            for lpn in picks:
                ftl.host_read_page(int(lpn))

    if not report.read_only and ftl.free_pool_blocks() != expected_free:
        raise CrashPointMismatch(
            f"free pool {ftl.free_pool_blocks()} != expected {expected_free}"
        )


def verify_crash_point(
    live_ftl: PageMappedFtl,
    config: SsdConfig,
    sample_reads: int = 8,
    rng: Optional[np.random.Generator] = None,
    nested: bool = False,
) -> RecoveryReport:
    """Crash the device *hypothetically* at this instant and verify.

    Captures the durable media image of ``live_ftl`` without disturbing
    it, replays the cut on a copy (frontier pages torn, DRAM discarded),
    recovers a fresh FTL from the copy and checks it against the live
    reference.  Raises :class:`CrashPointMismatch` on any divergence;
    recovery-time failures (:class:`~repro.ftl.recovery.RecoveryError`)
    propagate as-is.

    The checks, in order of strength:

    1. recovered L2P table identical to the live one;
    2. per-block valid counts and total mapped count identical;
    3. erase counters identical (wear survives the cut);
    4. next write-sequence stamp identical (monotonicity across cuts);
    5. read identity -- every mapped LPN's OOB ``(lpn, seq)`` stamp on
       the recovered media equals the live one, and ``sample_reads``
       random mapped LPNs serve an actual :meth:`host_read_page`;
    6. free-pool size equals the torn image's erased-block count minus
       the frontiers recovery had to open fresh (a frontier whose block
       the cut left FULL -- or whose tear filled it -- cannot resume).

    With ``nested=True`` the point is verified *twice*: after the first
    recovery passes, the recovered device writes a post-recovery
    checkpoint, the rail "dies" mid-program (the half-written record is
    torn), and a second recovery from that doubly-crashed image must
    pass the same battery -- the crash-during-recovery-after-crash case.
    """
    live_nand = live_ftl.nand
    durable = live_nand.capture_durable_state()
    nand = NandArray.from_durable(
        config.geometry,
        durable,
        timing=config.timing,
        pe_cycle_limit=config.pe_cycle_limit,
        fault_injector=None,
        # Fresh tracker: read-disturb counts are volatile DRAM state and
        # reset at power-on (the retention clock, by contrast, rides the
        # durable image -- charge leaks with the rail down too).
        read_disturb=config.build_read_disturb(),
    )
    frontiers = [live_ftl.active_user_block, live_ftl.active_gc_block]
    if live_ftl.mapping_mode == "dftl":
        frontiers.append(live_ftl.active_trans_block)
    for block in frontiers:
        if block is not None:
            nand.tear_frontier_page(block)
    expected_free = _expected_free_blocks(nand, streams=live_ftl._streams)

    ftl, report = _recover(nand, config)
    _check_recovered_against_live(
        live_ftl, ftl, nand, report, expected_free, sample_reads, rng
    )

    if nested and not ftl.read_only:
        # Second cut, mid-recovery: the first power-on checkpointed its
        # rebuilt mapping, and the rail dies while that record programs.
        ftl.write_checkpoint(trigger="recovery")
        durable2 = ftl.nand.capture_durable_state()
        nand2 = NandArray.from_durable(
            config.geometry,
            durable2,
            timing=config.timing,
            pe_cycle_limit=config.pe_cycle_limit,
            fault_injector=None,
            read_disturb=config.build_read_disturb(),
        )
        nand2.meta.tear_last()
        # The scan is read-only and the torn checkpoint never becomes
        # load-bearing, so the second power-on must see the same state.
        ftl2, report2 = _recover(nand2, config)
        _check_recovered_against_live(
            live_ftl,
            ftl2,
            nand2,
            report2,
            _expected_free_blocks(nand2, streams=live_ftl._streams),
            sample_reads,
            rng,
        )
    return report


def _recover(nand: NandArray, config: SsdConfig):
    """Recover an FTL over an already-built (already-torn) NAND copy."""
    return recover_ftl(
        nand,
        config.space_model(),
        fgc_watermark=config.fgc_watermark,
        fgc_penalty=config.fgc_penalty,
        max_read_retries=config.max_read_retries,
        max_program_retries=config.max_program_retries,
        max_erase_retries=config.max_erase_retries,
        checkpoint_interval_pages=config.checkpoint_interval_pages,
        journal_unmaps=config.journal_unmaps,
        mapping_mode=config.mapping_mode,
        cmt_budget_bytes=config.cmt_budget_bytes,
        checkpoint_policy=config._checkpoint_policy(),
        reliability=config.resolved_reliability_profile(),
    )


# ----------------------------------------------------------------------
# The exhaustive sweep
# ----------------------------------------------------------------------
def gc_heavy_spec(
    blocks: int = 256,
    pages_per_block: int = 64,
    seed: int = 42,
    warmup_s: int = 2,
    measure_s: int = 30,
    fault_profile=None,
    trim_heavy: bool = False,
    checkpoint_interval: Optional[int] = None,
    warm_start: str = "sim",
    mapping: str = "dram",
    cmt_budget_bytes: Optional[int] = None,
    reliability: Optional[object] = None,
) -> ScenarioSpec:
    """A scenario tuned so GC runs constantly under the sweep.

    A 90 % working set over a logically-full (prefilled + churned)
    device keeps the free pool near the FGC watermark, so crash points
    land inside foreground GC, background GC and frontier rolls -- the
    states recovery must get right.

    ``trim_heavy`` switches to the synthetic workload with a quarter of
    its operations issued as discards, so crash points land between a
    TRIM's journal write and the next host program -- the window the
    persisted unmap journal exists for.  ``checkpoint_interval`` arms
    periodic mapping checkpoints (pages of host writes per checkpoint),
    putting checkpoint programs and bounded tail scans under the sweep.
    ``warmup_s`` is the pre-sweep warm-up window (the CLI's ``--warmup``
    knob, shared with the scenario runner); ``warm_start="analytic"``
    replaces the prefill + warm-up with the synthesized steady state, so
    crash points verify recovery of analytically constructed images too.
    ``mapping="dftl"`` runs the sweep over the flash-resident mapping:
    crash points then also land between a translation-page writeback and
    its GTD update, inside translation-block GC, and on the torn
    translation frontier -- the states the GTD rebuild must get right.
    ``reliability`` arms the data-integrity subsystem (profile name or
    instance), so crash points also land around refresh-scrub
    relocations and verify the retention clock rides the durable image
    while the disturb counters reset at power-on.
    """
    workload = "YCSB"
    workload_kwargs: dict = {}
    if trim_heavy:
        workload = "Synthetic"
        workload_kwargs = {
            "trim_fraction": 0.25,
            "write_fraction": 0.85,
            "zipf_theta": 0.9,
        }
    return ScenarioSpec(
        workload=workload,
        policy="JIT-GC",
        blocks=blocks,
        pages_per_block=pages_per_block,
        op_ratio=0.07,
        working_set_fraction=0.9,
        warmup_s=warmup_s,
        measure_s=measure_s,
        flusher_period_s=1,
        tau_expire_s=2,
        seed=seed,
        workload_kwargs=workload_kwargs,
        fault_profile=fault_profile,
        checkpoint_interval=checkpoint_interval,
        warm_start=warm_start,
        mapping=mapping,
        cmt_budget_bytes=cmt_budget_bytes,
        reliability=reliability,
    )


def run_crash_sweep(
    spec: ScenarioSpec,
    points: int = 100,
    stride_events: int = 512,
    sample_reads: int = 8,
    progress: Optional[Callable[[CrashPointCheck], None]] = None,
    nested_every: int = 0,
) -> CrashSweepResult:
    """Verify crash-consistent recovery at up to ``points`` instants.

    Drives one live host through ``spec`` and, every ``stride_events``
    dispatched simulator events past warm-up, runs
    :func:`verify_crash_point` against it.  The sweep stops early if the
    measurement window ends or the simulation stalls (terminal
    read-only device with a drained queue).

    ``nested_every=k`` (k > 0) upgrades every k-th point to the nested
    crash-during-recovery verification: recover, checkpoint, tear the
    half-written checkpoint, recover again, re-verify.

    Every check failure is recorded, not raised -- the result object
    reports pass/fail per point (``result.ok()`` for the verdict).
    """
    host, _collector, workload, measure_start = build_preconditioned_host(spec)
    config = host.config
    end = measure_start + spec.measure_s * SECOND

    result = CrashSweepResult(scenario=spec.key(), stride_events=stride_events)
    rng = np.random.default_rng(np.random.SeedSequence((spec.seed, 0xC4A5)))
    for index in range(points):
        if host.sim.now >= end:
            break
        before = host.sim.dispatched
        try:
            host.sim.run_until(end, max_events=stride_events)
        except DeviceReadOnlyError:
            pass
        if host.sim.dispatched == before and host.sim.now >= end:
            break
        nested = nested_every > 0 and index % nested_every == 0
        check = CrashPointCheck(
            index=index,
            t_ns=host.sim.now,
            events_dispatched=host.sim.dispatched,
            nested=nested,
        )
        try:
            report = verify_crash_point(
                host.ftl, config, sample_reads=sample_reads, rng=rng, nested=nested
            )
            check.ok = True
            check.torn_pages = report.torn_pages
            check.pages_scanned = report.pages_scanned
            check.mapped_lpns = report.mapped_lpns
            check.scan_ns = report.duration_ns
            check.read_only = report.read_only
        except (CrashPointMismatch, FtlError) as exc:
            check.error = f"{type(exc).__name__}: {exc}"
        result.points.append(check)
        if progress is not None:
            progress(check)
        if host.sim.dispatched == before:
            break  # queue drained; no further state changes to crash into
    workload.stop()
    return result


def _advance(host: HostSystem, target_ns: int) -> None:
    """Advance to ``target_ns`` sim time, surviving device death."""
    while host.sim.now < target_ns:
        try:
            host.sim.run_until(target_ns)
        except DeviceReadOnlyError:
            continue


# ----------------------------------------------------------------------
# Live SPO runs with post-recovery continuation
# ----------------------------------------------------------------------
@dataclass
class SpoRunResult:
    """One scenario run that survived real power cuts.

    Attributes:
        metrics: phase metrics merged into one run-level view
            (``spo_count`` and ``recovery_time_ns`` populated).
        phases: the per-phase windows as measured.
        cuts: the emulated power cuts, in order.
        reports: the recovery-scan report of each power-back-on.
    """

    metrics: RunMetrics
    phases: List[RunMetrics] = field(default_factory=list)
    cuts: List[PowerCut] = field(default_factory=list)
    reports: List[RecoveryReport] = field(default_factory=list)


def run_scenario_with_spo(spec: ScenarioSpec, plan: SpoPlan) -> SpoRunResult:
    """Run ``spec`` with real power cuts per ``plan``.

    Each cut kills the host mid-run (queued events die, frontier pages
    tear, DRAM state is lost); a fresh device is recovered from the
    durable media image (new fault injector over the same profile) and
    a new host resumes the timeline at ``cut + recovery scan`` (plus the
    post-recovery checkpoint, when the config enables checkpointing).
    The measurement window is the same as a cut-free run's; metric
    windows spanning a cut are split into phases and merged.

    Recovery is re-entrant: a planned cut landing *inside* a recovery
    window (scan or post-recovery checkpoint still in progress when the
    rail dies again) is honoured, not skipped -- the half-written
    checkpoint is torn and the device recovers again from the
    doubly-crashed image.
    """
    host, collector, workload, measure_start = build_preconditioned_host(spec)
    config = host.config
    working_set = workload.region.pages
    measure_end = measure_start + spec.measure_s * SECOND
    cuts_planned = [
        t for t in plan.cut_times(measure_start, measure_end) if 0 < t < measure_end
    ]
    emulator = PowerLossEmulator()
    reports: List[RecoveryReport] = []
    phases: List[RunMetrics] = []

    # A post-recovery checkpoint only makes sense when the scenario
    # checkpoints at all (otherwise the next power-on full-scans anyway).
    post_checkpoint = config.checkpoint_interval_pages is not None

    # Process the timeline's stop points in order.  "begin" sorts before
    # a cut at the same instant so the window opens first.
    stops: List[Tuple[int, int, str]] = sorted(
        [(measure_start, 0, "begin")]
        + [(t, 1, "cut") for t in cuts_planned]
        + [(measure_end, 2, "end")]
    )
    measuring = False
    phase = 0
    index = 0
    while index < len(stops):
        t, _, kind = stops[index]
        index += 1
        if t > host.sim.now:
            _advance(host, t)
        if kind == "begin":
            collector.begin()
            measuring = True
            continue
        if kind == "end":
            if measuring:
                collector.end()
                phases.append(collector.results())
            break
        # kind == "cut"
        if measuring:
            collector.end()
            phases.append(collector.results())
        cut = emulator.cut_power(host)
        phase += 1
        ftl, report = config.recover_from(
            cut.durable,
            victim_selector=None,  # the new policy installs its own below
            seed=spec.seed + 7919 * phase + 1,
            post_checkpoint=post_checkpoint,
        )
        reports.append(report)
        resume_ns = cut.t_ns + report.duration_ns + report.post_checkpoint_ns
        # Consume planned cuts that land before the device is host-ready
        # again: the rail dies *during* the recovery.  The scan itself is
        # read-only, so the nested cut's durable image differs from the
        # previous one only when it catches the post-recovery checkpoint
        # mid-program -- in which case that record tears.
        while index < len(stops) and stops[index][2] == "cut" and stops[index][0] < resume_ns:
            t_nested = stops[index][0]
            index += 1
            # Any cut before host-ready catches the post-recovery
            # checkpoint not-yet-durable (mid-program, or not started):
            # tear it, so the next power-on cannot lean on it.
            cut = emulator.cut_recovery(
                ftl.nand,
                t_ns=t_nested,
                tear_checkpoint=report.post_checkpoint_ns > 0,
            )
            phase += 1
            ftl, report = config.recover_from(
                cut.durable,
                victim_selector=None,
                seed=spec.seed + 7919 * phase + 1,
                post_checkpoint=post_checkpoint,
            )
            reports.append(report)
            resume_ns = t_nested + report.duration_ns + report.post_checkpoint_ns
        policy = spec.make_policy()
        # recover_from built the FTL before the policy existed;
        # HostSystem installs this policy's selector on it, so victim
        # ranking (and its SIP statistics) match a fresh device.
        host = HostSystem(
            config,
            policy,
            seed=spec.seed + 104_729 * phase,
            flusher_period_ns=spec.flusher_period_s * SECOND,
            tau_expire_ns=spec.tau_expire_s * SECOND,
            ftl=ftl,
            start_time_ns=resume_ns,
        )
        if host.ftl.audit.enabled:
            host.ftl.audit.record_recovery(
                RecoveryRecord(
                    t_ns=cut.t_ns,
                    duration_ns=report.duration_ns,
                    pages_scanned=report.pages_scanned,
                    torn_pages=report.torn_pages,
                    stale_pages=report.stale_pages,
                    mapped_lpns=report.mapped_lpns,
                    free_blocks=report.free_blocks,
                    closed_blocks=report.closed_blocks,
                    retired_blocks=report.retired_blocks,
                    read_only=report.read_only,
                    full_scan=report.full_scan,
                    checkpoint_generation=report.checkpoint_generation,
                    tombstones_replayed=report.tombstones_replayed,
                    torn_meta_records=report.torn_meta_records,
                    checkpoint_fallbacks=report.checkpoint_fallbacks,
                )
            )
        collector = MetricsCollector(host, workload_name=spec.workload)
        workload = WORKLOADS[spec.workload](
            host, collector, Region(0, working_set), **spec.workload_kwargs
        )
        workload.start()
        if measuring:
            collector.begin()
    workload.stop()

    merged = merge_phase_metrics(
        phases,
        spo_count=len(emulator.cuts),
        recovery_time_ns=sum(r.duration_ns for r in reports),
    )
    return SpoRunResult(
        metrics=merged, phases=phases, cuts=emulator.cuts, reports=reports
    )


def merge_phase_metrics(
    phases: List[RunMetrics], spo_count: int = 0, recovery_time_ns: int = 0
) -> RunMetrics:
    """Fold per-phase windows into one run-level :class:`RunMetrics`.

    Counters sum; WAF is recomputed from the summed page counts; rates
    and means are duration-weighted; capacity fields take the final
    phase's value.  Latency: when every phase carries its HDR wire
    histogram the merged distribution is exact -- the merge is fed the
    full per-phase distributions, so p50..p9999 are recomputed over all
    phases' samples (bit-identical to one histogram fed the concatenated
    stream).  Phases without histograms (pre-HDR wire records) fall back
    to the old conservative bound: max of per-phase p99s, duration-
    weighted mean.  Tail-attribution tables sum cause-wise; the merged
    threshold is the worst phase's.
    """
    if not phases:
        raise ValueError("cannot merge zero phases")
    total = sum(p.duration_ns for p in phases)

    def wavg(get) -> float:
        if total == 0:
            return 0.0
        return sum(get(p) * p.duration_ns for p in phases) / total

    host_pages = sum(p.host_pages_written for p in phases)
    gc_pages = sum(p.gc_pages_migrated for p in phases)
    accuracy = next(
        (
            p.prediction_accuracy_pct
            for p in reversed(phases)
            if p.prediction_accuracy_pct is not None
        ),
        None,
    )
    timeline: List[Tuple[int, int]] = []
    for p in phases:
        timeline.extend(p.op_timeline)

    merged_hist = merge_wire_histograms([p.latency_hist for p in phases])
    if merged_hist is not None:
        pcts = merged_hist.percentiles(LATENCY_PERCENTILES)
        latency_fields = dict(
            mean_latency_ns=merged_hist.mean(),
            p50_latency_ns=pcts[50.0],
            p95_latency_ns=pcts[95.0],
            p99_latency_ns=pcts[99.0],
            p999_latency_ns=pcts[99.9],
            p9999_latency_ns=pcts[99.99],
            max_latency_ns=merged_hist.max(),
            latency_hist=merged_hist.to_wire(),
        )
    else:
        # Legacy fallback: no full distributions to merge, so keep the
        # conservative worst-phase tail bound (what pre-HDR merges did).
        latency_fields = dict(
            mean_latency_ns=wavg(lambda p: p.mean_latency_ns),
            p50_latency_ns=max(p.p50_latency_ns for p in phases),
            p95_latency_ns=max(p.p95_latency_ns for p in phases),
            p99_latency_ns=max(p.p99_latency_ns for p in phases),
            p999_latency_ns=max(p.p999_latency_ns for p in phases),
            p9999_latency_ns=max(p.p9999_latency_ns for p in phases),
            max_latency_ns=max(p.max_latency_ns for p in phases),
            latency_hist=None,
        )

    tail_causes: dict = {}
    for p in phases:
        for cause, (count, ns) in (p.tail_causes or {}).items():
            old = tail_causes.get(cause, (0, 0))
            tail_causes[cause] = (old[0] + count, old[1] + ns)
    tail_causes = {c: [int(n), int(t)] for c, (n, t) in tail_causes.items()}

    return RunMetrics(
        policy=phases[-1].policy,
        workload=phases[-1].workload,
        duration_ns=total,
        iops=wavg(lambda p: p.iops),
        waf=(host_pages + gc_pages) / host_pages if host_pages else 0.0,
        host_pages_written=host_pages,
        gc_pages_migrated=gc_pages,
        fgc_invocations=sum(p.fgc_invocations for p in phases),
        fgc_time_ns=sum(p.fgc_time_ns for p in phases),
        bgc_blocks=sum(p.bgc_blocks for p in phases),
        erases=sum(p.erases for p in phases),
        prediction_accuracy_pct=accuracy,
        sip_selections=sum(p.sip_selections for p in phases),
        sip_filtered=sum(p.sip_filtered for p in phases),
        buffered_fraction=wavg(lambda p: p.buffered_fraction),
        tail_threshold_pct=max(p.tail_threshold_pct for p in phases),
        tail_threshold_ns=max(p.tail_threshold_ns for p in phases),
        tail_slow_ops=sum(p.tail_slow_ops for p in phases),
        tail_causes=tail_causes,
        injected_faults=sum(p.injected_faults for p in phases),
        read_retries=sum(p.read_retries for p in phases),
        uncorrectable_reads=sum(p.uncorrectable_reads for p in phases),
        program_faults=sum(p.program_faults for p in phases),
        erase_faults=sum(p.erase_faults for p in phases),
        blocks_retired=sum(p.blocks_retired for p in phases),
        effective_op_pages=phases[-1].effective_op_pages,
        op_timeline=timeline,
        device_read_only=any(p.device_read_only for p in phases),
        spo_count=spo_count,
        recovery_time_ns=recovery_time_ns,
        trim_count=sum(p.trim_count for p in phases),
        **latency_fields,
    )
