"""Table 1: breakdown of write types (buffered vs direct) per benchmark.

The write mix is a property of the workload models, measured at the I/O
dispatcher exactly as the paper measured it at the kernel boundary.  The
harness runs each benchmark briefly (the mix converges fast) and prints
measured-vs-paper percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import ScenarioSpec, run_scenario
from repro.workloads import BENCHMARKS

DEFAULT_WORKLOADS = ("YCSB", "Postmark", "Filebench", "Bonnie++", "Tiobench", "TPC-C")

#: The paper's Table 1 buffered-write percentages.
PAPER_BUFFERED_PCT = {
    "YCSB": 88.2,
    "Postmark": 81.7,
    "Filebench": 85.8,
    "Bonnie++": 72.4,
    "Tiobench": 46.3,
    "TPC-C": 0.1,
}


@dataclass
class Table1Result:
    """Measured buffered fraction per benchmark."""

    buffered_pct: Dict[str, float] = field(default_factory=dict)

    def direct_pct(self, workload: str) -> float:
        return 100.0 - self.buffered_pct[workload]

    def max_deviation_pct(self) -> float:
        """Largest |measured - paper| buffered percentage."""
        return max(
            abs(self.buffered_pct[w] - PAPER_BUFFERED_PCT[w])
            for w in self.buffered_pct
        )

    def format(self) -> str:
        rows: List[List[object]] = []
        for workload, measured in self.buffered_pct.items():
            rows.append(
                [
                    workload,
                    measured,
                    100.0 - measured,
                    PAPER_BUFFERED_PCT.get(workload, float("nan")),
                    100.0 - PAPER_BUFFERED_PCT.get(workload, float("nan")),
                ]
            )
        return format_table(
            ["Benchmark", "Buffered %", "Direct %", "Paper buf %", "Paper dir %"],
            rows,
            title="Table 1: breakdown of write types",
            float_format="{:.1f}",
        )


def run_table1(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Table1Result:
    """Measure the write mix of each benchmark model.

    The GC policy is irrelevant to the mix; a single L-BGC run per
    benchmark suffices.
    """
    base_spec = base_spec or ScenarioSpec()
    result = Table1Result()
    for workload in workloads:
        if workload not in BENCHMARKS:
            raise KeyError(f"unknown workload {workload!r}")
        spec = base_spec.with_policy("L-BGC")
        spec.workload = workload
        metrics = run_scenario(spec)
        result.buffered_pct[workload] = 100.0 * metrics.buffered_fraction
    return result
