"""The scenario runner: one function per measured (workload, policy) pair.

Every experiment in the paper reduces to running one benchmark against
one GC policy on an identically configured device and measuring IOPS and
WAF over a steady-state window.  :func:`run_scenario` encapsulates that
protocol:

1. build the device + host stack with the policy installed,
2. pre-fill the working set (half the user capacity, as in Sec 4.1),
3. start the workload and let it run a warm-up period,
4. measure for the configured duration,
5. freeze a :class:`~repro.metrics.collector.RunMetrics`.

All runs of one comparison share the same :class:`ScenarioSpec` except
for the policy, and the same seed -- so the workloads replay identically
and metric differences are attributable to the policy alone.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from queue import Empty
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro import perf

from repro.core.policies import (
    AdaptiveGcPolicy,
    GcPolicy,
    JitGcPolicy,
    aggressive_bgc_policy,
    lazy_bgc_policy,
)
from repro.experiments.persistence import SweepCheckpoint
from repro.ftl.ftl import DeviceReadOnlyError
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.obs import Observability, ObservabilityConfig
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import WORKLOADS, Region


class ScenarioTimeoutError(RuntimeError):
    """A scenario exceeded its wall-clock budget and was aborted."""

#: Factories for the four policies of Fig. 7 (fresh instance per run).
POLICY_FACTORIES: Dict[str, Callable[[], GcPolicy]] = {
    "L-BGC": lazy_bgc_policy,
    "A-BGC": aggressive_bgc_policy,
    "ADP-GC": AdaptiveGcPolicy,
    "JIT-GC": JitGcPolicy,
}


@dataclass
class ScenarioSpec:
    """One measured run's full parameterisation.

    Attributes:
        workload: a key of :data:`repro.workloads.WORKLOADS` (the paper
            suite plus the synthetic generator).
        policy: a key of :data:`POLICY_FACTORIES`, or use
            ``policy_factory`` for custom policies (Fig. 2's sweep).
        blocks / pages_per_block: device scale.
        op_ratio: over-provisioning ratio (SM843T: 7 %).
        working_set_fraction: share of user capacity the benchmark
            touches (paper: one half).
        warmup_s / measure_s: simulated warm-up and measurement windows.
        flusher_period_s / tau_expire_s: the write-back constants ``p``
            and ``tau_expire``.  The paper uses 5 s / 30 s on a 240 GB
            device; the scaled default (1 s / 6 s) keeps ``Nwb = 6`` and
            keeps per-horizon traffic in the same proportion to the OP
            capacity as on the real testbed.
        seed: root random seed (shared across compared policies).
        workload_kwargs: extra workload-constructor arguments.
        fault_profile: media-fault injection -- a preset name
            (``"light"``, ``"heavy"``, ``"wearout"``) or a
            :class:`~repro.faults.injector.FaultProfile`; None disables.
        checkpoint_interval: when set, the FTL writes an incremental
            mapping checkpoint every that many host pages (durable
            metadata; bounds post-power-cut recovery to a log-tail scan).
        timeout_s: optional wall-clock budget for this scenario; on
            expiry :class:`ScenarioTimeoutError` is raised (and isolated
            by :func:`run_sweep`).
        obs: optional :class:`~repro.obs.ObservabilityConfig` -- tracing,
            metrics sampling and profiling for this run.  Not part of
            :meth:`key`: instrumentation never changes simulated
            behaviour, so observed and unobserved runs are the same
            scenario.
        warm_start: how the device reaches steady state before the
            measurement window.  ``"sim"`` (default) prefills and runs
            the simulated warm-up -- the validation oracle.
            ``"analytic"`` synthesizes the mean-field steady state
            directly (:mod:`repro.analytic`) and runs only a short
            settle window, trading a bounded model error (see
            PERFORMANCE.md) for most of the scenario's wall time.
    """

    workload: str = "YCSB"
    policy: str = "JIT-GC"
    policy_factory: Optional[Callable[[], GcPolicy]] = None
    blocks: int = 1024
    pages_per_block: int = 64
    op_ratio: float = 0.07
    working_set_fraction: float = 0.5
    warmup_s: int = 40
    measure_s: int = 180
    flusher_period_s: int = 1
    tau_expire_s: int = 6
    seed: int = 42
    workload_kwargs: dict = field(default_factory=dict)
    fault_profile: Optional[object] = None
    checkpoint_interval: Optional[int] = None
    timeout_s: Optional[float] = None
    obs: Optional[ObservabilityConfig] = None
    warm_start: str = "sim"
    #: FTL mapping architecture: ``"dram"`` (all-DRAM page map) or
    #: ``"dftl"`` (flash-resident translation pages behind a CMT).
    mapping: str = "dram"
    #: CMT DRAM budget in bytes (dftl only; None = 1/64 of the full map).
    cmt_budget_bytes: Optional[int] = None
    #: Checkpoint scheduling: ``"interval"`` (fixed host-page interval)
    #: or ``"adaptive"`` (accrual-based with GC-quiescence early fire).
    checkpoint_policy: str = "interval"
    #: Reliability profile arming the live data-integrity subsystem
    #: (retention clock, ECC escalation ladder, refresh scrubber): a
    #: preset name (``"mlc-20nm"``, ``"mlc-20nm-accel"``), a
    #: :class:`~repro.nand.reliability.ReliabilityProfile`, or
    #: None/``"off"`` for the historical bit-identical device.
    reliability: Optional[object] = None

    def with_policy(self, policy: str, factory: Optional[Callable[[], GcPolicy]] = None):
        """Same scenario, different policy (identical workload replay)."""
        return replace(self, policy=policy, policy_factory=factory)

    def key(self) -> str:
        """Stable identity used for checkpointing and sweep reports."""
        key = f"{self.workload}/{self.policy}/seed{self.seed}/faults-{self.fault_tag()}"
        if self.checkpoint_interval is not None:
            # Suffix only when set, so pre-existing sweep checkpoints
            # keep resolving to the same scenarios.
            key += f"/ckpt{self.checkpoint_interval}"
        if self.warm_start != "sim":
            # Same suffix-only-when-set rule; a warm-started run is a
            # different measurement than its simulated-warmup oracle.
            key += f"/warm-{self.warm_start}"
        if self.mapping != "dram":
            # Suffix-only-when-set again: dram-mode keys are unchanged.
            key += f"/map-{self.mapping}"
        if self.checkpoint_policy != "interval":
            key += f"/ckpt-{self.checkpoint_policy}"
        if self.reliability is not None:
            key += f"/rel-{self.reliability_tag()}"
        return key

    def make_policy(self) -> GcPolicy:
        if self.policy_factory is not None:
            return self.policy_factory()
        if self.policy not in POLICY_FACTORIES:
            raise KeyError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICY_FACTORIES)}"
            )
        return POLICY_FACTORIES[self.policy]()

    def make_config(self) -> SsdConfig:
        return SsdConfig.small(
            blocks=self.blocks,
            pages_per_block=self.pages_per_block,
            op_ratio=self.op_ratio,
            fault_profile=self.fault_profile,
            checkpoint_interval_pages=self.checkpoint_interval,
            mapping_mode=self.mapping,
            cmt_budget_bytes=self.cmt_budget_bytes,
            checkpoint_policy=self.checkpoint_policy,
            reliability=self.reliability,
        )

    def fault_tag(self) -> str:
        """Human-readable fault-profile label (trace headers, keys)."""
        faults = self.fault_profile
        return faults if isinstance(faults, str) else ("custom" if faults else "none")

    def reliability_tag(self) -> str:
        """Human-readable reliability-profile label (trace headers, keys)."""
        rel = self.reliability
        if rel is None:
            return "off"
        if isinstance(rel, str):
            return rel
        return getattr(rel, "name", "custom")

    def trace_header(self) -> dict:
        """Attribution fields stamped into every trace/metrics file."""
        return {
            "scenario": self.key(),
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "fault_profile": self.fault_tag(),
            "blocks": self.blocks,
            "pages_per_block": self.pages_per_block,
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
            "warm_start": self.warm_start,
            "mapping": self.mapping,
            "reliability": self.reliability_tag(),
        }


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Abort the enclosed block after ``seconds`` of real time.

    Uses ``SIGALRM``, so it is active only on the main thread of a
    platform that has it; elsewhere the limit is a silent no-op (the
    sweep still has exception isolation, just no timeout).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise ScenarioTimeoutError(f"scenario exceeded {seconds:g}s wall clock")

    previous = signal.signal(signal.SIGALRM, _expired)
    # Repeating interval, not one-shot: a delivery that lands in an
    # unraisable context (e.g. a __del__ frame during GC) is suppressed
    # by the interpreter, and a one-shot timer would then never abort
    # the scenario.  With an interval the next tick retries.
    signal.setitimer(signal.ITIMER_REAL, float(seconds), float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Simulated seconds an analytically warm-started run advances before
#: its measurement window opens.  The synthesized device is already at
#: steady state, but the *host* is not: the page cache is empty and the
#: flusher/predictor timers have no history.  A few write-back periods
#: of settling lets those reach their working rhythm; the data-plane
#: aging that dominates ``warmup_s`` is what the synthesis replaced.
#: Four seconds also keeps the window opening phase-aligned with the
#: default simulated warm-up for duty-cycled workloads (YCSB's ON/OFF
#: period is 4 s and the default ``warmup_s=40`` is a multiple of it),
#: so IOPS comparisons are not skewed by how many ON phases land inside
#: a short measurement window.
_ANALYTIC_SETTLE_S = 4

#: Valid ``ScenarioSpec.warm_start`` modes.
WARM_START_MODES = ("sim", "analytic")


def build_preconditioned_host(
    spec: ScenarioSpec,
    deadline: Optional[float] = None,
) -> Tuple[HostSystem, MetricsCollector, object, int]:
    """Build ``spec``'s host stack and bring it to measurement-ready state.

    The shared preconditioning step of every experiment entry point
    (:func:`run_scenario`, the crash sweep, the live-SPO runner):

    * ``warm_start="sim"`` -- prefill the working set, churn to the
      logically-full state, then run the simulated warm-up window;
    * ``warm_start="analytic"`` -- synthesize the mean-field steady
      state directly into the data plane
      (:func:`repro.analytic.warmstart.synthesize_steady_state`), seed
      the policy's demand history from the prediction, and run only a
      short settle window (:data:`_ANALYTIC_SETTLE_S`).

    Returns ``(host, collector, workload, measure_start_ns)``: the
    workload is started, simulated time stands at ``measure_start_ns``,
    and the caller opens the measurement window with
    ``collector.begin()``.

    A device that goes read-only during preconditioning is tolerated
    (fault profiles can exhaust the spare capacity); the run proceeds
    and measures the degraded outcome.
    """
    from repro.analytic.warmstart import synthesize_steady_state, workload_mix_hints

    if spec.warm_start not in WARM_START_MODES:
        raise ValueError(
            f"unknown warm_start {spec.warm_start!r}; known: {WARM_START_MODES}"
        )
    if spec.workload not in WORKLOADS:
        raise KeyError(
            f"unknown workload {spec.workload!r}; known: {sorted(WORKLOADS)}"
        )
    config = spec.make_config()
    policy = spec.make_policy()
    obs = (
        Observability.from_config(spec.obs, header=spec.trace_header())
        if spec.obs is not None
        else None
    )
    host_kwargs = dict(
        seed=spec.seed,
        flusher_period_ns=spec.flusher_period_s * SECOND,
        tau_expire_ns=spec.tau_expire_s * SECOND,
        obs=obs,
    )

    if spec.warm_start == "analytic":
        working_set = int(config.space_model().user_pages * spec.working_set_fraction)
        ftl, prediction = synthesize_steady_state(
            config,
            seed=spec.seed,
            working_set_pages=working_set,
            policy=policy,
            registry=obs.registry if obs is not None else None,
            **workload_mix_hints(spec.workload, spec.workload_kwargs),
        )
        host = HostSystem(config, policy, ftl=ftl, **host_kwargs)
        policy.seed_steady_state(prediction)
        precondition_ns = min(spec.warmup_s, _ANALYTIC_SETTLE_S) * SECOND
    else:
        host = HostSystem(config, policy, **host_kwargs)
        working_set = int(host.user_pages * spec.working_set_fraction)
        try:
            host.prefill(working_set)
        except DeviceReadOnlyError:
            # Spare capacity exhausted during preconditioning: still a
            # measurable (fully degraded) outcome, not a harness error.
            pass
        precondition_ns = spec.warmup_s * SECOND

    collector = MetricsCollector(host, workload_name=spec.workload)
    workload = WORKLOADS[spec.workload](
        host, collector, Region(0, working_set), **spec.workload_kwargs
    )
    workload.start()
    _advance_tolerating_death(host, precondition_ns, deadline, spec.timeout_s)
    return host, collector, workload, precondition_ns


def run_scenario(spec: ScenarioSpec) -> RunMetrics:
    """Execute one scenario per the Sec 4.1 protocol; returns metrics.

    A device that reaches its read-only terminal state mid-run (fault
    profiles can exhaust the spare capacity) is not an error: the window
    is frozen at the failure point and the returned metrics carry
    ``device_read_only=True``.

    ``spec.timeout_s`` is enforced two ways: a monotonic deadline checked
    at event-loop batch boundaries (works on any thread, including pool
    workers), plus the ``SIGALRM`` backstop where available (covers
    non-event phases like prefill on a main thread).
    """
    return _run_scenario_host(spec)[0]


def _run_scenario_host(spec: ScenarioSpec) -> Tuple[RunMetrics, HostSystem]:
    """:func:`run_scenario`, also returning the live host.

    Internal: the hot-path equivalence tests use the host to compare
    decision-audit streams, not just the frozen metrics.
    """
    deadline: Optional[float] = None
    if spec.timeout_s is not None and spec.timeout_s > 0:
        deadline = time.monotonic() + spec.timeout_s
    with _wall_clock_limit(spec.timeout_s):
        host, metrics, workload, _measure_start = build_preconditioned_host(
            spec, deadline
        )
        metrics.begin()
        _advance_tolerating_death(
            host, spec.measure_s * SECOND, deadline, spec.timeout_s
        )
        metrics.end()
        workload.stop()
        results = metrics.results()
        host.obs.finish()
        report = host.obs.profile_report()
        if report is not None:
            print(report)
        return results, host


#: Events dispatched between wall-clock deadline probes.  Large enough
#: that the ``time.monotonic`` call is noise, small enough that a budget
#: overrun is noticed within milliseconds.
_DEADLINE_BATCH_EVENTS = 1024


def _advance_tolerating_death(
    host: HostSystem,
    duration_ns: int,
    deadline: Optional[float] = None,
    budget_s: Optional[float] = None,
) -> bool:
    """Advance simulated time, tolerating the device going read-only.

    Each write submitted against a read-only device raises out of its
    event; the raising event has already been consumed, so draining to
    the target time terminates.  Closed-loop workloads stall naturally
    once their in-flight op dies, reads keep completing, and the clock
    still reaches the window edge so the metrics stay well-formed.
    Returns True when at least one event died.

    With ``deadline`` set (``time.monotonic()`` value), events run in
    batches of :data:`_DEADLINE_BATCH_EVENTS` and the deadline is checked
    between batches -- the wall-clock budget mechanism that works on pool
    worker threads where ``SIGALRM`` cannot (signals only reach a
    process's main thread).

    Raises:
        ScenarioTimeoutError: the deadline passed.
    """
    target = host.sim.now + duration_ns
    died = False
    monotonic = time.monotonic
    while host.sim.now < target:
        try:
            if deadline is None:
                host.sim.run_until(target)
            else:
                host.sim.run_until(target, max_events=_DEADLINE_BATCH_EVENTS)
                if monotonic() > deadline:
                    raise ScenarioTimeoutError(
                        f"scenario exceeded {budget_s:g}s wall clock"
                        if budget_s is not None
                        else "scenario exceeded its wall-clock budget"
                    )
        except DeviceReadOnlyError:
            died = True
    return died


def resolve_jobs(jobs: Optional[int], task_count: int) -> int:
    """Concrete worker count for a requested ``--jobs`` value.

    ``None`` or ``0`` means *adaptive*: one worker per CPU
    (``os.cpu_count()``), never more than there are tasks.  Explicit
    requests are honoured, capped at the task count (extra idle workers
    only cost fork time).  Always returns at least 1.
    """
    if task_count <= 0:
        return 1
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, task_count))


#: Per-worker slot for the streamed-result queue proxy (set by the pool
#: initializer; None in the parent and in serial runs).
_WORKER_QUEUE = None


def _pool_init(indexed: bool, queue=None) -> None:
    """Worker-process initializer: perf flag + result-stream queue."""
    global _WORKER_QUEUE
    perf.set_hotpath_indexing(indexed)
    _WORKER_QUEUE = queue


def _make_pool(jobs: int, queue=None) -> ProcessPoolExecutor:
    """Worker pool whose processes inherit the current perf-flag choice.

    Worker processes re-read module globals at import, so without the
    initializer a sweep launched inside :func:`repro.perf.scan_reference`
    would silently run its workers on the indexed paths.  ``queue`` (a
    ``multiprocessing.Manager`` queue proxy -- raw ``mp.Queue`` objects
    cannot pass through executor initargs) enables result streaming.
    """
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_pool_init,
        initargs=(perf.hotpath_indexing_enabled(), queue),
    )


def _stream_scenario(key: str, spec: ScenarioSpec) -> str:
    """Pool worker: run one scenario, stream the outcome, return the key.

    The metrics travel through the shared queue as a plain
    :meth:`~repro.metrics.collector.RunMetrics.to_wire` dict; the future
    carries only the key, so the parent never accumulates per-scenario
    pickles while waiting.
    """
    try:
        metrics = run_scenario(spec)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        _WORKER_QUEUE.put((key, None, f"{type(exc).__name__}: {exc}"))
    else:
        _WORKER_QUEUE.put((key, metrics.to_wire(), None))
    return key


def _run_streamed(
    pending: Dict[str, ScenarioSpec],
    jobs: int,
    record: Callable[[str, Optional[RunMetrics], Optional[str]], None],
) -> None:
    """Run scenarios on ``jobs`` workers with streamed aggregation.

    Submission is chunked to a window of two tasks per worker (enough to
    keep every worker busy without materialising thousands of queued
    pickled specs), and each finished scenario's metrics arrive through
    a managed queue the moment the worker finishes -- ``record`` runs in
    the parent, in completion order, exactly like the serial path's
    per-scenario bookkeeping.

    A worker process dying hard (``BrokenProcessPool``) surfaces through
    the futures: any affected scenario without a streamed result is
    recorded as failed, so checkpointed sweeps can retry it.
    """
    with multiprocessing.Manager() as manager:
        queue = manager.Queue()
        window = 2 * jobs
        items = iter(pending.items())
        outstanding: Dict[Future, str] = {}
        delivered = set()

        def _drain() -> None:
            while True:
                try:
                    key, wire, error = queue.get_nowait()
                except Empty:
                    return
                delivered.add(key)
                record(
                    key,
                    RunMetrics.from_wire(wire) if wire is not None else None,
                    error,
                )

        with _make_pool(jobs, queue) as pool:
            exhausted = False
            while True:
                while not exhausted and len(outstanding) < window:
                    try:
                        key, spec = next(items)
                    except StopIteration:
                        exhausted = True
                        break
                    try:
                        outstanding[pool.submit(_stream_scenario, key, spec)] = key
                    except Exception as exc:  # noqa: BLE001 - broken pool
                        # The pool is unusable; fail this and every
                        # unsubmitted scenario (all retryable on resume).
                        record(key, None, f"{type(exc).__name__}: {exc}")
                        for key, _spec in items:
                            record(key, None, f"{type(exc).__name__}: {exc}")
                        exhausted = True
                if not outstanding:
                    break
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                crashed: Dict[str, str] = {}
                for future in done:
                    key = outstanding.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        # Hard worker death (e.g. BrokenProcessPool); the
                        # queue may or may not hold its result already.
                        crashed[key] = f"{type(exc).__name__}: {exc}"
                # Workers enqueue before returning, so every cleanly
                # finished future's message is already available here.
                _drain()
                for key, error in crashed.items():
                    if key not in delivered:
                        delivered.add(key)
                        record(key, None, error)


def run_policy_comparison(
    spec: ScenarioSpec,
    policies: Optional[Dict[str, Callable[[], GcPolicy]]] = None,
    jobs: Optional[int] = 1,
) -> Dict[str, RunMetrics]:
    """Run one workload under several policies (identical everything else).

    With ``jobs > 1`` (or the adaptive ``jobs=0``/``None``, resolved via
    :func:`resolve_jobs`) the per-policy runs execute in a process pool
    with streamed result aggregation -- each scenario is already a
    self-contained deterministic replay (own simulator, own seeded RNGs),
    so results are bit-identical to the serial path and come back in the
    given policy order.

    Returns ``{policy_name: RunMetrics}`` in the given order.

    Raises:
        RuntimeError: a parallel run failed (the serial path instead
            propagates the scenario's original exception).
    """
    policies = policies or POLICY_FACTORIES
    run_specs: Dict[str, ScenarioSpec] = {}
    for name, factory in policies.items():
        run_spec = spec.with_policy(name, factory)
        if run_spec.obs is not None and run_spec.obs.trace_path:
            # Per-policy trace files: compared runs never overwrite
            # each other's output.
            run_spec = replace(run_spec, obs=run_spec.obs.with_suffix(name))
        run_specs[name] = run_spec
    jobs = resolve_jobs(jobs, len(run_specs))
    if jobs <= 1:
        return {name: run_scenario(s) for name, s in run_specs.items()}
    results: Dict[str, RunMetrics] = {}
    failures: Dict[str, str] = {}

    def _record(name: str, metrics: Optional[RunMetrics], error: Optional[str]) -> None:
        if error is not None:
            failures[name] = error
        else:
            results[name] = metrics

    _run_streamed(run_specs, jobs, _record)
    if failures:
        raise RuntimeError(f"policy comparison failed: {failures}")
    return {name: results[name] for name in run_specs}


@dataclass
class SweepOutcome:
    """What a crash-tolerant sweep produced.

    Attributes:
        results: scenario key -> metrics for every scenario that has ever
            completed (including ones restored from the checkpoint).
        failures: scenario key -> ``"ExcType: message"`` for scenarios
            that raised on *this* invocation (or remain failed from a
            previous one and were not retried successfully).
        skipped: keys that were already complete in the checkpoint and
            were not re-run.
    """

    results: Dict[str, RunMetrics] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True when every scenario in the sweep has a result."""
        return not self.failures


def run_sweep(
    specs: Union[Iterable[ScenarioSpec], Dict[str, ScenarioSpec]],
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
    resume: bool = True,
    timeout_s: Optional[float] = None,
    on_result: Optional[Callable[[str, RunMetrics], None]] = None,
    jobs: Optional[int] = 1,
) -> SweepOutcome:
    """Run many scenarios with per-scenario fault isolation.

    One scenario raising -- a bug, an injected-fault cascade, a
    :class:`ScenarioTimeoutError` -- is recorded and the sweep moves on;
    it never takes down the remaining scenarios.  With ``checkpoint``
    set, every completed scenario is flushed to disk immediately, and a
    re-run with ``resume=True`` skips everything already measured, so a
    killed sweep loses at most the scenario it was inside.

    With more than one worker (``jobs > 1``, or the adaptive
    ``jobs=0``/``None`` resolved by :func:`resolve_jobs`), scenarios run
    in a ``ProcessPoolExecutor`` with *streamed aggregation*: submission
    is chunked, and workers push each scenario's metrics through a shared
    queue as flat wire dicts the moment it completes, instead of
    returning whole pickled :class:`RunMetrics` through their futures.
    Each scenario is a self-contained deterministic replay (its own
    simulator and seeded RNGs), so per-scenario results are bit-identical
    to a serial run; only completion order varies, and ``results`` is
    re-ordered to the input order before returning.  The checkpoint is
    written exclusively by the parent process (one atomic write per
    completion, exactly as in a serial run), so serial and parallel runs
    can freely resume each other's checkpoints.  Per-scenario wall-clock
    budgets apply in workers too: the runner checks a monotonic deadline
    at event-loop batch boundaries (``SIGALRM`` only works on a process's
    main thread, so the signal timer is merely a serial-path backstop).

    Args:
        specs: the scenarios, either keyed explicitly (dict) or keyed by
            :meth:`ScenarioSpec.key`.  Duplicate keys are an error --
            they would silently overwrite each other's results.
        checkpoint: path or :class:`SweepCheckpoint` for durability;
            None keeps everything in memory only.
        resume: skip scenarios the checkpoint already holds.
        timeout_s: wall-clock budget applied to every scenario that does
            not set its own ``timeout_s``.
        on_result: optional callback invoked after each fresh completion
            (progress reporting); called from the parent process.
        jobs: worker processes (1 = run in-process, serially; 0/None =
            one per CPU, capped at the pending-scenario count).
    """
    if isinstance(specs, dict):
        keyed = dict(specs)
    else:
        keyed = {}
        for spec in specs:
            key = spec.key()
            if key in keyed:
                raise ValueError(f"duplicate scenario key {key!r}; key specs explicitly")
            keyed[key] = spec

    store: Optional[SweepCheckpoint] = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint)
        )
        if resume:
            store.load()

    outcome = SweepOutcome()
    pending: Dict[str, ScenarioSpec] = {}
    for key, spec in keyed.items():
        if store is not None and resume and store.is_completed(key):
            outcome.results[key] = store.completed[key]
            outcome.skipped.append(key)
            continue
        if spec.timeout_s is None and timeout_s is not None:
            spec = replace(spec, timeout_s=timeout_s)
        if spec.obs is not None and spec.obs.trace_path:
            # Per-scenario trace files, same suffix rule serial or not.
            spec = replace(spec, obs=spec.obs.with_suffix(key.replace("/", "_")))
        pending[key] = spec

    def _record(key: str, metrics: Optional[RunMetrics], error: Optional[str]) -> None:
        if error is not None:
            outcome.failures[key] = error
            if store is not None:
                store.record_failure(key, error)
            return
        outcome.results[key] = metrics
        if store is not None:
            store.record_success(key, metrics)
        if on_result is not None:
            on_result(key, metrics)

    jobs = resolve_jobs(jobs, len(pending))
    if jobs <= 1:
        for key, spec in pending.items():
            try:
                metrics = run_scenario(spec)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                _record(key, None, f"{type(exc).__name__}: {exc}")
                continue
            _record(key, metrics, None)
    elif pending:
        _run_streamed(pending, jobs, _record)
        # Completion order is nondeterministic; reports should not be.
        outcome.results = {
            key: outcome.results[key] for key in keyed if key in outcome.results
        }
    return outcome
