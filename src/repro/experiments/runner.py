"""The scenario runner: one function per measured (workload, policy) pair.

Every experiment in the paper reduces to running one benchmark against
one GC policy on an identically configured device and measuring IOPS and
WAF over a steady-state window.  :func:`run_scenario` encapsulates that
protocol:

1. build the device + host stack with the policy installed,
2. pre-fill the working set (half the user capacity, as in Sec 4.1),
3. start the workload and let it run a warm-up period,
4. measure for the configured duration,
5. freeze a :class:`~repro.metrics.collector.RunMetrics`.

All runs of one comparison share the same :class:`ScenarioSpec` except
for the policy, and the same seed -- so the workloads replay identically
and metric differences are attributable to the policy alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.core.policies import (
    AdaptiveGcPolicy,
    GcPolicy,
    JitGcPolicy,
    aggressive_bgc_policy,
    lazy_bgc_policy,
)
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import BENCHMARKS, Region

#: Factories for the four policies of Fig. 7 (fresh instance per run).
POLICY_FACTORIES: Dict[str, Callable[[], GcPolicy]] = {
    "L-BGC": lazy_bgc_policy,
    "A-BGC": aggressive_bgc_policy,
    "ADP-GC": AdaptiveGcPolicy,
    "JIT-GC": JitGcPolicy,
}


@dataclass
class ScenarioSpec:
    """One measured run's full parameterisation.

    Attributes:
        workload: a key of :data:`repro.workloads.BENCHMARKS`.
        policy: a key of :data:`POLICY_FACTORIES`, or use
            ``policy_factory`` for custom policies (Fig. 2's sweep).
        blocks / pages_per_block: device scale.
        op_ratio: over-provisioning ratio (SM843T: 7 %).
        working_set_fraction: share of user capacity the benchmark
            touches (paper: one half).
        warmup_s / measure_s: simulated warm-up and measurement windows.
        flusher_period_s / tau_expire_s: the write-back constants ``p``
            and ``tau_expire``.  The paper uses 5 s / 30 s on a 240 GB
            device; the scaled default (1 s / 6 s) keeps ``Nwb = 6`` and
            keeps per-horizon traffic in the same proportion to the OP
            capacity as on the real testbed.
        seed: root random seed (shared across compared policies).
        workload_kwargs: extra workload-constructor arguments.
    """

    workload: str = "YCSB"
    policy: str = "JIT-GC"
    policy_factory: Optional[Callable[[], GcPolicy]] = None
    blocks: int = 1024
    pages_per_block: int = 64
    op_ratio: float = 0.07
    working_set_fraction: float = 0.5
    warmup_s: int = 40
    measure_s: int = 180
    flusher_period_s: int = 1
    tau_expire_s: int = 6
    seed: int = 42
    workload_kwargs: dict = field(default_factory=dict)

    def with_policy(self, policy: str, factory: Optional[Callable[[], GcPolicy]] = None):
        """Same scenario, different policy (identical workload replay)."""
        return replace(self, policy=policy, policy_factory=factory)

    def make_policy(self) -> GcPolicy:
        if self.policy_factory is not None:
            return self.policy_factory()
        if self.policy not in POLICY_FACTORIES:
            raise KeyError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICY_FACTORIES)}"
            )
        return POLICY_FACTORIES[self.policy]()

    def make_config(self) -> SsdConfig:
        return SsdConfig.small(
            blocks=self.blocks,
            pages_per_block=self.pages_per_block,
            op_ratio=self.op_ratio,
        )


def run_scenario(spec: ScenarioSpec) -> RunMetrics:
    """Execute one scenario per the Sec 4.1 protocol; returns metrics."""
    if spec.workload not in BENCHMARKS:
        raise KeyError(
            f"unknown workload {spec.workload!r}; known: {sorted(BENCHMARKS)}"
        )
    config = spec.make_config()
    policy = spec.make_policy()
    host = HostSystem(
        config,
        policy,
        seed=spec.seed,
        flusher_period_ns=spec.flusher_period_s * SECOND,
        tau_expire_ns=spec.tau_expire_s * SECOND,
    )

    working_set = int(host.user_pages * spec.working_set_fraction)
    host.prefill(working_set)

    metrics = MetricsCollector(host, workload_name=spec.workload)
    workload_cls = BENCHMARKS[spec.workload]
    workload = workload_cls(
        host, metrics, Region(0, working_set), **spec.workload_kwargs
    )
    workload.start()

    host.run_for(spec.warmup_s * SECOND)
    metrics.begin()
    host.run_for(spec.measure_s * SECOND)
    metrics.end()
    workload.stop()
    return metrics.results()


def run_policy_comparison(
    spec: ScenarioSpec,
    policies: Optional[Dict[str, Callable[[], GcPolicy]]] = None,
) -> Dict[str, RunMetrics]:
    """Run one workload under several policies (identical everything else).

    Returns ``{policy_name: RunMetrics}`` in the given order.
    """
    policies = policies or POLICY_FACTORIES
    results: Dict[str, RunMetrics] = {}
    for name, factory in policies.items():
        results[name] = run_scenario(spec.with_policy(name, factory))
    return results
