"""The scenario runner: one function per measured (workload, policy) pair.

Every experiment in the paper reduces to running one benchmark against
one GC policy on an identically configured device and measuring IOPS and
WAF over a steady-state window.  :func:`run_scenario` encapsulates that
protocol:

1. build the device + host stack with the policy installed,
2. pre-fill the working set (half the user capacity, as in Sec 4.1),
3. start the workload and let it run a warm-up period,
4. measure for the configured duration,
5. freeze a :class:`~repro.metrics.collector.RunMetrics`.

All runs of one comparison share the same :class:`ScenarioSpec` except
for the policy, and the same seed -- so the workloads replay identically
and metric differences are attributable to the policy alone.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro import perf

from repro.core.policies import (
    AdaptiveGcPolicy,
    GcPolicy,
    JitGcPolicy,
    aggressive_bgc_policy,
    lazy_bgc_policy,
)
from repro.experiments.persistence import SweepCheckpoint
from repro.ftl.ftl import DeviceReadOnlyError
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.obs import Observability, ObservabilityConfig
from repro.sim.simtime import SECOND
from repro.ssd.config import SsdConfig
from repro.workloads import BENCHMARKS, Region


class ScenarioTimeoutError(RuntimeError):
    """A scenario exceeded its wall-clock budget and was aborted."""

#: Factories for the four policies of Fig. 7 (fresh instance per run).
POLICY_FACTORIES: Dict[str, Callable[[], GcPolicy]] = {
    "L-BGC": lazy_bgc_policy,
    "A-BGC": aggressive_bgc_policy,
    "ADP-GC": AdaptiveGcPolicy,
    "JIT-GC": JitGcPolicy,
}


@dataclass
class ScenarioSpec:
    """One measured run's full parameterisation.

    Attributes:
        workload: a key of :data:`repro.workloads.BENCHMARKS`.
        policy: a key of :data:`POLICY_FACTORIES`, or use
            ``policy_factory`` for custom policies (Fig. 2's sweep).
        blocks / pages_per_block: device scale.
        op_ratio: over-provisioning ratio (SM843T: 7 %).
        working_set_fraction: share of user capacity the benchmark
            touches (paper: one half).
        warmup_s / measure_s: simulated warm-up and measurement windows.
        flusher_period_s / tau_expire_s: the write-back constants ``p``
            and ``tau_expire``.  The paper uses 5 s / 30 s on a 240 GB
            device; the scaled default (1 s / 6 s) keeps ``Nwb = 6`` and
            keeps per-horizon traffic in the same proportion to the OP
            capacity as on the real testbed.
        seed: root random seed (shared across compared policies).
        workload_kwargs: extra workload-constructor arguments.
        fault_profile: media-fault injection -- a preset name
            (``"light"``, ``"heavy"``, ``"wearout"``) or a
            :class:`~repro.faults.injector.FaultProfile`; None disables.
        timeout_s: optional wall-clock budget for this scenario; on
            expiry :class:`ScenarioTimeoutError` is raised (and isolated
            by :func:`run_sweep`).
        obs: optional :class:`~repro.obs.ObservabilityConfig` -- tracing,
            metrics sampling and profiling for this run.  Not part of
            :meth:`key`: instrumentation never changes simulated
            behaviour, so observed and unobserved runs are the same
            scenario.
    """

    workload: str = "YCSB"
    policy: str = "JIT-GC"
    policy_factory: Optional[Callable[[], GcPolicy]] = None
    blocks: int = 1024
    pages_per_block: int = 64
    op_ratio: float = 0.07
    working_set_fraction: float = 0.5
    warmup_s: int = 40
    measure_s: int = 180
    flusher_period_s: int = 1
    tau_expire_s: int = 6
    seed: int = 42
    workload_kwargs: dict = field(default_factory=dict)
    fault_profile: Optional[object] = None
    timeout_s: Optional[float] = None
    obs: Optional[ObservabilityConfig] = None

    def with_policy(self, policy: str, factory: Optional[Callable[[], GcPolicy]] = None):
        """Same scenario, different policy (identical workload replay)."""
        return replace(self, policy=policy, policy_factory=factory)

    def key(self) -> str:
        """Stable identity used for checkpointing and sweep reports."""
        return f"{self.workload}/{self.policy}/seed{self.seed}/faults-{self.fault_tag()}"

    def make_policy(self) -> GcPolicy:
        if self.policy_factory is not None:
            return self.policy_factory()
        if self.policy not in POLICY_FACTORIES:
            raise KeyError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICY_FACTORIES)}"
            )
        return POLICY_FACTORIES[self.policy]()

    def make_config(self) -> SsdConfig:
        return SsdConfig.small(
            blocks=self.blocks,
            pages_per_block=self.pages_per_block,
            op_ratio=self.op_ratio,
            fault_profile=self.fault_profile,
        )

    def fault_tag(self) -> str:
        """Human-readable fault-profile label (trace headers, keys)."""
        faults = self.fault_profile
        return faults if isinstance(faults, str) else ("custom" if faults else "none")

    def trace_header(self) -> dict:
        """Attribution fields stamped into every trace/metrics file."""
        return {
            "scenario": self.key(),
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "fault_profile": self.fault_tag(),
            "blocks": self.blocks,
            "pages_per_block": self.pages_per_block,
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
        }


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Abort the enclosed block after ``seconds`` of real time.

    Uses ``SIGALRM``, so it is active only on the main thread of a
    platform that has it; elsewhere the limit is a silent no-op (the
    sweep still has exception isolation, just no timeout).
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise ScenarioTimeoutError(f"scenario exceeded {seconds:g}s wall clock")

    previous = signal.signal(signal.SIGALRM, _expired)
    # Repeating interval, not one-shot: a delivery that lands in an
    # unraisable context (e.g. a __del__ frame during GC) is suppressed
    # by the interpreter, and a one-shot timer would then never abort
    # the scenario.  With an interval the next tick retries.
    signal.setitimer(signal.ITIMER_REAL, float(seconds), float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_scenario(spec: ScenarioSpec) -> RunMetrics:
    """Execute one scenario per the Sec 4.1 protocol; returns metrics.

    A device that reaches its read-only terminal state mid-run (fault
    profiles can exhaust the spare capacity) is not an error: the window
    is frozen at the failure point and the returned metrics carry
    ``device_read_only=True``.
    """
    return _run_scenario_host(spec)[0]


def _run_scenario_host(spec: ScenarioSpec) -> Tuple[RunMetrics, HostSystem]:
    """:func:`run_scenario`, also returning the live host.

    Internal: the hot-path equivalence tests use the host to compare
    decision-audit streams, not just the frozen metrics.
    """
    if spec.workload not in BENCHMARKS:
        raise KeyError(
            f"unknown workload {spec.workload!r}; known: {sorted(BENCHMARKS)}"
        )
    with _wall_clock_limit(spec.timeout_s):
        config = spec.make_config()
        policy = spec.make_policy()
        obs = (
            Observability.from_config(spec.obs, header=spec.trace_header())
            if spec.obs is not None
            else None
        )
        host = HostSystem(
            config,
            policy,
            seed=spec.seed,
            flusher_period_ns=spec.flusher_period_s * SECOND,
            tau_expire_ns=spec.tau_expire_s * SECOND,
            obs=obs,
        )

        working_set = int(host.user_pages * spec.working_set_fraction)
        try:
            host.prefill(working_set)
        except DeviceReadOnlyError:
            # Spare capacity exhausted during preconditioning: still a
            # measurable (fully degraded) outcome, not a harness error.
            pass

        metrics = MetricsCollector(host, workload_name=spec.workload)
        workload_cls = BENCHMARKS[spec.workload]
        workload = workload_cls(
            host, metrics, Region(0, working_set), **spec.workload_kwargs
        )
        workload.start()

        _advance_tolerating_death(host, spec.warmup_s * SECOND)
        metrics.begin()
        _advance_tolerating_death(host, spec.measure_s * SECOND)
        metrics.end()
        workload.stop()
        results = metrics.results()
        host.obs.finish()
        report = host.obs.profile_report()
        if report is not None:
            print(report)
        return results, host


def _advance_tolerating_death(host: HostSystem, duration_ns: int) -> bool:
    """Advance simulated time, tolerating the device going read-only.

    Each write submitted against a read-only device raises out of its
    event; the raising event has already been consumed, so draining to
    the target time terminates.  Closed-loop workloads stall naturally
    once their in-flight op dies, reads keep completing, and the clock
    still reaches the window edge so the metrics stay well-formed.
    Returns True when at least one event died.
    """
    target = host.sim.now + duration_ns
    died = False
    while host.sim.now < target:
        try:
            host.sim.run_until(target)
        except DeviceReadOnlyError:
            died = True
    return died


def _make_pool(jobs: int) -> ProcessPoolExecutor:
    """Worker pool whose processes inherit the current perf-flag choice.

    Worker processes re-read module globals at import, so without the
    initializer a sweep launched inside :func:`repro.perf.scan_reference`
    would silently run its workers on the indexed paths.
    """
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=perf.set_hotpath_indexing,
        initargs=(perf.hotpath_indexing_enabled(),),
    )


def run_policy_comparison(
    spec: ScenarioSpec,
    policies: Optional[Dict[str, Callable[[], GcPolicy]]] = None,
    jobs: int = 1,
) -> Dict[str, RunMetrics]:
    """Run one workload under several policies (identical everything else).

    With ``jobs > 1`` the per-policy runs execute in a process pool --
    each scenario is already a self-contained deterministic replay (own
    simulator, own seeded RNGs), so results are bit-identical to the
    serial path and come back in the given policy order.

    Returns ``{policy_name: RunMetrics}`` in the given order.
    """
    policies = policies or POLICY_FACTORIES
    run_specs: Dict[str, ScenarioSpec] = {}
    for name, factory in policies.items():
        run_spec = spec.with_policy(name, factory)
        if run_spec.obs is not None and run_spec.obs.trace_path:
            # Per-policy trace files: compared runs never overwrite
            # each other's output.
            run_spec = replace(run_spec, obs=run_spec.obs.with_suffix(name))
        run_specs[name] = run_spec
    if jobs <= 1:
        return {name: run_scenario(s) for name, s in run_specs.items()}
    with _make_pool(jobs) as pool:
        futures = {name: pool.submit(run_scenario, s) for name, s in run_specs.items()}
        return {name: future.result() for name, future in futures.items()}


@dataclass
class SweepOutcome:
    """What a crash-tolerant sweep produced.

    Attributes:
        results: scenario key -> metrics for every scenario that has ever
            completed (including ones restored from the checkpoint).
        failures: scenario key -> ``"ExcType: message"`` for scenarios
            that raised on *this* invocation (or remain failed from a
            previous one and were not retried successfully).
        skipped: keys that were already complete in the checkpoint and
            were not re-run.
    """

    results: Dict[str, RunMetrics] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True when every scenario in the sweep has a result."""
        return not self.failures


def run_sweep(
    specs: Union[Iterable[ScenarioSpec], Dict[str, ScenarioSpec]],
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
    resume: bool = True,
    timeout_s: Optional[float] = None,
    on_result: Optional[Callable[[str, RunMetrics], None]] = None,
    jobs: int = 1,
) -> SweepOutcome:
    """Run many scenarios with per-scenario fault isolation.

    One scenario raising -- a bug, an injected-fault cascade, a
    :class:`ScenarioTimeoutError` -- is recorded and the sweep moves on;
    it never takes down the remaining scenarios.  With ``checkpoint``
    set, every completed scenario is flushed to disk immediately, and a
    re-run with ``resume=True`` skips everything already measured, so a
    killed sweep loses at most the scenario it was inside.

    With ``jobs > 1`` scenarios run in a ``ProcessPoolExecutor``.  Each
    scenario is a self-contained deterministic replay (its own simulator
    and seeded RNGs), so per-scenario results are bit-identical to a
    serial run; only completion order varies, and ``results`` is
    re-ordered to the input order before returning.  The checkpoint is
    written exclusively by the parent process (one atomic write per
    completion, exactly as in a serial run), so serial and parallel runs
    can freely resume each other's checkpoints.  Per-scenario wall-clock
    budgets still apply: ``SIGALRM`` timers run on each worker process's
    main thread.

    Args:
        specs: the scenarios, either keyed explicitly (dict) or keyed by
            :meth:`ScenarioSpec.key`.  Duplicate keys are an error --
            they would silently overwrite each other's results.
        checkpoint: path or :class:`SweepCheckpoint` for durability;
            None keeps everything in memory only.
        resume: skip scenarios the checkpoint already holds.
        timeout_s: wall-clock budget applied to every scenario that does
            not set its own ``timeout_s``.
        on_result: optional callback invoked after each fresh completion
            (progress reporting); called from the parent process.
        jobs: worker processes (1 = run in-process, serially).
    """
    if isinstance(specs, dict):
        keyed = dict(specs)
    else:
        keyed = {}
        for spec in specs:
            key = spec.key()
            if key in keyed:
                raise ValueError(f"duplicate scenario key {key!r}; key specs explicitly")
            keyed[key] = spec

    store: Optional[SweepCheckpoint] = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint)
        )
        if resume:
            store.load()

    outcome = SweepOutcome()
    pending: Dict[str, ScenarioSpec] = {}
    for key, spec in keyed.items():
        if store is not None and resume and store.is_completed(key):
            outcome.results[key] = store.completed[key]
            outcome.skipped.append(key)
            continue
        if spec.timeout_s is None and timeout_s is not None:
            spec = replace(spec, timeout_s=timeout_s)
        if spec.obs is not None and spec.obs.trace_path:
            # Per-scenario trace files, same suffix rule serial or not.
            spec = replace(spec, obs=spec.obs.with_suffix(key.replace("/", "_")))
        pending[key] = spec

    def _record(key: str, metrics: Optional[RunMetrics], error: Optional[str]) -> None:
        if error is not None:
            outcome.failures[key] = error
            if store is not None:
                store.record_failure(key, error)
            return
        outcome.results[key] = metrics
        if store is not None:
            store.record_success(key, metrics)
        if on_result is not None:
            on_result(key, metrics)

    if jobs <= 1:
        for key, spec in pending.items():
            try:
                metrics = run_scenario(spec)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                _record(key, None, f"{type(exc).__name__}: {exc}")
                continue
            _record(key, metrics, None)
    elif pending:
        with _make_pool(jobs) as pool:
            futures = {
                pool.submit(run_scenario, spec): key for key, spec in pending.items()
            }
            for future in as_completed(futures):
                key = futures[future]
                try:
                    metrics = future.result()
                except Exception as exc:  # noqa: BLE001 - isolation is the point
                    # Includes BrokenProcessPool: a worker dying hard
                    # fails every still-running scenario, each of which
                    # stays retryable from the checkpoint.
                    _record(key, None, f"{type(exc).__name__}: {exc}")
                    continue
                _record(key, metrics, None)
        # Completion order is nondeterministic; reports should not be.
        outcome.results = {
            key: outcome.results[key] for key in keyed if key in outcome.results
        }
    return outcome
