"""The tail-latency report: percentiles plus per-cause attribution.

The paper's headline claim is about the *shape* of the latency tail --
JIT-GC keeps foreground GC out of the host's way -- so a single p99
number is not evidence; the report this module builds is.  For each
policy it prints the full percentile ladder (p50/p95/p99/p999/p9999/max
from the HDR histogram) and the :mod:`repro.obs.attribution` cause
table: how many of the ops above the threshold percentile were slow
*because of* a foreground-GC stall, a background collection, flusher
backpressure, a fault retry, or plain queueing.  Comparing policies on
one identical workload replay turns "JIT-GC has a clean tail" into a
checkable table: the ``fgc-stall`` column should be (near) zero for
JIT-GC and populated for the lazy background collector.

Reproduce the headline artifact with::

    python -m repro latency-report --jobs 4

(see EXPERIMENTS.md for the reference output).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.core.policies import GcPolicy
from repro.experiments.crashsweep import gc_heavy_spec
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    POLICY_FACTORIES,
    ScenarioSpec,
    run_policy_comparison,
)
from repro.metrics.collector import RunMetrics
from repro.obs import ObservabilityConfig
from repro.obs.attribution import CAUSES


def latency_spec(
    spec: Optional[ScenarioSpec] = None, threshold_pct: float = 99.0
) -> ScenarioSpec:
    """Arm tail attribution on ``spec`` (GC-heavy scenario by default).

    Existing observability settings (tracing, sampling) are preserved;
    audit and the per-op completion log are switched on, since the
    attribution engine needs both sides of the join.
    """
    spec = spec if spec is not None else gc_heavy_spec()
    obs = spec.obs if spec.obs is not None else ObservabilityConfig()
    obs = replace(
        obs, audit=True, tail_attribution=True, tail_threshold_pct=threshold_pct
    )
    return replace(spec, obs=obs)


@dataclass
class LatencyReportResult:
    """Per-policy tail-latency breakdowns over one identical replay."""

    spec: ScenarioSpec
    results: Dict[str, RunMetrics] = field(default_factory=dict)

    def attribution_ok(self) -> bool:
        """Every policy's cause counts sum to its slow-op count."""
        for metrics in self.results.values():
            accounted = sum(pair[0] for pair in metrics.tail_causes.values())
            if accounted != metrics.tail_slow_ops:
                return False
        return True

    def percentile_rows(self) -> List[List[object]]:
        def ms(ns: float) -> str:
            return f"{ns / 1e6:.3f}"

        return [
            [
                policy,
                ms(m.mean_latency_ns),
                ms(m.p50_latency_ns),
                ms(m.p95_latency_ns),
                ms(m.p99_latency_ns),
                ms(m.p999_latency_ns),
                ms(m.p9999_latency_ns),
                ms(m.max_latency_ns),
            ]
            for policy, m in self.results.items()
        ]

    def cause_rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for policy, m in self.results.items():
            row: List[object] = [
                policy,
                f"{m.tail_threshold_ns / 1e6:.3f}",
                m.tail_slow_ops,
            ]
            for cause in CAUSES:
                count, total_ns = m.tail_causes.get(cause, [0, 0])
                row.append(f"{count} ({total_ns / 1e6:.1f}ms)" if count else "0")
            rows.append(row)
        return rows

    def mapping_rows(self) -> List[List[object]]:
        """CMT/translation-tier rows (one per policy; dftl runs only)."""
        return [
            [
                policy,
                m.cmt_hits,
                m.cmt_misses,
                f"{100.0 * m.cmt_hit_rate():.2f}%",
                m.trans_pages_written,
                m.trans_pages_migrated,
                f"{100.0 * m.translation_waf_share:.2f}%",
            ]
            for policy, m in self.results.items()
        ]

    def format(self) -> str:
        percentiles = format_table(
            ["Policy", "mean", "p50", "p95", "p99", "p999", "p9999", "max"],
            self.percentile_rows(),
            title=(
                f"Op latency (ms) on {self.spec.workload} "
                f"(seed={self.spec.seed}, measure={self.spec.measure_s}s)"
            ),
        )
        threshold = next(iter(self.results.values())).tail_threshold_pct
        causes = format_table(
            ["Policy", "thresh ms", "slow"] + list(CAUSES),
            self.cause_rows(),
            title=(
                f"Tail attribution: ops at/above each policy's own "
                f"p{threshold:g} (count, summed latency)"
            ),
        )
        check = (
            "attribution check: causes sum to slow-op count for every policy"
            if self.attribution_ok()
            else "ATTRIBUTION MISMATCH: cause counts do not sum to slow ops"
        )
        report = f"{percentiles}\n\n{causes}\n\n{check}"
        if any(m.mapping_mode == "dftl" for m in self.results.values()):
            mapping = format_table(
                [
                    "Policy",
                    "CMT hits",
                    "CMT misses",
                    "hit rate",
                    "trans written",
                    "trans migrated",
                    "trans WAF share",
                ],
                self.mapping_rows(),
                title=(
                    "Translation tier (DFTL): CMT behaviour and the share "
                    "of programs spent on translation pages"
                ),
            )
            report = f"{report}\n\n{mapping}"
        return report


def run_latency_report(
    spec: Optional[ScenarioSpec] = None,
    policies: Optional[Dict[str, Callable[[], GcPolicy]]] = None,
    jobs: Optional[int] = 1,
    threshold_pct: float = 99.0,
) -> LatencyReportResult:
    """Run the tail-latency comparison and return the per-policy tables.

    Each policy runs the identical workload replay (same spec, same
    seed) with tail attribution armed; ``jobs > 1`` parallelises across
    policies -- the attribution table travels inside each
    :class:`~repro.metrics.collector.RunMetrics` wire dict, so the
    streamed pool path carries it unchanged.
    """
    armed = latency_spec(spec, threshold_pct)
    results = run_policy_comparison(armed, policies or POLICY_FACTORIES, jobs=jobs)
    return LatencyReportResult(spec=armed, results=results)
