"""Oracle comparison: how close does JIT-GC get to the ideal policy?

Two-pass experiment realising the paper's Sec 2 thought experiment:

1. **Capture pass** -- run the scenario under JIT-GC while recording the
   exact per-interval device write volumes.
2. **Oracle pass** -- rerun the *identical* scenario under
   :class:`~repro.core.oracle.OracleGcPolicy`, which reserves exactly
   the captured future demand.

The gap between JIT-GC and ORACLE is the cost of having to *predict*
rather than *know* -- the headroom left for better predictors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.oracle import FutureWriteRecorder, OracleGcPolicy
from repro.core.policies import JitGcPolicy
from repro.experiments.reporting import format_table
from repro.experiments.runner import ScenarioSpec
from repro.host import HostSystem
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.sim.simtime import SECOND
from repro.workloads import BENCHMARKS, Region


@dataclass
class OracleComparison:
    """Metrics of the JIT-GC capture pass and the oracle replay."""

    workload: str
    raw: Dict[str, RunMetrics] = field(default_factory=dict)

    def iops_gap(self) -> float:
        """IOPS(JIT-GC) / IOPS(ORACLE); 1.0 means prediction is free."""
        return self.raw["JIT-GC"].iops / self.raw["ORACLE"].iops

    def waf_gap(self) -> float:
        return self.raw["JIT-GC"].waf / self.raw["ORACLE"].waf

    def format(self) -> str:
        rows = [
            [name, m.iops, m.waf, m.fgc_invocations, m.bgc_blocks]
            for name, m in self.raw.items()
        ]
        return format_table(
            ["Policy", "IOPS", "WAF", "FGC", "BGC blocks"],
            rows,
            title=f"Oracle comparison [{self.workload}]",
        )


def _run_pass(spec: ScenarioSpec, policy, record_interval_ns=None):
    """One scenario pass, optionally recording future write volumes."""
    config = spec.make_config()
    host = HostSystem(
        config,
        policy,
        seed=spec.seed,
        flusher_period_ns=spec.flusher_period_s * SECOND,
        tau_expire_ns=spec.tau_expire_s * SECOND,
    )
    recorder = None
    if record_interval_ns is not None:
        recorder = FutureWriteRecorder(host.device, record_interval_ns)
    working_set = int(host.user_pages * spec.working_set_fraction)
    host.prefill(working_set)
    metrics = MetricsCollector(host, workload_name=spec.workload)
    workload = BENCHMARKS[spec.workload](
        host, metrics, Region(0, working_set), **spec.workload_kwargs
    )
    workload.start()
    host.run_for(spec.warmup_s * SECOND)
    metrics.begin()
    host.run_for(spec.measure_s * SECOND)
    metrics.end()
    workload.stop()
    return metrics.results(), recorder


def run_oracle_comparison(spec: ScenarioSpec = None) -> OracleComparison:
    """Capture under JIT-GC, replay under the oracle; returns both."""
    spec = spec or ScenarioSpec(workload="TPC-C")
    interval_ns = spec.flusher_period_s * SECOND
    result = OracleComparison(workload=spec.workload)

    jit_metrics, recorder = _run_pass(
        spec, JitGcPolicy(), record_interval_ns=interval_ns
    )
    result.raw["JIT-GC"] = jit_metrics

    future = recorder.log()
    horizon = spec.tau_expire_s // spec.flusher_period_s
    oracle_metrics, _ = _run_pass(
        spec, OracleGcPolicy(future, horizon_intervals=horizon)
    )
    result.raw["ORACLE"] = oracle_metrics
    return result
