"""Table 3: the effect of the SIP lists on GC victim selection.

Runs JIT-GC per benchmark and reports the fraction of victim selections
in which the SIP filter skipped at least one greedy-ranked candidate.
Expected shape (paper): the filter bites hardest where buffered
re-writes dominate -- Postmark (20.6 %) > Filebench (17.5 %) > YCSB
(12.2 %) > Bonnie++ (8.7 %) > Tiobench (4.9 %) > TPC-C (1.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import ScenarioSpec, run_scenario

DEFAULT_WORKLOADS = ("YCSB", "Postmark", "Filebench", "Bonnie++", "Tiobench", "TPC-C")

#: The paper's Table 3 (percent of filtered GC victim selections).
PAPER_FILTERED_PCT = {
    "YCSB": 12.2,
    "Postmark": 20.6,
    "Filebench": 17.5,
    "Bonnie++": 8.7,
    "Tiobench": 4.9,
    "TPC-C": 1.1,
}


@dataclass
class Table3Result:
    """Measured SIP-filter activity per benchmark."""

    filtered_pct: Dict[str, float] = field(default_factory=dict)
    selections: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        rows: List[List[object]] = []
        for workload, pct in self.filtered_pct.items():
            rows.append(
                [
                    workload,
                    pct,
                    PAPER_FILTERED_PCT.get(workload, float("nan")),
                    self.selections.get(workload, 0),
                ]
            )
        return format_table(
            ["Benchmark", "Filtered %", "Paper %", "Victim selections"],
            rows,
            title="Table 3: SIP-filtered GC victim selections",
            float_format="{:.1f}",
        )


def run_table3(
    base_spec: ScenarioSpec = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Table3Result:
    """Measure SIP-filter activity under JIT-GC per benchmark."""
    base_spec = base_spec or ScenarioSpec()
    result = Table3Result()
    for workload in workloads:
        spec = base_spec.with_policy("JIT-GC")
        spec.workload = workload
        metrics = run_scenario(spec)
        result.filtered_pct[workload] = metrics.sip_filtered_pct()
        result.selections[workload] = metrics.sip_selections
    return result
