"""Plain-text reporting helpers for experiment harnesses.

The paper presents normalized bar charts and small tables; the harnesses
print the same content as aligned text tables so a bench run's stdout is
directly comparable to the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def normalize_to(values: Dict[str, Number], reference_key: str) -> Dict[str, float]:
    """Normalize a series so ``reference_key`` maps to 1.0 (paper style:
    "all values normalized over A-BGC")."""
    if reference_key not in values:
        raise KeyError(f"reference {reference_key!r} missing from {sorted(values)}")
    reference = values[reference_key]
    if reference == 0:
        raise ZeroDivisionError(f"reference value for {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Floats go through ``float_format``; everything else through ``str``.
    """
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
