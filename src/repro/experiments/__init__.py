"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.runner` -- the shared scenario protocol.
* :mod:`repro.experiments.reporting` -- text-table formatting.
* :mod:`repro.experiments.fig2` -- reserved-capacity sweep (Fig. 2a/2b).
* :mod:`repro.experiments.table1` -- buffered/direct write mix (Table 1).
* :mod:`repro.experiments.fig7` -- four-policy comparison (Fig. 7a/7b).
* :mod:`repro.experiments.table2` -- prediction accuracy (Table 2).
* :mod:`repro.experiments.table3` -- SIP victim filtering (Table 3).
* :mod:`repro.experiments.ablations` -- design-choice sweeps from
  DESIGN.md (CDH percentile, SIP threshold, strict predictor, eager
  manager).
* :mod:`repro.experiments.crashsweep` -- exhaustive crash-point sweep
  and live sudden-power-off runs with post-recovery continuation.
"""

from repro.experiments.runner import (
    POLICY_FACTORIES,
    WARM_START_MODES,
    ScenarioSpec,
    ScenarioTimeoutError,
    SweepOutcome,
    build_preconditioned_host,
    resolve_jobs,
    run_policy_comparison,
    run_scenario,
    run_sweep,
)
from repro.experiments.reporting import format_table, normalize_to
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.ablations import (
    AblationResult,
    run_manager_laziness,
    run_percentile_sweep,
    run_predictor_strictness,
    run_sip_ablation,
)
from repro.experiments.oracle import OracleComparison, run_oracle_comparison
from repro.experiments.crashsweep import (
    CrashPointCheck,
    CrashPointMismatch,
    CrashSweepResult,
    SpoRunResult,
    gc_heavy_spec,
    merge_phase_metrics,
    run_crash_sweep,
    run_scenario_with_spo,
    verify_crash_point,
)
from repro.experiments.latencyreport import (
    LatencyReportResult,
    latency_spec,
    run_latency_report,
)
from repro.experiments.lifetimereport import (
    LifetimeReportResult,
    run_lifetime_report,
)
from repro.experiments.persistence import SweepCheckpoint, load_results, save_results

__all__ = [
    "POLICY_FACTORIES",
    "WARM_START_MODES",
    "ScenarioSpec",
    "build_preconditioned_host",
    "ScenarioTimeoutError",
    "SweepCheckpoint",
    "SweepOutcome",
    "resolve_jobs",
    "run_policy_comparison",
    "run_scenario",
    "run_sweep",
    "format_table",
    "normalize_to",
    "Fig2Result",
    "run_fig2",
    "Fig7Result",
    "run_fig7",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "AblationResult",
    "run_percentile_sweep",
    "run_sip_ablation",
    "run_predictor_strictness",
    "run_manager_laziness",
    "OracleComparison",
    "run_oracle_comparison",
    "load_results",
    "save_results",
    "CrashPointCheck",
    "CrashPointMismatch",
    "CrashSweepResult",
    "SpoRunResult",
    "gc_heavy_spec",
    "LatencyReportResult",
    "latency_spec",
    "run_latency_report",
    "LifetimeReportResult",
    "run_lifetime_report",
    "merge_phase_metrics",
    "run_crash_sweep",
    "run_scenario_with_spo",
    "verify_crash_point",
]
