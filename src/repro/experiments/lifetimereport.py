"""The lifetime report: years-to-ECC-cliff per GC policy.

The paper's title promises *long lifetimes*; this report is where the
repo finally quantifies it end to end.  Each policy runs the identical
GC-heavy workload replay to measure its steady-state WAF; the
:mod:`repro.analytic.lifetime` model inverts the reliability stack
(UBER target -> max tolerable P/E at the retention target) once, and
the two combine into the classic endurance arithmetic::

    years = max_pe * physical_bytes / (waf * daily_host_bytes * 365.25)

The policies share one cycle budget -- the physics does not care who is
collecting -- so the table isolates exactly the paper's argument: the
WAF ratio between JIT-GC and the baselines *is* the lifetime ratio.

Reproduce with::

    python -m repro lifetime-report --jobs 4

(see EXPERIMENTS.md for the reference output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analytic.lifetime import (
    DEFAULT_RETENTION_S,
    DEFAULT_UBER_TARGET,
    LifetimeModel,
    LifetimeProjection,
    project_lifetime,
)
from repro.core.policies import GcPolicy
from repro.experiments.crashsweep import gc_heavy_spec
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    POLICY_FACTORIES,
    ScenarioSpec,
    run_policy_comparison,
)
from repro.metrics.collector import RunMetrics
from repro.nand.reliability import resolve_reliability_profile


@dataclass
class LifetimeReportResult:
    """Per-policy WAF measurements and lifetime projections."""

    spec: ScenarioSpec
    model: LifetimeModel
    #: Host writes per day the projection assumes, as a fraction of the
    #: device's physical capacity (1.0 = one drive-write per day).
    drive_writes_per_day: float
    results: Dict[str, RunMetrics] = field(default_factory=dict)
    projections: Dict[str, LifetimeProjection] = field(default_factory=dict)

    def best_policy(self) -> str:
        """The longest-lived policy (ties break on dict order)."""
        return max(self.projections, key=lambda p: self.projections[p].years)

    def rows(self) -> List[List[object]]:
        baseline = min(p.years for p in self.projections.values())
        rows: List[List[object]] = []
        for policy, projection in self.projections.items():
            ratio = (
                projection.years / baseline if baseline > 0 else float("inf")
            )
            rows.append(
                [
                    policy,
                    f"{projection.waf:.3f}",
                    projection.max_pe_cycles,
                    f"{projection.years:.2f}",
                    f"{ratio:.2f}x",
                ]
            )
        return rows

    def format(self) -> str:
        retention_days = self.model.retention_target_s / 86_400.0
        return format_table(
            ["Policy", "WAF", "max P/E", "years to ECC cliff", "vs worst"],
            self.rows(),
            title=(
                f"Lifetime projection on {self.spec.workload} "
                f"(UBER target {self.model.uber_target:g}, "
                f"{retention_days:.0f}-day retention, "
                f"{self.drive_writes_per_day:g} drive-writes/day)"
            ),
        )


def run_lifetime_report(
    spec: Optional[ScenarioSpec] = None,
    policies: Optional[Dict[str, Callable[[], GcPolicy]]] = None,
    jobs: Optional[int] = 1,
    reliability_profile: str = "mlc-20nm",
    uber_target: float = DEFAULT_UBER_TARGET,
    retention_target_s: float = DEFAULT_RETENTION_S,
    drive_writes_per_day: float = 1.0,
) -> LifetimeReportResult:
    """Measure per-policy WAF and project years to the ECC cliff.

    Args:
        spec: scenario to measure WAF on (GC-heavy by default; the
            measurement itself runs with whatever reliability setting
            the spec carries -- the *projection* always uses
            ``reliability_profile``'s physics).
        policies: factories to compare (all four by default).
        jobs: worker processes for the policy comparison.
        reliability_profile: named profile whose bit-error model and ECC
            define the cliff (``off`` is rejected -- a lifetime needs
            physics).
        uber_target: shipped-product UBER ceiling.
        retention_target_s: retention window the UBER must hold over.
        drive_writes_per_day: host volume as a fraction of physical
            capacity per day.
    """
    profile = resolve_reliability_profile(reliability_profile)
    if profile is None:
        raise ValueError(
            "lifetime-report needs a reliability profile; 'off' has no ECC cliff"
        )
    if drive_writes_per_day <= 0:
        raise ValueError(
            f"drive_writes_per_day must be positive, got {drive_writes_per_day}"
        )
    model = LifetimeModel.from_profile(
        profile,
        retention_target_s=retention_target_s,
        uber_target=uber_target,
    )
    spec = spec if spec is not None else gc_heavy_spec()
    results = run_policy_comparison(spec, policies or POLICY_FACTORIES, jobs=jobs)
    geometry = spec.make_config().geometry
    physical_bytes = geometry.total_pages * geometry.page_size
    daily_write_bytes = drive_writes_per_day * physical_bytes
    projections = {
        policy: project_lifetime(
            policy,
            max(1.0, metrics.waf),
            physical_bytes,
            daily_write_bytes,
            model,
        )
        for policy, metrics in results.items()
    }
    return LifetimeReportResult(
        spec=spec,
        model=model,
        drive_writes_per_day=drive_writes_per_day,
        results=results,
        projections=projections,
    )
