"""Schedulable events with deterministic total ordering.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
is assigned by the :class:`~repro.sim.engine.Simulator` at scheduling time,
so two events scheduled for the same instant at the same priority always
fire in scheduling order.  This determinism matters: GC-policy decisions
depend on whether a device-idle notification is observed before or after a
flusher tick at the same timestamp.

The event core is structure-of-arrays flavoured (PERFORMANCE.md): the
engine's heap holds plain ``(time, priority, seq, event)`` int tuples so
ordering is decided by C-level tuple comparison, and :class:`Event` is a
``__slots__`` record carrying a precomputed sort key.  The
:class:`EventPriority` enum remains the documented vocabulary, but every
hot scheduling site uses the hoisted module-level int constants below --
``IntEnum`` member access goes through the enum metaclass and shows up in
event-loop profiles.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values fire first.  ``DEVICE`` completions are delivered before
    ``CONTROL`` ticks (a policy tick at time *t* should see all I/O that
    completed at *t*), and ``LOW`` runs last (bookkeeping, metric samples).
    """

    DEVICE = 0
    NORMAL = 1
    CONTROL = 2
    LOW = 3


#: Hoisted int values of :class:`EventPriority` for hot scheduling sites.
#: Identical ordering semantics; plain module-global loads instead of enum
#: metaclass ``__getattr__`` per schedule call.
PRIORITY_DEVICE: int = int(EventPriority.DEVICE)
PRIORITY_NORMAL: int = int(EventPriority.NORMAL)
PRIORITY_CONTROL: int = int(EventPriority.CONTROL)
PRIORITY_LOW: int = int(EventPriority.LOW)


class Event:
    """A single scheduled callback (slotted, ints-only ordering state).

    Attributes:
        time: absolute simulated time (integer nanoseconds) at which the
            event fires.
        priority: tie-break class, see :class:`EventPriority` (stored as
            a plain int).
        seq: scheduling sequence number; assigned by the simulator.
        key: precomputed ``(time, priority, seq)`` total-ordering key.
        callback: zero-argument callable invoked when the event fires.
        name: optional label used in error messages and traces.
        cancelled: set via :meth:`cancel`; cancelled events are skipped
            (lazily removed from the heap).
    """

    __slots__ = ("time", "priority", "seq", "key", "callback", "name",
                 "cancelled", "_on_cancel")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        name: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = int(priority)
        self.seq = seq
        #: Precomputed sort key; the engine's heap entries embed it so the
        #: heap never calls back into Python-level comparison.
        self.key: Tuple[int, int, int] = (time, self.priority, seq)
        self.callback = callback
        self.name = name
        self.cancelled = False
        #: Set by the scheduling simulator so cancellation can keep its
        #: live-event counter exact without scanning the heap.  Cleared
        #: when the event fires or is cancelled, so a fired event held by
        #: a component never keeps the simulator hook reachable.
        self._on_cancel: Optional[Callable[[], None]] = None

    def sort_key(self) -> Tuple[int, int, int]:
        """The total ordering key used by the event heap."""
        return self.key

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def cancel(self) -> None:
        """Mark the event so the engine discards it instead of firing it.

        Cancellation is O(1); the heap entry is dropped when it surfaces.
        Idempotent, and a no-op after the event has already fired (the
        engine detaches the cancellation hook at dispatch, so a late
        ``cancel()`` cannot corrupt the live-event count).
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or getattr(self.callback, "__qualname__", "callback")
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} {label}{state}>"
